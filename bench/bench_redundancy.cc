// E4 — Theorems 4.2/6.4: with a recursively redundant C, the closure can be
// computed applying C's predicates a bounded number of times on small
// prefix sets; the unbounded tail applies only B. Workload: the fan-out
// variant of Example 6.1,
//
//   buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).
//
// `endorses` (the redundant predicate) has `fanout` matches per item, so
// the direct closure pays fanout-many duplicate derivations per iteration;
// the redundancy-aware closure pays them once. The win should scale with
// the fan-out and with the recursion depth.

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "redundancy/closure.h"
#include "redundancy/factorize.h"
#include "workload/databases.h"

namespace linrec {
namespace {

constexpr const char* kRule =
    "buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).";

const RedundantFactorization& Factorization() {
  static const RedundantFactorization* f = [] {
    auto rule = ParseLinearRule(kRule);
    auto factorization = FactorFirstRedundant(*rule);
    return new RedundantFactorization(*factorization);
  }();
  return *f;
}

EndorsedBuysWorkload MakeWorkload(int people, int fanout) {
  return MakeEndorsedBuys(people, /*items=*/people / 4, fanout,
                          /*initial_buys=*/people / 4, /*seed=*/3);
}

void BM_Direct_FanoutSweep(benchmark::State& state) {
  auto rule = ParseLinearRule(kRule);
  EndorsedBuysWorkload w =
      MakeWorkload(200, static_cast<int>(state.range(0)));
  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out = SemiNaiveClosure({*rule}, w.db, w.q, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["derivations"] = static_cast<double>(stats.derivations);
  state.counters["result"] = static_cast<double>(stats.result_size);
}

void BM_RedundancyAware_FanoutSweep(benchmark::State& state) {
  const RedundantFactorization& f = Factorization();
  EndorsedBuysWorkload w =
      MakeWorkload(200, static_cast<int>(state.range(0)));
  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out = RedundantClosure(f, w.db, w.q, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["derivations"] = static_cast<double>(stats.derivations);
  state.counters["result"] = static_cast<double>(stats.result_size);
  state.counters["commuting_path"] = f.commuting ? 1 : 0;
}

void BM_Direct_DepthSweep(benchmark::State& state) {
  auto rule = ParseLinearRule(kRule);
  EndorsedBuysWorkload w =
      MakeWorkload(static_cast<int>(state.range(0)), /*fanout=*/8);
  for (auto _ : state) {
    auto out = SemiNaiveClosure({*rule}, w.db, w.q);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_RedundancyAware_DepthSweep(benchmark::State& state) {
  const RedundantFactorization& f = Factorization();
  EndorsedBuysWorkload w =
      MakeWorkload(static_cast<int>(state.range(0)), /*fanout=*/8);
  for (auto _ : state) {
    auto out = RedundantClosure(f, w.db, w.q);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_FactorizationCost(benchmark::State& state) {
  // One-off analysis cost (Theorem 6.3 + Lemmas 6.3-6.5 + torsion search).
  auto rule = ParseLinearRule(kRule);
  for (auto _ : state) {
    auto f = FactorFirstRedundant(*rule);
    if (!f.ok()) state.SkipWithError(f.status().ToString().c_str());
    benchmark::DoNotOptimize(f);
  }
}

BENCHMARK(BM_Direct_FanoutSweep)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RedundancyAware_FanoutSweep)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Direct_DepthSweep)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RedundancyAware_DepthSweep)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FactorizationCost)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
