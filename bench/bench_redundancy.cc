// E4 — Theorems 4.2/6.4: with a recursively redundant C, the closure can be
// computed applying C's predicates a bounded number of times on small
// prefix sets; the unbounded tail applies only B. Workload: the fan-out
// variant of Example 6.1,
//
//   buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).
//
// `endorses` (the redundant predicate) has `fanout` matches per item, so
// the direct closure pays fanout-many duplicate derivations per iteration;
// the redundancy-aware closure pays them once. Driven through
// linrec::Engine: automatic planning finds the bounded bridge and elides
// the predicate (plan->factorization); the baseline forces semi-naive.

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "engine/engine.h"
#include "workload/databases.h"

namespace linrec {
namespace {

constexpr const char* kRule =
    "buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).";

EndorsedBuysWorkload MakeWorkload(int people, int fanout) {
  return MakeEndorsedBuys(people, /*items=*/people / 4, fanout,
                          /*initial_buys=*/people / 4, /*seed=*/3);
}

void RunBound(benchmark::State& state, const BoundQuery& bound,
              Engine& engine) {
  for (auto _ : state) {
    engine.ResetStats();
    auto out = engine.Execute(bound);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["derivations"] =
      static_cast<double>(engine.stats().derivations);
  state.counters["result"] = static_cast<double>(engine.stats().result_size);
}

void BM_Direct_FanoutSweep(benchmark::State& state) {
  auto rule = ParseLinearRule(kRule);
  EndorsedBuysWorkload w =
      MakeWorkload(200, static_cast<int>(state.range(0)));
  Engine engine(std::move(w.db));
  auto prepared = engine.Prepare(
      Query::Closure({*rule}).Force(Strategy::kSemiNaive));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  RunBound(state, prepared->Bind().BindSeed(w.q), engine);
}

void BM_RedundancyAware_FanoutSweep(benchmark::State& state) {
  auto rule = ParseLinearRule(kRule);
  EndorsedBuysWorkload w =
      MakeWorkload(200, static_cast<int>(state.range(0)));
  Engine engine(std::move(w.db));
  auto prepared = engine.Prepare(Query::Closure({*rule}));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  if (!prepared->plan().factorization.has_value()) {
    state.SkipWithError("planner did not elide the redundant predicate");
    return;
  }
  RunBound(state, prepared->Bind().BindSeed(w.q), engine);
  state.counters["commuting_path"] =
      prepared->plan().factorization->commuting ? 1 : 0;
}

void BM_Direct_DepthSweep(benchmark::State& state) {
  auto rule = ParseLinearRule(kRule);
  EndorsedBuysWorkload w =
      MakeWorkload(static_cast<int>(state.range(0)), /*fanout=*/8);
  Engine engine(std::move(w.db));
  auto prepared = engine.Prepare(
      Query::Closure({*rule}).Force(Strategy::kSemiNaive));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  BoundQuery bound = prepared->Bind().BindSeed(w.q);
  for (auto _ : state) {
    auto out = engine.Execute(bound);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_RedundancyAware_DepthSweep(benchmark::State& state) {
  auto rule = ParseLinearRule(kRule);
  EndorsedBuysWorkload w =
      MakeWorkload(static_cast<int>(state.range(0)), /*fanout=*/8);
  Engine engine(std::move(w.db));
  auto prepared = engine.Prepare(Query::Closure({*rule}));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  BoundQuery bound = prepared->Bind().BindSeed(w.q);
  for (auto _ : state) {
    auto out = engine.Execute(bound);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_ColdRedundancyPlan(benchmark::State& state) {
  // One-off planning cost from a cold cache: Theorem 6.3 bridge analysis,
  // the torsion search, and the Lemma 6.3-6.5 factorization.
  auto rule = ParseLinearRule(kRule);
  Relation q(2);
  q.Insert({0, 0});
  for (auto _ : state) {
    Engine engine;
    auto plan = engine.Plan(Query::Closure({*rule}).From(q));
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
}

BENCHMARK(BM_Direct_FanoutSweep)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RedundancyAware_FanoutSweep)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Direct_DepthSweep)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RedundancyAware_DepthSweep)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdRedundancyPlan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
