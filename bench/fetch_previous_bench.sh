#!/usr/bin/env bash
# Downloads the BENCH_engine artifact from the most recent earlier workflow
# run and writes its BENCH_engine.json to the path given as $1.
#
# Exits 0 whether or not a previous artifact exists (the very first run of
# the gate, expired retention, or a forked repo without artifact access all
# leave the gate vacuously green); the caller checks for the output file.
# Requires: gh (authenticated via GH_TOKEN), jq, unzip — all preinstalled
# on GitHub-hosted runners.
set -euo pipefail

out="${1:?usage: fetch_previous_bench.sh OUT.json}"
repo="${GITHUB_REPOSITORY:?GITHUB_REPOSITORY not set}"
current_run="${GITHUB_RUN_ID:-0}"

# Newest non-expired BENCH_engine artifact from a run other than this one.
artifact_id=$(gh api "repos/${repo}/actions/artifacts?name=BENCH_engine&per_page=50" \
  --jq "[.artifacts[] | select(.expired | not) | select(.workflow_run.id != ${current_run})] \
        | sort_by(.created_at) | last | .id // empty" || true)

if [[ -z "${artifact_id}" ]]; then
  echo "fetch_previous_bench: no previous BENCH_engine artifact found"
  exit 0
fi

tmp=$(mktemp -d)
trap 'rm -rf "${tmp}"' EXIT
if ! gh api "repos/${repo}/actions/artifacts/${artifact_id}/zip" \
    > "${tmp}/artifact.zip"; then
  echo "fetch_previous_bench: download of artifact ${artifact_id} failed"
  exit 0
fi
unzip -o -q "${tmp}/artifact.zip" -d "${tmp}"
if [[ ! -f "${tmp}/BENCH_engine.json" ]]; then
  echo "fetch_previous_bench: artifact ${artifact_id} has no BENCH_engine.json"
  exit 0
fi
cp "${tmp}/BENCH_engine.json" "${out}"
echo "fetch_previous_bench: wrote ${out} (artifact ${artifact_id})"
