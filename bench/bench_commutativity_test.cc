// E5 — Theorem 5.3: the syntactic commutativity test runs in O(a log a) in
// the total number of argument positions a, while the definition-based test
// must build both composites and decide CQ equivalence (NP-complete in
// general). Two families:
//  * restricted-class mirrored pairs (arity sweep): both tests are exact;
//    the syntactic one scales quasi-linearly;
//  * repeated-predicate pairs: the syntactic test still answers via small
//    per-bridge checks while the definitional test's homomorphism search
//    works on the full composites.

#include <benchmark/benchmark.h>

#include "commutativity/definitional.h"
#include "commutativity/syntactic.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

void BM_Syntactic_Restricted(benchmark::State& state) {
  auto pair = MakeRestrictedCommutingPair(static_cast<int>(state.range(0)));
  if (!pair.ok()) {
    state.SkipWithError(pair.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = CheckSyntacticCondition(pair->first, pair->second);
    if (!result.ok() || !result->condition_holds) {
      state.SkipWithError("syntactic test failed unexpectedly");
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["a"] = static_cast<double>(
      pair->first.rule().TotalArgumentPositions() +
      pair->second.rule().TotalArgumentPositions());
}

void BM_Definitional_Restricted(benchmark::State& state) {
  auto pair = MakeRestrictedCommutingPair(static_cast<int>(state.range(0)));
  if (!pair.ok()) {
    state.SkipWithError(pair.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = DefinitionalCommute(pair->first, pair->second);
    if (!result.ok() || !*result) {
      state.SkipWithError("definitional test failed unexpectedly");
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["a"] = static_cast<double>(
      pair->first.rule().TotalArgumentPositions() +
      pair->second.rule().TotalArgumentPositions());
}

void BM_Syntactic_RepeatedPredicates(benchmark::State& state) {
  auto pair = MakeRepeatedPredicatePair(static_cast<int>(state.range(0)),
                                        static_cast<int>(state.range(1)));
  if (!pair.ok()) {
    state.SkipWithError(pair.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = CheckSyntacticCondition(pair->first, pair->second);
    if (!result.ok() || !result->condition_holds) {
      state.SkipWithError("syntactic test failed unexpectedly");
    }
    benchmark::DoNotOptimize(result);
  }
}

void BM_Definitional_RepeatedPredicates(benchmark::State& state) {
  auto pair = MakeRepeatedPredicatePair(static_cast<int>(state.range(0)),
                                        static_cast<int>(state.range(1)));
  if (!pair.ok()) {
    state.SkipWithError(pair.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = DefinitionalCommute(pair->first, pair->second);
    if (!result.ok() || !*result) {
      state.SkipWithError("definitional test failed unexpectedly");
    }
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_Syntactic_Restricted)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(256);
BENCHMARK(BM_Definitional_Restricted)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(256);
BENCHMARK(BM_Syntactic_RepeatedPredicates)
    ->Args({2, 2})->Args({4, 3})->Args({6, 4})->Args({8, 5})->Args({10, 6});
BENCHMARK(BM_Definitional_RepeatedPredicates)
    ->Args({2, 2})->Args({4, 3})->Args({6, 4})->Args({8, 5})->Args({10, 6});

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
