// E1 — Theorem 3.1: evaluating (B+C)* as B*C* produces no more duplicate
// derivations, and strictly fewer whenever the mixed CB-terms rederive
// tuples. Workload: same-generation (Example 5.2) over layered DAGs, where
// parallel paths maximize rederivation.
//
// Reported counters per configuration:
//   duplicates      — duplicate derivations of the measured strategy
//   derivations     — total derivations (|E| of the derivation graph)
//   result          — size of the closure
//   dup_ratio       — duplicates(direct) / duplicates(decomposed), on the
//                     decomposed rows (the paper's "who wins" factor)

#include <benchmark/benchmark.h>

#include "algebra/closure.h"
#include "datalog/parser.h"
#include "workload/databases.h"

namespace linrec {
namespace {

struct Fixture {
  LinearRule r1;
  LinearRule r2;
  SameGenerationWorkload w;
};

Fixture MakeFixture(int layers, int width, int fanout) {
  return Fixture{*ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y)."),
                 *ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U)."),
                 MakeSameGeneration(layers, width, fanout, /*seed=*/1234)};
}

void BM_Direct_SumClosure(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)),
                          static_cast<int>(state.range(2)));
  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out = DirectClosure({f.r1, f.r2}, f.w.db, f.w.q, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["duplicates"] = static_cast<double>(stats.duplicates);
  state.counters["derivations"] = static_cast<double>(stats.derivations);
  state.counters["result"] = static_cast<double>(stats.result_size);
}

void BM_Decomposed_BstarCstar(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)),
                          static_cast<int>(state.range(2)));
  // Baseline duplicates for the ratio counter.
  ClosureStats direct_stats;
  auto direct = DirectClosure({f.r1, f.r2}, f.w.db, f.w.q, &direct_stats);
  if (!direct.ok()) {
    state.SkipWithError(direct.status().ToString().c_str());
    return;
  }

  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out = DecomposedClosure({{f.r1}, {f.r2}}, f.w.db, f.w.q, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["duplicates"] = static_cast<double>(stats.duplicates);
  state.counters["derivations"] = static_cast<double>(stats.derivations);
  state.counters["result"] = static_cast<double>(stats.result_size);
  state.counters["dup_ratio"] =
      stats.duplicates == 0
          ? static_cast<double>(direct_stats.duplicates)
          : static_cast<double>(direct_stats.duplicates) /
                static_cast<double>(stats.duplicates);
}

void DagArgs(benchmark::internal::Benchmark* b) {
  // {layers, width, fanout}
  b->Args({4, 8, 2})
      ->Args({5, 12, 2})
      ->Args({6, 16, 2})
      ->Args({6, 16, 3})
      ->Args({7, 24, 2})
      ->Args({8, 32, 2});
}

BENCHMARK(BM_Direct_SumClosure)->Apply(DagArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decomposed_BstarCstar)
    ->Apply(DagArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
