// E1 — Theorem 3.1: evaluating (B+C)* as B*C* produces no more duplicate
// derivations, and strictly fewer whenever the mixed CB-terms rederive
// tuples. Workload: same-generation (Example 5.2) over layered DAGs, where
// parallel paths maximize rederivation. Driven through linrec::Engine:
// the decomposed rows use the plan the engine compiles by itself.
//
// Reported counters per configuration:
//   duplicates      — duplicate derivations of the measured strategy
//   derivations     — total derivations (|E| of the derivation graph)
//   result          — size of the closure
//   dup_ratio       — duplicates(direct) / duplicates(decomposed), on the
//                     decomposed rows (the paper's "who wins" factor)

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "engine/engine.h"
#include "workload/databases.h"

namespace linrec {
namespace {

SameGenerationWorkload MakeWorkload(int layers, int width, int fanout) {
  return MakeSameGeneration(layers, width, fanout, /*seed=*/1234);
}

void ReportStats(benchmark::State& state, const ClosureStats& stats) {
  state.counters["duplicates"] = static_cast<double>(stats.duplicates);
  state.counters["derivations"] = static_cast<double>(stats.derivations);
  state.counters["result"] = static_cast<double>(stats.result_size);
}

void BM_Direct_SumClosure(benchmark::State& state) {
  SameGenerationWorkload w = MakeWorkload(static_cast<int>(state.range(0)),
                                          static_cast<int>(state.range(1)),
                                          static_cast<int>(state.range(2)));
  Engine engine(std::move(w.db));
  auto prepared = engine.Prepare(
      Query::Closure(SameGenerationRules()).Force(Strategy::kSemiNaive));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  BoundQuery bound = prepared->Bind().BindSeed(w.q);
  for (auto _ : state) {
    engine.ResetStats();
    auto out = engine.Execute(bound);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  ReportStats(state, engine.stats());
}

void BM_Decomposed_BstarCstar(benchmark::State& state) {
  SameGenerationWorkload w = MakeWorkload(static_cast<int>(state.range(0)),
                                          static_cast<int>(state.range(1)),
                                          static_cast<int>(state.range(2)));
  Engine engine(std::move(w.db));
  // Baseline duplicates for the ratio counter.
  auto direct = engine.Prepare(
      Query::Closure(SameGenerationRules()).Force(Strategy::kSemiNaive));
  if (!direct.ok() ||
      !engine.Execute(direct->Bind().BindSeed(w.q)).ok()) {
    state.SkipWithError("direct baseline failed");
    return;
  }
  const std::size_t direct_duplicates = engine.stats().duplicates;

  auto prepared = engine.Prepare(Query::Closure(SameGenerationRules()));
  if (!prepared.ok() ||
      prepared->plan().strategy != Strategy::kDecomposed) {
    state.SkipWithError("planner did not choose kDecomposed");
    return;
  }
  BoundQuery bound = prepared->Bind().BindSeed(w.q);
  for (auto _ : state) {
    engine.ResetStats();
    auto out = engine.Execute(bound);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  ReportStats(state, engine.stats());
  const std::size_t duplicates = engine.stats().duplicates;
  state.counters["dup_ratio"] =
      duplicates == 0 ? static_cast<double>(direct_duplicates)
                      : static_cast<double>(direct_duplicates) /
                            static_cast<double>(duplicates);
}

void DagArgs(benchmark::internal::Benchmark* b) {
  // {layers, width, fanout}
  b->Args({4, 8, 2})
      ->Args({5, 12, 2})
      ->Args({6, 16, 2})
      ->Args({6, 16, 3})
      ->Args({7, 24, 2})
      ->Args({8, 32, 2});
}

BENCHMARK(BM_Direct_SumClosure)->Apply(DagArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decomposed_BstarCstar)
    ->Apply(DagArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
