// bench_engine — the repo's perf trajectory harness.
//
// Self-contained driver (no google-benchmark dependency): runs a fixed
// strategy × workload matrix through linrec::Engine, times each cell, and
// writes machine-readable results to BENCH_engine.json (path overridable
// via argv[1]). CI runs this in Release mode, uploads the JSON as an
// artifact, and diffs it against the previous push's artifact
// (bench/bench_diff.py), so every commit leaves a comparable perf record
// and large regressions fail the build.
//
// The figure of merit is derivations/sec: Theorem 3.1 counts work in tuple
// derivations, so throughput in derivations normalizes across strategies
// that do different amounts of total work. Each row records the worker
// count it ran with; the `meta` block records the host (hardware threads,
// compiler, git sha) so cross-machine comparisons are interpretable —
// worker counts above `hardware_concurrency` exercise the parallel
// machinery without adding real parallelism.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/memory.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "eval/apply.h"
#include "eval/index_cache.h"
#include "eval/stats.h"
#include "server/server.h"
#include "workload/databases.h"
#include "workload/graphs.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

struct BenchResult {
  std::string workload;
  std::string strategy;
  int n = 0;
  int workers = 0;
  int reps = 0;
  double wall_ms_mean = 0.0;
  double wall_ms_min = 0.0;
  std::size_t derivations = 0;  // per repetition
  double derivations_per_sec = 0.0;
  std::size_t result_size = 0;
  /// Measured same-binary run-to-run spread where it exceeds the default
  /// regression gate (fractional drop; 0 = workload is quieter than the
  /// gate). bench_diff.py widens the row's threshold to this value, so a
  /// noisy workload's own variance never reads as a regression.
  double noise_margin = 0.0;
};

LinearRule TC(const char* edge) {
  std::string text = std::string("p(X,Y) :- p(X,Z), ") + edge + "(Z,Y).";
  return *ParseLinearRule(text);
}

/// Times `r->reps` calls of `once` (after one untimed warmup) and fills
/// the row's timing fields. `once` executes the query, fills
/// r->derivations / r->result_size, and returns wall milliseconds.
void TimeInto(BenchResult* r, const std::function<double()>& once) {
  once();  // warmup: builds parameter-relation indexes, touches the pages
  double total = 0.0;
  double best = 1e300;
  for (int i = 0; i < r->reps; ++i) {
    double ms = once();
    total += ms;
    best = std::min(best, ms);
  }
  r->wall_ms_mean = total / r->reps;
  r->wall_ms_min = best;
  r->derivations_per_sec =
      r->wall_ms_mean > 0.0
          ? static_cast<double>(r->derivations) / (r->wall_ms_mean / 1000.0)
          : 0.0;
}

/// Times `reps` executions of `bound` and fills a BenchResult row. Each
/// repetition resets the engine stats so `derivations` is per-execution.
BenchResult Run(const std::string& workload, const std::string& strategy,
                int n, Engine& engine, const BoundQuery& bound, int workers,
                int reps) {
  BenchResult r;
  r.workload = workload;
  r.strategy = strategy;
  r.n = n;
  r.workers = workers;
  r.reps = reps;
  TimeInto(&r, [&]() -> double {
    engine.ResetStats();
    auto start = std::chrono::steady_clock::now();
    Result<QueryResult> out = engine.Execute(bound);
    auto end = std::chrono::steady_clock::now();
    if (!out.ok()) {
      std::fprintf(stderr, "FATAL %s/%s: %s\n", workload.c_str(),
                   strategy.c_str(), out.status().ToString().c_str());
      std::exit(1);
    }
    r.derivations = engine.stats().derivations;
    r.result_size = out->relation().size();
    return std::chrono::duration<double, std::milli>(end - start).count();
  });
  return r;
}

BenchResult RunQuery(const std::string& workload, int n, Engine& engine,
                     const Query& query, int reps) {
  Result<PreparedQuery> prepared = engine.Prepare(query);
  if (!prepared.ok()) {
    std::fprintf(stderr, "FATAL planning %s: %s\n", workload.c_str(),
                 prepared.status().ToString().c_str());
    std::exit(1);
  }
  BoundQuery bound = prepared->Bind();
  if (query.has_seed()) bound.BindSeed(query.shared_seed());
  return Run(workload, StrategyName(prepared->plan().strategy), n, engine,
             bound, prepared->plan().parallel_workers, reps);
}

/// Seed relation {(i,i) : i ∈ 0..n-1 step `stride`}.
Relation SelfLoops(int n, int stride) {
  Relation q(2);
  for (int i = 0; i < n; i += stride) q.Insert({i, i});
  return q;
}

/// Best-effort git revision: CI exports GITHUB_SHA; local runs shell out.
std::string GitSha() {
  if (const char* sha = std::getenv("GITHUB_SHA")) return sha;
  std::string out;
  if (std::FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      out = buf;
      while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.pop_back();
      }
    }
    ::pclose(p);
  }
  return out.empty() ? "unknown" : out;
}

std::string Compiler() {
#if defined(__clang_version__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

void WriteJson(const std::vector<BenchResult>& results, const char* path,
               std::size_t plan_cache_hits, std::size_t plan_cache_misses) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s for writing\n", path);
    std::exit(1);
  }
  // Plan-cache hit rate of the one-shot σ-sweep: N distinct selection
  // constants over one structure must be (N-1)/N hits — the digest
  // excludes the σ value. bench_diff.py gates an absolute drop, so a
  // planner change that re-keys plans on the value fails CI.
  const std::size_t lookups = plan_cache_hits + plan_cache_misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(plan_cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  std::fprintf(f, "{\n  \"schema\": \"linrec-bench-engine/v3\",\n");
  // single_core_host: on a 1-thread host every workers>1 row measures the
  // parallel machinery's overhead, not scaling — bench_diff.py skips those
  // comparisons when either side sets this.
  std::fprintf(f,
               "  \"meta\": {\"git_sha\": \"%s\", "
               "\"default_parallel_workers\": %d, "
               "\"hardware_concurrency\": %u, "
               "\"single_core_host\": %s, \"compiler\": \"%s\", "
               "\"plan_cache_hits\": %zu, \"plan_cache_misses\": %zu, "
               "\"plan_cache_hit_rate\": %.4f},\n",
               GitSha().c_str(), ResolveWorkers(0),
               std::thread::hardware_concurrency(),
               std::thread::hardware_concurrency() <= 1 ? "true" : "false",
               Compiler().c_str(), plan_cache_hits, plan_cache_misses,
               hit_rate);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"strategy\": \"%s\", \"n\": %d, "
        "\"workers\": %d, \"reps\": %d, \"wall_ms_mean\": %.3f, "
        "\"wall_ms_min\": %.3f, \"derivations\": %zu, "
        "\"derivations_per_sec\": %.1f, \"result_size\": %zu, "
        "\"noise_margin\": %.2f}%s\n",
        r.workload.c_str(), r.strategy.c_str(), r.n, r.workers, r.reps,
        r.wall_ms_mean, r.wall_ms_min, r.derivations, r.derivations_per_sec,
        r.result_size, r.noise_margin, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  std::vector<BenchResult> results;

  // --- Transitive closure over a chain: deep recursion, no duplicates. ---
  // Parallel semi-naive sweep: the same query at 1, 4 and 8 workers — the
  // single-rule (one-group) case that only intra-round Δ partitioning can
  // parallelize.
  {
    const int n = 512;
    for (int workers : {1, 4, 8}) {
      Database db;
      db.GetOrCreate("e", 2) = ChainGraph(n);
      EngineOptions options;
      options.parallel_workers = workers;
      Engine engine(std::move(db), options);
      Query q = Query::Closure({TC("e")}).From(SelfLoops(n, 1));
      results.push_back(RunQuery("tc_chain", n, engine, q, 3));
    }
    // Naive is O(rounds × full relation): keep it small.
    Database db2;
    db2.GetOrCreate("e", 2) = ChainGraph(96);
    EngineOptions serial;
    serial.parallel_workers = 1;
    Engine engine2(std::move(db2), serial);
    Query naive_small =
        Query::Closure({TC("e")}).From(SelfLoops(96, 1)).Force(
            Strategy::kNaive);
    results.push_back(RunQuery("tc_chain", 96, engine2, naive_small, 3));
  }

  // --- Governed transitive closure: tc_chain with a (never-denying)
  // memory budget attached, so the row-by-row diff against tc_chain — and
  // the bench_diff gate once this row has a baseline — bounds the cost of
  // budget accounting. Charging happens only at pool-growth/rehash sites,
  // so the expected overhead is noise-level. ---
  {
    const int n = 512;
    for (int workers : {1, 4, 8}) {
      Database db;
      db.GetOrCreate("e", 2) = ChainGraph(n);
      EngineOptions options;
      options.parallel_workers = workers;
      Engine engine(std::move(db), options);
      Query q = Query::Closure({TC("e")}).From(SelfLoops(n, 1));
      Result<PreparedQuery> prepared = engine.Prepare(q);
      if (!prepared.ok()) {
        std::fprintf(stderr, "FATAL planning governed_tc_chain: %s\n",
                     prepared.status().ToString().c_str());
        std::exit(1);
      }
      MemoryBudget global(/*limit_bytes=*/std::size_t{1} << 40);
      QueryBudget budget(/*limit_bytes=*/std::size_t{1} << 40, &global);
      BoundQuery bound =
          prepared->Bind().BindSeed(q.shared_seed()).WithBudget(&budget);
      results.push_back(Run("governed_tc_chain",
                            StrategyName(prepared->plan().strategy), n,
                            engine, bound,
                            prepared->plan().parallel_workers, 3));
    }
  }

  // --- Transitive closure over a random sparse graph. ---
  {
    const int n = 1024;
    for (int workers : {1, 4, 8}) {
      Database db;
      db.GetOrCreate("e", 2) = RandomGraph(n, n * 3, /*seed=*/17);
      EngineOptions options;
      options.parallel_workers = workers;
      Engine engine(std::move(db), options);
      Query q = Query::Closure({TC("e")}).From(SelfLoops(n, 8));
      results.push_back(RunQuery("tc_random", n, engine, q, 3));
      // The random-graph closure is the suite's noisiest workload:
      // identical binaries have measured 0.54-1.0x run to run (dedup-heavy
      // rounds, allocator- and cache-layout-sensitive). Let the diff gate
      // at the measured spread instead of crying wolf at the default 20%.
      results.back().noise_margin = 0.50;
    }
  }

  // --- Transitive closure over a grid: duplicate derivations dominate. ---
  {
    const int side = 14;
    Database db;
    db.GetOrCreate("e", 2) = GridGraph(side, side);
    EngineOptions serial;
    serial.parallel_workers = 1;
    Engine engine(std::move(db), serial);
    Query q = Query::Closure({TC("e")}).From(SelfLoops(side * side, 1));
    results.push_back(RunQuery("tc_grid", side, engine, q, 3));
  }

  // --- Mutual recursion: alternating-edge reachability, the joint SCC
  // fixpoint (one Δ row-range per member predicate). ---
  {
    const int nodes = 96;
    Result<JointWorkload> w =
        MakeAlternatingReachability(nodes, nodes * 4, /*seed=*/29);
    if (!w.ok()) {
      std::fprintf(stderr, "FATAL mutual workload: %s\n",
                   w.status().ToString().c_str());
      std::exit(1);
    }
    EngineOptions serial;
    serial.parallel_workers = 1;
    Engine engine(std::move(w->db), serial);
    Query query =
        Query::JointClosure(w->members, w->rules).FromSeeds(w->seeds);
    Result<PreparedQuery> prepared = engine.Prepare(query);
    if (!prepared.ok()) {
      std::fprintf(stderr, "FATAL planning mutual_alt_reach: %s\n",
                   prepared.status().ToString().c_str());
      std::exit(1);
    }
    BoundQuery bound = prepared->Bind().BindSeeds(w->seeds);
    BenchResult r;
    r.workload = "mutual_alt_reach";
    r.strategy = StrategyName(prepared->plan().strategy);
    r.n = nodes;
    r.workers = prepared->plan().parallel_workers;
    r.reps = 3;
    TimeInto(&r, [&]() -> double {
      engine.ResetStats();
      auto start = std::chrono::steady_clock::now();
      Result<QueryResult> out = engine.Execute(bound);
      auto end = std::chrono::steady_clock::now();
      if (!out.ok()) {
        std::fprintf(stderr, "FATAL mutual_alt_reach: %s\n",
                     out.status().ToString().c_str());
        std::exit(1);
      }
      r.derivations = engine.stats().derivations;
      r.result_size = 0;
      for (const Relation& rel : out->relations) r.result_size += rel.size();
      return std::chrono::duration<double, std::milli>(end - start).count();
    });
    results.push_back(r);
  }

  // --- Same-generation pair: the planner decomposes into B*C* (Thm 3.1). ---
  {
    const int width = 48;
    SameGenerationWorkload w =
        MakeSameGeneration(/*layers=*/6, width, /*fanout=*/2, /*seed=*/99);
    EngineOptions serial;
    serial.parallel_workers = 1;
    Engine engine(std::move(w.db), serial);
    Relation seed = w.q;
    Query auto_q = Query::Closure(SameGenerationRules()).From(seed);
    results.push_back(
        RunQuery("same_gen_decomposed", width, engine, auto_q, 3));
    Query direct = Query::Closure(SameGenerationRules())
                       .From(seed)
                       .Force(Strategy::kSemiNaive);
    results.push_back(RunQuery("same_gen_direct", width, engine, direct, 3));
  }

  // --- The full serving path: LOAD + query through the linrecd front
  // door (src/server). Every rep is a fresh session against one shared
  // Server, so after the first rep the program is a registry hit and the
  // closure a plan-cache hit — the row tracks the per-connection cost a
  // warmed server pays: parse, seed, closure, goal filter, and reply
  // formatting. Gated by bench_diff.py like every other workload. ---
  {
    const int n = 160;
    std::string program =
        "tc(X, Y) :- edge(X, Y).\n"
        "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";
    for (int i = 1; i < n; ++i) {
      program += StrCat("edge(", i, ", ", i + 1, ").\n");
    }
    Server server;
    BenchResult r;
    r.workload = "server_tc_chain";
    r.strategy = "served";
    r.n = n;
    r.workers = 1;
    r.reps = 3;
    std::size_t result_rows = 0;
    TimeInto(&r, [&]() -> double {
      auto session = server.NewSession();
      std::vector<std::string> replies;
      auto start = std::chrono::steady_clock::now();
      server.HandleLine(*session, "LOAD", &replies);
      server.HandleLine(*session, program, &replies);
      server.HandleLine(*session, "END", &replies);
      server.SubmitQueryLines(*session, {"?- tc(X, Y)."}, &replies);
      auto end = std::chrono::steady_clock::now();
      if (replies.size() < 3 || replies[0].rfind("OK loaded", 0) != 0 ||
          replies[1].rfind("RESULT tc/2", 0) != 0) {
        std::fprintf(stderr, "FATAL server_tc_chain: %s\n",
                     replies.empty() ? "no reply" : replies.front().c_str());
        std::exit(1);
      }
      r.derivations = session->instance().derivations();
      result_rows = replies.size() - 3;  // minus OK, RESULT header, "."
      return std::chrono::duration<double, std::milli>(end - start).count();
    });
    r.result_size = result_rows;
    results.push_back(r);
  }

  // --- update_stream: incremental view maintenance vs recompute on a
  // live insert stream. One materialized tc closure over a random base
  // graph; kBatches batches of fresh edges arrive; the ivm_apply row
  // extends the view in place with Engine::Apply (delta rules + the
  // semi-naive resume), the recompute row re-executes the full closure
  // after every batch. derivations := maintained tuples — the rows the
  // stream added to the view, identical for both strategies by
  // construction — so derivations_per_sec is maintained-tuples/sec and
  // the ivm_apply : recompute ratio is the IVM speedup the acceptance
  // bar gates (>= 5x). Setup (engine, base materialization) is untimed:
  // the rows measure steady-state update cost only. ---
  {
    const int nodes = 192;
    const int kBatches = 8;
    const int kBatchEdges = 12;
    const Relation stream = RandomGraph(
        nodes, nodes * 3 + kBatches * kBatchEdges, /*seed=*/33);
    Relation base(2);
    std::vector<Relation> batches(kBatches, Relation(2));
    {
      const std::size_t base_count =
          stream.size() -
          static_cast<std::size_t>(kBatches) * kBatchEdges;
      std::size_t i = 0;
      for (TupleView t : stream) {
        if (i < base_count) {
          base.Insert(t);
        } else {
          batches[(i - base_count) / kBatchEdges].Insert(t);
        }
        ++i;
      }
    }
    const Relation seed = SelfLoops(nodes, 1);
    EngineOptions serial;
    serial.parallel_workers = 1;

    std::size_t maintained = 0;  // filled by ivm_apply, reused by recompute

    {
      BenchResult r;
      r.workload = "update_stream";
      r.strategy = "ivm_apply";
      r.n = nodes;
      r.workers = 1;
      r.reps = 5;
      std::size_t view_rows = 0;
      TimeInto(&r, [&]() -> double {
        Database db;
        db.GetOrCreate("e", 2) = base;
        Engine engine(std::move(db), serial);
        Result<PreparedQuery> prepared =
            engine.Prepare(Query::Closure({TC("e")}));
        if (!prepared.ok()) {
          std::fprintf(stderr, "FATAL planning update_stream: %s\n",
                       prepared.status().ToString().c_str());
          std::exit(1);
        }
        Result<MaterializedView> view =
            engine.Materialize(prepared->Bind().BindSeed(seed), {"tc"});
        if (!view.ok()) {
          std::fprintf(stderr, "FATAL materializing update_stream: %s\n",
                       view.status().ToString().c_str());
          std::exit(1);
        }
        std::size_t added = 0;
        auto start = std::chrono::steady_clock::now();
        for (const Relation& batch : batches) {
          DeltaInsert delta;
          delta.param_inserts.emplace("e", batch);
          Result<ApplyOutcome> out = engine.Apply(*view, delta);
          if (!out.ok()) {
            std::fprintf(stderr, "FATAL update_stream apply: %s\n",
                         out.status().ToString().c_str());
            std::exit(1);
          }
          added += out->added;
        }
        auto end = std::chrono::steady_clock::now();
        maintained = added;
        r.derivations = added;
        view_rows = engine.db().Find("tc")->size();
        return std::chrono::duration<double, std::milli>(end - start)
            .count();
      });
      r.result_size = view_rows;
      // Measured: ~5 ms walls on the single-core record host swing well
      // past the default 20% gate run-to-run (within-run mean/min spread
      // alone is ~30%); same widened margin as tc_random.
      r.noise_margin = 0.50;
      results.push_back(r);
    }

    {
      BenchResult r;
      r.workload = "update_stream";
      r.strategy = "recompute";
      r.n = nodes;
      r.workers = 1;
      r.reps = 3;
      std::size_t view_rows = 0;
      TimeInto(&r, [&]() -> double {
        Database db;
        db.GetOrCreate("e", 2) = base;
        Engine engine(std::move(db), serial);
        Result<PreparedQuery> prepared =
            engine.Prepare(Query::Closure({TC("e")}));
        if (!prepared.ok()) {
          std::fprintf(stderr, "FATAL planning update_stream: %s\n",
                       prepared.status().ToString().c_str());
          std::exit(1);
        }
        // The non-incremental consumer still pays the baseline closure
        // before the stream starts; keep it untimed like Materialize.
        Result<QueryResult> baseline =
            engine.Execute(prepared->Bind().BindSeed(seed));
        if (!baseline.ok()) {
          std::fprintf(stderr, "FATAL update_stream baseline: %s\n",
                       baseline.status().ToString().c_str());
          std::exit(1);
        }
        auto start = std::chrono::steady_clock::now();
        for (const Relation& batch : batches) {
          engine.db().FindMutable("e")->UnionWith(batch);
          Result<QueryResult> out =
              engine.Execute(prepared->Bind().BindSeed(seed));
          if (!out.ok()) {
            std::fprintf(stderr, "FATAL update_stream recompute: %s\n",
                         out.status().ToString().c_str());
            std::exit(1);
          }
          view_rows = out->relation().size();
        }
        auto end = std::chrono::steady_clock::now();
        r.derivations = maintained;
        return std::chrono::duration<double, std::milli>(end - start)
            .count();
      });
      r.result_size = view_rows;
      r.noise_margin = 0.50;
      results.push_back(r);
    }
  }

  // --- scan_sigma: the σ columnar-scan kernel in isolation, SIMD vs the
  // scalar reference (Relation::WhereEquals vs WhereEqualsScalar — in a
  // -DLINREC_SIMD=OFF build both rows run the scalar kernel and the ratio
  // is 1). Arity-2 pool, 1/64 selectivity so the strided count + mask
  // passes dominate the matched-row copies. derivations := rows scanned by
  // the count pass, so derivations/sec is scan throughput and the
  // SIMD/scalar row ratio is the kernel speedup the acceptance bar gates.
  {
    const int n = 1 << 16;
    const int inner = 32;  // scans per timed repetition
    Relation rel(2);
    for (int i = 0; i < n; ++i) rel.Insert({i & 63, i});
    const Value needle = 7;
    auto scan_row = [&](const char* strategy, bool simd_kernel) {
      BenchResult r;
      r.workload = "scan_sigma";
      r.strategy = strategy;
      r.n = n;
      r.workers = 1;
      r.reps = 5;
      TimeInto(&r, [&]() -> double {
        auto start = std::chrono::steady_clock::now();
        std::size_t hits = 0;
        for (int it = 0; it < inner; ++it) {
          Relation out = simd_kernel ? rel.WhereEquals(0, needle)
                                     : rel.WhereEqualsScalar(0, needle);
          hits += out.size();
        }
        auto end = std::chrono::steady_clock::now();
        r.derivations = static_cast<std::size_t>(n) * inner;
        r.result_size = hits / inner;
        return std::chrono::duration<double, std::milli>(end - start)
            .count();
      });
      results.push_back(r);
    };
    scan_row("simd", true);
    scan_row("scalar", false);
  }

  // --- probe_chain: the join cursor's probe pipeline in isolation — one
  // semi-naive-style round (RunPartition over the full Δ) of
  // p(X,Y) :- p(X,Z), e(Z,Y) against a random graph, repeated on a warmed
  // CompiledRule + IndexCache with the output pool Clear()ed between
  // rounds (steady-state: zero allocations, all time in probes and
  // emits). derivations counts body matches, as everywhere else. ---
  {
    const int nodes = 4096;
    Database db;
    db.GetOrCreate("e", 2) = RandomGraph(nodes, nodes * 4, /*seed=*/7);
    Relation delta = RandomGraph(nodes, nodes * 4, /*seed=*/7);
    LinearRule lr = TC("e");
    ApplyOptions options;
    options.overrides[lr.recursive_atom_index()] = &delta;
    options.first_atom = lr.recursive_atom_index();
    Result<CompiledRule> compiled = CompileRule(lr.rule(), db, options);
    if (!compiled.ok()) {
      std::fprintf(stderr, "FATAL compiling probe_chain: %s\n",
                   compiled.status().ToString().c_str());
      std::exit(1);
    }
    IndexCache cache;
    Relation out(2);
    const int inner = 16;  // rounds per timed repetition
    BenchResult r;
    r.workload = "probe_chain";
    r.strategy = "kernel";
    r.n = nodes;
    r.workers = 1;
    r.reps = 5;
    TimeInto(&r, [&]() -> double {
      ClosureStats stats;
      auto start = std::chrono::steady_clock::now();
      for (int it = 0; it < inner; ++it) {
        out.Clear();
        Status s = compiled->RunPartition(
            delta.View(0, static_cast<RowId>(delta.size())), &out, &stats,
            &cache);
        if (!s.ok()) {
          std::fprintf(stderr, "FATAL probe_chain: %s\n",
                       s.ToString().c_str());
          std::exit(1);
        }
      }
      auto end = std::chrono::steady_clock::now();
      r.derivations = stats.derivations;
      r.result_size = out.size();
      return std::chrono::duration<double, std::milli>(end - start).count();
    });
    results.push_back(r);
  }

  // --- σ-sweep over one prepared plan: N selection constants against the
  // separable same-generation query. Three calling conventions on the same
  // work: the one-shot API (Plan + Execute per constant — each a plan-cache
  // hit after the first, since the digest excludes the σ value), the
  // prepared API run serially (plan once, bind N times), and the prepared
  // API batched onto the shared worker pool (queries concurrent, rounds
  // serial, one shared read-side IndexCache). The one-shot engine's
  // hit/miss counters feed the JSON meta block: a planner change that
  // leaks the σ value back into the digest collapses the hit rate, which
  // bench_diff.py gates. ---
  std::size_t sweep_cache_hits = 0;
  std::size_t sweep_cache_misses = 0;
  {
    const int width = 32;
    const int sweep = 48;
    SameGenerationWorkload w =
        MakeSameGeneration(/*layers=*/7, width, /*fanout=*/2, /*seed=*/77);
    // The first `sweep` seed nodes are the selection constants.
    std::vector<Value> constants;
    for (const Tuple& t : w.q.Sorted()) {
      constants.push_back(t[0]);
      if (static_cast<int>(constants.size()) == sweep) break;
    }
    const Selection sigma0{0, 0};  // position fixed; value swept

    EngineOptions serial;
    serial.parallel_workers = 1;
    Engine one_shot(w.db, serial);
    auto one_shot_seed = std::make_shared<const Relation>(w.q);
    {
      BenchResult r;
      r.workload = "batch_sigma_sweep";
      r.strategy = "one_shot";
      r.n = sweep;
      r.workers = 1;
      r.reps = 3;
      TimeInto(&r, [&]() -> double {
        one_shot.ResetStats();
        auto start = std::chrono::steady_clock::now();
        std::size_t total = 0;
        for (Value v : constants) {
          Result<PreparedQuery> prepared =
              one_shot.Prepare(Query::Closure(SameGenerationRules())
                                   .Select(Selection{sigma0.position, v}));
          if (!prepared.ok()) {
            std::fprintf(stderr, "FATAL batch_sigma_sweep/one_shot: %s\n",
                         prepared.status().ToString().c_str());
            std::exit(1);
          }
          Result<QueryResult> out =
              one_shot.Execute(prepared->Bind().BindSeed(one_shot_seed));
          if (!out.ok()) {
            std::fprintf(stderr, "FATAL batch_sigma_sweep/one_shot: %s\n",
                         out.status().ToString().c_str());
            std::exit(1);
          }
          total += out->relation().size();
        }
        auto end = std::chrono::steady_clock::now();
        r.derivations = one_shot.stats().derivations;
        r.result_size = total;
        return std::chrono::duration<double, std::milli>(end - start)
            .count();
      });
      results.push_back(r);
    }
    sweep_cache_hits = one_shot.plan_cache_hits();
    sweep_cache_misses = one_shot.plan_cache_misses();

    auto sweep_prepared = [&](Engine& engine, const char* strategy,
                              int workers, bool batched) {
      Result<PreparedQuery> prepared =
          engine.Prepare(Query::Closure(SameGenerationRules())
                             .SelectPosition(sigma0.position));
      if (!prepared.ok()) {
        std::fprintf(stderr, "FATAL preparing batch_sigma_sweep: %s\n",
                     prepared.status().ToString().c_str());
        std::exit(1);
      }
      auto seed = std::make_shared<const Relation>(w.q);
      std::vector<BoundQuery> batch;
      for (Value v : constants) {
        batch.push_back(prepared->Bind(v).BindSeed(seed));
      }
      BenchResult r;
      r.workload = "batch_sigma_sweep";
      r.strategy = strategy;
      r.n = sweep;
      r.workers = workers;
      r.reps = 3;
      TimeInto(&r, [&]() -> double {
        engine.ResetStats();
        auto start = std::chrono::steady_clock::now();
        std::size_t total = 0;
        if (batched) {
          Result<std::vector<QueryResult>> out = engine.ExecuteBatch(batch);
          if (!out.ok()) {
            std::fprintf(stderr, "FATAL batch_sigma_sweep/%s: %s\n",
                         strategy, out.status().ToString().c_str());
            std::exit(1);
          }
          for (const QueryResult& qr : *out) total += qr.relation().size();
        } else {
          for (const BoundQuery& bound : batch) {
            Result<QueryResult> out = engine.Execute(bound);
            if (!out.ok()) {
              std::fprintf(stderr, "FATAL batch_sigma_sweep/%s: %s\n",
                           strategy, out.status().ToString().c_str());
              std::exit(1);
            }
            total += out->relation().size();
          }
        }
        auto end = std::chrono::steady_clock::now();
        r.derivations = engine.stats().derivations;
        r.result_size = total;
        return std::chrono::duration<double, std::milli>(end - start)
            .count();
      });
      results.push_back(r);
    };

    Engine prepared_serial(w.db, serial);
    sweep_prepared(prepared_serial, "prepared_serial", 1, false);
    EngineOptions batched_options;
    batched_options.parallel_workers = 8;
    Engine prepared_batch(std::move(w.db), batched_options);
    sweep_prepared(prepared_batch, "prepared_batch", 8, true);
  }

  WriteJson(results, out_path, sweep_cache_hits, sweep_cache_misses);
  std::printf("%-22s %-12s %6s %3s %12s %12s %16s %12s\n", "workload",
              "strategy", "n", "w", "wall_ms", "wall_ms_min", "derivs/sec",
              "result");
  for (const BenchResult& r : results) {
    std::printf("%-22s %-12s %6d %3d %12.3f %12.3f %16.1f %12zu\n",
                r.workload.c_str(), r.strategy.c_str(), r.n, r.workers,
                r.wall_ms_mean, r.wall_ms_min, r.derivations_per_sec,
                r.result_size);
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace linrec

int main(int argc, char** argv) { return linrec::Main(argc, argv); }
