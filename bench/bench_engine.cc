// E7 — engine baseline (Section 2 substrate): semi-naive vs naive fixpoint
// on transitive closure. Both must produce identical relations; naive
// rederives the whole relation each round. Driven through linrec::Engine
// with forced strategies (kNaive is never chosen automatically).

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "engine/engine.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule TC() { return *ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y)."); }

Engine ChainEngine(int n) {
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(n);
  return Engine(std::move(db));
}

/// Executes `plan` once per benchmark iteration with fresh stats.
void RunLoop(benchmark::State& state, Engine& engine,
             const ExecutionPlan& plan) {
  for (auto _ : state) {
    engine.ResetStats();
    auto out = engine.Execute(plan);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(out);
  }
}

void RunForced(benchmark::State& state, Engine& engine, const Relation& q,
               Strategy strategy) {
  auto plan =
      engine.Plan(Query::Closure({TC()}).From(q).Force(strategy));
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  RunLoop(state, engine, *plan);
  state.counters["derivations"] =
      static_cast<double>(engine.stats().derivations);
  state.counters["iterations"] =
      static_cast<double>(engine.stats().iterations);
}

void BM_SemiNaive_Chain(benchmark::State& state) {
  Engine engine = ChainEngine(static_cast<int>(state.range(0)));
  Relation q(2);
  q.Insert({0, 0});
  RunForced(state, engine, q, Strategy::kSemiNaive);
}

void BM_Naive_Chain(benchmark::State& state) {
  Engine engine = ChainEngine(static_cast<int>(state.range(0)));
  Relation q(2);
  q.Insert({0, 0});
  RunForced(state, engine, q, Strategy::kNaive);
}

void BM_SemiNaive_Random(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(n, n * 3, 17);
  Engine engine(std::move(db));
  Relation q(2);
  for (int i = 0; i < n; i += 8) q.Insert({i, i});
  auto plan = engine.Plan(
      Query::Closure({TC()}).From(q).Force(Strategy::kSemiNaive));
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  RunLoop(state, engine, *plan);
  state.counters["result"] = static_cast<double>(engine.stats().result_size);
}

void BM_GridClosure(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  Database db;
  db.GetOrCreate("e", 2) = GridGraph(side, side);
  Engine engine(std::move(db));
  Relation q(2);
  q.Insert({0, 0});
  auto plan = engine.Plan(Query::Closure({TC()}).From(q));
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  RunLoop(state, engine, *plan);
  // Grids have many parallel paths: duplicates dominate (cf. [1] in the
  // paper: duplicate elimination often dominates recursive computations).
  state.counters["duplicates"] =
      static_cast<double>(engine.stats().duplicates);
}

BENCHMARK(BM_SemiNaive_Chain)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Naive_Chain)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SemiNaive_Random)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GridClosure)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
