// E7 — engine baseline (Section 2 substrate): semi-naive vs naive fixpoint
// on transitive closure. Both must produce identical relations; naive
// rederives the whole relation each round.

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

struct Fixture {
  LinearRule rule;
  Database db;
  Relation q{2};
};

Fixture ChainFixture(int n) {
  Fixture f{*ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y)."), {}, Relation(2)};
  f.db.GetOrCreate("e", 2) = ChainGraph(n);
  f.q.Insert({0, 0});
  return f;
}

Fixture RandomFixture(int n) {
  Fixture f{*ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y)."), {}, Relation(2)};
  f.db.GetOrCreate("e", 2) = RandomGraph(n, n * 3, 17);
  for (int i = 0; i < n; i += 8) f.q.Insert({i, i});
  return f;
}

void BM_SemiNaive_Chain(benchmark::State& state) {
  Fixture f = ChainFixture(static_cast<int>(state.range(0)));
  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out = SemiNaiveClosure({f.rule}, f.db, f.q, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["derivations"] = static_cast<double>(stats.derivations);
  state.counters["iterations"] = static_cast<double>(stats.iterations);
}

void BM_Naive_Chain(benchmark::State& state) {
  Fixture f = ChainFixture(static_cast<int>(state.range(0)));
  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out = NaiveClosure({f.rule}, f.db, f.q, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["derivations"] = static_cast<double>(stats.derivations);
  state.counters["iterations"] = static_cast<double>(stats.iterations);
}

void BM_SemiNaive_Random(benchmark::State& state) {
  Fixture f = RandomFixture(static_cast<int>(state.range(0)));
  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out = SemiNaiveClosure({f.rule}, f.db, f.q, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["result"] = static_cast<double>(stats.result_size);
}

void BM_GridClosure(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  Fixture f{*ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y)."), {}, Relation(2)};
  f.db.GetOrCreate("e", 2) = GridGraph(side, side);
  f.q.Insert({0, 0});
  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out = SemiNaiveClosure({f.rule}, f.db, f.q, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  // Grids have many parallel paths: duplicates dominate (cf. [1] in the
  // paper: duplicate elimination often dominates recursive computations).
  state.counters["duplicates"] = static_cast<double>(stats.duplicates);
}

BENCHMARK(BM_SemiNaive_Chain)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Naive_Chain)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SemiNaive_Random)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GridClosure)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
