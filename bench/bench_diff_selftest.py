#!/usr/bin/env python3
"""Self-test for bench_diff.py: exercises the gate's decision logic on
synthetic records — the default threshold, the per-row noise_margin
widening, single-core-host parallel-row skipping, and the hit-rate gate —
by invoking bench_diff.py as a subprocess exactly the way CI does.

Run: bench_diff_selftest.py (no arguments; registered as a ctest target).
Exit status: 0 = all cases behave, 1 = some case failed.
"""

import json
import os
import subprocess
import sys
import tempfile

BENCH_DIFF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "bench_diff.py")


def record(rows, meta=None):
    doc = {"schema": "linrec-bench-engine/v3", "results": rows}
    if meta is not None:
        doc["meta"] = meta
    return doc


def row(workload, dps, workers=1, noise_margin=None, strategy="semi_naive",
        n=100):
    r = {"workload": workload, "strategy": strategy, "n": n,
         "workers": workers, "reps": 3, "wall_ms_mean": 1.0,
         "wall_ms_min": 1.0, "derivations": 1000,
         "derivations_per_sec": dps, "result_size": 10}
    if noise_margin is not None:
        r["noise_margin"] = noise_margin
    return r


def run_diff(prev, curr, extra_args=()):
    with tempfile.TemporaryDirectory() as d:
        p = os.path.join(d, "prev.json")
        c = os.path.join(d, "curr.json")
        with open(p, "w") as f:
            json.dump(prev, f)
        with open(c, "w") as f:
            json.dump(curr, f)
        proc = subprocess.run(
            [sys.executable, BENCH_DIFF, p, c, *extra_args],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []

    def case(name, got_rc, want_rc, output):
        if got_rc != want_rc:
            failures.append(
                f"{name}: exit {got_rc}, wanted {want_rc}\n{output}")

    # Steady throughput passes.
    rc, out = run_diff(record([row("tc_chain", 1000.0)]),
                       record([row("tc_chain", 990.0)]))
    case("steady passes", rc, 0, out)

    # A 30% drop fails the default 20% gate.
    rc, out = run_diff(record([row("tc_chain", 1000.0)]),
                       record([row("tc_chain", 700.0)]))
    case("30% drop fails default gate", rc, 1, out)

    # The same 30% drop passes when the row declares a 50% noise margin —
    # on either side of the comparison.
    rc, out = run_diff(
        record([row("tc_random", 1000.0, noise_margin=0.50)]),
        record([row("tc_random", 700.0, noise_margin=0.50)]))
    case("noise_margin widens gate (both sides)", rc, 0, out)
    rc, out = run_diff(
        record([row("tc_random", 1000.0)]),  # old record predates the field
        record([row("tc_random", 700.0, noise_margin=0.50)]))
    case("noise_margin widens gate (new side only)", rc, 0, out)

    # A drop past even the declared margin still fails.
    rc, out = run_diff(
        record([row("tc_random", 1000.0, noise_margin=0.50)]),
        record([row("tc_random", 400.0, noise_margin=0.50)]))
    case("60% drop fails 50% margin", rc, 1, out)

    # noise_margin never *tightens* below the CLI threshold.
    rc, out = run_diff(
        record([row("tc_chain", 1000.0, noise_margin=0.05)]),
        record([row("tc_chain", 850.0, noise_margin=0.05)]))
    case("margin below CLI threshold is ignored", rc, 0, out)

    # Parallel rows are skipped (not gated) when a single-core host
    # produced either record.
    rc, out = run_diff(
        record([row("tc_chain", 1000.0, workers=4)],
               meta={"single_core_host": True}),
        record([row("tc_chain", 100.0, workers=4)],
               meta={"single_core_host": False}))
    case("single-core host skips parallel rows", rc, 0, out)

    # Hit-rate collapse fails regardless of row throughput.
    rc, out = run_diff(
        record([row("tc_chain", 1000.0)],
               meta={"plan_cache_hit_rate": 0.99}),
        record([row("tc_chain", 1000.0)],
               meta={"plan_cache_hit_rate": 0.10}))
    case("hit-rate collapse fails", rc, 1, out)

    if failures:
        print("bench_diff self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench_diff self-test OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
