#!/usr/bin/env python3
"""Bench regression gate: fail when derivations/sec drops too far.

Usage: bench_diff.py PREVIOUS.json CURRENT.json [--max-drop 0.20]

Compares BENCH_engine.json records row by row. Rows are keyed on
(workload, strategy, n, workers); a key present in only one file is
reported but never fails the gate (workloads get added and renamed — the
gate exists to catch regressions on work both records measured). `workers`
participates in the key only when both records carry it, so a v1 record
(pre-workers schema) still gates the overlapping rows of a v2 record.

Exit status: 0 = no regression beyond the threshold, 1 = regression,
2 = usage/parse error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = doc.get("results", [])
    if not isinstance(rows, list):
        print(f"bench_diff: {path} has no results list", file=sys.stderr)
        sys.exit(2)
    return doc, rows


def key_of(row, with_workers):
    key = (row.get("workload"), row.get("strategy"), row.get("n"))
    if with_workers:
        key += (row.get("workers"),)
    return key


def index_rows(rows, with_workers):
    """Keys rows for comparison.

    When `workers` is excluded from the key (one record predates it),
    several worker-variant rows can collide on one key; keep the serial
    (workers == 1 or absent) row — serial-to-serial is the comparison the
    old record actually measured — rather than whichever happened last.
    """
    table = {}
    for row in rows:
        key = key_of(row, with_workers)
        if key in table and row.get("workers", 1) != 1:
            continue
        table[key] = row
    return table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop in derivations_per_sec "
        "(default 0.20 = 20%%)",
    )
    args = parser.parse_args()

    prev_doc, prev_rows = load(args.previous)
    curr_doc, curr_rows = load(args.current)

    # `workers` joins the key only when both schemas record it.
    with_workers = all(
        "workers" in row for row in prev_rows + curr_rows
    ) and bool(prev_rows) and bool(curr_rows)

    prev = index_rows(prev_rows, with_workers)
    curr = index_rows(curr_rows, with_workers)

    header = f"{'workload':<24} {'strategy':<12} {'n':>6} {'prev d/s':>14} {'curr d/s':>14} {'ratio':>7}"
    print(header)
    print("-" * len(header))

    failures = []
    for key in sorted(prev, key=str):
        if key not in curr:
            print(f"SKIP {key}: missing from current record")
            continue
        p = prev[key].get("derivations_per_sec", 0.0)
        c = curr[key].get("derivations_per_sec", 0.0)
        if p <= 0:
            print(f"SKIP {key}: previous throughput is zero")
            continue
        ratio = c / p
        name = f"{key[0]:<24} {key[1]:<12} {key[2]:>6}"
        flag = ""
        if ratio < 1.0 - args.max_drop:
            flag = "  << REGRESSION"
            failures.append((key, p, c, ratio))
        print(f"{name} {p:>14.1f} {c:>14.1f} {ratio:>6.2f}x{flag}")
    for key in sorted(curr, key=str):
        if key not in prev:
            print(f"NEW  {key}: no previous record")

    if failures:
        print(
            f"\nFAIL: {len(failures)} workload(s) dropped more than "
            f"{args.max_drop:.0%} in derivations_per_sec:",
            file=sys.stderr,
        )
        for key, p, c, ratio in failures:
            print(f"  {key}: {p:.1f} -> {c:.1f} ({ratio:.2f}x)",
                  file=sys.stderr)
        return 1
    print("\nOK: no workload regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
