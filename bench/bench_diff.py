#!/usr/bin/env python3
"""Bench regression gate: fail when derivations/sec drops too far.

Usage: bench_diff.py PREVIOUS.json CURRENT.json [--max-drop 0.20]

Compares BENCH_engine.json records row by row. Rows are keyed on
(workload, strategy, n, workers); a key present in only one file is
reported but never fails the gate (workloads get added and renamed — the
gate exists to catch regressions on work both records measured). `workers`
participates in the key only when both records carry it, so a v1 record
(pre-workers schema) still gates the overlapping rows of a v2 record.

When either record's `meta` block carries `single_core_host: true`
(emitted since PR 8 when `hardware_concurrency == 1`), rows with
workers > 1 are skipped instead of gated: on a one-thread host those rows
measure the parallel machinery's overhead, not scaling, and their
run-to-run noise would gate nothing meaningful.

A row may carry `noise_margin` (fractional, e.g. 0.50): the workload's
measured same-binary run-to-run spread, stamped by bench_engine where it
exceeds the default gate (tc_random's random-graph closure has been
observed at 0.54-1.0x across identical binaries). The effective threshold
for a row is max(--max-drop, either side's noise_margin) — the gate never
tightens below the CLI threshold, and a workload's own noise never reads
as a regression.

Besides the per-row throughput gate, the `meta` block's
`plan_cache_hit_rate` (the one-shot σ-sweep's hits / lookups; present
since schema v3) is gated when both records carry it: the sweep runs N
distinct selection constants over one query structure, so the rate must
stay near (N-1)/N — a planner change that keys plans on the σ value again
collapses it to ~0, which fails the gate (--max-hit-rate-drop, absolute).

Exit status: 0 = no regression beyond the threshold, 1 = regression,
2 = usage/parse error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = doc.get("results", [])
    if not isinstance(rows, list):
        print(f"bench_diff: {path} has no results list", file=sys.stderr)
        sys.exit(2)
    return doc, rows


def key_of(row, with_workers):
    key = (row.get("workload"), row.get("strategy"), row.get("n"))
    if with_workers:
        key += (row.get("workers"),)
    return key


def index_rows(rows, with_workers):
    """Keys rows for comparison.

    When `workers` is excluded from the key (one record predates it),
    several worker-variant rows can collide on one key; keep the serial
    (workers == 1 or absent) row — serial-to-serial is the comparison the
    old record actually measured — rather than whichever happened last.
    """
    table = {}
    for row in rows:
        key = key_of(row, with_workers)
        if key in table and row.get("workers", 1) != 1:
            continue
        table[key] = row
    return table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop in derivations_per_sec "
        "(default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--max-hit-rate-drop",
        type=float,
        default=0.25,
        help="maximum tolerated absolute drop in the meta block's "
        "plan_cache_hit_rate (default 0.25)",
    )
    args = parser.parse_args()

    prev_doc, prev_rows = load(args.previous)
    curr_doc, curr_rows = load(args.current)

    # `workers` joins the key only when both schemas record it.
    with_workers = all(
        "workers" in row for row in prev_rows + curr_rows
    ) and bool(prev_rows) and bool(curr_rows)

    prev = index_rows(prev_rows, with_workers)
    curr = index_rows(curr_rows, with_workers)

    # Parallel rows are meaningless noise on a one-thread host (either
    # side: a record from such a host measured overhead, not scaling).
    skip_parallel = bool(
        (prev_doc.get("meta") or {}).get("single_core_host")
        or (curr_doc.get("meta") or {}).get("single_core_host")
    )

    header = f"{'workload':<24} {'strategy':<12} {'n':>6} {'prev d/s':>14} {'curr d/s':>14} {'ratio':>7}"
    print(header)
    print("-" * len(header))

    failures = []
    for key in sorted(prev, key=str):
        if key not in curr:
            print(f"SKIP {key}: missing from current record")
            continue
        if skip_parallel and prev[key].get("workers", 1) > 1:
            print(f"SKIP {key}: workers>1 on a single-core host")
            continue
        p = prev[key].get("derivations_per_sec", 0.0)
        c = curr[key].get("derivations_per_sec", 0.0)
        if p <= 0:
            print(f"SKIP {key}: previous throughput is zero")
            continue
        ratio = c / p
        # Widest declared noise margin from either side, floored at the
        # CLI threshold: a workload's own measured spread never gates.
        max_drop = max(
            args.max_drop,
            float(prev[key].get("noise_margin", 0.0) or 0.0),
            float(curr[key].get("noise_margin", 0.0) or 0.0),
        )
        name = f"{key[0]:<24} {key[1]:<12} {key[2]:>6}"
        flag = ""
        if ratio < 1.0 - max_drop:
            flag = "  << REGRESSION"
            failures.append((key, p, c, ratio, max_drop))
        elif max_drop > args.max_drop:
            flag = f"  (noise margin {max_drop:.0%})"
        print(f"{name} {p:>14.1f} {c:>14.1f} {ratio:>6.2f}x{flag}")
    for key in sorted(curr, key=str):
        if key not in prev:
            print(f"NEW  {key}: no previous record")

    # Planner observability gate: absolute plan-cache hit-rate drop (only
    # when both records carry the metric — v2 and older have no meta rate).
    prev_rate = (prev_doc.get("meta") or {}).get("plan_cache_hit_rate")
    curr_rate = (curr_doc.get("meta") or {}).get("plan_cache_hit_rate")
    hit_rate_failure = None
    if isinstance(prev_rate, (int, float)) and isinstance(
        curr_rate, (int, float)
    ):
        drop = prev_rate - curr_rate
        flag = ""
        if drop > args.max_hit_rate_drop:
            flag = "  << REGRESSION"
            hit_rate_failure = (prev_rate, curr_rate, drop)
        print(
            f"\nplan_cache_hit_rate: {prev_rate:.4f} -> {curr_rate:.4f}"
            f"{flag}"
        )

    if hit_rate_failure:
        prev_rate, curr_rate, drop = hit_rate_failure
        print(
            f"\nFAIL: meta plan_cache_hit_rate dropped {drop:.2f} "
            f"(absolute), more than {args.max_hit_rate_drop:.2f}: "
            f"{prev_rate:.4f} -> {curr_rate:.4f} — the planner is "
            f"re-planning structures it should serve from the cache "
            f"(σ value back in the digest?)",
            file=sys.stderr,
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} workload(s) dropped beyond their "
            f"threshold in derivations_per_sec:",
            file=sys.stderr,
        )
        for key, p, c, ratio, max_drop in failures:
            print(
                f"  {key}: {p:.1f} -> {c:.1f} ({ratio:.2f}x, "
                f"threshold {max_drop:.0%})",
                file=sys.stderr)
        return 1
    if hit_rate_failure:
        return 1
    print("\nOK: no workload regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
