// E2 — Section 3.1: the decomposed computation B*C* is cheaper in wall time
// than the direct (B+C)*, with the gap growing with data size. Driven
// through linrec::Engine: the planner discovers the split by itself
// (Plan() picks kDecomposed from the cached commutativity matrix), and the
// compiled plan is reused across iterations.

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "engine/engine.h"
#include "workload/databases.h"

namespace linrec {
namespace {

SameGenerationWorkload MakeWorkload(int width) {
  return MakeSameGeneration(/*layers=*/6, width, /*fanout=*/2, /*seed=*/99);
}

void BM_Direct(benchmark::State& state) {
  SameGenerationWorkload w = MakeWorkload(static_cast<int>(state.range(0)));
  Engine engine(std::move(w.db));
  auto prepared = engine.Prepare(
      Query::Closure(SameGenerationRules()).Force(Strategy::kSemiNaive));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  BoundQuery bound = prepared->Bind().BindSeed(w.q);
  std::size_t result = 0;
  for (auto _ : state) {
    auto out = engine.Execute(bound);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    result = out->relation().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["result"] = static_cast<double>(result);
}

void BM_Decomposed(benchmark::State& state) {
  SameGenerationWorkload w = MakeWorkload(static_cast<int>(state.range(0)));
  Engine engine(std::move(w.db));
  // Automatic planning: the analysis finds the commuting split.
  auto prepared = engine.Prepare(Query::Closure(SameGenerationRules()));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  if (prepared->plan().strategy != Strategy::kDecomposed) {
    state.SkipWithError("planner did not choose kDecomposed");
    return;
  }
  BoundQuery bound = prepared->Bind().BindSeed(w.q);
  std::size_t result = 0;
  for (auto _ : state) {
    auto out = engine.Execute(bound);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      break;
    }
    result = out->relation().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["result"] = static_cast<double>(result);
}

void BM_PlannedEndToEnd(benchmark::State& state) {
  // Prepare + Bind + Execute each iteration (the seed is shared, not
  // copied). After the first iteration the structural digest hits the plan
  // cache, so this measures the warm re-preparation overhead the facade
  // adds per query.
  SameGenerationWorkload w = MakeWorkload(static_cast<int>(state.range(0)));
  Engine engine(std::move(w.db));
  Query query = Query::Closure(SameGenerationRules());
  auto seed = std::make_shared<const Relation>(std::move(w.q));
  for (auto _ : state) {
    auto prepared = engine.Prepare(query);
    if (!prepared.ok()) {
      state.SkipWithError(prepared.status().ToString().c_str());
      break;
    }
    auto out = engine.Execute(prepared->Bind().BindSeed(seed));
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["pair_cache"] =
      static_cast<double>(engine.analysis_cache().pair_entries());
}

void BM_ColdPlan(benchmark::State& state) {
  // Planning only, from a cold cache: the pairwise syntactic tests plus
  // boundedness/redundancy probes. The one-off cost the engine pays before
  // its first execution of a rule set.
  Relation q(2);
  q.Insert({0, 0});
  std::vector<LinearRule> rules = SameGenerationRules();
  for (auto _ : state) {
    Engine engine;
    auto plan = engine.Plan(Query::Closure(rules).From(q));
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
}

BENCHMARK(BM_Direct)->Arg(8)->Arg(16)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decomposed)->Arg(8)->Arg(16)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlannedEndToEnd)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdPlan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
