// E2 — Section 3.1: the decomposed computation B*C* is cheaper in wall time
// than the direct (B+C)*, with the gap growing with data size. Also
// exercises the planner: PlanDecomposition discovers the split by itself.

#include <benchmark/benchmark.h>

#include "algebra/closure.h"
#include "algebra/plan.h"
#include "datalog/parser.h"
#include "workload/databases.h"

namespace linrec {
namespace {

struct Fixture {
  std::vector<LinearRule> rules;
  SameGenerationWorkload w;
};

Fixture MakeFixture(int width) {
  return Fixture{{*ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y)."),
                  *ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).")},
                 MakeSameGeneration(/*layers=*/6, width, /*fanout=*/2,
                                    /*seed=*/99)};
}

void BM_Direct(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  std::size_t result = 0;
  for (auto _ : state) {
    auto out = DirectClosure(f.rules, f.w.db, f.w.q);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    result = out->size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["result"] = static_cast<double>(result);
}

void BM_Decomposed(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  std::size_t result = 0;
  for (auto _ : state) {
    auto out = DecomposedClosure({{f.rules[0]}, {f.rules[1]}}, f.w.db, f.w.q);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    result = out->size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["result"] = static_cast<double>(result);
}

void BM_PlannedEndToEnd(benchmark::State& state) {
  // Includes the pairwise commutativity tests in the measured time: the
  // planning overhead is a one-off O(a log a) cost per pair.
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto plan = PlanDecomposition(f.rules);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    auto out = EvaluateWithPlan(f.rules, *plan, f.w.db, f.w.q);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

BENCHMARK(BM_Direct)->Arg(8)->Arg(16)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decomposed)->Arg(8)->Arg(16)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlannedEndToEnd)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
