// E3 — Theorem 4.1 / Algorithm 4.1: for commuting operators and a
// commuting selection, σ(A1+A2)* can be computed as A1*(A2*(σq)) with the
// selection pushed to the initial relation. The win grows with the domain
// size (the full closure touches everything; the pushed-down one only the
// selected cone) and shrinks as selectivity approaches 1.

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "separability/algorithm.h"
#include "workload/databases.h"

namespace linrec {
namespace {

struct Fixture {
  LinearRule r1;
  LinearRule r2;
  SameGenerationWorkload w;
  Selection sigma;
};

Fixture MakeFixture(int width) {
  Fixture f{*ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y)."),
            *ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U)."),
            MakeSameGeneration(/*layers=*/6, width, /*fanout=*/2, /*seed=*/5),
            {}};
  // Select one seed node on position 0 (1-persistent in r1).
  f.sigma = Selection{0, f.w.q.Sorted().front()[0]};
  return f;
}

void BM_ClosureThenSelect(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out = ClosureThenSelect({f.r1}, {f.r2}, f.sigma, f.w.db, f.w.q,
                                 &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["derivations"] = static_cast<double>(stats.derivations);
}

void BM_SeparableAlgorithm(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  ClosureStats stats;
  for (auto _ : state) {
    stats = ClosureStats();
    auto out =
        SeparableClosure({f.r1}, {f.r2}, f.sigma, f.w.db, f.w.q, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["derivations"] = static_cast<double>(stats.derivations);
}

// Selectivity sweep: fraction of seed nodes matching σ, emulated by seeding
// q with `range(1)` copies of the selected head value.
void BM_SeparableSelectivity(benchmark::State& state) {
  int width = 32;
  int matching = static_cast<int>(state.range(0));
  LinearRule r1 = *ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = *ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w = MakeSameGeneration(6, width, 2, 7);
  // Rewrite q so `matching` of the seeds share the selected key.
  Relation q(2);
  Value key = 1'000'000;
  int i = 0;
  for (const Tuple& t : w.q.Sorted()) {
    q.Insert({i < matching ? key : t[0], t[1]});
    ++i;
  }
  Selection sigma{0, key};
  for (auto _ : state) {
    auto out = SeparableClosure({r1}, {r2}, sigma, w.db, q);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["matching_seeds"] = matching;
}

BENCHMARK(BM_ClosureThenSelect)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SeparableAlgorithm)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SeparableSelectivity)->Arg(1)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
