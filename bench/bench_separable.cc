// E3 — Theorem 4.1 / Algorithm 4.1: for commuting operators and a
// commuting selection, σ(A1+A2)* can be computed as A1*(A2*(σq)) with the
// selection pushed to the initial relation. The win grows with the domain
// size (the full closure touches everything; the pushed-down one only the
// selected cone) and shrinks as selectivity approaches 1. Driven through
// linrec::Engine: the planner detects the 1-persistent selected column and
// compiles kSeparable by itself; the baseline forces semi-naive, which
// filters the final closure.

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "engine/engine.h"
#include "workload/databases.h"

namespace linrec {
namespace {

struct Fixture {
  SameGenerationWorkload w;
  Selection sigma;
};

Fixture MakeFixture(int width) {
  Fixture f{MakeSameGeneration(/*layers=*/6, width, /*fanout=*/2,
                               /*seed=*/5),
            {}};
  // Select one seed node on position 0 (1-persistent in the down rule).
  f.sigma = Selection{0, f.w.q.Sorted().front()[0]};
  return f;
}

void RunBound(benchmark::State& state, const BoundQuery& bound,
              Engine& engine) {
  for (auto _ : state) {
    engine.ResetStats();
    auto out = engine.Execute(bound);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["derivations"] =
      static_cast<double>(engine.stats().derivations);
}

void BM_ClosureThenSelect(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  Engine engine(std::move(f.w.db));
  auto prepared = engine.Prepare(Query::Closure(SameGenerationRules())
                                     .Select(f.sigma)
                                     .Force(Strategy::kSemiNaive));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  RunBound(state, prepared->Bind().BindSeed(f.w.q), engine);
}

void BM_SeparableAlgorithm(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  Engine engine(std::move(f.w.db));
  auto prepared = engine.Prepare(
      Query::Closure(SameGenerationRules()).Select(f.sigma));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  if (prepared->plan().strategy != Strategy::kSeparable) {
    state.SkipWithError("planner did not choose kSeparable");
    return;
  }
  RunBound(state, prepared->Bind().BindSeed(f.w.q), engine);
}

// Selectivity sweep: fraction of seed nodes matching σ, emulated by seeding
// q with `range(0)` copies of the selected head value.
void BM_SeparableSelectivity(benchmark::State& state) {
  int width = 32;
  int matching = static_cast<int>(state.range(0));
  SameGenerationWorkload w = MakeSameGeneration(6, width, 2, 7);
  // Rewrite q so `matching` of the seeds share the selected key.
  Relation q(2);
  Value key = 1'000'000;
  int i = 0;
  for (const Tuple& t : w.q.Sorted()) {
    q.Insert({i < matching ? key : t[0], t[1]});
    ++i;
  }
  Selection sigma{0, key};
  Engine engine(std::move(w.db));
  auto prepared =
      engine.Prepare(Query::Closure(SameGenerationRules()).Select(sigma));
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  BoundQuery bound = prepared->Bind().BindSeed(q);
  for (auto _ : state) {
    auto out = engine.Execute(bound);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["matching_seeds"] = matching;
}

BENCHMARK(BM_ClosureThenSelect)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SeparableAlgorithm)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SeparableSelectivity)->Arg(1)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
