#!/usr/bin/env bash
# Smoke test for the linrecd socket front: start the daemon on an
# ephemeral port, drive a transitive-closure workload over TCP from two
# clients (second LOAD must be a program-registry hit), then SHUTDOWN and
# assert a clean exit.
#
# Usage: bench/linrecd_smoke.sh [path/to/linrecd]

set -euo pipefail

LINRECD="${1:-build/tools/linrecd}"
if [ ! -x "$LINRECD" ]; then
  echo "FAIL: $LINRECD not found or not executable" >&2
  exit 1
fi

WORKDIR="$(mktemp -d)"
SERVER_LOG="$WORKDIR/server.log"
trap 'kill "$SERVER_PID" ${FAULT_PID:-} 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

"$LINRECD" --port 0 >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Wait for the LISTENING line (the daemon prints it once bound).
PORT=""
for _ in $(seq 1 50); do
  PORT="$(awk '/^LISTENING /{print $2; exit}' "$SERVER_LOG" 2>/dev/null || true)"
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: linrecd died before listening:" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "FAIL: no LISTENING line within 5s" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
echo "linrecd listening on port $PORT"

# One TCP client: LOAD the chain-of-5 TC program, run point and full
# queries, check STATS. `?- tc(1, Y).` has 4 answers; tc has 10 rows.
tcp_client() {
  python3 - "$PORT" <<'PY'
import socket, sys

port = int(sys.argv[1])
script = (
    "PING\n"
    "LOAD\n"
    "edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).\n"
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
    "END\n"
    "?- tc(1, Y).\n"
    "?- tc(X, Y).\n"
    "STATS\n"
    "QUIT\n"
)
s = socket.create_connection(("127.0.0.1", port), timeout=10)
s.sendall(script.encode())
data = b""
while b"OK bye\n" not in data:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
reply = data.decode()
for needle in ("OK pong", "OK loaded rules=2 facts=4 queries=0",
               "RESULT tc/2 rows=4 truncated=0",
               "RESULT tc/2 rows=10 truncated=0", "OK stats", "OK bye"):
    if needle not in reply:
        sys.exit(f"FAIL: missing {needle!r} in reply:\n{reply}")
print(reply, end="")
PY
}

echo "--- client 1 (compiles the program) ---"
tcp_client
echo "--- client 2 (must hit the program registry) ---"
OUT2="$(tcp_client)"
echo "$OUT2"
if ! grep -q "program_hits=1" <<<"$OUT2"; then
  echo "FAIL: second LOAD was not a program-registry hit" >&2
  exit 1
fi

# SHUTDOWN from a third connection; daemon must exit 0 by itself.
python3 - "$PORT" <<'PY'
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
s.sendall(b"SHUTDOWN\n")
data = b""
while b"OK shutdown\n" not in data:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
if b"OK shutdown" not in data:
    sys.exit("FAIL: no OK shutdown reply")
PY

shutdown_daemon() {
  # SHUTDOWN the daemon on $1 and wait for a clean exit of pid $2.
  python3 - "$1" <<'PY'
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
s.sendall(b"SHUTDOWN\n")
data = b""
while b"OK shutdown\n" not in data:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
PY
  local code=0
  for _ in $(seq 1 50); do
    if ! kill -0 "$2" 2>/dev/null; then
      wait "$2" || code=$?
      break
    fi
    sleep 0.1
  done
  if kill -0 "$2" 2>/dev/null; then
    echo "FAIL: daemon still running 5s after SHUTDOWN" >&2
    return 1
  fi
  return "$code"
}

start_daemon() {
  # Start linrecd with extra flags ($@); sets FAULT_PID and FPORT globals.
  local log="$1"
  shift
  "$LINRECD" --port 0 "$@" >"$log" 2>&1 &
  FAULT_PID=$!
  FPORT=""
  for _ in $(seq 1 50); do
    FPORT="$(awk '/^LISTENING /{print $2; exit}' "$log" 2>/dev/null || true)"
    [ -n "$FPORT" ] && break
    if ! kill -0 "$FAULT_PID" 2>/dev/null; then
      echo "FAIL: daemon died before listening:" >&2
      cat "$log" >&2
      return 1
    fi
    sleep 0.1
  done
  if [ -z "$FPORT" ]; then
    echo "FAIL: no LISTENING line within 5s" >&2
    cat "$log" >&2
    return 1
  fi
}

EXIT_CODE=0
for _ in $(seq 1 50); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID" || EXIT_CODE=$?
    break
  fi
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "FAIL: linrecd still running 5s after SHUTDOWN" >&2
  exit 1
fi
if [ "$EXIT_CODE" -ne 0 ]; then
  echo "FAIL: linrecd exited with $EXIT_CODE" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
if ! grep -q "SHUTDOWN complete" "$SERVER_LOG"; then
  echo "FAIL: no 'SHUTDOWN complete' in server log" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
echo "PASS: linrecd smoke (port $PORT, clean shutdown)"

# --- fault pass 1: injected socket-write failure -------------------------
# The first reply write drops the connection (as if the peer vanished);
# the daemon must survive and serve the next client normally.
echo "--- fault pass: socket_write:1 ---"
FAULT_LOG="$WORKDIR/fault_socket.log"
start_daemon "$FAULT_LOG" --fault socket_write:1
python3 - "$FPORT" <<'PY'
import socket, sys
port = int(sys.argv[1])
# Victim: the injected fault eats its reply; connection just closes.
s = socket.create_connection(("127.0.0.1", port), timeout=10)
s.sendall(b"PING\n")
data = b""
try:
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        data += chunk
except socket.timeout:
    sys.exit("FAIL: victim connection hung instead of closing")
s.close()
if b"OK pong" in data:
    sys.exit("FAIL: injected socket fault never fired")
# Survivor: daemon still serves after dropping the victim.
s = socket.create_connection(("127.0.0.1", port), timeout=10)
s.sendall(b"PING\nQUIT\n")
data = b""
while b"OK bye\n" not in data:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
if b"OK pong" not in data:
    sys.exit(f"FAIL: daemon did not serve after socket fault:\n{data!r}")
print("socket-write fault: victim dropped, daemon survived")
PY
shutdown_daemon "$FPORT" "$FAULT_PID" || { cat "$FAULT_LOG" >&2; exit 1; }

# --- fault pass 2: allocation failure under a tiny query budget ----------
# A 1-byte per-query budget refuses the first pool growth, aborting the
# closure with a typed error; the same session then lifts its budget and
# the query succeeds — no daemon restart needed.
echo "--- fault pass: query memory budget ---"
FAULT_LOG="$WORKDIR/fault_budget.log"
start_daemon "$FAULT_LOG" --query-memory-budget 1
python3 - "$FPORT" <<'PY'
import socket, sys
port = int(sys.argv[1])
script = (
    "LOAD\n"
    "edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).\n"
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
    "END\n"
    "?- tc(X, Y).\n"
    "SET memory_budget 0\n"
    "?- tc(X, Y).\n"
    "QUIT\n"
)
s = socket.create_connection(("127.0.0.1", port), timeout=10)
s.sendall(script.encode())
data = b""
while b"OK bye\n" not in data:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
reply = data.decode()
for needle in ("ERR ResourceExhausted",
               "OK set memory_budget=0",
               "RESULT tc/2 rows=10 truncated=0"):
    if needle not in reply:
        sys.exit(f"FAIL: missing {needle!r} in reply:\n{reply}")
print("budget fault: typed ERR ResourceExhausted, recovery without restart")
PY
shutdown_daemon "$FPORT" "$FAULT_PID" || { cat "$FAULT_LOG" >&2; exit 1; }

# --- fault pass 3: mid-Apply abort during incremental maintenance --------
# An injected fault inside Engine::Apply aborts the first INSERT after the
# view is materialized. The view must roll back to its exact pre-INSERT
# bytes (same rows, same order), and the retried INSERT (fault now spent)
# must extend it incrementally — no daemon restart, no recompute.
echo "--- fault pass: ivm_apply:1 ---"
FAULT_LOG="$WORKDIR/fault_ivm.log"
start_daemon "$FAULT_LOG" --fault ivm_apply:1
python3 - "$FPORT" <<'PY'
import socket, sys
port = int(sys.argv[1])
script = (
    "LOAD\n"
    "edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).\n"
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
    "END\n"
    "?- tc(X, Y).\n"
    "INSERT edge(5, 6).\n"
    "?- tc(X, Y).\n"
    "INSERT edge(5, 6).\n"
    "?- tc(X, Y).\n"
    "STATS\n"
    "QUIT\n"
)
s = socket.create_connection(("127.0.0.1", port), timeout=10)
s.sendall(script.encode())
data = b""
while b"OK bye\n" not in data:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
reply = data.decode()
lines = reply.splitlines()
blocks = []
for i, line in enumerate(lines):
    if line.startswith("RESULT "):
        j = i + 1
        while j < len(lines) and lines[j] != ".":
            j += 1
        blocks.append(lines[i:j])
if len(blocks) != 3:
    sys.exit(f"FAIL: expected 3 RESULT blocks, got {len(blocks)}:\n{reply}")
if blocks[0][0] != "RESULT tc/2 rows=10 truncated=0":
    sys.exit(f"FAIL: unexpected first block header {blocks[0][0]!r}")
if "ERR Internal" not in reply or "ivm_apply" not in reply:
    sys.exit(f"FAIL: injected ivm_apply fault never surfaced:\n{reply}")
if blocks[1] != blocks[0]:
    sys.exit("FAIL: view not byte-identical after aborted INSERT:\n"
             + "\n".join(blocks[0]) + "\n--- vs ---\n" + "\n".join(blocks[1]))
if "OK insert applied=1 views=1 added=5" not in reply:
    sys.exit(f"FAIL: retried INSERT did not extend the view:\n{reply}")
if blocks[2][0] != "RESULT tc/2 rows=15 truncated=0":
    sys.exit(f"FAIL: unexpected final block header {blocks[2][0]!r}")
if "ivm_applied=1" not in reply:
    sys.exit(f"FAIL: STATS missing ivm_applied=1:\n{reply}")
print("ivm_apply fault: aborted INSERT rolled back byte-identical, "
      "retry extended the view")
PY
shutdown_daemon "$FPORT" "$FAULT_PID" || { cat "$FAULT_LOG" >&2; exit 1; }

echo "PASS: linrecd fault-injection smoke"
