#!/usr/bin/env bash
# Smoke test for the linrecd socket front: start the daemon on an
# ephemeral port, drive a transitive-closure workload over TCP from two
# clients (second LOAD must be a program-registry hit), then SHUTDOWN and
# assert a clean exit.
#
# Usage: bench/linrecd_smoke.sh [path/to/linrecd]

set -euo pipefail

LINRECD="${1:-build/tools/linrecd}"
if [ ! -x "$LINRECD" ]; then
  echo "FAIL: $LINRECD not found or not executable" >&2
  exit 1
fi

WORKDIR="$(mktemp -d)"
SERVER_LOG="$WORKDIR/server.log"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

"$LINRECD" --port 0 >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Wait for the LISTENING line (the daemon prints it once bound).
PORT=""
for _ in $(seq 1 50); do
  PORT="$(awk '/^LISTENING /{print $2; exit}' "$SERVER_LOG" 2>/dev/null || true)"
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: linrecd died before listening:" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "FAIL: no LISTENING line within 5s" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
echo "linrecd listening on port $PORT"

# One TCP client: LOAD the chain-of-5 TC program, run point and full
# queries, check STATS. `?- tc(1, Y).` has 4 answers; tc has 10 rows.
tcp_client() {
  python3 - "$PORT" <<'PY'
import socket, sys

port = int(sys.argv[1])
script = (
    "PING\n"
    "LOAD\n"
    "edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).\n"
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
    "END\n"
    "?- tc(1, Y).\n"
    "?- tc(X, Y).\n"
    "STATS\n"
    "QUIT\n"
)
s = socket.create_connection(("127.0.0.1", port), timeout=10)
s.sendall(script.encode())
data = b""
while b"OK bye\n" not in data:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
reply = data.decode()
for needle in ("OK pong", "OK loaded rules=2 facts=4 queries=0",
               "RESULT tc/2 rows=4 truncated=0",
               "RESULT tc/2 rows=10 truncated=0", "OK stats", "OK bye"):
    if needle not in reply:
        sys.exit(f"FAIL: missing {needle!r} in reply:\n{reply}")
print(reply, end="")
PY
}

echo "--- client 1 (compiles the program) ---"
tcp_client
echo "--- client 2 (must hit the program registry) ---"
OUT2="$(tcp_client)"
echo "$OUT2"
if ! grep -q "program_hits=1" <<<"$OUT2"; then
  echo "FAIL: second LOAD was not a program-registry hit" >&2
  exit 1
fi

# SHUTDOWN from a third connection; daemon must exit 0 by itself.
python3 - "$PORT" <<'PY'
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
s.sendall(b"SHUTDOWN\n")
data = b""
while b"OK shutdown\n" not in data:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
if b"OK shutdown" not in data:
    sys.exit("FAIL: no OK shutdown reply")
PY

EXIT_CODE=0
for _ in $(seq 1 50); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID" || EXIT_CODE=$?
    break
  fi
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "FAIL: linrecd still running 5s after SHUTDOWN" >&2
  exit 1
fi
if [ "$EXIT_CODE" -ne 0 ]; then
  echo "FAIL: linrecd exited with $EXIT_CODE" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
if ! grep -q "SHUTDOWN complete" "$SERVER_LOG"; then
  echo "FAIL: no 'SHUTDOWN complete' in server log" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
echo "PASS: linrecd smoke (port $PORT, clean shutdown)"
