// E6 — Lemmas 5.3/5.4: α-graph construction plus bridge identification is
// O(n + e), and restricted-class equivalence is O(a log a). Measured over
// generated rules of growing arity.

#include <benchmark/benchmark.h>

#include "analysis/narrow_wide.h"
#include "analysis/rule_analysis.h"
#include "cq/fast_equivalence.h"
#include "engine/engine.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

void BM_RuleAnalysis(benchmark::State& state) {
  auto pair = MakeRestrictedCommutingPair(static_cast<int>(state.range(0)));
  if (!pair.ok()) {
    state.SkipWithError(pair.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto analysis = RuleAnalysis::Compute(pair->first);
    if (!analysis.ok()) {
      state.SkipWithError(analysis.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(analysis);
  }
  state.counters["a"] =
      static_cast<double>(pair->first.rule().TotalArgumentPositions());
}

void BM_FastEquivalence(benchmark::State& state) {
  auto p1 = MakeRestrictedCommutingPair(static_cast<int>(state.range(0)));
  auto p2 = MakeRestrictedCommutingPair(static_cast<int>(state.range(0)));
  if (!p1.ok() || !p2.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  for (auto _ : state) {
    auto verdict =
        FastEquivalenceDistinctPredicates(p1->first.rule(), p2->first.rule());
    if (!verdict.has_value() || !*verdict) {
      state.SkipWithError("expected equivalent rules");
    }
    benchmark::DoNotOptimize(verdict);
  }
}

void BM_NarrowRuleExtraction(benchmark::State& state) {
  auto pair = MakeRestrictedCommutingPair(static_cast<int>(state.range(0)));
  if (!pair.ok()) {
    state.SkipWithError(pair.status().ToString().c_str());
    return;
  }
  auto analysis = RuleAnalysis::Compute(pair->first);
  if (!analysis.ok()) {
    state.SkipWithError(analysis.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    for (const Bridge& b : analysis->commutativity_bridges()) {
      if (b.atom_indices.empty()) continue;
      auto narrow = MakeNarrowRule(*analysis, b);
      benchmark::DoNotOptimize(narrow);
    }
  }
  state.counters["bridges"] =
      static_cast<double>(analysis->commutativity_bridges().size());
}

void BM_EngineAnalyzeMemoized(benchmark::State& state) {
  // The engine's AnalysisCache: the first Analyze pays for classification
  // plus the budgeted searches, every later call is one hash lookup.
  auto pair = MakeRestrictedCommutingPair(static_cast<int>(state.range(0)));
  if (!pair.ok()) {
    state.SkipWithError(pair.status().ToString().c_str());
    return;
  }
  Engine engine;
  auto warm = engine.Analyze(pair->first);
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto info = engine.Analyze(pair->first);
    if (!info.ok()) state.SkipWithError(info.status().ToString().c_str());
    benchmark::DoNotOptimize(info);
  }
  state.counters["entries"] =
      static_cast<double>(engine.analysis_cache().rule_entries());
}

BENCHMARK(BM_RuleAnalysis)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(512);
BENCHMARK(BM_EngineAnalyzeMemoized)->Arg(2)->Arg(32)->Arg(128);
BENCHMARK(BM_FastEquivalence)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(512);
BENCHMARK(BM_NarrowRuleExtraction)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace linrec

BENCHMARK_MAIN();
