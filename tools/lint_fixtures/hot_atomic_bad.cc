// Fixture: an atomic claimed hot but not cache-line-isolated.
#include <atomic>
#include <cstddef>

namespace linrec {

struct Counters {
  std::atomic<std::size_t> next_chunk{0};  // lint: hot-atomic
  std::size_t limit = 0;
};

}  // namespace linrec
