// Fixture: includes the vector kernels from a TU that is not on the
// kernel whitelist (no per-TU -mavx2, so this reintroduces the ISA leak
// at the source level).
#include <cstddef>

#include "common/simd_kernels.h"

namespace linrec {
int Fixture() { return 0; }
}  // namespace linrec
