// Fixture: a well-behaved non-kernel TU — mentions simd_kernels.h only
// in this comment and includes the scalar fallbacks instead.
#include <cstddef>

#include "common/simd_scalar.h"

namespace linrec {
int Fixture() { return 0; }
}  // namespace linrec
