# Fixture CTestTestfile: registers alpha_test but not orphan_test.
add_test(alpha_test "/build/tests/alpha_test")
set_tests_properties(alpha_test PROPERTIES _BACKTRACE_TRIPLES "x")
