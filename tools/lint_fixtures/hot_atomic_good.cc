// Fixture: hot atomics done right — alignas(64) on the marker line and on
// a wrapped declaration (the lint joins up to three preceding lines).
#include <atomic>
#include <cstddef>

namespace linrec {

struct Counters {
  alignas(64) std::atomic<std::size_t> next_chunk{0};  // lint: hot-atomic
  alignas(64) std::atomic<std::size_t>
      charged{0};  // lint: hot-atomic
  std::size_t limit = 0;  // unmarked, unchecked
};

}  // namespace linrec
