#!/usr/bin/env python3
"""linrec repo-invariant linter.

Checks invariants the compiler cannot express and the test suite can only
probe dynamically, against the *built* tree (compile_commands.json + the
library's object files):

  isa-leak         AVX2 / widened-ISA instructions (any ymm/zmm register
                   use) may appear only in the whitelisted kernel TUs
                   (src/storage/relation.cc, src/eval/apply.cc get per-TU
                   -mavx2; everything else must stay baseline x86-64 so
                   LINREC_SIMD_AVX2=OFF builds run on pre-AVX2 hosts).
                   Inside the whitelisted objects, a *linrec-namespace*
                   weak (COMDAT) symbol may carry widened instructions
                   only if it is a declared `*Kernel*` member template:
                   the linker may hand a weak definition to other TUs'
                   callers, so our own API surface must not silently
                   export AVX2 code. Compiler-generated std:: COMDATs
                   (auto-vectorized std::vector members at -O3 and the
                   like) are exempt — with AVX2=ON the binary as a whole
                   targets AVX2 hosts (there is no runtime dispatch), so
                   an AVX2-compiled std instantiation winning the COMDAT
                   pick is ISA-consistent on every supported host.

  kernel-include   common/simd_kernels.h may be included only by the
                   whitelisted kernel TUs. The kernels assume they may be
                   compiled with a widened ISA; including them elsewhere
                   reintroduces the leak at the source level.

  hot-atomic       An atomic marked `// lint: hot-atomic` must be
                   alignas(64). The marker is the author's claim that the
                   atomic is hammered from multiple threads (work-stealing
                   counters, budget ledgers, the version stamp); the lint
                   makes "hot implies cache-line-isolated" permanent.

  kernel-alloc     Kernel-path TUs must not reference operator new (the
                   NO_ALLOC_TUS list) or std::function (NO_STD_FUNCTION_TUS)
                   symbols: an allocation or a type-erased indirect call
                   inside a scan/probe kernel is a per-row cost the
                   zero-alloc steady-state guarantee forbids.

  ctest-registration
                   Every tests/*_test.cc must be registered with ctest —
                   a test binary that builds but never runs is a silent
                   coverage hole.

Usage:
  linrec_lint.py --build-dir BUILD [--source-dir SRC]   lint the tree
  linrec_lint.py --self-test                            lint the linter

The self-test feeds one seeded violation per rule (fixture files under
tools/lint_fixtures/) plus a clean twin through the same check functions
the real run uses, and fails unless every seeded violation is caught and
no clean fixture is flagged.

Exit status: 0 = clean, 1 = violations (or self-test failure),
2 = usage/environment error.
"""

import argparse
import os
import re
import subprocess
import sys

# --- rule configuration ----------------------------------------------------

# TUs allowed to compile with the widened ISA and to include the vector
# kernels (CMakeLists.txt sets their per-source -mavx2; keep in sync).
KERNEL_TU_WHITELIST = [
    "src/storage/relation.cc",
    "src/eval/apply.cc",
]

# TUs whose objects must not reference the operator new family. These are
# the leaf kernels: pure loops over raw pointers, no setup phase.
NO_ALLOC_TUS = [
    "src/common/simd_scalar.cc",
]

# TUs whose objects must not reference std::function (type-erased calls
# have no place on the scan/probe path; the worker pool's std::function
# hand-off happens once per round in common/parallel.cc, which is not a
# kernel TU).
NO_STD_FUNCTION_TUS = [
    "src/common/simd_scalar.cc",
    "src/storage/relation.cc",
    "src/eval/apply.cc",
]

# Registers whose appearance marks a widened-ISA instruction. AVX (ymm)
# and AVX-512 (zmm) both count: the baseline the non-kernel TUs target is
# SSE2-era x86-64.
WIDE_REGISTER = re.compile(r"%[yz]mm\d+")

# The weak-symbol subcheck applies to our own API surface: weak (COMDAT)
# symbols in the linrec namespace. A linrec weak symbol carrying ymm/zmm
# must match WEAK_ISA_ALLOWED — the declared kernel entry points, which
# are member templates (hence COMDAT) and exist only behind the library's
# SIMD surface. Anything else in the namespace — a helper template, an
# inline function in a shared header — is a leak: the linker may hand
# that AVX2 copy to another TU's caller, silently widening a path the
# header promised was baseline. Weak symbols OUTSIDE the namespace
# (compiler-generated std:: instantiations) are governed by the
# binary-level ISA contract instead (see module docstring) and pass.
# "In the namespace" means the mangled name's outermost scope is linrec
# (_ZN6linrec / _ZNK6linrec / _ZZN6linrec for function-local statics) —
# NOT a std:: template merely instantiated with a linrec type argument
# (std::vector<const linrec::HashIndex*>::_M_fill_assign mangles with
# 6linrec in the middle but belongs to libstdc++'s surface, not ours).
WEAK_ISA_SCOPE = re.compile(r"^_ZZ?N[KVOR]*6linrec")
WEAK_ISA_ALLOWED = re.compile(r"6linrec.*Kernel")

# operator new / operator new[] (plus the aligned/nothrow variants, which
# also start _Znw/_Zna after the itanium prefix).
ALLOC_SYMBOL = re.compile(r"^_Zn[wa]")

# std::function<...> in itanium mangling: libstdc++ and libc++ spellings.
STD_FUNCTION_SYMBOL = re.compile(r"(St8functionI|NSt3__18functionI)")

# The one sanctioned std::function on a kernel TU's symbol list: the
# WorkerPool::Run hand-off (see common/parallel.h) — once per parallel
# phase, never per row. That shows up two ways: references to WorkerPool
# methods (std::function is in Run's mangled signature), and — in -O0
# builds, where nothing inlines away — the caller's own weak
# construct/destruct instantiations of the chunk-function type
# std::function<void(int, std::size_t)> (mangled St8functionIFvimEE).
# Any other std::function type still trips the rule.
STD_FUNCTION_ALLOWED = re.compile(
    r"(_ZN6linrec10WorkerPool|St8functionIFvimEE)")

HOT_ATOMIC_MARKER = "// lint: hot-atomic"


class Violation:
    def __init__(self, rule, where, message):
        self.rule = rule
        self.where = where
        self.message = message

    def __str__(self):
        return f"[{self.rule}] {self.where}: {self.message}"


# --- pure check functions (what the self-test exercises) -------------------


def check_isa_leak(disasm, tu, whitelisted, weak_symbols=frozenset()):
    """Scans one object's disassembly for widened-ISA register use.

    `disasm` is objdump -d output. Non-whitelisted TUs may not use
    ymm/zmm at all; whitelisted TUs may not use them inside weak (COMDAT)
    linrec-namespace functions other than the declared kernels — the
    linker could export those definitions to other TUs.
    """
    violations = []
    current_symbol = None
    symbol_line = re.compile(r"^[0-9a-fA-F]+ <(.+)>:$")
    for lineno, line in enumerate(disasm.splitlines(), 1):
        m = symbol_line.match(line.strip())
        if m:
            current_symbol = m.group(1)
            continue
        if not WIDE_REGISTER.search(line):
            continue
        if not whitelisted:
            violations.append(Violation(
                "isa-leak", f"{tu}:{lineno}",
                f"widened-ISA instruction outside the kernel whitelist "
                f"(in {current_symbol or '<unknown>'}): {line.strip()}"))
        elif (current_symbol in weak_symbols
              and WEAK_ISA_SCOPE.search(current_symbol)
              and not WEAK_ISA_ALLOWED.search(current_symbol)):
            violations.append(Violation(
                "isa-leak", f"{tu}:{lineno}",
                f"widened-ISA instruction in WEAK (COMDAT) linrec-"
                f"namespace function {current_symbol} — only declared "
                f"*Kernel* member templates may export AVX2 COMDAT "
                f"definitions the linker could hand to other TUs"))
    return violations


def check_kernel_include(source, path, whitelisted):
    """Flags #include of the vector kernels outside the whitelist."""
    if whitelisted:
        return []
    violations = []
    include = re.compile(r'^\s*#\s*include\s*[<"].*simd_kernels\.h[">]')
    for lineno, line in enumerate(source.splitlines(), 1):
        if include.match(line):
            violations.append(Violation(
                "kernel-include", f"{path}:{lineno}",
                "simd_kernels.h may only be included by the kernel TUs "
                f"({', '.join(KERNEL_TU_WHITELIST)}): they alone get the "
                "per-TU widened-ISA flags"))
    return violations


def check_hot_atomic(source, path):
    """A `// lint: hot-atomic` marker requires alignas(64) on the
    declaration (the marker line plus up to three preceding lines, since
    declarations wrap)."""
    violations = []
    lines = source.splitlines()
    for idx, line in enumerate(lines):
        if HOT_ATOMIC_MARKER not in line:
            continue
        window = " ".join(lines[max(0, idx - 3):idx + 1])
        if "alignas(64)" not in window:
            violations.append(Violation(
                "hot-atomic", f"{path}:{idx + 1}",
                "atomic marked hot-atomic lacks alignas(64): a contended "
                "atomic sharing its cache line false-shares every "
                "neighbour"))
    return violations


def check_symbols(symbols, tu, no_alloc, no_std_function):
    """Scans one object's symbol list (`nm` output lines) for forbidden
    references in kernel-path TUs."""
    violations = []
    for line in symbols.splitlines():
        parts = line.split()
        if not parts:
            continue
        name = parts[-1]
        if no_alloc and ALLOC_SYMBOL.search(name):
            violations.append(Violation(
                "kernel-alloc", tu,
                f"kernel-path TU references operator new ({name}); the "
                "scan kernels must not allocate"))
        if (no_std_function and STD_FUNCTION_SYMBOL.search(name)
                and not STD_FUNCTION_ALLOWED.search(name)):
            violations.append(Violation(
                "kernel-alloc", tu,
                f"kernel-path TU references std::function ({name}); "
                "type-erased calls are banned on the kernel path"))
    return violations


def check_ctest_registration(test_sources, ctest_file_text):
    """Every tests/*_test.cc must appear as an add_test registration."""
    registered = set(re.findall(r"add_test\(\s*(\w+)", ctest_file_text))
    violations = []
    for src in sorted(test_sources):
        name = os.path.splitext(os.path.basename(src))[0]
        if name not in registered:
            violations.append(Violation(
                "ctest-registration", src,
                f"test binary {name} is not registered with ctest: it "
                "builds but never runs"))
    return violations


# --- tree walking ----------------------------------------------------------


def run(cmd):
    try:
        out = subprocess.run(cmd, capture_output=True, text=True, check=True)
    except FileNotFoundError:
        print(f"linrec_lint: required tool missing: {cmd[0]}",
              file=sys.stderr)
        sys.exit(2)
    except subprocess.CalledProcessError as e:
        print(f"linrec_lint: {' '.join(cmd)} failed: {e.stderr.strip()}",
              file=sys.stderr)
        sys.exit(2)
    return out.stdout


def library_objects(build_dir):
    """Object files of the linrec library: TU path (src/...) -> object.

    CMake lays library objects out as
    <build>/CMakeFiles/linrec.dir/src/<path>.cc.o — the relative source
    path is recoverable from the object path, no compile_commands lookup
    needed (and it works for every generator).
    """
    objects = {}
    lib_dir = os.path.join(build_dir, "CMakeFiles", "linrec.dir")
    for root, _dirs, files in os.walk(lib_dir):
        for f in files:
            if not f.endswith(".o") and not f.endswith(".obj"):
                continue
            obj = os.path.join(root, f)
            rel = os.path.relpath(obj, lib_dir)
            tu = re.sub(r"\.(o|obj)$", "", rel)
            objects[tu] = obj
    return objects


def weak_function_symbols(obj):
    """Weak/unique defined symbols of one object (COMDAT candidates)."""
    out = run(["nm", "-C", "--defined-only", obj])
    weak = set()
    for line in out.splitlines():
        parts = line.split(None, 2)
        if len(parts) == 3 and parts[1] in ("W", "w", "V", "v", "u"):
            weak.add(parts[2])
    # nm -C demangles; objdump -d prints mangled names. Collect both.
    out_mangled = run(["nm", "--defined-only", obj])
    for line in out_mangled.splitlines():
        parts = line.split(None, 2)
        if len(parts) == 3 and parts[1] in ("W", "w", "V", "v", "u"):
            weak.add(parts[2])
    return weak


def source_files(source_dir):
    for sub in ("src", "tests", "bench", "tools", "examples"):
        base = os.path.join(source_dir, sub)
        for root, dirs, files in os.walk(base):
            # The fixtures carry seeded violations on purpose.
            dirs[:] = [d for d in dirs if d != "lint_fixtures"]
            for f in files:
                if f.endswith((".cc", ".h")):
                    yield os.path.join(root, f)


def lint_tree(build_dir, source_dir):
    violations = []

    # Source-level rules.
    whitelist_abs = {os.path.normpath(os.path.join(source_dir, p))
                     for p in KERNEL_TU_WHITELIST}
    for path in source_files(source_dir):
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"linrec_lint: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        rel = os.path.relpath(path, source_dir)
        whitelisted = os.path.normpath(path) in whitelist_abs
        violations += check_kernel_include(text, rel, whitelisted)
        violations += check_hot_atomic(text, rel)

    # Object-level rules.
    objects = library_objects(build_dir)
    if not objects:
        print(f"linrec_lint: no linrec library objects under {build_dir} "
              f"(build the library first)", file=sys.stderr)
        sys.exit(2)
    for tu, obj in sorted(objects.items()):
        whitelisted = tu in KERNEL_TU_WHITELIST
        disasm = run(["objdump", "-d", "--no-show-raw-insn", obj])
        weak = weak_function_symbols(obj) if whitelisted else frozenset()
        violations += check_isa_leak(disasm, tu, whitelisted, weak)
        no_alloc = tu in NO_ALLOC_TUS
        no_fn = tu in NO_STD_FUNCTION_TUS
        if no_alloc or no_fn:
            symbols = run(["nm", obj])
            violations += check_symbols(symbols, tu, no_alloc, no_fn)

    # ctest registration.
    tests_dir = os.path.join(source_dir, "tests")
    test_sources = [f for f in os.listdir(tests_dir)
                    if f.endswith("_test.cc")]
    ctest_file = os.path.join(build_dir, "tests", "CTestTestfile.cmake")
    if os.path.exists(ctest_file):
        with open(ctest_file, encoding="utf-8") as f:
            violations += check_ctest_registration(test_sources, f.read())
    else:
        print(f"linrec_lint: note: {ctest_file} not found "
              f"(tests disabled in this build?); skipping "
              f"ctest-registration", file=sys.stderr)

    return violations


# --- self-test -------------------------------------------------------------


def self_test(fixtures_dir):
    """Feeds seeded violations (and clean twins) through every check."""
    failures = []

    def fixture(name):
        path = os.path.join(fixtures_dir, name)
        with open(path, encoding="utf-8") as f:
            return f.read()

    def expect(rule, name, got, want_violation):
        if want_violation and not got:
            failures.append(f"{rule}: seeded violation in {name} NOT caught")
        if not want_violation and got:
            failures.append(
                f"{rule}: clean fixture {name} falsely flagged: "
                + "; ".join(str(v) for v in got))

    # isa-leak: ymm in a non-whitelisted TU / in a weak symbol of a
    # whitelisted TU; clean scalar disassembly passes both ways.
    bad = fixture("isa_leak_bad.disasm")
    good = fixture("isa_leak_good.disasm")
    expect("isa-leak", "isa_leak_bad.disasm",
           check_isa_leak(bad, "src/eval/selection.cc", False), True)
    expect("isa-leak", "isa_leak_bad.disasm (weak, whitelisted)",
           check_isa_leak(bad, "src/storage/relation.cc", True,
                          weak_symbols={"_ZN6linrec4WeakEv"}), True)
    expect("isa-leak", "isa_leak_good.disasm",
           check_isa_leak(good, "src/eval/selection.cc", False), False)
    expect("isa-leak", "isa_leak_bad.disasm (whitelisted, non-weak)",
           check_isa_leak(bad, "src/storage/relation.cc", True,
                          weak_symbols=frozenset()), False)
    # A weak symbol matching the declared-kernel pattern is the sanctioned
    # COMDAT case (member-template kernels declared in the header).
    kernel_weak = fixture("isa_leak_weak_kernel.disasm")
    expect("isa-leak", "isa_leak_weak_kernel.disasm (allowed pattern)",
           check_isa_leak(
               kernel_weak, "src/storage/relation.cc", True,
               weak_symbols={
                   "_ZNK6linrec8Relation17WhereEqualsKernelILb0EEES0_il"}),
           False)
    # A weak std:: instantiation outside the linrec namespace is exempt:
    # auto-vectorized std::vector members at -O3 are governed by the
    # binary-level ISA contract, not the containment rule.
    std_weak = ("0000000000000000 "
                "<_ZNSt6vectorIlSaIlEE14_M_fill_assignEmRKl>:\n"
                "   0:\tvpbroadcastq %xmm0,%ymm0\n")
    expect("isa-leak", "inline std::vector COMDAT (exempt namespace)",
           check_isa_leak(
               std_weak, "src/storage/relation.cc", True,
               weak_symbols={
                   "_ZNSt6vectorIlSaIlEE14_M_fill_assignEmRKl"}),
           False)
    # A std:: template instantiated WITH a linrec type is still std::
    # surface — 6linrec appears mid-mangling, but the outermost scope is
    # what decides ownership.
    std_of_linrec = (
        "0000000000000000 "
        "<_ZNSt6vectorIPKN6linrec9HashIndexESaIS3_EE14_M_fill_assign"
        "EmRKS3_>:\n"
        "   0:\tvmovdqu %ymm0,(%rax)\n")
    expect("isa-leak", "std::vector<linrec type> COMDAT (exempt)",
           check_isa_leak(
               std_of_linrec, "src/eval/apply.cc", True,
               weak_symbols={
                   "_ZNSt6vectorIPKN6linrec9HashIndexESaIS3_EE"
                   "14_M_fill_assignEmRKS3_"}),
           False)

    # kernel-include.
    bad = fixture("kernel_include_bad.cc")
    good = fixture("kernel_include_good.cc")
    expect("kernel-include", "kernel_include_bad.cc",
           check_kernel_include(bad, "src/eval/selection.cc", False), True)
    expect("kernel-include", "kernel_include_good.cc",
           check_kernel_include(good, "src/eval/selection.cc", False), False)
    expect("kernel-include", "kernel_include_bad.cc (whitelisted)",
           check_kernel_include(bad, "src/storage/relation.cc", True), False)

    # hot-atomic.
    bad = fixture("hot_atomic_bad.cc")
    good = fixture("hot_atomic_good.cc")
    expect("hot-atomic", "hot_atomic_bad.cc",
           check_hot_atomic(bad, "src/common/example.h"), True)
    expect("hot-atomic", "hot_atomic_good.cc",
           check_hot_atomic(good, "src/common/example.h"), False)

    # kernel-alloc.
    bad = fixture("symbols_bad.nm")
    good = fixture("symbols_good.nm")
    expect("kernel-alloc", "symbols_bad.nm",
           check_symbols(bad, "src/common/simd_scalar.cc", True, True), True)
    expect("kernel-alloc", "symbols_good.nm",
           check_symbols(good, "src/common/simd_scalar.cc", True, True),
           False)
    expect("kernel-alloc", "symbols_bad.nm (rule off)",
           check_symbols(bad, "src/eval/fixpoint.cc", False, False), False)
    # The WorkerPool::Run hand-off is sanctioned even though std::function
    # shows up in its mangling: the Run reference itself, and the -O0-only
    # weak construct/destruct instantiations of the chunk-function type.
    expect("kernel-alloc", "symbols_good.nm (WorkerPool hand-off)",
           check_symbols(
               "                 U _ZN6linrec10WorkerPool3RunEmRKSt8"
               "functionIFvimEE\n"
               "0000000000000000 W _ZNSt8functionIFvimEED1Ev\n",
               "src/storage/relation.cc", False, True), False)

    # ctest-registration: fixture registers only one of the two tests.
    ctest = fixture("ctest_registrations.cmake")
    expect("ctest-registration", "ctest_registrations.cmake (missing)",
           check_ctest_registration(
               ["alpha_test.cc", "orphan_test.cc"], ctest), True)
    expect("ctest-registration", "ctest_registrations.cmake (registered)",
           check_ctest_registration(["alpha_test.cc"], ctest), False)

    if failures:
        print("linrec_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("linrec_lint self-test OK: every seeded violation caught, "
          "no clean fixture flagged")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="linrec repo-invariant linter")
    parser.add_argument("--build-dir", help="CMake build directory "
                        "(objects + CTestTestfile)")
    parser.add_argument("--source-dir", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own seeded-violation suite")
    args = parser.parse_args()

    if args.self_test:
        fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "lint_fixtures")
        return self_test(fixtures)

    if not args.build_dir:
        parser.error("--build-dir is required (or use --self-test)")
    if not os.path.isdir(args.build_dir):
        print(f"linrec_lint: build dir {args.build_dir} does not exist",
              file=sys.stderr)
        return 2

    violations = lint_tree(args.build_dir, args.source_dir)
    if violations:
        print(f"linrec_lint: {len(violations)} violation(s):",
              file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("linrec_lint: OK (isa-leak, kernel-include, hot-atomic, "
          "kernel-alloc, ctest-registration)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
