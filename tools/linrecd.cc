// linrecd — the linrec front door. One binary, three fronts over one
// protocol (src/server/protocol.h):
//
//   linrecd --file script.lr          run a script, replies to stdout
//   linrecd --stdin                   line REPL on stdin/stdout (default)
//   linrecd --port 0                  TCP on 127.0.0.1 (0 = ephemeral;
//                                     prints "LISTENING <port>" when ready,
//                                     serves a thread per connection until
//                                     a client sends SHUTDOWN)
//
// Limits: --timeout-ms N, --max-rows N, --max-pending N, --workers N,
// --memory-budget BYTES (global ledger), --query-memory-budget BYTES
// (per-query default; sessions override with SET memory_budget),
// --retry-after MS (backoff hint in Unavailable replies),
// --watchdog-interval MS (deadline-watchdog scan period).
//
// Fault injection (deterministic, for smoke tests):
//   --fault <site>:<n>      fire an injected fault on the nth hit of the
//                           named site (pool_growth, rehash,
//                           worker_dispatch, socket_write)
//   --fault-seed <s>:<p>    seeded schedule: every site fires wherever
//                           hash(seed, site, hit) % period == 0

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "server/server.h"

namespace linrec {
namespace {

bool IsQueryLine(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  return line.compare(i, 2, "?-") == 0;
}

/// Feeds `lines` to the server in order, batching maximal runs of
/// consecutive "?-" lines (outside LOAD blocks) into one pipelined
/// submission. Replies stream through `write`.
Server::Action ProcessLines(Server& server, Session& session,
                            const std::vector<std::string>& lines,
                            const std::function<void(const std::string&)>& write) {
  std::vector<std::string> replies;
  std::size_t i = 0;
  while (i < lines.size()) {
    replies.clear();
    if (!session.in_load() && IsQueryLine(lines[i])) {
      std::vector<std::string> run;
      while (i < lines.size() && IsQueryLine(lines[i])) {
        run.push_back(lines[i]);
        ++i;
      }
      server.SubmitQueryLines(session, run, &replies);
      for (const std::string& reply : replies) write(reply);
      continue;
    }
    Server::Action action = server.HandleLine(session, lines[i], &replies);
    ++i;
    for (const std::string& reply : replies) write(reply);
    if (action != Server::Action::kContinue) return action;
  }
  return Server::Action::kContinue;
}

int RunScript(Server& server, std::istream& in, std::ostream& out,
              bool interactive) {
  auto session = server.NewSession();
  auto write = [&](const std::string& reply) { out << reply << "\n"; };
  std::string line;
  if (interactive) {
    // REPL: one line at a time so replies appear promptly.
    while (std::getline(in, line)) {
      Server::Action action =
          ProcessLines(server, *session, {line}, write);
      out.flush();
      if (action != Server::Action::kContinue) break;
    }
    return 0;
  }
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ProcessLines(server, *session, lines, write);
  out.flush();
  return 0;
}

struct ListenState {
  int listen_fd = -1;
  std::atomic<bool> shutting_down{false};
};

void ServeConnection(Server& server, ListenState& state, int fd) {
  auto session = server.NewSession();
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !state.shutting_down.load()) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    // Extract every complete line; a pipelined client's run of "?-" lines
    // lands in one chunk and batches through SubmitQueryLines.
    std::vector<std::string> lines;
    std::size_t begin = 0;
    for (;;) {
      std::size_t end = buffer.find('\n', begin);
      if (end == std::string::npos) break;
      std::string line = buffer.substr(begin, end - begin);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(std::move(line));
      begin = end + 1;
    }
    buffer.erase(0, begin);
    if (lines.empty()) continue;
    std::string reply_bytes;
    auto write = [&](const std::string& reply) {
      reply_bytes += reply;
      reply_bytes += '\n';
    };
    Server::Action action = ProcessLines(server, *session, lines, write);
    std::size_t sent = 0;
    while (sent < reply_bytes.size()) {
      // Injected socket fault: behave exactly like a peer that vanished
      // mid-reply — drop this connection, leave the daemon serving.
      if (FaultFires(FaultSite::kSocketWrite)) {
        open = false;
        break;
      }
      ssize_t w = ::send(fd, reply_bytes.data() + sent,
                         reply_bytes.size() - sent, 0);
      if (w <= 0) {
        open = false;
        break;
      }
      sent += static_cast<std::size_t>(w);
    }
    if (action == Server::Action::kCloseSession) break;
    if (action == Server::Action::kShutdown) {
      state.shutting_down.store(true);
      // Wake the accept loop.
      ::shutdown(state.listen_fd, SHUT_RDWR);
      break;
    }
  }
  ::close(fd);
}

int RunSocket(Server& server, int port) {
  ListenState state;
  state.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (state.listen_fd < 0) {
    std::cerr << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  int reuse = 1;
  ::setsockopt(state.listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse,
               sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(state.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    std::cerr << "bind: " << std::strerror(errno) << "\n";
    ::close(state.listen_fd);
    return 1;
  }
  if (::listen(state.listen_fd, 64) < 0) {
    std::cerr << "listen: " << std::strerror(errno) << "\n";
    ::close(state.listen_fd);
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(state.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  std::cout << "LISTENING " << ntohs(addr.sin_port) << std::endl;

  std::vector<std::thread> connections;
  while (!state.shutting_down.load()) {
    int fd = ::accept(state.listen_fd, nullptr, nullptr);
    if (fd < 0) break;
    if (state.shutting_down.load()) {
      ::close(fd);
      break;
    }
    connections.emplace_back(
        [&server, &state, fd] { ServeConnection(server, state, fd); });
  }
  for (std::thread& t : connections) t.join();
  ::close(state.listen_fd);
  std::cout << "SHUTDOWN complete" << std::endl;
  return 0;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--file <script> | --stdin | --port <n>]\n"
               "       [--timeout-ms <n>] [--max-rows <n>]"
               " [--max-pending <n>] [--workers <n>]\n"
               "       [--memory-budget <bytes>]"
               " [--query-memory-budget <bytes>]\n"
               "       [--retry-after <ms>] [--watchdog-interval <ms>]\n"
               "       [--fault <site>:<n>] [--fault-seed <seed>:<period>]\n";
  return 2;
}

/// Parses "--fault pool_growth:3" / "--fault-seed 42:1000" specs and arms
/// the process-wide injector. Returns false (after a diagnostic) on a
/// malformed spec or unknown site.
bool ArmFault(const std::string& spec, bool seeded) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    std::cerr << "fault spec '" << spec << "' is not <"
              << (seeded ? "seed" : "site") << ">:<n>\n";
    return false;
  }
  const std::string head = spec.substr(0, colon);
  const long n = std::atol(spec.c_str() + colon + 1);
  if (n <= 0) {
    std::cerr << "fault spec '" << spec << "' needs a positive count\n";
    return false;
  }
  if (seeded) {
    FaultInjector::Instance().ArmSeeded(
        static_cast<std::uint64_t>(std::atol(head.c_str())),
        static_cast<std::uint64_t>(n));
    return true;
  }
  FaultSite site;
  if (!ParseFaultSite(head.c_str(), &site)) {
    std::cerr << "unknown fault site '" << head
              << "' (expected pool_growth, rehash, worker_dispatch or "
                 "socket_write)\n";
    return false;
  }
  FaultInjector::Instance().ArmAt(site, static_cast<std::uint64_t>(n));
  return true;
}

}  // namespace
}  // namespace linrec

int main(int argc, char** argv) {
  using namespace linrec;
  enum class Mode { kStdin, kFile, kSocket };
  Mode mode = Mode::kStdin;
  std::string file;
  int port = 0;
  ServerLimits limits;
  EngineOptions engine_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--stdin") {
      mode = Mode::kStdin;
    } else if (arg == "--file") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      mode = Mode::kFile;
      file = value;
    } else if (arg == "--port") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      mode = Mode::kSocket;
      port = std::atoi(value);
    } else if (arg == "--timeout-ms") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      limits.default_timeout_ms = std::atoi(value);
    } else if (arg == "--max-rows") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      limits.default_max_rows = static_cast<std::size_t>(std::atol(value));
    } else if (arg == "--max-pending") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      limits.max_pending = static_cast<std::size_t>(std::atol(value));
    } else if (arg == "--workers") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      engine_options.parallel_workers = std::atoi(value);
    } else if (arg == "--memory-budget") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      limits.global_memory_budget = static_cast<std::size_t>(std::atol(value));
    } else if (arg == "--query-memory-budget") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      limits.default_query_memory_budget =
          static_cast<std::size_t>(std::atol(value));
    } else if (arg == "--retry-after") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      limits.retry_after_ms = std::atoi(value);
    } else if (arg == "--watchdog-interval") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      limits.watchdog_interval_ms = std::atoi(value);
    } else if (arg == "--fault") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      if (!ArmFault(value, /*seeded=*/false)) return 2;
    } else if (arg == "--fault-seed") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      if (!ArmFault(value, /*seeded=*/true)) return 2;
    } else {
      return Usage(argv[0]);
    }
  }

  Server server(limits, engine_options);
  switch (mode) {
    case Mode::kFile: {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "cannot open " << file << "\n";
        return 1;
      }
      return RunScript(server, in, std::cout, /*interactive=*/false);
    }
    case Mode::kStdin:
      return RunScript(server, std::cin, std::cout, /*interactive=*/true);
    case Mode::kSocket:
      return RunSocket(server, port);
  }
  return 0;
}
