// Rule-family generators for scaling benchmarks and property tests.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/joint.h"
#include "storage/database.h"

namespace linrec {

/// Restricted-class commuting pair of arity 2k: positions 0..k-1 are free
/// 1-persistent in r1 and general in r2 (guarded by per-position predicates
/// q_i), and positions k..2k-1 symmetrically. Every position satisfies
/// clause (a) of Theorem 5.1; all predicates are distinct, so Theorem 5.2
/// applies and the test runs in O(a log a).
Result<std::pair<LinearRule, LinearRule>> MakeRestrictedCommutingPair(
    int half_arity);

/// As above but with one pair of positions swapped inconsistently in r2 so
/// that the rules do NOT commute (used to exercise the necessity half).
Result<std::pair<LinearRule, LinearRule>> MakeRestrictedNonCommutingPair(
    int half_arity);

/// A commuting pair outside the restricted class: `bridges` bridges, each a
/// general head variable chained through `chain_len` atoms of the SAME
/// predicate q to a link 1-persistent variable. Repeated predicates defeat
/// the fast equivalence path and make the definitional test's homomorphism
/// search expensive, while the syntactic test only runs small per-bridge
/// equivalences — the regime Theorem 5.3 targets.
Result<std::pair<LinearRule, LinearRule>> MakeRepeatedPredicatePair(
    int bridges, int chain_len);

/// A pseudo-random linear, constant-free rule with distinct head variables:
/// arity `arity`, `extra_atoms` nonrecursive atoms over head + fresh
/// variables, range-restricted. With `distinct_predicates` the rule stays in
/// the restricted class. Deterministic in `seed`.
Result<LinearRule> RandomLinearRule(int arity, int extra_atoms,
                                    std::uint32_t seed,
                                    bool distinct_predicates = true);

/// Per-clause position counts for MakeProfiledPair. The generated pair is in
/// the restricted class and satisfies clause (a)/(b)/(c)/(d) of Theorem 5.1
/// at the corresponding positions; `broken_positions` are general in both
/// rules with *inequivalent* bridges, so any broken position makes the pair
/// non-commuting (Theorem 5.2).
struct ClauseProfile {
  int a_positions = 0;  ///< free 1-persistent in r1, guarded general in r2
  int b_positions = 0;  ///< link 1-persistent in both
  int c_pairs = 0;      ///< free 2-persistent swap pairs in both (2 positions each)
  int d_positions = 0;  ///< general in both with identical bridges
  int broken_positions = 0;  ///< general in both, mismatched bridges

  int arity() const {
    return a_positions + b_positions + 2 * c_pairs + d_positions +
           broken_positions;
  }
};

/// Builds a rule pair realizing `profile`. Requires arity() >= 1.
Result<std::pair<LinearRule, LinearRule>> MakeProfiledPair(
    const ClauseProfile& profile);

/// A mutually recursive workload: member predicates (sorted), the joint
/// rules over them, the parameter database and the per-member seeds —
/// ready for Query::JointClosure(members, rules).FromSeeds(seeds) or a
/// direct JointSemiNaiveClosure call.
struct JointWorkload {
  std::vector<std::string> members;
  std::vector<JointRule> rules;
  Database db;
  std::vector<Relation> seeds;
};

/// Even/odd parity over the successor chain 0 → 1 → ... → n-1:
///   even(X) :- odd(Y), succ(Y,X).    odd(X) :- even(Y), succ(Y,X).
/// seeded with even = {0}. The joint closure is exactly the parity split
/// of 0..n-1 — a two-member component whose Δs alternate between the
/// members, so every round exercises the joint Δ bookkeeping. Requires
/// n >= 1.
Result<JointWorkload> MakeEvenOddChain(int n);

/// Color-alternating reachability over a random 2-colored graph (`edges`
/// red and `edges` blue edges over `nodes` vertices, deterministic in
/// `seed`):
///   reach_red(X,Z)  :- reach_blue(X,Y), red(Y,Z).
///   reach_blue(X,Z) :- reach_red(X,Y), blue(Y,Z).
/// seeded with reach_red = red, reach_blue = blue: pairs connected by a
/// path of strictly alternating colors, split by the final edge's color.
Result<JointWorkload> MakeAlternatingReachability(int nodes, int edges,
                                                  std::uint32_t seed);

}  // namespace linrec
