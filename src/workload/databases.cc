#include "workload/databases.h"

#include <cassert>
#include <random>

#include "datalog/parser.h"
#include "workload/graphs.h"

namespace linrec {

std::vector<LinearRule> SameGenerationRules() {
  Result<LinearRule> r1 = ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y).");
  Result<LinearRule> r2 = ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).");
  assert(r1.ok() && r2.ok());
  return {*r1, *r2};
}

SameGenerationWorkload MakeSameGeneration(int layers, int width, int fanout,
                                          std::uint32_t seed) {
  SameGenerationWorkload w;
  Relation down = LayeredDag(layers, width, fanout, seed);
  Relation up(2);
  for (TupleView t : down) {
    up.Insert({t[1], t[0]});
  }
  w.db.GetOrCreate("down", 2) = down;
  w.db.GetOrCreate("up", 2) = up;
  // Flat pairs: identity on every node. Applying the down-side operator
  // descends the second column and the up-side operator the first, so the
  // closure relates all pairs with a common ancestor — the relation the
  // same-generation program computes, with heavy rederivation on DAGs.
  for (int layer = 0; layer < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      Value v = static_cast<Value>(layer) * width + i;
      w.q.Insert({v, v});
    }
  }
  return w;
}

KnowsBuysWorkload MakeKnowsBuys(int people, int know_edges, int items,
                                double cheap_fraction, int initial_buys,
                                std::uint32_t seed) {
  KnowsBuysWorkload w;
  std::mt19937 rng(seed);
  Relation knows = RandomGraph(people, know_edges, seed);
  Relation cheap(1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  // Items occupy ids above the people range to keep the domains disjoint.
  const Value item_base = people;
  for (int i = 0; i < items; ++i) {
    if (coin(rng) < cheap_fraction) cheap.Insert({item_base + i});
  }
  std::uniform_int_distribution<int> pick_person(0, people - 1);
  std::uniform_int_distribution<int> pick_item(0, items - 1);
  for (int i = 0; i < initial_buys; ++i) {
    w.q.Insert({pick_person(rng), item_base + pick_item(rng)});
  }
  w.db.GetOrCreate("knows", 2) = std::move(knows);
  w.db.GetOrCreate("cheap", 1) = std::move(cheap);
  return w;
}

EndorsedBuysWorkload MakeEndorsedBuys(int people, int items, int fanout,
                                      int initial_buys, std::uint32_t seed) {
  EndorsedBuysWorkload w;
  std::mt19937 rng(seed);
  // Deep recursion: knows is a chain with a few random shortcuts.
  Relation knows = ChainGraph(people);
  std::uniform_int_distribution<int> pick_person(0, people - 1);
  for (int i = 0; i < people / 10; ++i) {
    int u = pick_person(rng);
    int v = pick_person(rng);
    if (u != v) knows.Insert({u, v});
  }
  const Value item_base = people;
  const Value endorser_base = people + items;
  Relation endorses(2);
  for (int i = 0; i < items; ++i) {
    for (int f = 0; f < fanout; ++f) {
      endorses.Insert({endorser_base + f, item_base + i});
    }
  }
  std::uniform_int_distribution<int> pick_item(0, items - 1);
  for (int i = 0; i < initial_buys; ++i) {
    w.q.Insert({pick_person(rng), item_base + pick_item(rng)});
  }
  w.db.GetOrCreate("knows", 2) = std::move(knows);
  w.db.GetOrCreate("endorses", 2) = std::move(endorses);
  return w;
}

}  // namespace linrec
