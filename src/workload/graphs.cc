#include "workload/graphs.h"

#include <random>
#include <set>

namespace linrec {

Relation ChainGraph(int n) {
  Relation edges(2);
  for (int i = 0; i + 1 < n; ++i) {
    edges.Insert({i, i + 1});
  }
  return edges;
}

Relation CycleGraph(int n) {
  Relation edges = ChainGraph(n);
  if (n > 1) edges.Insert({n - 1, 0});
  return edges;
}

Relation TreeGraph(int branching, int depth) {
  Relation edges(2);
  // Heap layout: children of v are v*branching + 1 ... v*branching + b.
  std::int64_t frontier_begin = 0;
  std::int64_t frontier_end = 1;  // root
  for (int d = 0; d < depth; ++d) {
    for (std::int64_t v = frontier_begin; v < frontier_end; ++v) {
      for (int b = 1; b <= branching; ++b) {
        edges.Insert({v, v * branching + b});
      }
    }
    frontier_begin = frontier_begin * branching + 1;
    frontier_end = frontier_end * branching + 1;
  }
  return edges;
}

Relation GridGraph(int rows, int cols) {
  Relation edges(2);
  auto id = [cols](int r, int c) -> Value {
    return static_cast<Value>(r) * cols + c;
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (r + 1 < rows) edges.Insert({id(r, c), id(r + 1, c)});
      if (c + 1 < cols) edges.Insert({id(r, c), id(r, c + 1)});
    }
  }
  return edges;
}

Relation RandomGraph(int nodes, int edges, std::uint32_t seed) {
  Relation out(2);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  int attempts = 0;
  while (static_cast<int>(out.size()) < edges && attempts < edges * 50) {
    ++attempts;
    int u = pick(rng);
    int v = pick(rng);
    if (u == v) continue;
    out.Insert({u, v});
  }
  return out;
}

Relation LayeredDag(int layers, int width, int fanout, std::uint32_t seed) {
  Relation edges(2);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      Value from = static_cast<Value>(layer) * width + i;
      for (int f = 0; f < fanout; ++f) {
        Value to = static_cast<Value>(layer + 1) * width + pick(rng);
        edges.Insert({from, to});
      }
    }
  }
  return edges;
}

}  // namespace linrec
