#include "workload/rulegen.h"

#include <random>

#include "common/strings.h"

namespace linrec {
namespace {

Result<std::pair<LinearRule, LinearRule>> BuildMirroredPair(int half_arity,
                                                            bool spoil_last) {
  if (half_arity < 1) {
    return Status::InvalidArgument("half_arity must be >= 1");
  }
  const int arity = 2 * half_arity;

  // r1: first half free 1-persistent, second half general guarded by q_i.
  RuleBuilder b1;
  std::vector<Term> head1;
  std::vector<Term> rec1;
  for (int i = 0; i < arity; ++i) {
    head1.push_back(Term::MakeVar(b1.Var(StrCat("X", i))));
  }
  for (int i = 0; i < half_arity; ++i) rec1.push_back(head1[static_cast<std::size_t>(i)]);
  for (int i = half_arity; i < arity; ++i) {
    rec1.push_back(Term::MakeVar(b1.Var(StrCat("U", i))));
  }
  b1.SetHead("p", head1);
  b1.AddBodyAtom("p", rec1);
  for (int i = half_arity; i < arity; ++i) {
    b1.AddBodyAtom(StrCat("q", i),
                   {head1[static_cast<std::size_t>(i)],
                    Term::MakeVar(b1.Var(StrCat("U", i)))});
  }

  // r2: mirror — first half general guarded by s_i, second half free
  // 1-persistent. With spoil_last, the last position of r2 is general with a
  // predicate that differs from r1's guard, so clause (d) fails there.
  RuleBuilder b2;
  std::vector<Term> head2;
  std::vector<Term> rec2;
  for (int i = 0; i < arity; ++i) {
    head2.push_back(Term::MakeVar(b2.Var(StrCat("X", i))));
  }
  for (int i = 0; i < half_arity; ++i) {
    rec2.push_back(Term::MakeVar(b2.Var(StrCat("V", i))));
  }
  for (int i = half_arity; i < arity; ++i) {
    bool spoiled = spoil_last && i == arity - 1;
    rec2.push_back(spoiled ? Term::MakeVar(b2.Var("W"))
                           : head2[static_cast<std::size_t>(i)]);
  }
  b2.SetHead("p", head2);
  b2.AddBodyAtom("p", rec2);
  for (int i = 0; i < half_arity; ++i) {
    b2.AddBodyAtom(StrCat("s", i),
                   {head2[static_cast<std::size_t>(i)],
                    Term::MakeVar(b2.Var(StrCat("V", i)))});
  }
  if (spoil_last) {
    b2.AddBodyAtom("t_spoiler", {head2[static_cast<std::size_t>(arity - 1)],
                                 Term::MakeVar(b2.Var("W"))});
  }

  Result<Rule> rule1 = b1.Build();
  if (!rule1.ok()) return rule1.status();
  Result<Rule> rule2 = b2.Build();
  if (!rule2.ok()) return rule2.status();
  Result<LinearRule> lr1 = LinearRule::Make(std::move(rule1).value());
  if (!lr1.ok()) return lr1.status();
  Result<LinearRule> lr2 = LinearRule::Make(std::move(rule2).value());
  if (!lr2.ok()) return lr2.status();
  return std::make_pair(std::move(lr1).value(), std::move(lr2).value());
}

}  // namespace

Result<std::pair<LinearRule, LinearRule>> MakeRestrictedCommutingPair(
    int half_arity) {
  return BuildMirroredPair(half_arity, /*spoil_last=*/false);
}

Result<std::pair<LinearRule, LinearRule>> MakeRestrictedNonCommutingPair(
    int half_arity) {
  return BuildMirroredPair(half_arity, /*spoil_last=*/true);
}

Result<std::pair<LinearRule, LinearRule>> MakeRepeatedPredicatePair(
    int bridges, int chain_len) {
  if (bridges < 1 || chain_len < 1) {
    return Status::InvalidArgument("bridges and chain_len must be >= 1");
  }
  auto build = [&](const char* fresh_prefix) -> Result<LinearRule> {
    // One shared link 1-persistent hub V; bridge j is a q-chain of length
    // chain_len + j from the general variable X_j down to V. All chains use
    // the same predicate and end at the same variable, so the homomorphism
    // search on the composites must discover the (unique) length-respecting
    // chain matching — lots of backtracking — while the syntactic test only
    // compares each small bridge against its twin.
    RuleBuilder b;
    std::vector<Term> head;
    std::vector<Term> rec;
    Term hub = Term::MakeVar(b.Var("V"));
    head.push_back(hub);
    rec.push_back(hub);
    for (int j = 0; j < bridges; ++j) {
      Term general = Term::MakeVar(b.Var(StrCat("X", j)));
      head.push_back(general);
      rec.push_back(hub);  // h(X_j) = V: X_j is 1-ray general
    }
    b.SetHead("p", head);
    b.AddBodyAtom("p", rec);
    for (int j = 0; j < bridges; ++j) {
      Term prev = head[static_cast<std::size_t>(j + 1)];  // X_j
      int length = chain_len + j;
      for (int s = 0; s + 1 < length; ++s) {
        Term next = Term::MakeVar(b.Var(StrCat(fresh_prefix, j, "_", s)));
        b.AddBodyAtom("q", {prev, next});
        prev = next;
      }
      b.AddBodyAtom("q", {prev, hub});
    }
    Result<Rule> rule = b.Build();
    if (!rule.ok()) return rule.status();
    return LinearRule::Make(std::move(rule).value());
  };
  Result<LinearRule> r1 = build("W");
  if (!r1.ok()) return r1.status();
  Result<LinearRule> r2 = build("Z");
  if (!r2.ok()) return r2.status();
  return std::make_pair(std::move(r1).value(), std::move(r2).value());
}

Result<LinearRule> RandomLinearRule(int arity, int extra_atoms,
                                    std::uint32_t seed,
                                    bool distinct_predicates) {
  if (arity < 1) return Status::InvalidArgument("arity must be >= 1");
  std::mt19937 rng(seed);
  RuleBuilder b;
  std::vector<Term> head;
  for (int i = 0; i < arity; ++i) {
    head.push_back(Term::MakeVar(b.Var(StrCat("X", i))));
  }
  // Recursive atom: per position choose identity, another head variable, or
  // a fresh variable.
  std::uniform_int_distribution<int> mode(0, 2);
  std::uniform_int_distribution<int> pick_pos(0, arity - 1);
  std::vector<Term> rec;
  int fresh_count = 0;
  std::vector<Term> fresh_vars;
  for (int i = 0; i < arity; ++i) {
    switch (mode(rng)) {
      case 0:
        rec.push_back(head[static_cast<std::size_t>(i)]);
        break;
      case 1:
        rec.push_back(head[static_cast<std::size_t>(pick_pos(rng))]);
        break;
      default: {
        Term fresh = Term::MakeVar(b.Var(StrCat("F", fresh_count++)));
        fresh_vars.push_back(fresh);
        rec.push_back(fresh);
        break;
      }
    }
  }
  b.SetHead("p", head);
  b.AddBodyAtom("p", rec);

  // Extra nonrecursive atoms over head + fresh variables.
  auto pick_term = [&]() -> Term {
    std::uniform_int_distribution<std::size_t> pick(
        0, head.size() + fresh_vars.size() - 1);
    std::size_t i = pick(rng);
    return i < head.size() ? head[i] : fresh_vars[i - head.size()];
  };
  std::uniform_int_distribution<int> pick_arity(1, 3);
  for (int e = 0; e < extra_atoms; ++e) {
    int n = pick_arity(rng);
    // The arity is part of the name so that rules generated with different
    // seeds stay composable (consistent predicate arities).
    std::string pred = distinct_predicates ? StrCat("g", e, "a", n)
                                           : StrCat("g", e % 2, "a", n);
    std::vector<Term> terms;
    for (int i = 0; i < n; ++i) terms.push_back(pick_term());
    b.AddBodyAtom(pred, std::move(terms));
  }

  // Enforce range restriction: every head variable must appear in the body.
  std::vector<bool> covered(static_cast<std::size_t>(arity), false);
  auto mark = [&](const Term& t) {
    if (!t.is_var()) return;
    for (int i = 0; i < arity; ++i) {
      if (head[static_cast<std::size_t>(i)].var() == t.var()) {
        covered[static_cast<std::size_t>(i)] = true;
      }
    }
  };
  for (const Term& t : rec) mark(t);
  // Head variables that only the extra atoms might mention still get a
  // guard; an extra unary atom never hurts validity or determinism.
  for (int i = 0; i < arity; ++i) {
    if (!covered[static_cast<std::size_t>(i)]) {
      b.AddBodyAtom(StrCat("cov", i, "a1"),
                    {head[static_cast<std::size_t>(i)]});
    }
  }

  Result<Rule> rule = b.Build();
  if (!rule.ok()) return rule.status();
  return LinearRule::Make(std::move(rule).value());
}

Result<std::pair<LinearRule, LinearRule>> MakeProfiledPair(
    const ClauseProfile& profile) {
  if (profile.arity() < 1) {
    return Status::InvalidArgument("profile must cover at least one position");
  }
  if (profile.a_positions < 0 || profile.b_positions < 0 ||
      profile.c_pairs < 0 || profile.d_positions < 0 ||
      profile.broken_positions < 0) {
    return Status::InvalidArgument("profile counts must be nonnegative");
  }

  // `which` selects r1 (0) or r2 (1); only clause (a) positions and broken
  // positions differ between the two rules.
  auto build = [&](int which) -> Result<LinearRule> {
    RuleBuilder b;
    std::vector<Term> head;
    std::vector<Term> rec;
    std::vector<Atom> atoms;
    int position = 0;

    // (a): free 1-persistent in r1; general guarded by qa_i in r2.
    for (int i = 0; i < profile.a_positions; ++i, ++position) {
      Term x = Term::MakeVar(b.Var(StrCat("A", i)));
      head.push_back(x);
      if (which == 0) {
        rec.push_back(x);
      } else {
        Term u = Term::MakeVar(b.Var(StrCat("AU", i)));
        rec.push_back(u);
        atoms.push_back(Atom{StrCat("qa", i), {x, u}});
      }
    }
    // (b): link 1-persistent in both (distinct guard predicates per rule to
    // show clause (b) needs no bridge equivalence).
    for (int i = 0; i < profile.b_positions; ++i, ++position) {
      Term x = Term::MakeVar(b.Var(StrCat("B", i)));
      head.push_back(x);
      rec.push_back(x);
      atoms.push_back(Atom{StrCat("gb", which, "_", i), {x}});
    }
    // (c): free 2-persistent swap pairs in both rules (the same disjoint
    // transposition, which commutes with itself).
    for (int i = 0; i < profile.c_pairs; ++i, position += 2) {
      Term x = Term::MakeVar(b.Var(StrCat("C", i, "x")));
      Term y = Term::MakeVar(b.Var(StrCat("C", i, "y")));
      head.push_back(x);
      head.push_back(y);
      rec.push_back(y);
      rec.push_back(x);
    }
    // (d): general in both with identical bridges (same predicate).
    for (int i = 0; i < profile.d_positions; ++i, ++position) {
      Term x = Term::MakeVar(b.Var(StrCat("D", i)));
      Term v = Term::MakeVar(b.Var(StrCat("DV", i)));
      head.push_back(x);
      rec.push_back(v);
      atoms.push_back(Atom{StrCat("qd", i), {x, v}});
    }
    // broken: general in both, but the bridge predicates differ per rule —
    // clause (d) fails and the pair does not commute.
    for (int i = 0; i < profile.broken_positions; ++i, ++position) {
      Term x = Term::MakeVar(b.Var(StrCat("E", i)));
      Term v = Term::MakeVar(b.Var(StrCat("EV", i)));
      head.push_back(x);
      rec.push_back(v);
      atoms.push_back(Atom{StrCat("qe", which, "_", i), {x, v}});
    }

    b.SetHead("p", head);
    b.AddBodyAtom("p", rec);
    for (Atom& atom : atoms) {
      b.AddBodyAtom(atom.predicate, atom.terms);
    }
    Result<Rule> rule = b.Build();
    if (!rule.ok()) return rule.status();
    return LinearRule::Make(std::move(rule).value());
  };

  Result<LinearRule> r1 = build(0);
  if (!r1.ok()) return r1.status();
  Result<LinearRule> r2 = build(1);
  if (!r2.ok()) return r2.status();
  return std::make_pair(std::move(r1).value(), std::move(r2).value());
}

namespace {

/// `head(X) :- body(Y), step(Y,X).` — the unary mutual-step rule shape of
/// the even/odd family.
Result<Rule> UnaryStepRule(const std::string& head, const std::string& body,
                           const std::string& step) {
  RuleBuilder b;
  Term x = Term::MakeVar(b.Var("X"));
  Term y = Term::MakeVar(b.Var("Y"));
  b.SetHead(head, {x});
  b.AddBodyAtom(body, {y});
  b.AddBodyAtom(step, {y, x});
  return b.Build();
}

/// `head(X,Z) :- body(X,Y), step(Y,Z).` — the binary chaining rule shape
/// of the alternating-reachability family.
Result<Rule> BinaryStepRule(const std::string& head, const std::string& body,
                            const std::string& step) {
  RuleBuilder b;
  Term x = Term::MakeVar(b.Var("X"));
  Term y = Term::MakeVar(b.Var("Y"));
  Term z = Term::MakeVar(b.Var("Z"));
  b.SetHead(head, {x, z});
  b.AddBodyAtom(body, {x, y});
  b.AddBodyAtom(step, {y, z});
  return b.Build();
}

}  // namespace

Result<JointWorkload> MakeEvenOddChain(int n) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  JointWorkload w;
  w.members = {"even", "odd"};  // member 0 = even, member 1 = odd

  Result<Rule> even_rule = UnaryStepRule("even", "odd", "succ");
  if (!even_rule.ok()) return even_rule.status();
  Result<Rule> odd_rule = UnaryStepRule("odd", "even", "succ");
  if (!odd_rule.ok()) return odd_rule.status();
  w.rules.push_back(
      JointRule{std::move(even_rule).value(), /*head_member=*/0,
                /*recursive_atom=*/0, /*recursive_member=*/1});
  w.rules.push_back(
      JointRule{std::move(odd_rule).value(), /*head_member=*/1,
                /*recursive_atom=*/0, /*recursive_member=*/0});

  Relation succ(2);
  for (int i = 0; i + 1 < n; ++i) succ.Insert({i, i + 1});
  w.db.GetOrCreate("succ", 2) = std::move(succ);

  Relation even_seed(1);
  even_seed.Insert({0});
  w.seeds.push_back(std::move(even_seed));
  w.seeds.emplace_back(1);  // odd starts empty
  return w;
}

Result<JointWorkload> MakeAlternatingReachability(int nodes, int edges,
                                                  std::uint32_t seed) {
  if (nodes < 2 || edges < 1) {
    return Status::InvalidArgument("need nodes >= 2 and edges >= 1");
  }
  if (static_cast<long long>(edges) >
      static_cast<long long>(nodes) * (nodes - 1)) {
    return Status::InvalidArgument(
        StrCat("cannot place ", edges, " distinct edges over ", nodes,
               " nodes (max ", static_cast<long long>(nodes) * (nodes - 1),
               " without self-loops)"));
  }
  JointWorkload w;
  w.members = {"reach_blue", "reach_red"};  // member 0 = blue, 1 = red

  Result<Rule> red_rule = BinaryStepRule("reach_red", "reach_blue", "red");
  if (!red_rule.ok()) return red_rule.status();
  Result<Rule> blue_rule = BinaryStepRule("reach_blue", "reach_red", "blue");
  if (!blue_rule.ok()) return blue_rule.status();
  w.rules.push_back(
      JointRule{std::move(red_rule).value(), /*head_member=*/1,
                /*recursive_atom=*/0, /*recursive_member=*/0});
  w.rules.push_back(
      JointRule{std::move(blue_rule).value(), /*head_member=*/0,
                /*recursive_atom=*/0, /*recursive_member=*/1});

  // Two independent random edge sets, deterministic in `seed`.
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node_of(0, nodes - 1);
  auto random_edges = [&]() {
    Relation rel(2);
    while (rel.size() < static_cast<std::size_t>(edges)) {
      int from = node_of(rng);
      int to = node_of(rng);
      if (from != to) rel.Insert({from, to});
    }
    return rel;
  };
  Relation red = random_edges();
  Relation blue = random_edges();
  w.seeds.push_back(blue);  // reach_blue: paths of length 1 ending blue
  w.seeds.push_back(red);   // reach_red: paths of length 1 ending red
  w.db.GetOrCreate("red", 2) = std::move(red);
  w.db.GetOrCreate("blue", 2) = std::move(blue);
  return w;
}

}  // namespace linrec

