// Prebuilt databases for the paper's canonical programs.

#pragma once

#include <cstdint>
#include <vector>

#include "datalog/rule.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace linrec {

/// Workload for the same-generation pair of Example 5.2:
///   r1: p(X,Y) :- p(X,V), down(V,Y).
///   r2: p(X,Y) :- p(U,Y), up(X,U).
/// `up` is the reverse of a layered DAG's edges, `down` its edges, and the
/// initial relation q pairs each node with itself on the deepest layer (the
/// "flat" relation).
struct SameGenerationWorkload {
  Database db;        ///< relations "up" and "down"
  Relation q{2};      ///< initial relation (flat pairs)
};

SameGenerationWorkload MakeSameGeneration(int layers, int width, int fanout,
                                          std::uint32_t seed);

/// The commuting same-generation rule pair itself (r1, r2 above) — the
/// canonical input alongside MakeSameGeneration for tests and benches.
std::vector<LinearRule> SameGenerationRules();

/// Workload for Example 6.1 (knows/buys/cheap):
///   buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).
/// `knows` is a random graph over `people`; `cheap` holds a fraction of the
/// `items` universe; q holds initial buys pairs.
struct KnowsBuysWorkload {
  Database db;    ///< relations "knows" and "cheap"
  Relation q{2};  ///< initial buys(person, item) pairs
};

KnowsBuysWorkload MakeKnowsBuys(int people, int know_edges, int items,
                                double cheap_fraction, int initial_buys,
                                std::uint32_t seed);

/// Workload for the fan-out variant of Example 6.1:
///   buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).
/// `endorses` maps every item to `fanout` endorsers, so the direct closure
/// pays fanout-many duplicate derivations per step, while the
/// redundancy-aware closure applies `endorses` a bounded number of times.
/// `knows` is a long chain plus shortcuts: deep recursion.
struct EndorsedBuysWorkload {
  Database db;    ///< relations "knows" and "endorses"
  Relation q{2};  ///< initial buys(person, item) pairs
};

EndorsedBuysWorkload MakeEndorsedBuys(int people, int items, int fanout,
                                      int initial_buys, std::uint32_t seed);

}  // namespace linrec
