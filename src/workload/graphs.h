// Graph generators producing edge relations for tests and benchmarks.
// Nodes are integers; edges are binary tuples (source, target).

#pragma once

#include <cstdint>

#include "storage/relation.h"

namespace linrec {

/// 0 → 1 → ... → n-1 (n-1 edges).
Relation ChainGraph(int n);

/// Chain plus the closing edge n-1 → 0.
Relation CycleGraph(int n);

/// Complete `branching`-ary tree of the given depth; edges parent → child.
/// Node ids are heap-order (root 0).
Relation TreeGraph(int branching, int depth);

/// Directed grid: node (r, c) → (r+1, c) and (r, c) → (r, c+1).
Relation GridGraph(int rows, int cols);

/// `edges` distinct random edges over `nodes` vertices (no self-loops),
/// deterministic in `seed`.
Relation RandomGraph(int nodes, int edges, std::uint32_t seed);

/// Layered DAG: `layers` layers of `width` nodes; every node gets `fanout`
/// random out-edges into the next layer. Node id = layer * width + index.
/// DAGs with many parallel paths maximize duplicate derivations, the
/// workload where Theorem 3.1's effect is largest.
Relation LayeredDag(int layers, int width, int fanout, std::uint32_t seed);

}  // namespace linrec
