#include "eval/index_cache.h"

namespace linrec {

const HashIndex& IndexCache::Get(const Relation& rel,
                                 const std::vector<int>& positions) {
  probe_.Assign(&rel, positions);
  auto it = entries_.find(probe_);
  if (it != entries_.end() &&
      it->second->built_at_version() == rel.version()) {
    return *it->second;
  }
  auto index = std::make_unique<HashIndex>(rel, positions);
  ++rebuilds_;
  if (it != entries_.end()) {
    it->second = std::move(index);
    return *it->second;
  }
  auto [pos, inserted] = entries_.emplace(probe_, std::move(index));
  return *pos->second;
}

void IndexCache::RetainOnly(
    const std::unordered_set<const Relation*>& keep) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (keep.count(it->first.rel) == 0) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace linrec
