// Δ-chunking parameters shared by the parallel round evaluators
// (eval/fixpoint.cc single-relation rounds, eval/joint.cc joint
// multi-relation rounds). One definition so the two engines stay tuned
// together.

#pragma once

#include <cstddef>

namespace linrec {

/// A Δ chunk small enough to stay cache-resident per worker, large enough
/// to amortize the per-chunk dispatch (an atomic claim + per-step index
/// revalidation).
inline constexpr std::size_t kMinChunkRows = 128;
/// Rounds with fewer Δ rows than this run serially — the parallel round's
/// fixed costs (wakeups, merge phases over 2^shard_bits shards) exceed
/// the work.
inline constexpr std::size_t kSerialRowThreshold = 256;
/// Chunks per lane beyond the minimum, so early finishers have work to
/// steal from skewed chunks.
inline constexpr std::size_t kChunksPerLane = 4;

}  // namespace linrec
