#include "eval/joint.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>

#include "common/fault.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "datalog/equality.h"
#include "datalog/printer.h"
#include "eval/apply.h"
#include "eval/chunking.h"
#include "eval/timing.h"

namespace linrec {
namespace {

/// Eliminates equality atoms up front, remapping the recursive atom index
/// (EliminateEqualities preserves the relative order of non-equality
/// atoms). Rules with unsatisfiable equalities are dropped.
Result<std::vector<JointRule>> PrepareJointRules(
    const std::vector<JointRule>& rules) {
  std::vector<JointRule> out;
  out.reserve(rules.size());
  for (const JointRule& jr : rules) {
    if (!HasEqualities(jr.rule)) {
      out.push_back(jr);
      continue;
    }
    int eq_before = 0;
    for (int i = 0; i < jr.recursive_atom; ++i) {
      if (jr.rule.body()[static_cast<std::size_t>(i)].predicate ==
          kEqualityPredicate) {
        ++eq_before;
      }
    }
    Result<std::optional<Rule>> eliminated = EliminateEqualities(jr.rule);
    if (!eliminated.ok()) return eliminated.status();
    if (!eliminated->has_value()) continue;
    JointRule prepared = jr;
    prepared.rule = std::move(**eliminated);
    prepared.recursive_atom = jr.recursive_atom - eq_before;
    out.push_back(std::move(prepared));
  }
  return out;
}

/// The multi-relation analogue of fixpoint.cc's RoundEvaluator: one Δ
/// row-range per member relation, rules compiled once per lane against
/// their recursive member's (fixed-address) relation, rounds either run
/// serially or fan every member's Δ chunks to one work-stealing pool and
/// fold per-member thread-local pools through the sharded merger.
class JointRoundEvaluator {
 public:
  JointRoundEvaluator(const std::vector<JointRule>& rules, const Database& db,
                      std::vector<Relation>* rels, int workers)
      : rules_(&rules),
        db_(&db),
        rels_(rels),
        workers_(std::max(workers, 1)) {
    by_member_.resize(rels->size());
    for (std::size_t k = 0; k < rules.size(); ++k) {
      by_member_[static_cast<std::size_t>(rules[k].recursive_member)]
          .push_back(static_cast<int>(k));
    }
  }

  /// True iff some rule consumes member `m` — a Δ on a member no rule
  /// reads cannot drive further derivations.
  bool Feeds(std::size_t m) const { return !by_member_[m].empty(); }

  Status Compile(IndexCache* caller_cache) {
    lanes_.resize(static_cast<std::size_t>(workers_));
    for (Lane& lane : lanes_) {
      lane.out.clear();
      lane.out.reserve(rels_->size());
      for (const Relation& r : *rels_) lane.out.emplace_back(r.arity());
      lane.compiled.clear();
      lane.compiled.reserve(rules_->size());
      for (const JointRule& jr : *rules_) {
        ApplyOptions options;
        options.overrides[jr.recursive_atom] =
            &(*rels_)[static_cast<std::size_t>(jr.recursive_member)];
        options.first_atom = jr.recursive_atom;
        Result<CompiledRule> compiled = CompileRule(jr.rule, *db_, options);
        if (!compiled.ok()) return compiled.status();
        lane.compiled.push_back(std::move(compiled).value());
      }
    }
    caller_cache_ = caller_cache;
    if (workers_ > 1) pool_.emplace(workers_);
    return Status::OK();
  }

  /// Applies every rule to its recursive member's rows
  /// [begin[m], end[m]) and appends the derived rows missing from the
  /// head member relations. The resulting family of relations is
  /// identical for every worker count (only insertion order varies).
  Status Round(const std::vector<RowId>& begin, const std::vector<RowId>& end,
               ClosureStats* stats, const CancellationToken* cancel) {
    std::size_t total_rows = 0;
    for (std::size_t m = 0; m < rels_->size(); ++m) {
      if (Feeds(m)) total_rows += end[m] - begin[m];
    }
    if (total_rows == 0) return Status::OK();
    if (workers_ == 1 || total_rows < kSerialRowThreshold ||
        pool_->participants() == 1) {
      return SerialRound(begin, end, stats, cancel);
    }

    const std::size_t chunk = std::max(
        kMinChunkRows,
        total_rows / (static_cast<std::size_t>(workers_) * kChunksPerLane));
    items_.clear();
    for (std::size_t m = 0; m < rels_->size(); ++m) {
      if (!Feeds(m)) continue;
      for (RowId b = begin[m]; b < end[m];
           b = static_cast<RowId>(
               std::min<std::size_t>(end[m], b + chunk))) {
        items_.push_back(Item{static_cast<int>(m), b,
                              static_cast<RowId>(std::min<std::size_t>(
                                  end[m], b + chunk))});
      }
    }
    for (Lane& lane : lanes_) {
      for (Relation& out : lane.out) out.Clear();
      lane.stats = ClosureStats{};
      lane.status = Status::OK();
    }
    // Same Δ-chunk-boundary cancellation, fault site and budget TLS
    // re-install as the single-relation Round (fixpoint.cc).
    QueryBudget* budget = CurrentQueryBudget();
    pool_->Run(items_.size(), [&, budget](int lane_id, std::size_t i) {
      Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
      if (!lane.status.ok()) return;
      if (cancel != nullptr && cancel->stop_requested()) {
        lane.status = cancel->Check();
        return;
      }
      if (FaultFires(FaultSite::kWorkerDispatch)) {
        lane.status = Status::Internal(
            StrCat("injected worker fault dispatching joint chunk ", i));
        return;
      }
      ScopedQueryBudget budget_scope(budget);
      const Item& item = items_[i];
      PartitionView slice =
          (*rels_)[static_cast<std::size_t>(item.member)].View(item.begin,
                                                               item.end);
      for (int k : by_member_[static_cast<std::size_t>(item.member)]) {
        Relation* out = &lane.out[static_cast<std::size_t>(
            (*rules_)[static_cast<std::size_t>(k)].head_member)];
        Status s = lane.RunOne(&lane.compiled[static_cast<std::size_t>(k)],
                               slice, out, LaneCache(lane_id), cancel);
        if (!s.ok()) {
          lane.status = std::move(s);
          return;
        }
      }
    });
    for (Lane& lane : lanes_) {
      if (!lane.status.ok()) return lane.status;
      if (stats != nullptr) stats->Accumulate(lane.stats);
    }
    std::vector<const Relation*> pools;
    pools.reserve(lanes_.size());
    for (std::size_t m = 0; m < rels_->size(); ++m) {
      pools.clear();
      for (Lane& lane : lanes_) pools.push_back(&lane.out[m]);
      try {
        merger_.Merge(pools.data(), pools.size(), &(*rels_)[m], &*pool_);
      } catch (const ResourceExhaustedError& e) {
        return Status::ResourceExhausted(e.what());
      } catch (const std::exception& e) {
        return Status::Internal(StrCat("parallel merge threw: ", e.what()));
      } catch (...) {
        return Status::Internal("parallel merge threw");
      }
    }
    return Status::OK();
  }

 private:
  struct Item {
    int member;
    RowId begin;
    RowId end;
  };

  // Cache-line aligned for the same reason as RoundEvaluator::Lane
  // (fixpoint.cc): per-lane hot state must not share lines across lanes.
  struct alignas(64) Lane {
    std::vector<CompiledRule> compiled;  // one per joint rule
    std::vector<Relation> out;           // one output pool per member
    IndexCache cache;
    ClosureStats stats;
    Status status;

    Status RunOne(CompiledRule* rule, PartitionView slice, Relation* out,
                  IndexCache* cache_ptr, const CancellationToken* cancel) {
      try {
        return rule->RunPartition(slice, out, &stats, cache_ptr, cancel);
      } catch (const ResourceExhaustedError& e) {
        return Status::ResourceExhausted(e.what());
      } catch (const std::bad_alloc&) {
        return Status::ResourceExhausted(
            "allocation failed in parallel round (out of memory)");
      } catch (const std::exception& e) {
        return Status::Internal(StrCat("parallel round threw: ", e.what()));
      } catch (...) {
        return Status::Internal("parallel round threw");
      }
    }
  };

  IndexCache* LaneCache(int lane_id) {
    if (lane_id == 0 && caller_cache_ != nullptr) return caller_cache_;
    return &lanes_[static_cast<std::size_t>(lane_id)].cache;
  }

  Status SerialRound(const std::vector<RowId>& begin,
                     const std::vector<RowId>& end, ClosureStats* stats,
                     const CancellationToken* cancel) {
    // Emit straight into the member relations. Safe for the same reason
    // the single-relation serial round is: each RunPartition's Δ scan is
    // bounded by a fixed row range, the recursive atom is the only step
    // reading a member relation, and the join kernel re-resolves row
    // pointers per candidate, so appends to any member — including the
    // one being scanned — never invalidate a live read.
    Lane& lane = lanes_.front();
    for (std::size_t m = 0; m < rels_->size(); ++m) {
      if (begin[m] >= end[m]) continue;
      PartitionView slice = (*rels_)[m].View(begin[m], end[m]);
      for (int k : by_member_[m]) {
        Relation* out = &(*rels_)[static_cast<std::size_t>(
            (*rules_)[static_cast<std::size_t>(k)].head_member)];
        LINREC_RETURN_IF_ERROR(
            lane.compiled[static_cast<std::size_t>(k)].RunPartition(
                slice, out, stats, LaneCache(0), cancel));
      }
    }
    return Status::OK();
  }

  const std::vector<JointRule>* rules_;
  const Database* db_;
  std::vector<Relation>* rels_;
  int workers_;
  IndexCache* caller_cache_ = nullptr;
  std::vector<std::vector<int>> by_member_;  // member → consuming rules
  std::vector<Lane> lanes_;
  std::vector<Item> items_;
  std::optional<WorkerPool> pool_;
  PoolMerger merger_;
};

std::size_t TotalSize(const std::vector<Relation>& rels) {
  std::size_t total = 0;
  for (const Relation& r : rels) total += r.size();
  return total;
}

/// Shared scaffolding of both closure entry points: validation, equality
/// elimination, the compiled evaluator, and the stats epilogue. Only the
/// round-driving loop differs — semi-naive feeds each round the rows the
/// previous one appended; naive re-feeds everything from row 0.
Result<std::vector<Relation>> CloseJoint(
    const std::vector<std::string>& members,
    const std::vector<JointRule>& rules, const Database& db,
    const std::vector<Relation>& seeds, ClosureStats* stats,
    IndexCache* cache, int workers, bool naive,
    const CancellationToken* cancel) {
  return GuardAllocFailures([&]() -> Result<std::vector<Relation>> {
  LINREC_RETURN_IF_ERROR(ValidateJointRules(members, rules, seeds));
  Result<std::vector<JointRule>> prepared = PrepareJointRules(rules);
  if (!prepared.ok()) return prepared.status();
  ClosureTimer timer(stats);
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  std::vector<Relation> rels = seeds;
  const std::size_t seeded = TotalSize(rels);
  if (!prepared->empty()) {
    JointRoundEvaluator evaluator(*prepared, db, &rels, workers);
    LINREC_RETURN_IF_ERROR(evaluator.Compile(cache));
    const std::size_t member_count = rels.size();
    std::vector<RowId> begin(member_count, 0);
    std::vector<RowId> end(member_count, 0);
    for (;;) {
      std::size_t total_before = 0;
      std::size_t delta_rows = 0;
      for (std::size_t m = 0; m < member_count; ++m) {
        end[m] = static_cast<RowId>(rels[m].size());
        total_before += end[m];
        if (evaluator.Feeds(m)) delta_rows += end[m] - begin[m];
      }
      if (delta_rows == 0) break;
      LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
      if (stats != nullptr) ++stats->iterations;
      LINREC_RETURN_IF_ERROR(evaluator.Round(begin, end, stats, cancel));
      if (naive) {
        // Re-feed everything each round; stop once a full re-application
        // adds nothing.
        if (TotalSize(rels) == total_before) break;
      } else {
        begin = end;  // next Δ: the rows this round appended
      }
    }
  }
  if (stats != nullptr) {
    stats->result_size = TotalSize(rels);
    stats->duplicates += stats->derivations - (TotalSize(rels) - seeded);
  }
  return rels;
  });
}

}  // namespace

namespace {

/// Shared body of ValidateJointRules / ValidateJointRuleStructure: a null
/// `seeds` skips the seed-count and seed-arity checks (prepared queries
/// bind seeds per execution; the closure entry points re-validate fully).
Status ValidateJointImpl(const std::vector<std::string>& members,
                         const std::vector<JointRule>& rules,
                         const std::vector<Relation>* seeds) {
  if (members.empty()) {
    return Status::InvalidArgument(
        "joint closure requires at least one member");
  }
  std::map<std::string, int> index_of;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == kEqualityPredicate) {
      return Status::InvalidArgument(
          StrCat("'", kEqualityPredicate,
                 "' is reserved and cannot be a joint member"));
    }
    if (!index_of.emplace(members[i], static_cast<int>(i)).second) {
      return Status::InvalidArgument(
          StrCat("joint member '", members[i], "' is not distinct"));
    }
  }
  if (seeds != nullptr && seeds->size() != members.size()) {
    return Status::InvalidArgument(StrCat("joint closure has ",
                                          seeds->size(), " seeds for ",
                                          members.size(), " members"));
  }
  const int member_count = static_cast<int>(members.size());
  for (const JointRule& jr : rules) {
    LINREC_RETURN_IF_ERROR(jr.rule.Validate());
    if (jr.head_member < 0 || jr.head_member >= member_count ||
        jr.recursive_member < 0 || jr.recursive_member >= member_count) {
      return Status::InvalidArgument(
          StrCat("joint rule member indices (", jr.head_member, ", ",
                 jr.recursive_member, ") out of range for ", member_count,
                 " members"));
    }
    const std::string& head_name =
        members[static_cast<std::size_t>(jr.head_member)];
    if (jr.rule.head().predicate != head_name) {
      return Status::InvalidArgument(
          StrCat("joint rule head '", jr.rule.head().predicate,
                 "' does not match member '", head_name, "'"));
    }
    if (jr.recursive_atom < 0 ||
        jr.recursive_atom >= static_cast<int>(jr.rule.body().size())) {
      return Status::InvalidArgument(
          StrCat("joint rule recursive atom index ", jr.recursive_atom,
                 " out of range for a body of ", jr.rule.body().size(),
                 " atoms"));
    }
    const Atom& rec =
        jr.rule.body()[static_cast<std::size_t>(jr.recursive_atom)];
    if (rec.predicate !=
        members[static_cast<std::size_t>(jr.recursive_member)]) {
      return Status::InvalidArgument(
          StrCat("joint rule recursive atom '", rec.predicate,
                 "' does not match member '",
                 members[static_cast<std::size_t>(jr.recursive_member)],
                 "'"));
    }
    // The linearity invariant: exactly one body atom may read a member.
    // The joint fixpoint overrides only the recursive atom, so a second
    // member atom would resolve against `db` — where members are absent,
    // i.e. as an empty relation — and silently compute a wrong fixpoint.
    int member_atoms = 0;
    for (const Atom& atom : jr.rule.body()) {
      if (index_of.count(atom.predicate) > 0) ++member_atoms;
    }
    if (member_atoms != 1) {
      return Status::InvalidArgument(
          StrCat("joint rule must read exactly one member atom, found ",
                 member_atoms, ": ", ToString(jr.rule)));
    }
    if (seeds != nullptr) {
      const std::size_t head_arity =
          (*seeds)[static_cast<std::size_t>(jr.head_member)].arity();
      if (jr.rule.head().arity() != head_arity) {
        return Status::InvalidArgument(
            StrCat("joint rule head arity ", jr.rule.head().arity(),
                   " does not match seed arity ", head_arity,
                   " of member '", head_name, "'"));
      }
      const std::size_t rec_arity =
          (*seeds)[static_cast<std::size_t>(jr.recursive_member)].arity();
      if (rec.arity() != rec_arity) {
        return Status::InvalidArgument(
            StrCat("joint rule recursive atom arity ", rec.arity(),
                   " does not match seed arity ", rec_arity,
                   " of member '", rec.predicate, "'"));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateJointRules(const std::vector<std::string>& members,
                          const std::vector<JointRule>& rules,
                          const std::vector<Relation>& seeds) {
  return ValidateJointImpl(members, rules, &seeds);
}

Status ValidateJointRuleStructure(const std::vector<std::string>& members,
                                  const std::vector<JointRule>& rules) {
  return ValidateJointImpl(members, rules, nullptr);
}

Result<std::vector<Relation>> JointSemiNaiveClosure(
    const std::vector<std::string>& members,
    const std::vector<JointRule>& rules, const Database& db,
    const std::vector<Relation>& seeds, ClosureStats* stats,
    IndexCache* cache, int workers, const CancellationToken* cancel) {
  return CloseJoint(members, rules, db, seeds, stats, cache, workers,
                    /*naive=*/false, cancel);
}

Result<std::vector<Relation>> JointNaiveClosure(
    const std::vector<std::string>& members,
    const std::vector<JointRule>& rules, const Database& db,
    const std::vector<Relation>& seeds, ClosureStats* stats,
    IndexCache* cache, int workers, const CancellationToken* cancel) {
  return CloseJoint(members, rules, db, seeds, stats, cache, workers,
                    /*naive=*/true, cancel);
}

Status JointSemiNaiveExtend(const std::vector<std::string>& members,
                            const std::vector<JointRule>& rules,
                            const Database& db, std::vector<Relation>* rels,
                            const std::vector<RowId>& delta_begin,
                            ClosureStats* stats, IndexCache* cache,
                            int workers, const CancellationToken* cancel) {
  return GuardAllocFailures([&]() -> Status {
    LINREC_RETURN_IF_ERROR(ValidateJointRules(members, rules, *rels));
    if (delta_begin.size() != rels->size()) {
      return Status::InvalidArgument(
          StrCat("joint extend has ", delta_begin.size(),
                 " delta offsets for ", rels->size(), " members"));
    }
    for (std::size_t m = 0; m < rels->size(); ++m) {
      if (delta_begin[m] > (*rels)[m].size()) {
        return Status::InvalidArgument(
            StrCat("delta_begin ", delta_begin[m], " past member ", m,
                   " size ", (*rels)[m].size()));
      }
    }
    Result<std::vector<JointRule>> prepared = PrepareJointRules(rules);
    if (!prepared.ok()) return prepared.status();
    ClosureTimer timer(stats);
    IndexCache local_cache;
    if (cache == nullptr) cache = &local_cache;
    if (prepared->empty()) return Status::OK();

    JointRoundEvaluator evaluator(*prepared, db, rels, workers);
    LINREC_RETURN_IF_ERROR(evaluator.Compile(cache));
    const std::size_t member_count = rels->size();
    std::vector<RowId> begin = delta_begin;
    std::vector<RowId> end(member_count, 0);
    for (;;) {
      std::size_t delta_rows = 0;
      for (std::size_t m = 0; m < member_count; ++m) {
        end[m] = static_cast<RowId>((*rels)[m].size());
        if (evaluator.Feeds(m)) delta_rows += end[m] - begin[m];
      }
      if (delta_rows == 0) break;
      LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
      if (stats != nullptr) ++stats->iterations;
      LINREC_RETURN_IF_ERROR(evaluator.Round(begin, end, stats, cancel));
      begin = end;
    }
    if (stats != nullptr) stats->result_size = TotalSize(*rels);
    return Status::OK();
  });
}

}  // namespace linrec
