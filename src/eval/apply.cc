#include "eval/apply.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>

#include "common/simd_kernels.h"
#include "common/strings.h"
#include "datalog/equality.h"
#include "datalog/printer.h"

namespace linrec {
namespace {

/// Per-atom compiled join step. Positions are classified against the static
/// set of variables bound by earlier steps, so the inner loop does no
/// case analysis beyond a precomputed dispatch.
struct JoinStep {
  const Relation* relation = nullptr;
  // Positions whose value is known before this step: constants and
  // already-bound variables. Used as the index key.
  std::vector<int> key_positions;
  // For each key position, the constant value or the variable to read.
  struct KeyPart {
    bool is_const;
    Value constant;
    VarId var;
  };
  std::vector<KeyPart> key_parts;
  // Positions that bind a new variable (first occurrence in this atom).
  std::vector<std::pair<int, VarId>> bind_positions;
  // Positions that must equal an earlier position of this same atom
  // (repeated new variable within the atom): (position, variable).
  std::vector<std::pair<int, VarId>> check_positions;
};

/// Per-depth cursor of the iterative join loop: the candidate row-id span
/// (nullptr ⇒ scan of [next, limit) row ids) and the next candidate.
struct JoinFrame {
  const RowId* rows = nullptr;
  std::size_t next = 0;
  std::size_t limit = 0;
};

}  // namespace

struct CompiledRule::Impl {
  // --- set at compile time ------------------------------------------------
  std::vector<JoinStep> steps;
  /// Head term templates: constants pre-filled in head_values; variables as
  /// (position, var) pairs filled per emit.
  std::vector<std::pair<std::size_t, VarId>> head_vars;
  std::size_t head_arity = 0;
  /// True when some body predicate resolved to no relation at all: the rule
  /// can never derive anything (Run is a successful no-op, like the
  /// original ApplyRule's early return).
  bool no_input = false;
  /// Index of the step the partition applies to (always 0: the forced
  /// first atom); -1 when no first atom was forced (RunPartition invalid).
  bool partitionable = false;

  // --- per-Run scratch (why Run is not thread-safe) -----------------------
  std::vector<Value> binding;
  std::vector<Value> key_buf;
  std::vector<Value> head_values;
  std::vector<JoinFrame> frames;
  std::vector<const HashIndex*> indexes;
  /// Pending head rows (kEmitBatch × head_arity values) and their hashes:
  /// emits are buffered so the output table's probe slots can be
  /// prefetched a batch ahead — the probes' cache misses overlap instead
  /// of stalling the join one emit at a time.
  static constexpr std::size_t kEmitBatch = 16;
  std::vector<Value> emit_rows;
  std::vector<std::size_t> emit_hashes;

  Status Execute(const PartitionView* delta, Relation* out,
                 ClosureStats* stats, IndexCache* cache,
                 const CancellationToken* cancel);
};

CompiledRule::CompiledRule() : impl_(new Impl) {}
CompiledRule::~CompiledRule() = default;
CompiledRule::CompiledRule(CompiledRule&&) noexcept = default;
CompiledRule& CompiledRule::operator=(CompiledRule&&) noexcept = default;

Result<CompiledRule> CompileRule(const Rule& rule, const Database& db,
                                 const ApplyOptions& options) {
  CompiledRule compiled;
  CompiledRule::Impl& impl = *compiled.impl_;
  const std::vector<Atom>& body = rule.body();
  for (const Atom& atom : body) {
    if (atom.predicate == kEqualityPredicate) {
      return Status::InvalidArgument(
          "rule contains equality atoms; run EliminateEqualities first "
          "(closure routines do this automatically)");
    }
  }

  // Resolve each body atom to a relation (override > database > empty).
  std::vector<const Relation*> relations(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) {
    auto ov = options.overrides.find(static_cast<int>(i));
    if (ov != options.overrides.end()) {
      relations[i] = ov->second;
    } else {
      relations[i] = db.Find(body[i].predicate);
    }
    if (relations[i] != nullptr &&
        relations[i]->arity() != body[i].arity()) {
      return Status::InvalidArgument(
          StrCat("relation for '", body[i].predicate, "' has arity ",
                 relations[i]->arity(), ", atom expects ", body[i].arity()));
    }
    if (relations[i] == nullptr) impl.no_input = true;
  }

  // Greedy join order: start with the forced atom (or the smallest
  // relation); then repeatedly take the atom with the most bound positions,
  // tie-breaking on relation size. Sizes are compile-time sizes: the order
  // is frozen for the closure (any order is correct; the forced-Δ-first
  // property, which is what matters, is structural).
  const int n = static_cast<int>(body.size());
  std::vector<bool> used(body.size(), false);
  std::vector<bool> bound(static_cast<std::size_t>(rule.var_count()), false);
  std::vector<int> order;
  order.reserve(body.size());

  auto rel_size = [&](int i) {
    const Relation* r = relations[static_cast<std::size_t>(i)];
    return r == nullptr ? static_cast<std::size_t>(0) : r->size();
  };
  auto bound_score = [&](int i) {
    int score = 0;
    for (const Term& t : body[static_cast<std::size_t>(i)].terms) {
      if (t.is_const() || bound[static_cast<std::size_t>(t.var())]) ++score;
    }
    return score;
  };

  int first = options.first_atom;
  if (first < 0) {
    std::size_t best_size = SIZE_MAX;
    for (int i = 0; i < n; ++i) {
      if (rel_size(i) < best_size) {
        best_size = rel_size(i);
        first = i;
      }
    }
  } else {
    impl.partitionable = true;
  }
  auto mark_used = [&](int i) {
    used[static_cast<std::size_t>(i)] = true;
    order.push_back(i);
    for (const Term& t : body[static_cast<std::size_t>(i)].terms) {
      if (t.is_var()) bound[static_cast<std::size_t>(t.var())] = true;
    }
  };
  if (n > 0) mark_used(first);
  while (static_cast<int>(order.size()) < n) {
    int best = -1;
    int best_bound = -1;
    std::size_t best_size = SIZE_MAX;
    for (int i = 0; i < n; ++i) {
      if (used[static_cast<std::size_t>(i)]) continue;
      int b = bound_score(i);
      std::size_t sz = rel_size(i);
      if (b > best_bound || (b == best_bound && sz < best_size)) {
        best = i;
        best_bound = b;
        best_size = sz;
      }
    }
    mark_used(best);
  }

  // Compile join steps against the chosen order.
  std::fill(bound.begin(), bound.end(), false);
  impl.steps.reserve(body.size());
  std::size_t max_key_len = 0;
  for (int atom_index : order) {
    const Atom& atom = body[static_cast<std::size_t>(atom_index)];
    JoinStep step;
    step.relation = relations[static_cast<std::size_t>(atom_index)];
    std::vector<bool> bound_here = bound;  // copy: track intra-atom bindings
    for (std::size_t p = 0; p < atom.terms.size(); ++p) {
      const Term& t = atom.terms[p];
      if (t.is_const()) {
        step.key_positions.push_back(static_cast<int>(p));
        step.key_parts.push_back({true, t.constant(), -1});
      } else if (bound[static_cast<std::size_t>(t.var())]) {
        step.key_positions.push_back(static_cast<int>(p));
        step.key_parts.push_back({false, 0, t.var()});
      } else if (bound_here[static_cast<std::size_t>(t.var())]) {
        step.check_positions.push_back({static_cast<int>(p), t.var()});
      } else {
        step.bind_positions.push_back({static_cast<int>(p), t.var()});
        bound_here[static_cast<std::size_t>(t.var())] = true;
      }
    }
    bound = bound_here;
    max_key_len = std::max(max_key_len, step.key_positions.size());
    impl.steps.push_back(std::move(step));
  }

  // The head must be fully bound by the body.
  impl.head_arity = rule.head().arity();
  impl.head_values.assign(impl.head_arity, 0);
  for (std::size_t i = 0; i < rule.head().terms.size(); ++i) {
    const Term& t = rule.head().terms[i];
    if (t.is_const()) {
      impl.head_values[i] = t.constant();
    } else {
      if (!bound[static_cast<std::size_t>(t.var())]) {
        return Status::InvalidArgument(
            StrCat("head variable '", rule.var_name(t.var()),
                   "' is not bound by the body in rule: ", ToString(rule)));
      }
      impl.head_vars.push_back({i, t.var()});
    }
  }

  impl.binding.assign(static_cast<std::size_t>(rule.var_count()), 0);
  impl.key_buf.assign(max_key_len, 0);
  impl.frames.resize(impl.steps.size());
  impl.indexes.assign(impl.steps.size(), nullptr);
  impl.emit_rows.reserve(CompiledRule::Impl::kEmitBatch * impl.head_arity);
  impl.emit_hashes.reserve(CompiledRule::Impl::kEmitBatch);
  return compiled;
}

Status CompiledRule::Impl::Execute(const PartitionView* delta, Relation* out,
                                   ClosureStats* stats, IndexCache* cache,
                                   const CancellationToken* cancel) {
  if (out->arity() != head_arity) {
    return Status::InvalidArgument(StrCat("output arity ", out->arity(),
                                          " != head arity ", head_arity));
  }
  // Empty input somewhere: no derivations possible (and, matching the
  // original ApplyRule, no stats are charged).
  if (no_input) return Status::OK();
  for (const JoinStep& step : steps) {
    if (step.relation->empty()) return Status::OK();
  }
  if (delta != nullptr) {
    assert(partitionable && !steps.empty() &&
           delta->relation == steps.front().relation &&
           "partition must view the compiled first atom's relation");
    if (delta->empty()) return Status::OK();
  }

  // Re-resolve indexes through the cache: relations may have grown since
  // the last Run (the Δ-carrying relation does every round); the cache
  // rebuilds exactly the stale ones. The partitioned first step never uses
  // an index — it range-scans its slice and checks constants per row.
  IndexCache local_cache;
  IndexCache* idx = cache != nullptr ? cache : &local_cache;
  for (std::size_t d = 0; d < steps.size(); ++d) {
    const bool partitioned_first = delta != nullptr && d == 0;
    indexes[d] = (!partitioned_first && !steps[d].key_positions.empty())
                     ? &idx->Get(*steps[d].relation, steps[d].key_positions)
                     : nullptr;
  }

  std::size_t produced = 0;
  std::size_t rows_scanned = 0;   // candidate rows examined across depths
  std::size_t probes_issued = 0;  // index lookups resolved in enter()
  std::size_t filter_blocks = 0;  // Δ-filter blocks walked (+ lane hits)
  std::size_t filter_hits = 0;
  emit_rows.clear();
  emit_hashes.clear();
  auto flush_emits = [&]() {
    for (std::size_t k = 0; k < emit_hashes.size(); ++k) {
      out->InsertRowHashed(emit_rows.data() + k * head_arity,
                           emit_hashes[k]);
    }
    emit_rows.clear();
    emit_hashes.clear();
  };
  auto emit_head = [&]() {
    for (const auto& [pos, var] : head_vars) {
      head_values[pos] = binding[static_cast<std::size_t>(var)];
    }
    ++produced;
    const std::size_t hash = HashRow(head_values.data(), head_arity);
    out->PrefetchSlot(hash);
    emit_rows.insert(emit_rows.end(), head_values.begin(),
                     head_values.end());
    emit_hashes.push_back(hash);
    if (emit_hashes.size() == kEmitBatch) flush_emits();
  };

  if (steps.empty()) {
    // Bodyless rule: the (all-constant) head holds unconditionally.
    emit_head();
    flush_emits();
  } else {
    // Iterative depth-first join. Everything the loop touches was allocated
    // at compile time: the per-candidate path does index probes, binding
    // writes, and InsertRow — zero heap allocations per candidate tuple.
    const std::size_t last = steps.size() - 1;

    // Probe pipeline depth: candidate row data is prefetched this many
    // rows ahead of consumption (seeded in enter(), advanced one row per
    // candidate below), so an index bucket's scattered row reads miss the
    // cache in overlapping flight instead of serializing — the same idiom
    // as the dedup rehash batch prefetch (storage/relation.cc).
    constexpr std::size_t kProbePrefetch = 8;

    // Positions the candidate cursor at `depth`, resolving the step's
    // index bucket from the current binding (no candidates ⇒ limit 0).
    auto enter = [&](std::size_t depth) {
      const JoinStep& step = steps[depth];
      JoinFrame& f = frames[depth];
      f.next = 0;
      if (indexes[depth] != nullptr) {
        const auto& parts = step.key_parts;
        for (std::size_t k = 0; k < parts.size(); ++k) {
          key_buf[k] = parts[k].is_const
                           ? parts[k].constant
                           : binding[static_cast<std::size_t>(parts[k].var)];
        }
        ++probes_issued;
        RowSpan span = indexes[depth]->Lookup(key_buf.data());
        f.rows = span.ids;
        f.limit = span.count;
        // Fill the pipeline: the bucket's row ids are contiguous, but the
        // rows they name are scattered across the pool.
        const std::size_t fill =
            span.count < kProbePrefetch ? span.count : kProbePrefetch;
        for (std::size_t k = 0; k < fill; ++k) {
          __builtin_prefetch(step.relation->RowData(span.ids[k]));
        }
      } else if (depth == 0 && delta != nullptr) {
        f.rows = nullptr;  // partitioned: scan the Δ slice only
        f.next = delta->begin;
        f.limit = delta->end;
      } else {
        f.rows = nullptr;  // no bound position: scan the whole relation
        f.limit = step.relation->size();
      }
    };

    // Constant positions of the partitioned first step, checked blockwise
    // along the Δ slice (the full-scan path resolves them through an index
    // instead). The check is a per-block equality mask — one vector compare
    // per constant per simd::kLanes rows under LINREC_SIMD, the scalar
    // reference kernel otherwise — cached across the consecutive rows of
    // the block. All key parts of step 0 are constants: no variable is
    // bound before the first step.
    const bool filter_first =
        delta != nullptr && !steps[0].key_positions.empty();
    const Value* filt_pool =
        filter_first ? steps[0].relation->RowData(0) : nullptr;
    const std::size_t filt_stride = steps[0].relation->arity();
    std::size_t filt_base = static_cast<std::size_t>(-1);
    unsigned filt_mask = 0;

    // In-cursor stop probe: one counter increment per candidate row, one
    // relaxed atomic load every kCancelStride of them, zero clock reads.
    // This is what lets the watchdog (which flips the token's flag) stop a
    // query stuck inside a single enormous chunk within milliseconds.
    constexpr std::size_t kCancelStride = 2048;
    std::size_t candidates_since_check = 0;

    std::size_t depth = 0;
    bool descending = true;
    while (true) {
      if (descending) enter(depth);
      const JoinStep& step = steps[depth];
      JoinFrame& f = frames[depth];
      bool matched = false;
      while (f.next < f.limit) {
        if (cancel != nullptr && ++candidates_since_check >= kCancelStride) {
          candidates_since_check = 0;
          if (cancel->stop_requested()) {
            flush_emits();
            return cancel->Check();
          }
        }
        RowId row = f.rows != nullptr ? f.rows[f.next]
                                      : static_cast<RowId>(f.next);
        ++f.next;
        ++rows_scanned;
        if (f.rows != nullptr) {
          // Keep the probe pipeline full: prefetch the row kProbePrefetch
          // candidates ahead of the one being consumed.
          const std::size_t ahead = f.next - 1 + kProbePrefetch;
          if (ahead < f.limit) {
            __builtin_prefetch(step.relation->RowData(f.rows[ahead]));
          }
        }
        if (depth == 0 && filter_first) {
          const std::size_t r = static_cast<std::size_t>(row);
          const std::size_t base = r & ~(simd::kLanes - 1);
          if (base != filt_base) {
            filt_base = base;
            // Lanes past the relation's last row read padded pool storage
            // (in-allocation, but uninitialized) — mask them out up front
            // so the hit counters stay deterministic.
            const std::size_t left = steps[0].relation->size() - base;
            unsigned m = left >= simd::kLanes
                             ? (1u << simd::kLanes) - 1u
                             : (1u << left) - 1u;
            const Value* block = filt_pool + base * filt_stride;
            for (std::size_t k = 0;
                 m != 0 && k < step.key_positions.size(); ++k) {
              const Value* col =
                  block + static_cast<std::size_t>(step.key_positions[k]);
#if LINREC_SIMD
              m &= simd::BlockEqMask(col, filt_stride,
                                     step.key_parts[k].constant);
#else
              m &= simd::BlockEqMaskScalar(col, filt_stride,
                                           step.key_parts[k].constant);
#endif
            }
            filt_mask = m;
            ++filter_blocks;
            filter_hits += static_cast<std::size_t>(__builtin_popcount(m));
          }
          if (((filt_mask >> (r - base)) & 1u) == 0) continue;
        }
        const Value* t = step.relation->RowData(row);
        // Bind new variables, then verify intra-atom repeats.
        for (const auto& [pos, var] : step.bind_positions) {
          binding[static_cast<std::size_t>(var)] =
              t[static_cast<std::size_t>(pos)];
        }
        bool ok = true;
        for (const auto& [pos, var] : step.check_positions) {
          if (t[static_cast<std::size_t>(pos)] !=
              binding[static_cast<std::size_t>(var)]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (depth == last) {
          emit_head();  // stay at this depth: keep scanning candidates
          continue;
        }
        matched = true;
        break;
      }
      if (matched) {
        ++depth;
        descending = true;
        continue;
      }
      if (depth == 0) break;
      --depth;
      descending = false;
    }
    flush_emits();
  }

  if (stats != nullptr) {
    stats->rule_applications += 1;
    stats->derivations += produced;
    stats->rows_scanned += rows_scanned;
    stats->probes_issued += probes_issued;
    stats->simd_blocks += filter_blocks;
    stats->simd_lane_hits += filter_hits;
  }
  return Status::OK();
}

Status CompiledRule::Run(Relation* out, ClosureStats* stats,
                         IndexCache* cache, const CancellationToken* cancel) {
  return impl_->Execute(nullptr, out, stats, cache, cancel);
}

Status CompiledRule::RunPartition(PartitionView delta, Relation* out,
                                  ClosureStats* stats, IndexCache* cache,
                                  const CancellationToken* cancel) {
  if (!impl_->partitionable) {
    return Status::InvalidArgument(
        "RunPartition requires a rule compiled with options.first_atom");
  }
  return impl_->Execute(&delta, out, stats, cache, cancel);
}

Status ApplyRule(const Rule& rule, const Database& db,
                 const ApplyOptions& options, Relation* out,
                 ClosureStats* stats, IndexCache* cache) {
  Result<CompiledRule> compiled = CompileRule(rule, db, options);
  if (!compiled.ok()) return compiled.status();
  return compiled->Run(out, stats, cache);
}

Result<Relation> ApplySum(const std::vector<LinearRule>& rules,
                          const Database& db, const Relation& input,
                          ClosureStats* stats, IndexCache* cache) {
  if (rules.empty()) {
    return Status::InvalidArgument("ApplySum requires at least one rule");
  }
  Relation out(rules[0].arity());
  for (const LinearRule& lr : rules) {
    if (lr.arity() != input.arity()) {
      return Status::InvalidArgument(
          StrCat("rule arity ", lr.arity(), " != input arity ",
                 input.arity()));
    }
    const LinearRule* effective = &lr;
    std::optional<LinearRule> eliminated;
    if (HasEqualities(lr.rule())) {
      Result<std::optional<LinearRule>> prepared =
          EliminateEqualitiesLinear(lr);
      if (!prepared.ok()) return prepared.status();
      if (!prepared->has_value()) continue;  // unsatisfiable equalities
      eliminated = std::move(**prepared);
      effective = &*eliminated;
    }
    ApplyOptions options;
    options.overrides[effective->recursive_atom_index()] = &input;
    options.first_atom = effective->recursive_atom_index();
    LINREC_RETURN_IF_ERROR(
        ApplyRule(effective->rule(), db, options, &out, stats, cache));
  }
  return out;
}

}  // namespace linrec
