#include "eval/apply.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>

#include "common/strings.h"
#include "datalog/equality.h"
#include "datalog/printer.h"

namespace linrec {
namespace {

/// Per-atom compiled join step. Positions are classified against the static
/// set of variables bound by earlier steps, so the inner loop does no
/// case analysis beyond a precomputed dispatch.
struct JoinStep {
  const Relation* relation = nullptr;
  // Positions whose value is known before this step: constants and
  // already-bound variables. Used as the index key.
  std::vector<int> key_positions;
  // For each key position, the constant value or the variable to read.
  struct KeyPart {
    bool is_const;
    Value constant;
    VarId var;
  };
  std::vector<KeyPart> key_parts;
  // Positions that bind a new variable (first occurrence in this atom).
  std::vector<std::pair<int, VarId>> bind_positions;
  // Positions that must equal an earlier position of this same atom
  // (repeated new variable within the atom): (position, variable).
  std::vector<std::pair<int, VarId>> check_positions;
};

/// Per-depth cursor of the iterative join loop: the candidate row-id list
/// (nullptr ⇒ full scan of the step's relation) and the next candidate.
struct JoinFrame {
  const std::vector<RowId>* rows = nullptr;
  std::size_t next = 0;
  std::size_t limit = 0;
};

}  // namespace

Status ApplyRule(const Rule& rule, const Database& db,
                 const ApplyOptions& options, Relation* out,
                 ClosureStats* stats, IndexCache* cache) {
  const std::vector<Atom>& body = rule.body();
  if (out->arity() != rule.head().arity()) {
    return Status::InvalidArgument(
        StrCat("output arity ", out->arity(), " != head arity ",
               rule.head().arity()));
  }
  for (const Atom& atom : body) {
    if (atom.predicate == kEqualityPredicate) {
      return Status::InvalidArgument(
          "rule contains equality atoms; run EliminateEqualities first "
          "(closure routines do this automatically)");
    }
  }

  // Resolve each body atom to a relation (override > database > empty).
  std::vector<const Relation*> relations(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) {
    auto ov = options.overrides.find(static_cast<int>(i));
    if (ov != options.overrides.end()) {
      relations[i] = ov->second;
    } else {
      relations[i] = db.Find(body[i].predicate);
    }
    if (relations[i] != nullptr &&
        relations[i]->arity() != body[i].arity()) {
      return Status::InvalidArgument(
          StrCat("relation for '", body[i].predicate, "' has arity ",
                 relations[i]->arity(), ", atom expects ", body[i].arity()));
    }
    if (relations[i] == nullptr) {
      // Empty input somewhere: no derivations possible.
      return Status::OK();
    }
    if (relations[i]->empty()) return Status::OK();
  }

  // Greedy join order: start with the forced atom (or the smallest
  // relation); then repeatedly take the atom with the most bound positions,
  // tie-breaking on relation size.
  const int n = static_cast<int>(body.size());
  std::vector<bool> used(body.size(), false);
  std::vector<bool> bound(static_cast<std::size_t>(rule.var_count()), false);
  std::vector<int> order;
  order.reserve(body.size());

  auto bound_score = [&](int i) {
    int score = 0;
    for (const Term& t : body[static_cast<std::size_t>(i)].terms) {
      if (t.is_const() || bound[static_cast<std::size_t>(t.var())]) ++score;
    }
    return score;
  };

  int first = options.first_atom;
  if (first < 0) {
    std::size_t best_size = SIZE_MAX;
    for (int i = 0; i < n; ++i) {
      if (relations[static_cast<std::size_t>(i)]->size() < best_size) {
        best_size = relations[static_cast<std::size_t>(i)]->size();
        first = i;
      }
    }
  }
  auto mark_used = [&](int i) {
    used[static_cast<std::size_t>(i)] = true;
    order.push_back(i);
    for (const Term& t : body[static_cast<std::size_t>(i)].terms) {
      if (t.is_var()) bound[static_cast<std::size_t>(t.var())] = true;
    }
  };
  mark_used(first);
  while (static_cast<int>(order.size()) < n) {
    int best = -1;
    int best_bound = -1;
    std::size_t best_size = SIZE_MAX;
    for (int i = 0; i < n; ++i) {
      if (used[static_cast<std::size_t>(i)]) continue;
      int b = bound_score(i);
      std::size_t sz = relations[static_cast<std::size_t>(i)]->size();
      if (b > best_bound || (b == best_bound && sz < best_size)) {
        best = i;
        best_bound = b;
        best_size = sz;
      }
    }
    mark_used(best);
  }

  // Compile join steps against the chosen order.
  std::fill(bound.begin(), bound.end(), false);
  std::vector<JoinStep> steps;
  steps.reserve(body.size());
  std::size_t max_key_len = 0;
  for (int atom_index : order) {
    const Atom& atom = body[static_cast<std::size_t>(atom_index)];
    JoinStep step;
    step.relation = relations[static_cast<std::size_t>(atom_index)];
    std::vector<bool> bound_here = bound;  // copy: track intra-atom bindings
    for (std::size_t p = 0; p < atom.terms.size(); ++p) {
      const Term& t = atom.terms[p];
      if (t.is_const()) {
        step.key_positions.push_back(static_cast<int>(p));
        step.key_parts.push_back({true, t.constant(), -1});
      } else if (bound[static_cast<std::size_t>(t.var())]) {
        step.key_positions.push_back(static_cast<int>(p));
        step.key_parts.push_back({false, 0, t.var()});
      } else if (bound_here[static_cast<std::size_t>(t.var())]) {
        step.check_positions.push_back({static_cast<int>(p), t.var()});
      } else {
        step.bind_positions.push_back({static_cast<int>(p), t.var()});
        bound_here[static_cast<std::size_t>(t.var())] = true;
      }
    }
    bound = bound_here;
    max_key_len = std::max(max_key_len, step.key_positions.size());
    steps.push_back(std::move(step));
  }

  // The head must be fully bound by the body.
  for (const Term& t : rule.head().terms) {
    if (t.is_var() && !bound[static_cast<std::size_t>(t.var())]) {
      return Status::InvalidArgument(
          StrCat("head variable '", rule.var_name(t.var()),
                 "' is not bound by the body in rule: ", ToString(rule)));
    }
  }

  // Pre-resolve indexes (stable during this application).
  IndexCache local_cache;
  IndexCache* idx = cache != nullptr ? cache : &local_cache;
  std::vector<const HashIndex*> indexes(steps.size(), nullptr);
  for (std::size_t d = 0; d < steps.size(); ++d) {
    if (!steps[d].key_positions.empty()) {
      indexes[d] = &idx->Get(*steps[d].relation, steps[d].key_positions);
    }
  }

  std::vector<Value> binding(static_cast<std::size_t>(rule.var_count()), 0);
  std::vector<Value> key_buf(max_key_len, 0);
  std::vector<Value> head_values(rule.head().arity(), 0);
  for (std::size_t i = 0; i < rule.head().terms.size(); ++i) {
    if (rule.head().terms[i].is_const()) {
      head_values[i] = rule.head().terms[i].constant();
    }
  }

  std::size_t produced = 0;
  auto emit_head = [&]() {
    for (std::size_t i = 0; i < rule.head().terms.size(); ++i) {
      const Term& t = rule.head().terms[i];
      if (t.is_var()) {
        head_values[i] = binding[static_cast<std::size_t>(t.var())];
      }
    }
    ++produced;
    out->InsertRow(head_values.data());
  };

  if (steps.empty()) {
    // Bodyless rule: the (all-constant) head holds unconditionally.
    emit_head();
  } else {
    // Iterative depth-first join. Everything the loop touches was allocated
    // above: the per-candidate path does index probes, binding writes, and
    // InsertRow — zero heap allocations per candidate tuple.
    std::vector<JoinFrame> frames(steps.size());
    const std::size_t last = steps.size() - 1;

    // Positions the candidate cursor at `depth`, resolving the step's
    // index bucket from the current binding (no candidates ⇒ limit 0).
    auto enter = [&](std::size_t depth) {
      const JoinStep& step = steps[depth];
      JoinFrame& f = frames[depth];
      f.next = 0;
      if (indexes[depth] != nullptr) {
        const auto& parts = step.key_parts;
        for (std::size_t k = 0; k < parts.size(); ++k) {
          key_buf[k] = parts[k].is_const
                           ? parts[k].constant
                           : binding[static_cast<std::size_t>(parts[k].var)];
        }
        f.rows = indexes[depth]->Lookup(key_buf.data());
        f.limit = f.rows != nullptr ? f.rows->size() : 0;
      } else {
        f.rows = nullptr;  // no bound position: scan the whole relation
        f.limit = step.relation->size();
      }
    };

    std::size_t depth = 0;
    bool descending = true;
    while (true) {
      if (descending) enter(depth);
      const JoinStep& step = steps[depth];
      JoinFrame& f = frames[depth];
      bool matched = false;
      while (f.next < f.limit) {
        RowId row = f.rows != nullptr ? (*f.rows)[f.next]
                                      : static_cast<RowId>(f.next);
        ++f.next;
        const Value* t = step.relation->RowData(row);
        // Bind new variables, then verify intra-atom repeats.
        for (const auto& [pos, var] : step.bind_positions) {
          binding[static_cast<std::size_t>(var)] =
              t[static_cast<std::size_t>(pos)];
        }
        bool ok = true;
        for (const auto& [pos, var] : step.check_positions) {
          if (t[static_cast<std::size_t>(pos)] !=
              binding[static_cast<std::size_t>(var)]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (depth == last) {
          emit_head();  // stay at this depth: keep scanning candidates
          continue;
        }
        matched = true;
        break;
      }
      if (matched) {
        ++depth;
        descending = true;
        continue;
      }
      if (depth == 0) break;
      --depth;
      descending = false;
    }
  }

  if (stats != nullptr) {
    stats->rule_applications += 1;
    stats->derivations += produced;
  }
  return Status::OK();
}

Result<Relation> ApplySum(const std::vector<LinearRule>& rules,
                          const Database& db, const Relation& input,
                          ClosureStats* stats, IndexCache* cache) {
  if (rules.empty()) {
    return Status::InvalidArgument("ApplySum requires at least one rule");
  }
  Relation out(rules[0].arity());
  for (const LinearRule& lr : rules) {
    if (lr.arity() != input.arity()) {
      return Status::InvalidArgument(
          StrCat("rule arity ", lr.arity(), " != input arity ",
                 input.arity()));
    }
    const LinearRule* effective = &lr;
    std::optional<LinearRule> eliminated;
    if (HasEqualities(lr.rule())) {
      Result<std::optional<LinearRule>> prepared =
          EliminateEqualitiesLinear(lr);
      if (!prepared.ok()) return prepared.status();
      if (!prepared->has_value()) continue;  // unsatisfiable equalities
      eliminated = std::move(**prepared);
      effective = &*eliminated;
    }
    ApplyOptions options;
    options.overrides[effective->recursive_atom_index()] = &input;
    options.first_atom = effective->recursive_atom_index();
    LINREC_RETURN_IF_ERROR(
        ApplyRule(effective->rule(), db, options, &out, stats, cache));
  }
  return out;
}

}  // namespace linrec
