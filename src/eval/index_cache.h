// Version-keyed cache of hash indexes over relations.

#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "storage/relation.h"

namespace linrec {

/// Caches HashIndex instances keyed by (relation identity, key positions).
/// An index is rebuilt when the relation's version has moved since the index
/// was built. Closure loops share one cache so that indexes over the stable
/// parameter relations are built once across all iterations.
///
/// The table is an unordered_map whose key carries its own precomputed hash,
/// so a Get is one O(1) probe (plus one small vector copy to build the probe
/// key) instead of a red-black-tree walk with per-node vector comparisons.
class IndexCache {
 public:
  /// Returns an index of `rel` on `positions`, building it if necessary.
  /// The reference stays valid until the next Get call that rebuilds the
  /// same entry (i.e., after `rel` was modified).
  const HashIndex& Get(const Relation& rel, const std::vector<int>& positions);

  /// Drops every entry whose keyed relation is not in `keep`. Long-lived
  /// owners (the engine) call this after a closure so indexes built over
  /// dead temporary relations (per-iteration Δs, seeds) do not accumulate.
  void RetainOnly(const std::unordered_set<const Relation*>& keep);

  std::size_t entry_count() const { return entries_.size(); }
  std::size_t rebuilds() const { return rebuilds_; }

 private:
  struct Key {
    const Relation* rel;
    std::vector<int> positions;
    std::size_t hash;

    Key(const Relation* r, std::vector<int> p)
        : rel(r), positions(std::move(p)) {
      std::size_t h = std::hash<const void*>{}(rel);
      for (int x : positions) HashCombine(&h, std::hash<int>{}(x));
      hash = h;
    }
    bool operator==(const Key& o) const {
      return rel == o.rel && positions == o.positions;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const { return k.hash; }
  };

  std::unordered_map<Key, std::unique_ptr<HashIndex>, KeyHash> entries_;
  std::size_t rebuilds_ = 0;
};

}  // namespace linrec
