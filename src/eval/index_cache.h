// Version-keyed cache of hash indexes over relations.

#pragma once

#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "storage/relation.h"

namespace linrec {

/// Caches HashIndex instances keyed by (relation identity, key positions).
/// An index is rebuilt when the relation's version has moved since the index
/// was built. Closure loops share one cache so that indexes over the stable
/// parameter relations are built once across all iterations.
class IndexCache {
 public:
  /// Returns an index of `rel` on `positions`, building it if necessary.
  /// The reference stays valid until the next Get call that rebuilds the
  /// same entry (i.e., after `rel` was modified).
  const HashIndex& Get(const Relation& rel, const std::vector<int>& positions);

  /// Drops every entry whose keyed relation is not in `keep`. Long-lived
  /// owners (the engine) call this after a closure so indexes built over
  /// dead temporary relations (per-iteration Δs, seeds) do not accumulate.
  void RetainOnly(const std::unordered_set<const Relation*>& keep);

  std::size_t entry_count() const { return entries_.size(); }
  std::size_t rebuilds() const { return rebuilds_; }

 private:
  using Key = std::pair<const Relation*, std::vector<int>>;
  std::map<Key, std::unique_ptr<HashIndex>> entries_;
  std::size_t rebuilds_ = 0;
};

}  // namespace linrec
