// Version-keyed cache of hash indexes over relations.

#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/thread_annotations.h"
#include "storage/relation.h"

namespace linrec {

/// Caches HashIndex instances keyed by (relation identity, key positions).
/// An index is rebuilt when the relation's version has moved since the index
/// was built. Closure loops share one cache so that indexes over the stable
/// parameter relations are built once across all iterations.
///
/// The table is an unordered_map whose key carries its own precomputed hash,
/// so a Get is one O(1) probe instead of a red-black-tree walk with per-node
/// vector comparisons. The probe key is a member whose positions vector is
/// reused across calls, so a cache hit — every steady-state closure round —
/// performs zero heap allocations. (Get always mutated the cache, so this
/// adds no new thread-safety requirement; concurrent users already need
/// their own tier or an internally locked tier, as SharedIndexCache /
/// TieredIndexCache arrange.)
///
/// NOT internally synchronized: this is the per-lane / per-query tier.
/// Concurrent sharing goes through SharedIndexCache, whose mutex the
/// thread-safety analysis enforces.
///
/// The accessors are virtual so SharedIndexCache (locked) and
/// TieredIndexCache (routing) can interpose; Get runs once per (round, Δ
/// chunk, join step), never per tuple, so the indirection costs nothing
/// measurable.
class IndexCache {
 public:
  IndexCache() = default;
  virtual ~IndexCache() = default;
  // Movable (per-lane caches live in resizable vectors); not copyable —
  // the entries own their indexes.
  IndexCache(IndexCache&&) = default;
  IndexCache& operator=(IndexCache&&) = default;

  /// Returns an index of `rel` on `positions`, building it if necessary.
  /// The reference stays valid until the next Get call that rebuilds the
  /// same entry (i.e., after `rel` was modified).
  virtual const HashIndex& Get(const Relation& rel,
                               const std::vector<int>& positions);

  /// Drops every entry whose keyed relation is not in `keep`. Long-lived
  /// owners (the engine) call this after a closure so indexes built over
  /// dead temporary relations (per-iteration Δs, seeds) do not accumulate.
  virtual void RetainOnly(const std::unordered_set<const Relation*>& keep);

  virtual std::size_t entry_count() const { return entries_.size(); }
  virtual std::size_t rebuilds() const { return rebuilds_; }

 private:
  struct Key {
    const Relation* rel = nullptr;
    std::vector<int> positions;
    std::size_t hash = 0;

    Key() = default;
    Key(const Relation* r, std::vector<int> p)
        : rel(r), positions(std::move(p)) {
      Rehash();
    }
    /// Rebinds in place, reusing the positions vector's capacity — the
    /// allocation-free path Get probes with.
    void Assign(const Relation* r, const std::vector<int>& p) {
      rel = r;
      positions.assign(p.begin(), p.end());
      Rehash();
    }
    void Rehash() {
      std::size_t h = std::hash<const void*>{}(rel);
      for (int x : positions) HashCombine(&h, std::hash<int>{}(x));
      hash = h;
    }
    bool operator==(const Key& o) const {
      return rel == o.rel && positions == o.positions;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const { return k.hash; }
  };

  std::unordered_map<Key, std::unique_ptr<HashIndex>, KeyHash> entries_;
  Key probe_;  // reused across Gets: hit path allocates nothing
  std::size_t rebuilds_ = 0;
};

/// The engine's long-lived cache: an IndexCache whose every access runs
/// under an internal mutex, so batch lanes (through TieredIndexCache) and
/// the engine's own eviction sweep share it safely — and the thread-safety
/// analysis can prove it, because the lock and the tier it guards live in
/// one class (inner_ is LINREC_GUARDED_BY(mu_)).
///
/// This replaces the old arrangement — a per-batch function-local
/// std::mutex beside an unguarded engine member — where the eviction
/// sweep's safety rested on "all lanes have joined by now", an argument no
/// analyzer could check.
///
/// Returning references out of Get after the lock drops is safe for the
/// same reason it always was: entries are heap-owned (the map never moves
/// them), and a shared relation is quiescent while a batch runs, so no Get
/// can rebuild an entry another lane still reads. The serial path pays one
/// uncontended lock per Get — per (round, chunk, join step), never per
/// tuple; see the bench gate.
class SharedIndexCache final : public IndexCache {
 public:
  SharedIndexCache() = default;

  // Movable so Engine stays movable (tests/benches return engines from
  // factories). Moves are single-threaded by contract — nothing else can
  // hold a reference to an engine still being constructed — but the
  // source's mutex is taken anyway so the access discipline on inner_
  // holds everywhere the analysis looks. The destination gets a fresh
  // mutex (mutexes are not movable, and must not be).
  SharedIndexCache(SharedIndexCache&& other) {
    MutexLock lock(other.mu_);
    inner_ = std::move(other.inner_);
  }
  SharedIndexCache& operator=(SharedIndexCache&& other) {
    if (this != &other) {
      MutexLock mine(mu_);
      MutexLock theirs(other.mu_);
      inner_ = std::move(other.inner_);
    }
    return *this;
  }

  const HashIndex& Get(const Relation& rel,
                       const std::vector<int>& positions) override
      LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return inner_.Get(rel, positions);
  }

  void RetainOnly(const std::unordered_set<const Relation*>& keep) override
      LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    inner_.RetainOnly(keep);
  }

  std::size_t entry_count() const override LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return inner_.entry_count();
  }
  std::size_t rebuilds() const override LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return inner_.rebuilds();
  }

 private:
  mutable Mutex mu_;
  IndexCache inner_ LINREC_GUARDED_BY(mu_);
};

/// Two-tier cache for batched multi-query execution (Engine::ExecuteBatch).
///
/// Probes over relations in `shared_relations` (the engine's parameter
/// relations, which every query of a batch reads but none mutates) route to
/// the engine's SharedIndexCache — internally locked, so an index over a
/// parameter relation is built once and reused by every query of the batch.
/// Every other probe — per-query temporaries: the Δ-carrying result, seeds,
/// phase intermediates — lands in this object's own private (lock-free)
/// tier, keeping queries isolated from each other; the private tier dies
/// with the TieredIndexCache at query end, which is also what defers
/// shared-tier eviction to the batch boundary.
class TieredIndexCache final : public IndexCache {
 public:
  TieredIndexCache(IndexCache* shared,
                   const std::unordered_set<const Relation*>* shared_relations)
      : shared_(shared), shared_relations_(shared_relations) {}

  const HashIndex& Get(const Relation& rel,
                       const std::vector<int>& positions) override {
    if (shared_relations_->count(&rel) != 0) {
      return shared_->Get(rel, positions);
    }
    return IndexCache::Get(rel, positions);
  }

 private:
  /// The engine's shared tier (a SharedIndexCache: self-locking).
  IndexCache* shared_;
  const std::unordered_set<const Relation*>* shared_relations_;
};

}  // namespace linrec
