// Joint multi-relation semi-naive fixpoint for mutually recursive
// predicates — one strongly connected component of the predicate
// dependency graph closed as a unit.
//
// The paper's processing class is single-predicate linear recursion; the
// joint fixpoint lifts the same computation model to *stratified linear
// mutual recursion*: every rule consumes exactly one tuple of exactly one
// member predicate (its "recursive atom") and derives into its head
// member, so the component closes by the familiar Δ-driven rounds — one Δ
// row-range per member relation instead of one. Rules compile once per
// closure (eval/apply.h CompiledRule); with workers >= 2 each round fans
// every member's Δ chunks to the shared work-stealing pool and folds
// per-member thread-local output pools through the sharded PoolMerger,
// exactly like the single-relation rounds of eval/fixpoint.h.

#pragma once

#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "datalog/rule.h"
#include "eval/index_cache.h"
#include "eval/stats.h"
#include "storage/database.h"

namespace linrec {

/// One rule of a joint closure over member predicates 0..M-1. The rule's
/// head predicate is member `head_member`; body atom `recursive_atom` is
/// the single atom reading a member relation (`recursive_member`, which
/// may equal `head_member` — plain self-recursion inside the component).
/// Every other body atom must resolve outside the component (EDB or an
/// already-materialized lower stratum): the joint fixpoint overrides only
/// the recursive atom, so a second member atom in the body would silently
/// read stale data. ValidateJointRules rejects such rules as non-linear.
struct JointRule {
  Rule rule;
  int head_member = -1;
  int recursive_atom = -1;
  int recursive_member = -1;
};

/// The joint boundary validation, shared by Query::Validate and the
/// closure entry points below: members distinct (and not the reserved
/// equality predicate), one seed per member, every rule structurally
/// valid and headed by its member with its recursive atom reading
/// `members[recursive_member]`, head/recursive arities matching the
/// seeds, and — the linearity invariant — exactly one body atom naming
/// any member (a second member atom would resolve against `db`, where
/// members are absent, and silently compute a wrong fixpoint).
Status ValidateJointRules(const std::vector<std::string>& members,
                          const std::vector<JointRule>& rules,
                          const std::vector<Relation>& seeds);

/// Structure-only variant: everything ValidateJointRules checks except the
/// seed count and seed-arity consistency. Used for prepared joint queries
/// (Engine::Prepare), whose seeds arrive per execution via
/// BoundQuery::BindSeeds — the closure entry points re-run the full
/// validation against the actual seeds.
Status ValidateJointRuleStructure(const std::vector<std::string>& members,
                                  const std::vector<JointRule>& rules);

/// Computes the least relations P_0..P_{M-1} with P_i ⊇ seeds[i] jointly
/// closed under every rule, by multi-relation semi-naive evaluation: each
/// round applies every rule to the Δ row-range of its recursive member
/// only. members[i] names P_i (used for validation); member arities are
/// the seed arities. The result is the same family of relations for
/// every worker count.
///
/// Equality atoms in rule bodies are statically eliminated up front
/// (rules left unsatisfiable contribute nothing). Parameter relations are
/// read from `db`; member relations are never read from `db` — the
/// recursive atom reads the evolving member relation via its override.
Result<std::vector<Relation>> JointSemiNaiveClosure(
    const std::vector<std::string>& members,
    const std::vector<JointRule>& rules, const Database& db,
    const std::vector<Relation>& seeds, ClosureStats* stats = nullptr,
    IndexCache* cache = nullptr, int workers = 1,
    const CancellationToken* cancel = nullptr);

/// In-place joint continuation — the multi-member counterpart of
/// SemiNaiveExtend (eval/fixpoint.h), used by the IVM delta engine.
/// `rels` holds one relation per member whose rows [0, delta_begin[m])
/// form a jointly closed prefix (a fixpoint of the rules) and whose rows
/// [delta_begin[m], size) are freshly appended seed/delta tuples; the call
/// extends every member to the joint fixpoint of the union, running Δ
/// rounds from exactly the appended ranges. Nothing is copied: every
/// mutation is an append, so the caller rolls a failure back by truncating
/// each member to its pre-call size (Relation::TruncateRows).
Status JointSemiNaiveExtend(const std::vector<std::string>& members,
                            const std::vector<JointRule>& rules,
                            const Database& db, std::vector<Relation>* rels,
                            const std::vector<RowId>& delta_begin,
                            ClosureStats* stats = nullptr,
                            IndexCache* cache = nullptr, int workers = 1,
                            const CancellationToken* cancel = nullptr);

/// The same fixpoint by naive evaluation: each round re-applies every rule
/// to its recursive member's FULL relation. Reference/baseline only —
/// identical results with many more duplicate derivations.
Result<std::vector<Relation>> JointNaiveClosure(
    const std::vector<std::string>& members,
    const std::vector<JointRule>& rules, const Database& db,
    const std::vector<Relation>& seeds, ClosureStats* stats = nullptr,
    IndexCache* cache = nullptr, int workers = 1,
    const CancellationToken* cancel = nullptr);

}  // namespace linrec
