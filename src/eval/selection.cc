#include "eval/selection.h"

#include <cassert>

namespace linrec {

Relation ApplySelection(const Relation& input, const Selection& selection) {
  assert(selection.position >= 0 &&
         static_cast<std::size_t>(selection.position) < input.arity());
  // Columnar: one strided pass over the selected column counts the matches
  // (vectorizable — no other column is touched), the output is reserved
  // exactly, and the matching rows are bulk-copied with their cached
  // hashes. O(matches) allocations however large the input.
  return input.WhereEquals(selection.position, selection.value);
}

}  // namespace linrec
