#include "eval/selection.h"

#include <cassert>

namespace linrec {

Relation ApplySelection(const Relation& input, const Selection& selection) {
  assert(selection.position >= 0 &&
         static_cast<std::size_t>(selection.position) < input.arity());
  Relation out(input.arity());
  for (TupleView t : input) {
    if (t[static_cast<std::size_t>(selection.position)] == selection.value) {
      out.Insert(t);
    }
  }
  return out;
}

}  // namespace linrec
