#include "eval/selection.h"

#include <cassert>

namespace linrec {

Relation ApplySelection(const Relation& input, const Selection& selection,
                        ClosureStats* stats) {
  assert(selection.position >= 0 &&
         static_cast<std::size_t>(selection.position) < input.arity());
  // Columnar: one strided pass over the selected column counts the matches
  // (SIMD blocks under LINREC_SIMD — no other column is touched), the
  // output is reserved exactly, and the matching rows are bulk-copied with
  // their cached hashes. O(matches) allocations however large the input.
  ScanCounters counters;
  Relation out = input.WhereEquals(selection.position, selection.value,
                                   stats != nullptr ? &counters : nullptr);
  if (stats != nullptr) {
    stats->rows_scanned += counters.rows;
    stats->simd_blocks += counters.blocks;
    stats->simd_lane_hits += counters.hits;
  }
  return out;
}

}  // namespace linrec
