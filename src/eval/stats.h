// Instrumentation for closure computations.
//
// Theorem 3.1 of the paper compares evaluation strategies by the number of
// duplicate tuple derivations (arcs of the derivation graph), so every
// closure routine in linrec reports derivations and duplicates, not just
// wall time.

#pragma once

#include <cstddef>

namespace linrec {

/// Counters filled by ApplyRule / closure routines.
///
/// Each execution produces one per-execution record — returned to callers in
/// QueryResult::stats (engine/prepared.h) — and the engine additionally
/// accumulates every execution into its engine-global record
/// (Engine::stats()).
struct ClosureStats {
  /// Fixpoint rounds executed (semi-naive/naive loops).
  std::size_t iterations = 0;
  /// Individual rule applications (one ApplyRule call each).
  std::size_t rule_applications = 0;
  /// Head tuples produced by body matches, including duplicates. This is
  /// |E| in the derivation graph of Theorem 3.1 (restricted to derived
  /// tuples): each successful body match derives one tuple.
  std::size_t derivations = 0;
  /// Derivations that produced an already-known tuple.
  std::size_t duplicates = 0;
  /// Tuples in the final result (including the initial relation).
  std::size_t result_size = 0;
  /// Rows examined by σ scans and by the join kernel's Δ sweep.
  std::size_t rows_scanned = 0;
  /// Index probes issued by the join kernel (one per HashIndex::Lookup).
  std::size_t probes_issued = 0;
  /// kLanes-row blocks walked by the columnar scan kernels (including
  /// partial tails). Counted identically in SIMD and scalar builds, so
  /// simd_lane_hits / (simd_blocks * simd::kLanes) is the scan-lane
  /// utilization — how full the vector compares ran — in either build.
  std::size_t simd_blocks = 0;
  /// Matching rows those blocks produced.
  std::size_t simd_lane_hits = 0;
  /// Wall-clock milliseconds.
  double millis = 0.0;

  /// Accumulates another stats record (used by multi-phase strategies and
  /// by the engine-global accumulator). All counters sum except
  /// result_size, which takes the newest record's value: phases of one
  /// execution refine the same result, and across executions the engine-
  /// global record reports the most recent query's size (per-query sizes
  /// live in each QueryResult).
  void Accumulate(const ClosureStats& other) {
    iterations += other.iterations;
    rule_applications += other.rule_applications;
    derivations += other.derivations;
    duplicates += other.duplicates;
    result_size = other.result_size;
    rows_scanned += other.rows_scanned;
    probes_issued += other.probes_issued;
    simd_blocks += other.simd_blocks;
    simd_lane_hits += other.simd_lane_hits;
    millis += other.millis;
  }

  /// Zeroes every counter.
  void Reset() { *this = ClosureStats{}; }
};

}  // namespace linrec
