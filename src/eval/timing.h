// Wall-clock instrumentation shared by the closure engines
// (eval/fixpoint.cc, eval/joint.cc).

#pragma once

#include <chrono>

#include "eval/stats.h"

namespace linrec {

/// RAII accumulator: adds the enclosing scope's wall-clock milliseconds to
/// stats->millis (no-op when stats is null). One definition so every
/// closure entry point reports time identically.
class ClosureTimer {
 public:
  explicit ClosureTimer(ClosureStats* stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~ClosureTimer() {
    if (stats_ != nullptr) {
      auto end = std::chrono::steady_clock::now();
      stats_->millis +=
          std::chrono::duration<double, std::milli>(end - start_).count();
    }
  }
  ClosureTimer(const ClosureTimer&) = delete;
  ClosureTimer& operator=(const ClosureTimer&) = delete;

 private:
  ClosureStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace linrec
