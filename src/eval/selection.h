// Selections σ on argument positions of the recursive relation (Section 4.1).

#pragma once

#include "eval/stats.h"
#include "storage/relation.h"

namespace linrec {

/// σ_{position = value}: keeps tuples whose `position`-th field equals
/// `value`. Positions are 0-based.
struct Selection {
  int position = 0;
  Value value = 0;
};

/// Applies the selection, returning the filtered relation. When `stats` is
/// non-null, the scan's row/block/hit counts are added to its
/// rows_scanned / simd_blocks / simd_lane_hits counters.
Relation ApplySelection(const Relation& input, const Selection& selection,
                        ClosureStats* stats = nullptr);

}  // namespace linrec
