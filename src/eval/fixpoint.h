// Fixpoint engines: the transitive closure A* = Σ_k A^k of Theorem 2.1,
// computed naively or semi-naively over a sum of linear operators.
//
// Every engine accepts a `workers` count (see common/parallel.h for the
// resolution rule: 0 = one lane per hardware thread, 1 = serial). With
// workers >= 2 the INSIDE of each round is parallelized: Δ is split into
// cache-sized chunks claimed by a work-stealing pool, each worker runs the
// compiled join cursor against a thread-local output pool (no locks on the
// hot path, per-worker index caches reused across rounds), and the pools
// are folded into the global relation by a sharded, contention-free merge
// (storage/relation.h PoolMerger). Because the rounds of a semi-naive
// closure multiply — a speedup inside the recursion step applies to every
// round — this parallelizes the single-group (non-commuting) case that the
// Theorem 3.1 decomposition cannot touch.
//
// Every engine also accepts an optional CancellationToken, checked at round
// boundaries: a cancelled or deadline-expired token stops the fixpoint with
// kCancelled / kDeadlineExceeded after at most one more round.

#pragma once

#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "datalog/rule.h"
#include "eval/apply.h"
#include "eval/stats.h"
#include "storage/database.h"

namespace linrec {

/// Computes (Σ_i rules[i])* q — the least relation P ⊇ q closed under every
/// rule — by semi-naive evaluation [Bancilhon 85]: each round applies every
/// operator to the newly derived Δ only, so the same derivation arc is never
/// traversed twice (the computation model assumed by Theorem 3.1).
///
/// All rules must share the head predicate and arity of `q`. Parameter
/// relations are read from `db`; the recursive predicate itself is never
/// read from `db`. `workers` parallelizes the inside of each round (the
/// result is the same relation for every worker count).
Result<Relation> SemiNaiveClosure(const std::vector<LinearRule>& rules,
                                  const Database& db, const Relation& q,
                                  ClosureStats* stats = nullptr,
                                  IndexCache* cache = nullptr,
                                  int workers = 1,
                                  const CancellationToken* cancel = nullptr);

/// Semi-naive continuation: computes (Σ rules)* (closed ∪ extra) given that
/// `closed` is already a fixpoint of the rules. Only the tuples of `extra`
/// missing from `closed` seed the Δ, so the closed part is never re-derived.
/// Sound because the operators are linear: each derivation consumes exactly
/// one recursive tuple, and derivations from `closed` tuples land in
/// `closed`. The parallel decomposed closure uses this to merge
/// independently computed group closures (storage cost: one copy of
/// `closed`).
Result<Relation> SemiNaiveResume(const std::vector<LinearRule>& rules,
                                 const Database& db, const Relation& closed,
                                 const Relation& extra,
                                 ClosureStats* stats = nullptr,
                                 IndexCache* cache = nullptr,
                                 int workers = 1,
                                 const CancellationToken* cancel = nullptr);

/// In-place semi-naive continuation — the primitive behind SemiNaiveResume
/// and the IVM delta engine (src/ivm). `result` holds a closed prefix
/// (rows [0, delta_begin), a fixpoint of the rules) with the new seed
/// tuples already appended as rows [delta_begin, size()); the call extends
/// `result` to the fixpoint of the union by running Δ rounds from exactly
/// that appended range. Unlike SemiNaiveResume nothing is copied: the
/// caller owns the relation and — because every mutation is an append —
/// can roll a failure back by truncating to the pre-call size
/// (Relation::TruncateRows). On any error `result` holds a sound partial
/// extension (a subset of the fixpoint), never garbage rows.
Status SemiNaiveExtend(const std::vector<LinearRule>& rules,
                       const Database& db, Relation* result,
                       RowId delta_begin, ClosureStats* stats = nullptr,
                       IndexCache* cache = nullptr, int workers = 1,
                       const CancellationToken* cancel = nullptr);

/// Same fixpoint by naive evaluation: each round applies every operator to
/// the full accumulated relation. Baseline for bench_engine (E7); produces
/// identical results with many more duplicate derivations.
Result<Relation> NaiveClosure(const std::vector<LinearRule>& rules,
                              const Database& db, const Relation& q,
                              ClosureStats* stats = nullptr,
                              IndexCache* cache = nullptr, int workers = 1,
                              const CancellationToken* cancel = nullptr);

/// Computes the single power sum Σ_{m=0}^{max_power} A^m q where A is the
/// operator sum of `rules` (m = 0 contributes q itself). Used by the
/// redundancy-aware closure of Theorem 4.2.
Result<Relation> PowerSum(const std::vector<LinearRule>& rules,
                          const Database& db, const Relation& q,
                          int max_power, ClosureStats* stats = nullptr,
                          IndexCache* cache = nullptr, int workers = 1,
                          const CancellationToken* cancel = nullptr);

}  // namespace linrec
