// Fixpoint engines: the transitive closure A* = Σ_k A^k of Theorem 2.1,
// computed naively or semi-naively over a sum of linear operators.

#pragma once

#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/apply.h"
#include "eval/stats.h"
#include "storage/database.h"

namespace linrec {

/// Computes (Σ_i rules[i])* q — the least relation P ⊇ q closed under every
/// rule — by semi-naive evaluation [Bancilhon 85]: each round applies every
/// operator to the newly derived Δ only, so the same derivation arc is never
/// traversed twice (the computation model assumed by Theorem 3.1).
///
/// All rules must share the head predicate and arity of `q`. Parameter
/// relations are read from `db`; the recursive predicate itself is never
/// read from `db`.
Result<Relation> SemiNaiveClosure(const std::vector<LinearRule>& rules,
                                  const Database& db, const Relation& q,
                                  ClosureStats* stats = nullptr,
                                  IndexCache* cache = nullptr);

/// Semi-naive continuation: computes (Σ rules)* (closed ∪ extra) given that
/// `closed` is already a fixpoint of the rules. Only the tuples of `extra`
/// missing from `closed` seed the Δ, so the closed part is never re-derived.
/// Sound because the operators are linear: each derivation consumes exactly
/// one recursive tuple, and derivations from `closed` tuples land in
/// `closed`. The parallel decomposed closure uses this to merge
/// independently computed group closures (storage cost: one copy of
/// `closed`).
Result<Relation> SemiNaiveResume(const std::vector<LinearRule>& rules,
                                 const Database& db, const Relation& closed,
                                 const Relation& extra,
                                 ClosureStats* stats = nullptr,
                                 IndexCache* cache = nullptr);

/// Same fixpoint by naive evaluation: each round applies every operator to
/// the full accumulated relation. Baseline for bench_engine (E7); produces
/// identical results with many more duplicate derivations.
Result<Relation> NaiveClosure(const std::vector<LinearRule>& rules,
                              const Database& db, const Relation& q,
                              ClosureStats* stats = nullptr,
                              IndexCache* cache = nullptr);

/// Computes the single power sum Σ_{m=0}^{max_power} A^m q where A is the
/// operator sum of `rules` (m = 0 contributes q itself). Used by the
/// redundancy-aware closure of Theorem 4.2.
Result<Relation> PowerSum(const std::vector<LinearRule>& rules,
                          const Database& db, const Relation& q,
                          int max_power, ClosureStats* stats = nullptr,
                          IndexCache* cache = nullptr);

}  // namespace linrec
