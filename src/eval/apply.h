// Single application of a rule: the linear relational operator f(P, {Q_i})
// of Section 2, realized as conjunctive-query evaluation.
//
// Two entry points share one join kernel:
//  * ApplyRule — compile + run in one call (the original API).
//  * CompileRule / CompiledRule::Run — compile once per closure, run once
//    per round (or once per Δ chunk in the parallel round). Fixpoint loops
//    execute the same rule hundreds of times; hoisting the join-order
//    choice, step compilation and scratch allocation out of the round loop
//    removes every per-round allocation, and the partition entry point
//    (RunPartition) is what lets a work-stealing pool hand each worker a
//    cache-sized slice of Δ.

#pragma once

#include <memory>
#include <unordered_map>

#include "common/cancel.h"
#include "common/status.h"
#include "datalog/rule.h"
#include "eval/index_cache.h"
#include "eval/stats.h"
#include "storage/database.h"

namespace linrec {

/// Options controlling one rule application.
struct ApplyOptions {
  /// Body-atom index → relation that atom reads instead of the database
  /// entry for its predicate (e.g. the recursive atom reads P or ΔP).
  std::unordered_map<int, const Relation*> overrides;
  /// If ≥ 0, this body atom is placed first in the join order (semi-naive
  /// evaluation puts Δ first).
  int first_atom = -1;
};

/// A rule compiled against fixed input relations: join order chosen, steps
/// classified, scratch buffers allocated. Reusable across rounds as long as
/// the resolved relations stay alive (their contents may grow — the closure
/// loop's Δ-carrying relation does; indexes are revalidated per Run through
/// the caller's IndexCache).
///
/// Not thread-safe: Run reuses internal scratch. Parallel rounds compile
/// one instance per worker lane (compilation is cheap and per-closure).
class CompiledRule {
 public:
  CompiledRule();
  ~CompiledRule();
  CompiledRule(CompiledRule&&) noexcept;
  CompiledRule& operator=(CompiledRule&&) noexcept;

  /// Evaluates the join over the first step's full relation, inserting each
  /// derived head row into `out`. Equivalent to the original ApplyRule.
  /// A non-null `cancel` is probed (stop_requested, no clock) every few
  /// thousand candidate rows, so even one enormous join stops in
  /// milliseconds once the token flips.
  Status Run(Relation* out, ClosureStats* stats = nullptr,
             IndexCache* cache = nullptr,
             const CancellationToken* cancel = nullptr);

  /// The chunked cursor entry point: evaluates the join with the first
  /// atom's scan restricted to `delta` — which must view the relation the
  /// first atom was compiled against (asserted). Requires the rule to have
  /// been compiled with options.first_atom >= 0.
  Status RunPartition(PartitionView delta, Relation* out,
                      ClosureStats* stats = nullptr,
                      IndexCache* cache = nullptr,
                      const CancellationToken* cancel = nullptr);

 private:
  friend Result<CompiledRule> CompileRule(const Rule& rule,
                                          const Database& db,
                                          const ApplyOptions& options);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Compiles `rule`'s body into a CompiledRule against `db` plus overrides.
/// Body predicates absent from both `db` and the overrides are treated as
/// empty relations (the compiled rule derives nothing). Head variables not
/// bound by the body yield InvalidArgument.
Result<CompiledRule> CompileRule(const Rule& rule, const Database& db,
                                 const ApplyOptions& options);

/// Evaluates `rule`'s body as a join over `db` (plus overrides) and inserts
/// each derived head tuple into `out` — CompileRule + Run in one call.
///
/// Every produced head tuple counts as one derivation in `stats` (if given),
/// whether or not it was already present in `out`.
Status ApplyRule(const Rule& rule, const Database& db,
                 const ApplyOptions& options, Relation* out,
                 ClosureStats* stats = nullptr, IndexCache* cache = nullptr);

/// Applies the operator sum Σ_i rules[i] once to `input`: every rule's
/// recursive atom reads `input`, results accumulate in the returned relation.
Result<Relation> ApplySum(const std::vector<LinearRule>& rules,
                          const Database& db, const Relation& input,
                          ClosureStats* stats = nullptr,
                          IndexCache* cache = nullptr);

}  // namespace linrec
