// Single application of a rule: the linear relational operator f(P, {Q_i})
// of Section 2, realized as conjunctive-query evaluation.

#pragma once

#include <unordered_map>

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/index_cache.h"
#include "eval/stats.h"
#include "storage/database.h"

namespace linrec {

/// Options controlling one rule application.
struct ApplyOptions {
  /// Body-atom index → relation that atom reads instead of the database
  /// entry for its predicate (e.g. the recursive atom reads P or ΔP).
  std::unordered_map<int, const Relation*> overrides;
  /// If ≥ 0, this body atom is placed first in the join order (semi-naive
  /// evaluation puts Δ first).
  int first_atom = -1;
};

/// Evaluates `rule`'s body as a join over `db` (plus overrides) and inserts
/// each derived head tuple into `out`.
///
/// Every produced head tuple counts as one derivation in `stats` (if given),
/// whether or not it was already present in `out`. Body predicates absent
/// from both `db` and the overrides are treated as empty relations. Head
/// variables not bound by the body yield InvalidArgument (the rule is not
/// range-restricted, so its output would be infinite).
Status ApplyRule(const Rule& rule, const Database& db,
                 const ApplyOptions& options, Relation* out,
                 ClosureStats* stats = nullptr, IndexCache* cache = nullptr);

/// Applies the operator sum Σ_i rules[i] once to `input`: every rule's
/// recursive atom reads `input`, results accumulate in the returned relation.
Result<Relation> ApplySum(const std::vector<LinearRule>& rules,
                          const Database& db, const Relation& input,
                          ClosureStats* stats = nullptr,
                          IndexCache* cache = nullptr);

}  // namespace linrec
