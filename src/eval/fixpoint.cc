#include "eval/fixpoint.h"

#include <chrono>

#include "common/strings.h"
#include "datalog/equality.h"

namespace linrec {
namespace {

/// Eliminates equality atoms up front; rules with unsatisfiable equalities
/// contribute nothing and are dropped.
Result<std::vector<LinearRule>> PrepareRules(
    const std::vector<LinearRule>& rules) {
  std::vector<LinearRule> out;
  out.reserve(rules.size());
  for (const LinearRule& lr : rules) {
    if (!HasEqualities(lr.rule())) {
      out.push_back(lr);
      continue;
    }
    Result<std::optional<LinearRule>> eliminated =
        EliminateEqualitiesLinear(lr);
    if (!eliminated.ok()) return eliminated.status();
    if (eliminated->has_value()) out.push_back(std::move(**eliminated));
  }
  return out;
}

Status ValidateRules(const std::vector<LinearRule>& rules, const Relation& q) {
  if (rules.empty()) {
    return Status::InvalidArgument("closure requires at least one rule");
  }
  for (const LinearRule& lr : rules) {
    if (lr.arity() != q.arity()) {
      return Status::InvalidArgument(
          StrCat("rule head arity ", lr.arity(),
                 " does not match initial relation arity ", q.arity()));
    }
    if (lr.recursive_predicate() != rules[0].recursive_predicate()) {
      return Status::InvalidArgument(
          StrCat("rules mix recursive predicates '",
                 rules[0].recursive_predicate(), "' and '",
                 lr.recursive_predicate(), "'"));
    }
  }
  return Status::OK();
}

class Timer {
 public:
  explicit Timer(ClosureStats* stats) : stats_(stats) {
    start_ = std::chrono::steady_clock::now();
  }
  ~Timer() {
    if (stats_ != nullptr) {
      auto end = std::chrono::steady_clock::now();
      stats_->millis +=
          std::chrono::duration<double, std::milli>(end - start_).count();
    }
  }

 private:
  ClosureStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

/// The Δ-driven loop shared by SemiNaiveClosure and SemiNaiveResume:
/// iterates rules over `delta` until no new tuple lands in `result`.
/// `result` must already contain `delta`.
Status RunSemiNaive(const std::vector<LinearRule>& rules, const Database& db,
                    Relation* result, Relation delta, ClosureStats* stats,
                    IndexCache* cache) {
  while (!delta.empty() && !rules.empty()) {
    if (stats != nullptr) ++stats->iterations;
    Relation produced(result->arity());
    produced.Reserve(delta.size());  // each Δ tuple derives ≈ O(1) heads
    for (const LinearRule& lr : rules) {
      ApplyOptions options;
      options.overrides[lr.recursive_atom_index()] = &delta;
      options.first_atom = lr.recursive_atom_index();
      LINREC_RETURN_IF_ERROR(
          ApplyRule(lr.rule(), db, options, &produced, stats, cache));
    }
    Relation next_delta(result->arity());
    next_delta.Reserve(produced.size());
    for (TupleView t : produced) {
      if (result->Insert(t)) next_delta.Insert(t);
    }
    delta = std::move(next_delta);
  }
  return Status::OK();
}

}  // namespace

Result<Relation> SemiNaiveClosure(const std::vector<LinearRule>& rules,
                                  const Database& db, const Relation& q,
                                  ClosureStats* stats, IndexCache* cache) {
  LINREC_RETURN_IF_ERROR(ValidateRules(rules, q));
  Result<std::vector<LinearRule>> prepared = PrepareRules(rules);
  if (!prepared.ok()) return prepared.status();
  Timer timer(stats);
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  Relation result = q;
  LINREC_RETURN_IF_ERROR(
      RunSemiNaive(*prepared, db, &result, q, stats, cache));
  if (stats != nullptr) {
    stats->result_size = result.size();
    stats->duplicates = stats->derivations - (result.size() - q.size());
  }
  return result;
}

Result<Relation> SemiNaiveResume(const std::vector<LinearRule>& rules,
                                 const Database& db, const Relation& closed,
                                 const Relation& extra, ClosureStats* stats,
                                 IndexCache* cache) {
  LINREC_RETURN_IF_ERROR(ValidateRules(rules, closed));
  if (extra.arity() != closed.arity()) {
    return Status::InvalidArgument(
        StrCat("extra arity ", extra.arity(), " != closed arity ",
               closed.arity()));
  }
  Result<std::vector<LinearRule>> prepared = PrepareRules(rules);
  if (!prepared.ok()) return prepared.status();
  Timer timer(stats);
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  // Seed the Δ with the genuinely new tuples only. Because every rule is
  // linear — each derivation consumes exactly one recursive tuple — and
  // `closed` is a fixpoint of the rules, derivations whose recursive input
  // lies in `closed` can only reproduce `closed`; they need not be re-run.
  Relation result = closed;
  Relation delta(closed.arity());
  delta.Reserve(extra.size());
  for (TupleView t : extra) {
    if (result.Insert(t)) delta.Insert(t);
  }
  std::size_t seeded = result.size();

  LINREC_RETURN_IF_ERROR(
      RunSemiNaive(*prepared, db, &result, std::move(delta), stats, cache));
  if (stats != nullptr) {
    stats->result_size = result.size();
    stats->duplicates += stats->derivations - (result.size() - seeded);
  }
  return result;
}

Result<Relation> NaiveClosure(const std::vector<LinearRule>& rules,
                              const Database& db, const Relation& q,
                              ClosureStats* stats, IndexCache* cache) {
  LINREC_RETURN_IF_ERROR(ValidateRules(rules, q));
  Result<std::vector<LinearRule>> prepared = PrepareRules(rules);
  if (!prepared.ok()) return prepared.status();
  Timer timer(stats);
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  Relation result = q;
  bool changed = !prepared->empty();
  while (changed) {
    if (stats != nullptr) ++stats->iterations;
    Relation produced(q.arity());
    produced.Reserve(result.size());
    for (const LinearRule& lr : *prepared) {
      ApplyOptions options;
      options.overrides[lr.recursive_atom_index()] = &result;
      options.first_atom = lr.recursive_atom_index();
      LINREC_RETURN_IF_ERROR(
          ApplyRule(lr.rule(), db, options, &produced, stats, cache));
    }
    changed = false;
    for (TupleView t : produced) {
      if (result.Insert(t)) changed = true;
    }
  }
  if (stats != nullptr) {
    stats->result_size = result.size();
    stats->duplicates = stats->derivations - (result.size() - q.size());
  }
  return result;
}

Result<Relation> PowerSum(const std::vector<LinearRule>& rules,
                          const Database& db, const Relation& q,
                          int max_power, ClosureStats* stats,
                          IndexCache* cache) {
  LINREC_RETURN_IF_ERROR(ValidateRules(rules, q));
  if (max_power < 0) {
    return Status::InvalidArgument("max_power must be >= 0");
  }
  Result<std::vector<LinearRule>> prepared = PrepareRules(rules);
  if (!prepared.ok()) return prepared.status();
  Timer timer(stats);
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  Relation result = q;  // the m = 0 term
  Relation current = q;
  if (prepared->empty()) {
    if (stats != nullptr) stats->result_size = result.size();
    return result;
  }
  for (int m = 1; m <= max_power; ++m) {
    if (stats != nullptr) ++stats->iterations;
    Result<Relation> next = ApplySum(*prepared, db, current, stats, cache);
    if (!next.ok()) return next.status();
    current = std::move(next).value();
    if (current.empty()) break;
    result.UnionWith(current);
  }
  if (stats != nullptr) {
    stats->result_size = result.size();
    stats->duplicates = stats->derivations - (result.size() - q.size());
  }
  return result;
}

}  // namespace linrec
