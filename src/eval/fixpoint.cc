#include "eval/fixpoint.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/fault.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "datalog/equality.h"
#include "eval/chunking.h"
#include "eval/timing.h"

namespace linrec {
namespace {

/// Eliminates equality atoms up front; rules with unsatisfiable equalities
/// contribute nothing and are dropped.
Result<std::vector<LinearRule>> PrepareRules(
    const std::vector<LinearRule>& rules) {
  std::vector<LinearRule> out;
  out.reserve(rules.size());
  for (const LinearRule& lr : rules) {
    if (!HasEqualities(lr.rule())) {
      out.push_back(lr);
      continue;
    }
    Result<std::optional<LinearRule>> eliminated =
        EliminateEqualitiesLinear(lr);
    if (!eliminated.ok()) return eliminated.status();
    if (eliminated->has_value()) out.push_back(std::move(**eliminated));
  }
  return out;
}

Status ValidateRules(const std::vector<LinearRule>& rules, const Relation& q) {
  if (rules.empty()) {
    return Status::InvalidArgument("closure requires at least one rule");
  }
  for (const LinearRule& lr : rules) {
    if (lr.arity() != q.arity()) {
      return Status::InvalidArgument(
          StrCat("rule head arity ", lr.arity(),
                 " does not match initial relation arity ", q.arity()));
    }
    if (lr.recursive_predicate() != rules[0].recursive_predicate()) {
      return Status::InvalidArgument(
          StrCat("rules mix recursive predicates '",
                 rules[0].recursive_predicate(), "' and '",
                 lr.recursive_predicate(), "'"));
    }
  }
  return Status::OK();
}

/// Applies one prepared rule set to row ranges of a fixed input relation —
/// the engine of every round below. Compiles each rule once per worker lane
/// (the join plan and its scratch are lane-private); each Round() then
/// either runs lane 0 serially or fans cache-sized Δ chunks out to the
/// work-stealing pool and folds the thread-local output pools into the
/// target through the sharded merger. Lanes, their index caches, output
/// pools, the pool's threads and the merger's scratch all persist across
/// rounds: the steady state does no locking and no allocation on the hot
/// path.
class RoundEvaluator {
 public:
  /// `input` is the relation every rule's recursive atom reads; row ranges
  /// passed to Round() index into it. It may be (and for semi-naive is) the
  /// same relation rounds merge into: Round() only mutates it after all
  /// reads of the batch have completed.
  RoundEvaluator(const std::vector<LinearRule>& rules, const Database& db,
                 const Relation* input, int workers)
      : rules_(&rules),
        db_(&db),
        input_(input),
        workers_(std::max(workers, 1)) {}

  /// Compiles every rule for every lane. Lane 0 borrows `caller_cache` (so
  /// the caller's parameter-relation indexes are shared, exactly like the
  /// serial path always has); other lanes own private caches that live
  /// across rounds.
  Status Compile(IndexCache* caller_cache) {
    lanes_.resize(static_cast<std::size_t>(workers_));
    for (Lane& lane : lanes_) {
      lane.out = Relation(input_->arity());
      lane.compiled.clear();
      lane.compiled.reserve(rules_->size());
      for (const LinearRule& lr : *rules_) {
        ApplyOptions options;
        options.overrides[lr.recursive_atom_index()] = input_;
        options.first_atom = lr.recursive_atom_index();
        Result<CompiledRule> compiled =
            CompileRule(lr.rule(), *db_, options);
        if (!compiled.ok()) return compiled.status();
        lane.compiled.push_back(std::move(compiled).value());
      }
    }
    caller_cache_ = caller_cache;
    if (workers_ > 1) pool_.emplace(workers_);
    return Status::OK();
  }

  /// Applies every rule to input rows [begin, end) and appends the derived
  /// rows missing from `*target` to `*target`. The resulting relation is
  /// identical for every worker count; only the insertion order of the new
  /// rows varies with the chunking. A non-null `cancel` is checked at every
  /// Δ-chunk boundary (and inside the join cursor), so one runaway round
  /// stops in milliseconds instead of running to completion.
  Status Round(RowId begin, RowId end, Relation* target, ClosureStats* stats,
               const CancellationToken* cancel) {
    const std::size_t rows = end - begin;
    if (rows == 0) return Status::OK();
    // The chunked path only pays for itself with real threads: when the
    // host gives the pool no helpers (single hardware thread), thread-local
    // pools and the sharded merge are pure overhead over direct emission.
    if (workers_ == 1 || rows < kSerialRowThreshold ||
        pool_->participants() == 1) {
      return SerialRound(begin, end, target, stats, cancel);
    }

    const std::size_t chunk = std::max(
        kMinChunkRows,
        rows / (static_cast<std::size_t>(workers_) * kChunksPerLane));
    const std::size_t chunks = (rows + chunk - 1) / chunk;
    for (Lane& lane : lanes_) {
      lane.out.Clear();
      lane.stats = ClosureStats{};
      lane.status = Status::OK();
    }
    // Pool threads have their own (empty) budget TLS: re-install the calling
    // thread's budget inside every lane so their output-pool growth is
    // charged to the query being evaluated.
    QueryBudget* budget = CurrentQueryBudget();
    pool_->Run(chunks, [&, budget](int lane_id, std::size_t c) {
      Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
      if (!lane.status.ok()) return;
      if (cancel != nullptr && cancel->stop_requested()) {
        lane.status = cancel->Check();
        return;
      }
      if (FaultFires(FaultSite::kWorkerDispatch)) {
        lane.status = Status::Internal(
            StrCat("injected worker fault dispatching chunk ", c));
        return;
      }
      ScopedQueryBudget budget_scope(budget);
      const RowId chunk_begin = begin + static_cast<RowId>(c * chunk);
      const RowId chunk_end = static_cast<RowId>(
          std::min<std::size_t>(end, chunk_begin + chunk));
      PartitionView slice = input_->View(chunk_begin, chunk_end);
      for (CompiledRule& rule : lane.compiled) {
        Status s = lane.RunOne(&rule, slice, LaneCache(lane_id), cancel);
        if (!s.ok()) {
          lane.status = std::move(s);
          return;
        }
      }
    });
    std::vector<const Relation*> pools;
    pools.reserve(lanes_.size());
    for (Lane& lane : lanes_) {
      if (!lane.status.ok()) return lane.status;
      if (stats != nullptr) stats->Accumulate(lane.stats);
      pools.push_back(&lane.out);
    }
    try {
      merger_.Merge(pools.data(), pools.size(), target, &*pool_);
    } catch (const ResourceExhaustedError& e) {
      return Status::ResourceExhausted(e.what());
    } catch (const std::exception& e) {
      return Status::Internal(StrCat("parallel merge threw: ", e.what()));
    } catch (...) {
      return Status::Internal("parallel merge threw");
    }
    return Status::OK();
  }

 private:
  // Cache-line aligned: each worker lane mutates its own entry (stats
  // counters, output pool headers) on every candidate row; without the
  // alignment two lanes' hot fields can share one line and ping-pong it.
  struct alignas(64) Lane {
    std::vector<CompiledRule> compiled;
    IndexCache cache;
    Relation out;
    ClosureStats stats;
    Status status;

    /// Wrapped so an exception escaping the join (a denied budget charge,
    /// bad_alloc, a throwing assertion) becomes a Status instead of
    /// terminating a pool thread.
    Status RunOne(CompiledRule* rule, PartitionView slice,
                  IndexCache* cache_ptr, const CancellationToken* cancel) {
      try {
        return rule->RunPartition(slice, &out, &stats, cache_ptr, cancel);
      } catch (const ResourceExhaustedError& e) {
        return Status::ResourceExhausted(e.what());
      } catch (const std::bad_alloc&) {
        return Status::ResourceExhausted(
            "allocation failed in parallel round (out of memory)");
      } catch (const std::exception& e) {
        return Status::Internal(StrCat("parallel round threw: ", e.what()));
      } catch (...) {
        return Status::Internal("parallel round threw");
      }
    }
  };

  IndexCache* LaneCache(int lane_id) {
    if (lane_id == 0 && caller_cache_ != nullptr) return caller_cache_;
    return &lanes_[static_cast<std::size_t>(lane_id)].cache;
  }

  Status SerialRound(RowId begin, RowId end, Relation* target,
                     ClosureStats* stats, const CancellationToken* cancel) {
    // Emit straight into the target — no intermediate pool, one dedup probe
    // per derivation. Safe even when target == input (the semi-naive case):
    // the cursor's Δ scan is bounded by `end`, the recursive atom is the
    // only step reading `input` (the rules are linear), and the join kernel
    // re-resolves row pointers per candidate, so appends — which may move
    // the pool — never invalidate a live read.
    PartitionView slice = input_->View(begin, end);
    for (CompiledRule& rule : lanes_.front().compiled) {
      LINREC_RETURN_IF_ERROR(
          rule.RunPartition(slice, target, stats, LaneCache(0), cancel));
    }
    return Status::OK();
  }

  const std::vector<LinearRule>* rules_;
  const Database* db_;
  const Relation* input_;
  int workers_;
  IndexCache* caller_cache_ = nullptr;
  std::vector<Lane> lanes_;
  std::optional<WorkerPool> pool_;
  PoolMerger merger_;
};

/// The Δ-driven loop shared by SemiNaiveClosure and SemiNaiveResume. The Δ
/// of each round is the row range of `result` appended by the previous one
/// — rows [delta_begin, size) — so no tuple is ever copied into a separate
/// Δ relation and the next Δ materializes as a side effect of the merge.
Status RunSemiNaive(const std::vector<LinearRule>& rules, const Database& db,
                    Relation* result, RowId delta_begin, ClosureStats* stats,
                    IndexCache* cache, int workers,
                    const CancellationToken* cancel) {
  if (rules.empty() || delta_begin >= result->size()) return Status::OK();
  RoundEvaluator evaluator(rules, db, result, workers);
  LINREC_RETURN_IF_ERROR(evaluator.Compile(cache));
  RowId begin = delta_begin;
  while (begin < result->size()) {
    LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
    if (stats != nullptr) ++stats->iterations;
    RowId end = static_cast<RowId>(result->size());
    LINREC_RETURN_IF_ERROR(evaluator.Round(begin, end, result, stats, cancel));
    begin = end;
  }
  return Status::OK();
}

}  // namespace

// Every public closure entry point runs under GuardAllocFailures: a denied
// budget charge (or injected allocation fault) on the calling thread throws
// ResourceExhaustedError out of the storage layer, and the guard converts it
// — like a genuine bad_alloc — into Status::ResourceExhausted. Worker-lane
// threads convert theirs in Lane::RunOne, so both paths produce the same
// typed status.
Result<Relation> SemiNaiveClosure(const std::vector<LinearRule>& rules,
                                  const Database& db, const Relation& q,
                                  ClosureStats* stats, IndexCache* cache,
                                  int workers,
                                  const CancellationToken* cancel) {
  return GuardAllocFailures([&]() -> Result<Relation> {
  LINREC_RETURN_IF_ERROR(ValidateRules(rules, q));
  Result<std::vector<LinearRule>> prepared = PrepareRules(rules);
  if (!prepared.ok()) return prepared.status();
  ClosureTimer timer(stats);
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  Relation result = q;
  LINREC_RETURN_IF_ERROR(
      RunSemiNaive(*prepared, db, &result, 0, stats, cache, workers,
                   cancel));
  if (stats != nullptr) {
    stats->result_size = result.size();
    stats->duplicates = stats->derivations - (result.size() - q.size());
  }
  return result;
  });
}

Result<Relation> SemiNaiveResume(const std::vector<LinearRule>& rules,
                                 const Database& db, const Relation& closed,
                                 const Relation& extra, ClosureStats* stats,
                                 IndexCache* cache, int workers,
                                 const CancellationToken* cancel) {
  return GuardAllocFailures([&]() -> Result<Relation> {
  LINREC_RETURN_IF_ERROR(ValidateRules(rules, closed));
  if (extra.arity() != closed.arity()) {
    return Status::InvalidArgument(
        StrCat("extra arity ", extra.arity(), " != closed arity ",
               closed.arity()));
  }
  Result<std::vector<LinearRule>> prepared = PrepareRules(rules);
  if (!prepared.ok()) return prepared.status();
  ClosureTimer timer(stats);
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  // Seed the Δ with the genuinely new tuples only. Because every rule is
  // linear — each derivation consumes exactly one recursive tuple — and
  // `closed` is a fixpoint of the rules, derivations whose recursive input
  // lies in `closed` can only reproduce `closed`; they need not be re-run.
  // The new tuples are appended to `result`, so the initial Δ is exactly
  // the row range past the closed prefix.
  Relation result = closed;
  RowId delta_begin = static_cast<RowId>(result.size());
  result.Reserve(result.size() + extra.size());
  for (TupleView t : extra) result.Insert(t);
  std::size_t seeded = result.size();

  LINREC_RETURN_IF_ERROR(RunSemiNaive(*prepared, db, &result, delta_begin,
                                      stats, cache, workers, cancel));
  if (stats != nullptr) {
    stats->result_size = result.size();
    stats->duplicates += stats->derivations - (result.size() - seeded);
  }
  return result;
  });
}

Status SemiNaiveExtend(const std::vector<LinearRule>& rules,
                       const Database& db, Relation* result,
                       RowId delta_begin, ClosureStats* stats,
                       IndexCache* cache, int workers,
                       const CancellationToken* cancel) {
  return GuardAllocFailures([&]() -> Status {
    LINREC_RETURN_IF_ERROR(ValidateRules(rules, *result));
    if (delta_begin > result->size()) {
      return Status::InvalidArgument(
          StrCat("delta_begin ", delta_begin, " past result size ",
                 result->size()));
    }
    Result<std::vector<LinearRule>> prepared = PrepareRules(rules);
    if (!prepared.ok()) return prepared.status();
    ClosureTimer timer(stats);
    IndexCache local_cache;
    if (cache == nullptr) cache = &local_cache;
    LINREC_RETURN_IF_ERROR(RunSemiNaive(*prepared, db, result, delta_begin,
                                        stats, cache, workers, cancel));
    if (stats != nullptr) stats->result_size = result->size();
    return Status::OK();
  });
}

Result<Relation> NaiveClosure(const std::vector<LinearRule>& rules,
                              const Database& db, const Relation& q,
                              ClosureStats* stats, IndexCache* cache,
                              int workers, const CancellationToken* cancel) {
  return GuardAllocFailures([&]() -> Result<Relation> {
  LINREC_RETURN_IF_ERROR(ValidateRules(rules, q));
  Result<std::vector<LinearRule>> prepared = PrepareRules(rules);
  if (!prepared.ok()) return prepared.status();
  ClosureTimer timer(stats);
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  Relation result = q;
  if (prepared->empty()) {
    if (stats != nullptr) {
      stats->result_size = result.size();
      stats->duplicates = stats->derivations;
    }
    return result;
  }
  RoundEvaluator evaluator(*prepared, db, &result, workers);
  LINREC_RETURN_IF_ERROR(evaluator.Compile(cache));
  bool changed = true;
  while (changed) {
    LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
    if (stats != nullptr) ++stats->iterations;
    RowId before = static_cast<RowId>(result.size());
    LINREC_RETURN_IF_ERROR(
        evaluator.Round(0, before, &result, stats, cancel));
    changed = result.size() > before;
  }
  if (stats != nullptr) {
    stats->result_size = result.size();
    stats->duplicates = stats->derivations - (result.size() - q.size());
  }
  return result;
  });
}

Result<Relation> PowerSum(const std::vector<LinearRule>& rules,
                          const Database& db, const Relation& q,
                          int max_power, ClosureStats* stats,
                          IndexCache* cache, int workers,
                          const CancellationToken* cancel) {
  return GuardAllocFailures([&]() -> Result<Relation> {
  LINREC_RETURN_IF_ERROR(ValidateRules(rules, q));
  if (max_power < 0) {
    return Status::InvalidArgument("max_power must be >= 0");
  }
  Result<std::vector<LinearRule>> prepared = PrepareRules(rules);
  if (!prepared.ok()) return prepared.status();
  ClosureTimer timer(stats);
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  Relation result = q;  // the m = 0 term
  Relation current = q;
  if (prepared->empty()) {
    if (stats != nullptr) stats->result_size = result.size();
    return result;
  }
  // `current` is the fixed input address the compiled rules read; each
  // power produces into `next`, then the two swap.
  RoundEvaluator evaluator(*prepared, db, &current, workers);
  LINREC_RETURN_IF_ERROR(evaluator.Compile(cache));
  Relation next(q.arity());
  for (int m = 1; m <= max_power; ++m) {
    LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
    if (stats != nullptr) ++stats->iterations;
    next.Clear();
    LINREC_RETURN_IF_ERROR(evaluator.Round(
        0, static_cast<RowId>(current.size()), &next, stats, cancel));
    std::swap(current, next);
    if (current.empty()) break;
    result.UnionWith(current);
  }
  if (stats != nullptr) {
    stats->result_size = result.size();
    stats->duplicates = stats->derivations - (result.size() - q.size());
  }
  return result;
  });
}

}  // namespace linrec
