#include "frontend/lower.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/scc.h"
#include "common/strings.h"
#include "datalog/equality.h"
#include "datalog/printer.h"
#include "eval/apply.h"

namespace linrec {
namespace {

/// Rules grouped per derived predicate (mirrors algebra/program_eval.cc —
/// classification happens per strongly connected component).
struct PredicateRules {
  std::size_t arity = 0;
  std::vector<Rule> rules;
};

/// Rows of `rel` absent from `drop`, in `rel`'s insertion order.
Relation Difference(const Relation& rel, const Relation& drop) {
  Relation out(rel.arity());
  for (TupleView t : rel) {
    if (!drop.Contains(t)) out.Insert(t);
  }
  return out;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

Result<std::map<std::string, PredicateRules>> GroupRules(
    const std::vector<Rule>& rules) {
  std::map<std::string, PredicateRules> grouped;
  for (const Rule& rule : rules) {
    const std::string& pred = rule.head().predicate;
    PredicateRules& group = grouped[pred];
    if (group.rules.empty()) {
      group.arity = rule.head().arity();
    } else if (group.arity != rule.head().arity()) {
      return Status::InvalidArgument(
          StrCat("predicate '", pred, "' defined with arities ", group.arity,
                 " and ", rule.head().arity()));
    }
    group.rules.push_back(rule);
  }
  return grouped;
}

/// Compiles one singleton component into a CompiledUnit: base rules kept
/// for seeding, linear recursive rules prepared (seedless) through the
/// shared planner.
Status CompileSingleton(const std::string& pred, const PredicateRules& group,
                        Planner& planner, CompiledProgram* out) {
  CompiledUnit unit;
  unit.members = {pred};
  unit.arities = {group.arity};
  unit.base_rules.resize(1);
  for (const Rule& rule : group.rules) {
    int occurrences = 0;
    for (const Atom& atom : rule.body()) {
      if (atom.predicate == pred) ++occurrences;
    }
    if (occurrences == 0) {
      unit.base_rules[0].push_back(rule);
      continue;
    }
    Result<LinearRule> lr = LinearRule::Make(rule);
    if (!lr.ok()) {
      return Status::InvalidArgument(StrCat("rule is not linear: ",
                                            ToString(rule), " (",
                                            lr.status().message(), ")"));
    }
    unit.linear.push_back(std::move(lr).value());
  }
  if (!unit.linear.empty()) {
    Result<PreparedQuery> prepared =
        planner.Prepare(Query::Closure(unit.linear));
    if (!prepared.ok()) return prepared.status();
    out->plan_explanations.push_back(
        StrCat(pred, ":\n", prepared->plan().Explain()));
    unit.closure = std::move(prepared).value();
  }
  out->unit_of[pred] = out->units.size();
  out->member_of[pred] = 0;
  out->units.push_back(std::move(unit));
  return Status::OK();
}

/// Compiles one multi-member component: per member, rules reading no
/// component predicate are base; rules reading exactly one become
/// JointRules; more is non-linear recursion through the component.
Status CompileComponent(const std::vector<std::string>& members,
                        const std::map<std::string, PredicateRules>& rules,
                        Planner& planner, CompiledProgram* out) {
  const std::set<std::string> member_set(members.begin(), members.end());
  std::map<std::string, int> member_index;
  for (std::size_t i = 0; i < members.size(); ++i) {
    member_index[members[i]] = static_cast<int>(i);
  }

  CompiledUnit unit;
  unit.joint = true;
  unit.members = members;
  unit.base_rules.resize(members.size());
  std::vector<JointRule> joint_rules;
  for (std::size_t mi = 0; mi < members.size(); ++mi) {
    const std::string& pred = members[mi];
    const PredicateRules& group = rules.at(pred);
    unit.arities.push_back(group.arity);
    for (const Rule& rule : group.rules) {
      int member_atoms = 0;
      for (const Atom& atom : rule.body()) {
        if (member_set.count(atom.predicate) > 0) ++member_atoms;
      }
      if (member_atoms == 0) {
        unit.base_rules[mi].push_back(rule);
        continue;
      }
      if (member_atoms >= 2) {
        return Status::InvalidArgument(StrCat(
            "recursion through strongly connected component {",
            JoinNames(members), "} is non-linear: rule ", ToString(rule),
            " reads ", member_atoms,
            " component predicates (at most one recursive atom is "
            "supported)"));
      }
      JointRule jr;
      jr.rule = rule;
      jr.head_member = static_cast<int>(mi);
      for (std::size_t a = 0; a < rule.body().size(); ++a) {
        auto it = member_index.find(rule.body()[a].predicate);
        if (it != member_index.end()) {
          jr.recursive_atom = static_cast<int>(a);
          jr.recursive_member = it->second;
          break;
        }
      }
      joint_rules.push_back(std::move(jr));
    }
  }
  if (!joint_rules.empty()) {
    Result<PreparedQuery> prepared =
        planner.Prepare(Query::JointClosure(members, std::move(joint_rules)));
    if (!prepared.ok()) return prepared.status();
    out->plan_explanations.push_back(
        StrCat(JoinNames(members), ":\n", prepared->plan().Explain()));
    unit.closure = std::move(prepared).value();
  }
  for (std::size_t mi = 0; mi < members.size(); ++mi) {
    out->unit_of[members[mi]] = out->units.size();
    out->member_of[members[mi]] = mi;
  }
  out->units.push_back(std::move(unit));
  return Status::OK();
}

}  // namespace

std::string ProgramDigest(const std::vector<Rule>& rules) {
  std::vector<std::string> texts;
  texts.reserve(rules.size());
  for (const Rule& rule : rules) texts.push_back(ToString(rule));
  std::sort(texts.begin(), texts.end());
  std::string digest;
  for (const std::string& text : texts) {
    digest += text;
    digest += '\n';
  }
  return digest;
}

Result<CompiledProgram> CompileProgram(const std::vector<Rule>& rules,
                                       Planner& planner) {
  CompiledProgram out;
  out.digest = ProgramDigest(rules);
  Result<std::map<std::string, PredicateRules>> grouped = GroupRules(rules);
  if (!grouped.ok()) return grouped.status();

  // Condense the predicate dependency graph (edge u → v: some rule of u
  // reads derived predicate v). std::map iteration makes predicate ids —
  // and therefore the condensation — deterministic.
  std::vector<std::string> names;
  names.reserve(grouped->size());
  std::map<std::string, int> id_of;
  for (const auto& [pred, group] : *grouped) {
    id_of[pred] = static_cast<int>(names.size());
    names.push_back(pred);
  }
  std::vector<std::vector<int>> adjacency(names.size());
  for (const auto& [pred, group] : *grouped) {
    std::set<int> deps;
    for (const Rule& rule : group.rules) {
      for (const Atom& atom : rule.body()) {
        auto it = id_of.find(atom.predicate);
        if (it != id_of.end()) deps.insert(it->second);
      }
    }
    adjacency[static_cast<std::size_t>(id_of[pred])]
        .assign(deps.begin(), deps.end());
  }

  for (const std::vector<int>& component :
       StronglyConnectedComponents(adjacency)) {
    if (component.size() == 1) {
      const std::string& pred =
          names[static_cast<std::size_t>(component.front())];
      LINREC_RETURN_IF_ERROR(
          CompileSingleton(pred, grouped->at(pred), planner, &out));
    } else {
      std::vector<std::string> members;
      members.reserve(component.size());
      for (int id : component) {
        members.push_back(names[static_cast<std::size_t>(id)]);
      }
      LINREC_RETURN_IF_ERROR(
          CompileComponent(members, *grouped, planner, &out));
    }
  }
  return out;
}

ProgramInstance::ProgramInstance(EngineOptions options)
    : options_(options) {
  RebuildEngine();
}

void ProgramInstance::RebuildEngine() {
  Database db = facts_;  // deep copy: materialization overwrites in place
  engine_ = std::make_unique<Engine>(std::move(db), options_);
  materialized_ = 0;
  views_.clear();  // the views named relations of the dropped engine
}

void ProgramInstance::SetProgram(
    std::shared_ptr<const CompiledProgram> program) {
  program_ = std::move(program);
  RebuildEngine();
}

Status ProgramInstance::ValidateFact(const Atom& fact) const {
  for (const Term& term : fact.terms) {
    if (!term.is_const()) {
      return Status::InvalidArgument(
          StrCat("fact for '", fact.predicate, "' is not ground"));
    }
  }
  if (program_ != nullptr && program_->unit_of.count(fact.predicate) > 0) {
    return Status::InvalidArgument(StrCat(
        "predicate '", fact.predicate,
        "' is derived by the loaded program; facts may only name base "
        "relations"));
  }
  if (const Relation* existing = facts_.Find(fact.predicate)) {
    if (existing->arity() != fact.arity()) {
      return Status::InvalidArgument(
          StrCat("facts for '", fact.predicate, "' have arity ",
                 existing->arity(), ", got ", fact.arity()));
    }
  }
  return Status::OK();
}

Status ProgramInstance::AddFact(const Atom& fact) {
  LINREC_RETURN_IF_ERROR(ValidateFact(fact));
  Relation& rel = facts_.GetOrCreate(fact.predicate, fact.arity());
  std::vector<Value> row;
  row.reserve(fact.arity());
  for (const Term& term : fact.terms) row.push_back(term.constant());
  rel.InsertRow(row.data());
  // The fixpoints may grow: drop every materialized derived predicate (and
  // the session engine's index cache entries over them) by rebuilding.
  RebuildEngine();
  return Status::OK();
}

Result<std::vector<Relation>> ProgramInstance::SeedDeltas(
    const CompiledUnit& unit, const std::map<std::string, Relation>& delta,
    const CancellationToken* cancel) {
  std::vector<Relation> out;
  out.reserve(unit.members.size());
  for (std::size_t mi = 0; mi < unit.members.size(); ++mi) {
    out.emplace_back(unit.arities[mi]);
  }
  ClosureStats stats;
  for (std::size_t mi = 0; mi < unit.members.size(); ++mi) {
    for (const Rule& base : unit.base_rules[mi]) {
      LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
      Rule effective = base;
      if (HasEqualities(base)) {
        Result<std::optional<Rule>> eliminated = EliminateEqualities(base);
        if (!eliminated.ok()) return eliminated.status();
        if (!eliminated->has_value()) continue;
        effective = std::move(**eliminated);
      }
      // One run per body atom reading an updated predicate: that atom is
      // pinned to the delta, the rest read the full post-update database
      // (covering derivations that combine several new tuples; duplicate
      // derivations deduplicate on insert).
      for (std::size_t i = 0; i < effective.body().size(); ++i) {
        auto it = delta.find(effective.body()[i].predicate);
        if (it == delta.end()) continue;
        ApplyOptions options;
        options.overrides[static_cast<int>(i)] = &it->second;
        options.first_atom = static_cast<int>(i);
        LINREC_RETURN_IF_ERROR(ApplyRule(effective, engine_->db(), options,
                                         &out[mi], &stats,
                                         &engine_->index_cache()));
      }
    }
  }
  totals_.Accumulate(stats);
  return out;
}

Result<FactUpdateOutcome> ProgramInstance::InsertFact(
    const Atom& fact, const CancellationToken* cancel, QueryBudget* budget) {
  LINREC_RETURN_IF_ERROR(ValidateFact(fact));
  FactUpdateOutcome out;
  std::vector<Value> row;
  row.reserve(fact.arity());
  for (const Term& term : fact.terms) row.push_back(term.constant());

  Relation& frel = facts_.GetOrCreate(fact.predicate, fact.arity());
  const std::size_t facts_pre = frel.size();

  // Every mutation on this path is an append (fact relations, database
  // relations, view closures, view seeds), so recorded sizes are the whole
  // rollback state; a failure anywhere truncates back to pre-call bytes.
  struct Checkpoint {
    Relation* rel;
    std::size_t size;
  };
  std::vector<Checkpoint> checkpoints;
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>>
      seed_checkpoints;

  ScopedQueryBudget budget_scope(budget);
  Status status = GuardAllocFailures([&]() -> Status {
    if (!frel.InsertRow(row.data())) return Status::OK();  // already present
    out.applied = true;
    Relation& dbrel = engine_->db().GetOrCreate(fact.predicate, fact.arity());
    checkpoints.push_back({&dbrel, dbrel.size()});
    dbrel.InsertRow(row.data());
    if (program_ == nullptr || materialized_ == 0) return Status::OK();

    // The running delta: updated predicate → its new tuples. Starts with
    // the fact; each maintained unit's appended rows join it under the
    // member names, cascading into downstream units (dependency order).
    std::map<std::string, Relation> delta;
    {
      Relation d(fact.arity());
      d.InsertRow(row.data());
      delta.emplace(fact.predicate, std::move(d));
    }
    for (std::size_t ui = 0; ui < materialized_; ++ui) {
      LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
      const CompiledUnit& unit = program_->units[ui];
      Result<std::vector<Relation>> seed_new = SeedDeltas(unit, delta, cancel);
      if (!seed_new.ok()) return seed_new.status();

      if (!unit.closure.has_value()) {
        // Fixpoint = seed: maintain the database entries directly.
        for (std::size_t mi = 0; mi < unit.members.size(); ++mi) {
          if ((*seed_new)[mi].empty()) continue;
          Relation* rel = engine_->db().FindMutable(unit.members[mi]);
          if (rel == nullptr) continue;
          checkpoints.push_back({rel, rel->size()});
          const RowId begin = static_cast<RowId>(rel->size());
          rel->UnionWith((*seed_new)[mi]);
          if (rel->size() == static_cast<std::size_t>(begin)) continue;
          Relation& d =
              delta.try_emplace(unit.members[mi], Relation(rel->arity()))
                  .first->second;
          for (RowId r = begin; r < static_cast<RowId>(rel->size()); ++r) {
            d.InsertRow(rel->RowData(r));
          }
        }
        continue;
      }

      MaterializedView& view = *views_[ui];
      // Checkpoint before Apply: Apply rolls ITSELF back on failure, but a
      // failure in a LATER unit must unwind this one's successful Apply
      // too.
      for (const std::string& name : view.names()) {
        if (Relation* rel = engine_->db().FindMutable(name)) {
          checkpoints.push_back({rel, rel->size()});
        }
      }
      seed_checkpoints.emplace_back(ui, view.SeedSizes());

      DeltaInsert di;
      bool any_seed = false;
      for (const Relation& s : *seed_new) any_seed |= !s.empty();
      if (any_seed) di.seed_inserts = std::move(*seed_new);
      di.param_inserts = delta;
      Result<ApplyOutcome> applied = engine_->Apply(view, di, cancel, budget);
      if (!applied.ok()) return applied.status();
      totals_.Accumulate(applied->stats);
      if (applied->added > 0) ++out.views_applied;
      out.tuples_added += applied->added;
      for (std::size_t mi = 0; mi < view.member_count(); ++mi) {
        const auto [b, e] = applied->appended[mi];
        if (e == b) continue;
        const Relation* rel = engine_->db().Find(view.names()[mi]);
        Relation& d = delta.try_emplace(view.names()[mi], Relation(rel->arity()))
                          .first->second;
        for (RowId r = b; r < e; ++r) d.InsertRow(rel->RowData(r));
      }
    }
    return Status::OK();
  });

  if (!status.ok()) {
    // Reverse touch order so a relation checkpointed twice restores to its
    // earliest size last; the base fact goes last of all.
    for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
      it->rel->TruncateRows(it->size);
    }
    for (auto& [ui, sizes] : seed_checkpoints) {
      views_[ui]->TruncateSeeds(sizes);
    }
    frel.TruncateRows(facts_pre);
    return status;
  }
  ivm_applies_ += out.views_applied;
  return out;
}

Result<FactUpdateOutcome> ProgramInstance::DeleteFact(
    const Atom& fact, const CancellationToken* cancel, QueryBudget* budget) {
  LINREC_RETURN_IF_ERROR(ValidateFact(fact));
  FactUpdateOutcome out;
  std::vector<Value> row;
  row.reserve(fact.arity());
  for (const Term& term : fact.terms) row.push_back(term.constant());

  Relation* frel = facts_.FindMutable(fact.predicate);
  if (frel == nullptr || !frel->ContainsRow(row.data())) {
    return out;  // absent: idempotent no-op
  }
  out.removed = true;
  Relation drop(fact.arity());
  drop.InsertRow(row.data());
  Relation facts_backup = *frel;

  ScopedQueryBudget budget_scope(budget);
  Status status = GuardAllocFailures([&]() -> Status {
    *frel = Difference(*frel, drop);
    if (Relation* dbrel = engine_->db().FindMutable(fact.predicate)) {
      if (dbrel->ContainsRow(row.data())) *dbrel = Difference(*dbrel, drop);
    }
    if (program_ == nullptr || materialized_ == 0) return Status::OK();

    // The running delete-delta: predicate → net-removed tuples, cascading
    // through the materialized units in dependency order.
    std::map<std::string, Relation> deleted;
    deleted.emplace(fact.predicate, drop);
    for (std::size_t ui = 0; ui < materialized_; ++ui) {
      LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
      const CompiledUnit& unit = program_->units[ui];

      if (!unit.closure.has_value()) {
        // Fixpoint = seed: recompute the seed over the post-delete
        // database (monotone, so it only shrinks) and filter the entry.
        for (std::size_t mi = 0; mi < unit.members.size(); ++mi) {
          Relation* rel = engine_->db().FindMutable(unit.members[mi]);
          if (rel == nullptr) continue;
          Result<Relation> reseeded = SeedMember(unit, mi, cancel);
          if (!reseeded.ok()) return reseeded.status();
          Relation removed(rel->arity());
          for (TupleView t : *rel) {
            if (!reseeded->Contains(t)) removed.Insert(t);
          }
          if (removed.empty()) continue;
          *rel = Difference(*rel, removed);
          deleted.emplace(unit.members[mi], std::move(removed));
        }
        continue;
      }

      MaterializedView& view = *views_[ui];
      DeltaDelete dd;
      dd.param_deletes = deleted;
      dd.seed_deletes.reserve(view.member_count());
      for (std::size_t mi = 0; mi < view.member_count(); ++mi) {
        // Seed tuples that no longer arise: maintained seed minus the seed
        // recomputed over the post-delete database.
        Result<Relation> reseeded = SeedMember(unit, mi, cancel);
        if (!reseeded.ok()) return reseeded.status();
        Relation gone(view.seed(mi).arity());
        for (TupleView t : view.seed(mi)) {
          if (!reseeded->Contains(t)) gone.Insert(t);
        }
        dd.seed_deletes.push_back(std::move(gone));
      }
      Result<RetractOutcome> retracted =
          engine_->Retract(view, dd, cancel, budget);
      if (!retracted.ok()) return retracted.status();
      totals_.Accumulate(retracted->stats);
      if (retracted->removed_count > 0) ++out.views_retracted;
      out.tuples_removed += retracted->removed_count;
      out.rederived += retracted->rederived;
      for (std::size_t mi = 0; mi < view.member_count(); ++mi) {
        if (!retracted->removed[mi].empty()) {
          deleted.emplace(view.names()[mi], std::move(retracted->removed[mi]));
        }
      }
    }
    return Status::OK();
  });

  if (!status.ok()) {
    // Deletion mutates by whole-relation swap, not append, so the cheap
    // truncation rollback does not apply: restore the base fact and
    // rebuild the session engine from the restored facts (materialized
    // views recompute lazily on the next query). Correctness over
    // cleverness on this rare path.
    *facts_.FindMutable(fact.predicate) = std::move(facts_backup);
    RebuildEngine();
    return status;
  }
  ivm_retracts_ += out.views_retracted;
  ivm_rederived_ += out.rederived;
  return out;
}

void ProgramInstance::Reset() {
  program_.reset();
  facts_ = Database{};
  RebuildEngine();
}

Result<Relation> ProgramInstance::SeedMember(const CompiledUnit& unit,
                                             std::size_t member,
                                             const CancellationToken* cancel) {
  const std::string& pred = unit.members[member];
  const std::size_t arity = unit.arities[member];
  Relation seed(arity);
  // Read the member's own facts from the base-fact store, not the engine
  // database: for an already-materialized unit the database entry holds
  // the CLOSED relation, and re-seeding (the IVM delete path) must start
  // from the raw facts. For not-yet-materialized units the two coincide.
  if (const Relation* facts = facts_.Find(pred)) {
    if (facts->arity() != arity) {
      return Status::InvalidArgument(
          StrCat("facts for '", pred, "' have arity ", facts->arity(),
                 ", rules use ", arity));
    }
    seed = *facts;
  }
  ClosureStats stats;
  for (const Rule& base : unit.base_rules[member]) {
    LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
    Rule effective = base;
    if (HasEqualities(base)) {
      Result<std::optional<Rule>> eliminated = EliminateEqualities(base);
      if (!eliminated.ok()) return eliminated.status();
      if (!eliminated->has_value()) continue;
      effective = std::move(**eliminated);
    }
    LINREC_RETURN_IF_ERROR(ApplyRule(effective, engine_->db(), {}, &seed,
                                     &stats, &engine_->index_cache()));
  }
  totals_.Accumulate(stats);
  return seed;
}

Status ProgramInstance::MaterializeUnit(std::size_t index,
                                        const CancellationToken* cancel) {
  const CompiledUnit& unit = program_->units[index];
  if (views_.size() <= index) views_.resize(index + 1);

  if (unit.closure.has_value()) {
    // Materialize through the IVM surface: the engine runs the closure,
    // installs the result under the member names, and hands back the view
    // handle InsertFact / DeleteFact maintain in place.
    ClosureStats stats;
    Result<MaterializedView> view = [&]() -> Result<MaterializedView> {
      if (!unit.joint) {
        Result<Relation> seed = SeedMember(unit, 0, cancel);
        if (!seed.ok()) return seed.status();
        return engine_->Materialize(unit.closure->Bind()
                                        .BindSeed(std::move(seed).value())
                                        .WithCancellation(cancel),
                                    {unit.members[0]}, &stats);
      }
      std::vector<Relation> seeds;
      seeds.reserve(unit.members.size());
      for (std::size_t mi = 0; mi < unit.members.size(); ++mi) {
        Result<Relation> seed = SeedMember(unit, mi, cancel);
        if (!seed.ok()) return seed.status();
        seeds.push_back(std::move(seed).value());
      }
      return engine_->Materialize(unit.closure->Bind()
                                      .BindSeeds(std::move(seeds))
                                      .WithCancellation(cancel),
                                  unit.members, &stats);
    }();
    if (!view.ok()) return view.status();
    totals_.Accumulate(stats);
    views_[index] = std::move(view).value();
    return Status::OK();
  }

  // No recursive rules: the fixpoint IS the seed; no view needed (the
  // cascade maintains the database entry directly).
  for (std::size_t mi = 0; mi < unit.members.size(); ++mi) {
    Result<Relation> seed = SeedMember(unit, mi, cancel);
    if (!seed.ok()) return seed.status();
    engine_->db().GetOrCreate(unit.members[mi], unit.arities[mi]) =
        std::move(seed).value();
  }
  return Status::OK();
}

Status ProgramInstance::MaterializeUpTo(std::size_t limit,
                                        const CancellationToken* cancel) {
  for (std::size_t i = materialized_; i < limit; ++i) {
    LINREC_RETURN_IF_ERROR(MaterializeUnit(i, cancel));
    materialized_ = i + 1;
  }
  return Status::OK();
}

bool ProgramInstance::SigmaFastPath(const Atom& goal, const CompiledUnit& unit,
                                    int* position, Value* value) const {
  if (unit.joint || !unit.closure.has_value() || unit.linear.empty()) {
    return false;
  }
  int constants = 0;
  std::set<VarId> seen;
  for (std::size_t i = 0; i < goal.terms.size(); ++i) {
    const Term& term = goal.terms[i];
    if (term.is_const()) {
      ++constants;
      *position = static_cast<int>(i);
      *value = term.constant();
    } else if (!seen.insert(term.var()).second) {
      return false;  // repeated variable: the σ result would need refiltering
    }
  }
  return constants == 1;
}

Result<QueryResult> ProgramInstance::EvalQuery(const Atom& goal,
                                               Planner& planner,
                                               const CancellationToken* cancel,
                                               QueryBudget* budget,
                                               std::size_t row_limit) {
  const std::vector<const CancellationToken*> cancels = {cancel};
  const std::vector<QueryBudget*> budgets = {budget};
  std::vector<Result<QueryResult>> results =
      EvalQueries({goal}, planner, &cancels, &budgets, row_limit);
  return std::move(results.front());
}

namespace {

/// The first `row_limit` rows of `rows` — the reply-side truncation of a
/// relation that was materialized in full for correctness.
Relation FirstRows(const Relation& rows, std::size_t row_limit) {
  Relation out(rows.arity());
  for (TupleView row : rows) {
    if (out.size() >= row_limit) break;
    out.Insert(row);
  }
  return out;
}

}  // namespace

std::vector<Result<QueryResult>> ProgramInstance::EvalQueries(
    const std::vector<Atom>& goals, Planner& planner,
    const std::vector<const CancellationToken*>* cancels,
    const std::vector<QueryBudget*>* budgets, std::size_t row_limit) {
  std::vector<Result<QueryResult>> results(
      goals.size(), Result<QueryResult>(Status::Internal("goal not run")));
  auto cancel_of = [&](std::size_t i) -> const CancellationToken* {
    return cancels != nullptr && i < cancels->size() ? (*cancels)[i] : nullptr;
  };
  auto budget_of = [&](std::size_t i) -> QueryBudget* {
    return budgets != nullptr && i < budgets->size() ? (*budgets)[i] : nullptr;
  };

  // Pass 1: σ-bind fast paths become batch slots; everything else gets
  // evaluated by materializing its dependency cone.
  struct SigmaSlot {
    std::size_t goal_index;
    std::size_t unit_index;
  };
  std::vector<SigmaSlot> sigma_slots;
  std::vector<BoundQuery> batch;
  // One seed per unit, shared across the unit's slots (BindSeed takes a
  // shared_ptr, so N point queries over one predicate copy nothing).
  std::map<std::size_t, std::shared_ptr<const Relation>> unit_seeds;

  for (std::size_t gi = 0; gi < goals.size(); ++gi) {
    const Atom& goal = goals[gi];
    const CancellationToken* cancel = cancel_of(gi);
    // The goal's budget governs every caller-thread allocation made on its
    // behalf — cone materialization, seeds, reply filtering — and nested
    // Engine executions inherit it through the thread-local scope. A shared
    // cost (a unit materialized once, a seed reused by later goals) is
    // charged to the first goal that needs it. GuardAllocFailures turns an
    // escaped denial into this goal's typed status; neighbours keep running.
    ScopedQueryBudget budget_scope(budget_of(gi));
    Result<bool> queued = GuardAllocFailures([&]() -> Result<bool> {
      if (program_ == nullptr) {
        results[gi] = Status::InvalidArgument("no program loaded");
        return false;
      }
      auto unit_it = program_->unit_of.find(goal.predicate);
      if (unit_it == program_->unit_of.end()) {
        // Base predicate: answer from the session's facts.
        const Relation* facts = facts_.Find(goal.predicate);
        if (facts == nullptr) {
          results[gi] = Status::NotFound(
              StrCat("unknown predicate '", goal.predicate, "/", goal.arity(),
                     "' (not derived by the program, no facts loaded)"));
          return false;
        }
        if (facts->arity() != goal.arity()) {
          results[gi] = Status::InvalidArgument(
              StrCat("goal for '", goal.predicate, "' has arity ", goal.arity(),
                     ", facts have ", facts->arity()));
          return false;
        }
        QueryResult qr;
        qr.relations.push_back(MatchGoal(*facts, goal, row_limit));
        results[gi] = std::move(qr);
        return false;
      }

      const std::size_t ui = unit_it->second;
      const CompiledUnit& unit = program_->units[ui];
      const std::size_t member = program_->member_of.at(goal.predicate);
      if (goal.arity() != unit.arities[member]) {
        results[gi] = Status::InvalidArgument(
            StrCat("goal for '", goal.predicate, "' has arity ", goal.arity(),
                   ", rules use ", unit.arities[member]));
        return false;
      }

      int position = 0;
      Value value = 0;
      if (ui >= materialized_ &&
          SigmaFastPath(goal, unit, &position, &value)) {
        // Materialize the dependencies (not the unit), seed once per unit,
        // and prepare the σ-parameterized closure through the shared planner
        // — its plan-cache digest covers the σ position, so repeated point
        // queries (from any session) plan once.
        Status deps = MaterializeUpTo(ui, cancel);
        if (!deps.ok()) {
          results[gi] = deps;
          return false;
        }
        auto seed_it = unit_seeds.find(ui);
        if (seed_it == unit_seeds.end()) {
          Result<Relation> seed = SeedMember(unit, 0, cancel);
          if (!seed.ok()) {
            results[gi] = seed.status();
            return false;
          }
          seed_it = unit_seeds
                        .emplace(ui, std::make_shared<const Relation>(
                                         std::move(seed).value()))
                        .first;
        }
        Result<PreparedQuery> sigma = planner.Prepare(
            Query::Closure(unit.linear).SelectPosition(position));
        if (!sigma.ok()) {
          results[gi] = sigma.status();
          return false;
        }
        sigma_slots.push_back({gi, ui});
        batch.push_back(sigma->Bind(value)
                            .BindSeed(seed_it->second)
                            .WithCancellation(cancel)
                            .WithBudget(budget_of(gi)));
        return true;
      }

      // Full path: materialize the cone through this unit, filter.
      Status upto = MaterializeUpTo(ui + 1, cancel);
      if (!upto.ok()) {
        results[gi] = upto;
        return false;
      }
      const Relation* rows = engine_->db().Find(goal.predicate);
      QueryResult qr;
      qr.relations.push_back(rows != nullptr
                                 ? MatchGoal(*rows, goal, row_limit)
                                 : Relation(goal.arity()));
      results[gi] = std::move(qr);
      return false;
    });
    if (!queued.ok()) results[gi] = queued.status();
  }

  if (!batch.empty()) {
    std::vector<Result<QueryResult>> outcomes =
        engine_->ExecuteBatchEach(batch);
    for (std::size_t si = 0; si < sigma_slots.size(); ++si) {
      Result<QueryResult>& outcome = outcomes[si];
      if (outcome.ok()) {
        totals_.Accumulate(outcome->stats);
        // The closure ran to fixpoint (correctness); the *reply* still
        // honors the streaming cap.
        Relation& rel = outcome->relation();
        if (rel.size() > row_limit) {
          ScopedQueryBudget budget_scope(
              budget_of(sigma_slots[si].goal_index));
          auto capped = GuardAllocFailures([&]() -> Result<Relation> {
            return FirstRows(rel, row_limit);
          });
          if (capped.ok()) {
            rel = std::move(capped).value();
          } else {
            outcome = capped.status();
          }
        }
      }
      results[sigma_slots[si].goal_index] = std::move(outcome);
    }
  }
  return results;
}

Relation MatchGoal(const Relation& rows, const Atom& goal,
                   std::size_t row_limit) {
  // Constant positions and repeated-variable position groups.
  std::vector<std::pair<std::size_t, Value>> constants;
  std::map<VarId, std::vector<std::size_t>> var_positions;
  for (std::size_t i = 0; i < goal.terms.size(); ++i) {
    const Term& term = goal.terms[i];
    if (term.is_const()) {
      constants.emplace_back(i, term.constant());
    } else {
      var_positions[term.var()].push_back(i);
    }
  }
  bool trivial = constants.empty();
  for (const auto& [var, positions] : var_positions) {
    if (positions.size() > 1) trivial = false;
  }
  if (trivial) {
    return rows.size() <= row_limit ? rows : FirstRows(rows, row_limit);
  }

  Relation out(rows.arity());
  for (TupleView row : rows) {
    if (out.size() >= row_limit) break;
    bool keep = true;
    for (const auto& [pos, value] : constants) {
      if (row[pos] != value) {
        keep = false;
        break;
      }
    }
    if (keep) {
      for (const auto& [var, positions] : var_positions) {
        for (std::size_t p = 1; p < positions.size(); ++p) {
          if (row[positions[p]] != row[positions[0]]) {
            keep = false;
            break;
          }
        }
        if (!keep) break;
      }
    }
    if (keep) out.Insert(row);
  }
  return out;
}

}  // namespace linrec
