// Frontend lowering: from parsed Datalog text to prepared engine plans.
//
// The parser (datalog/parser.h) produces rules, facts and "?-" query
// goals; this pass turns the *rules* into a CompiledProgram — the
// predicate dependency graph condensed into strongly connected components
// (common/scc.h), each recursive component compiled through
// Engine::Prepare into a seedless plan (singleton components through
// Query::Closure, mutual-recursion components through Query::JointClosure)
// — and turns *facts* and *goals* into per-session state and executions
// over it.
//
// The split mirrors the serving architecture:
//
//  * CompileProgram runs against a shared, planning-only Engine (the
//    "planner"), whose plan cache digests query structure. All sessions
//    funnel their Prepare calls through one Planner, so N sessions loading
//    the same program text cost exactly one plan-cache miss per distinct
//    closure structure. Compiled programs are immutable and shared
//    (engine/registry.h keys them on ProgramDigest).
//
//  * ProgramInstance is one session's evaluation state over a shared
//    CompiledProgram: a session-private Engine whose database holds that
//    session's named base relations plus whatever derived predicates its
//    queries have materialized so far. Goals evaluate lazily — a goal
//    materializes its dependency cone once and caches it; adding facts
//    invalidates the cache. A goal with exactly one constant over a
//    recursive singleton predicate takes the σ-bind fast path: the
//    constant becomes a PreparedQuery::Bind parameter, so the planner's
//    separable pushdown (Theorem 4.1) applies and the closure is computed
//    on the selected cone only.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/memory.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "datalog/ast.h"
#include "datalog/rule.h"
#include "engine/engine.h"
#include "ivm/view.h"

namespace linrec {

/// A shared planning front: one Engine (no data, only plan/analysis
/// caches) behind one mutex. Engines are not internally synchronized;
/// every cross-session Prepare goes through here — engine_ is
/// LINREC_GUARDED_BY(mu_), so a future accessor that reaches into the
/// planning engine without the lock fails the thread-safety build.
class Planner {
 public:
  explicit Planner(EngineOptions options = {}) : engine_(Database{}, options) {}

  Result<PreparedQuery> Prepare(const Query& query) LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return engine_.Prepare(query);
  }

  std::size_t plan_cache_hits() const LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return engine_.plan_cache_hits();
  }
  std::size_t plan_cache_misses() const LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return engine_.plan_cache_misses();
  }

 private:
  mutable Mutex mu_;
  Engine engine_ LINREC_GUARDED_BY(mu_);
};

/// One strongly connected component of the compiled program, in
/// dependency-first order. Singleton units have one member; joint units
/// (mutual recursion) one per component predicate.
struct CompiledUnit {
  std::vector<std::string> members;
  std::vector<std::size_t> arities;
  /// Per member: rules whose body reads no component predicate. They run
  /// once, into the seed.
  std::vector<std::vector<Rule>> base_rules;
  /// Singleton only: the linear recursive rules (kept so σ-bind variants
  /// can be prepared on demand for point queries).
  std::vector<LinearRule> linear;
  /// The seedless prepared closure; absent when the unit has no recursive
  /// rules (the seed is already the fixpoint).
  std::optional<PreparedQuery> closure;
  bool joint = false;
};

/// An immutable compiled program, shared across sessions.
struct CompiledProgram {
  /// ProgramDigest of the source rules — the registry key.
  std::string digest;
  /// Units in dependency-first (topological) order.
  std::vector<CompiledUnit> units;
  /// Derived predicate → index into `units` / member index within it.
  std::map<std::string, std::size_t> unit_of;
  std::map<std::string, std::size_t> member_of;
  /// Engine plan explanation per recursive unit, for EXPLAIN.
  std::vector<std::string> plan_explanations;
};

/// Canonical structural digest of a rule set: the printed rule texts,
/// sorted — rule order never changes Datalog semantics, so permuted
/// submissions of one program share a digest (and therefore a registry
/// entry and its prepared plans).
std::string ProgramDigest(const std::vector<Rule>& rules);

/// Lowers `rules` into a CompiledProgram through `planner`. Fails on
/// inconsistent arities, non-linear recursion (self- or through a
/// component), and anything Engine::Prepare rejects.
Result<CompiledProgram> CompileProgram(const std::vector<Rule>& rules,
                                       Planner& planner);

/// What one incremental fact update did across the session's materialized
/// views — the counters the server surfaces per INSERT / DELETE reply and
/// aggregates into STATS / METRICS.
struct FactUpdateOutcome {
  /// Insert: the fact was new (false = already present, nothing changed).
  bool applied = false;
  /// Delete: the fact was present (false = absent, nothing changed).
  bool removed = false;
  /// Views whose closure actually changed.
  std::size_t views_applied = 0;
  std::size_t views_retracted = 0;
  /// Derived tuples appended / removed across every maintained view.
  std::size_t tuples_added = 0;
  std::size_t tuples_removed = 0;
  /// Suspects that survived deletion via an alternative derivation.
  std::size_t rederived = 0;
};

/// One session's evaluation state over a shared CompiledProgram.
/// Not internally synchronized: a session is single-threaded by design
/// (the server serializes each session's requests; concurrency is across
/// sessions, which share nothing but the Planner and the registry).
class ProgramInstance {
 public:
  explicit ProgramInstance(EngineOptions options = {});

  /// The session's private engine (database = base facts + materialized
  /// derived predicates). The engine's IndexCache is the session's tier.
  Engine& engine() { return *engine_; }

  /// Installs a compiled program. Previously materialized derived
  /// predicates are dropped; the session's base facts persist.
  void SetProgram(std::shared_ptr<const CompiledProgram> program);
  const std::shared_ptr<const CompiledProgram>& program() const {
    return program_;
  }

  /// Adds one ground fact to the session's base relations. Invalidates
  /// every materialized derived predicate (the fixpoints may grow).
  /// Rejects facts for predicates the program derives.
  Status AddFact(const Atom& fact);

  /// Adds one ground fact and maintains every materialized view
  /// incrementally (Engine::Apply): the new tuple's one-step consequences
  /// seed a semi-naive continuation per affected view, in dependency
  /// order, with each view's appended rows cascading into the next
  /// view's delta. Nothing is recomputed from scratch and goal caches
  /// stay warm. Atomic: on any failure (budget denial, cancellation,
  /// injected fault) every touched relation is truncated back to its
  /// pre-call bytes and the fact is not applied. Validation (groundness,
  /// derived-predicate rejection, arity) happens before any mutation.
  Result<FactUpdateOutcome> InsertFact(const Atom& fact,
                                       const CancellationToken* cancel =
                                           nullptr,
                                       QueryBudget* budget = nullptr);

  /// Removes one ground fact, maintaining every materialized view by
  /// delete-and-rederive (Engine::Retract), cascading net removals into
  /// downstream views. Absent facts are a no-op (removed = false).
  /// Atomic: a failure restores the base fact and rebuilds the session
  /// engine from the (restored) facts, dropping materializations.
  Result<FactUpdateOutcome> DeleteFact(const Atom& fact,
                                       const CancellationToken* cancel =
                                           nullptr,
                                       QueryBudget* budget = nullptr);

  /// Drops program and facts both.
  void Reset();

  /// Evaluates one query goal: materializes the goal's dependency cone
  /// (cached until facts change), takes the σ-bind fast path for a
  /// single-constant goal over a recursive singleton predicate, and
  /// filters rows against the goal's constants and repeated variables.
  /// `cancel` is checked at round boundaries (and Δ-chunk boundaries) of
  /// every closure run. A non-null `budget` is charged by every relation
  /// grown on the goal's behalf — including materializing its dependency
  /// cone — and denial surfaces as Status::ResourceExhausted.
  /// `row_limit` caps the rows copied into the reply relation (the closure
  /// itself always runs to fixpoint — correctness — but a reply is never
  /// materialized past the cap; pass cap+1 to keep truncation detectable).
  Result<QueryResult> EvalQuery(const Atom& goal, Planner& planner,
                                const CancellationToken* cancel = nullptr,
                                QueryBudget* budget = nullptr,
                                std::size_t row_limit = SIZE_MAX);

  /// Batch EvalQuery: σ-fast-path goals over one unit run concurrently
  /// through Engine::ExecuteBatchEach (per-slot cancellation tokens and
  /// budgets — aligned with `cancels` / `budgets` when non-null), the rest
  /// sequentially. Replies align with `goals`; a failing goal fails alone.
  std::vector<Result<QueryResult>> EvalQueries(
      const std::vector<Atom>& goals, Planner& planner,
      const std::vector<const CancellationToken*>* cancels = nullptr,
      const std::vector<QueryBudget*>* budgets = nullptr,
      std::size_t row_limit = SIZE_MAX);

  /// Total derivations across every closure this session has run.
  std::size_t derivations() const { return totals_.derivations; }

  /// Accumulated execution counters across every closure this session has
  /// run — derivations plus the kernel-level set (rows scanned, probes
  /// issued, SIMD blocks / lane hits). Exported via linrecd STATS.
  const ClosureStats& totals() const { return totals_; }

  /// Lifetime IVM counters across InsertFact / DeleteFact calls.
  std::uint64_t ivm_applies() const { return ivm_applies_; }
  std::uint64_t ivm_retracts() const { return ivm_retracts_; }
  std::uint64_t ivm_rederived() const { return ivm_rederived_; }

 private:
  /// Shared validation of a ground fact (groundness, derived-predicate
  /// rejection, arity against existing facts) — runs before any mutation.
  Status ValidateFact(const Atom& fact) const;
  /// Per-member one-step heads of the unit's BASE rules restricted to the
  /// updated predicates in `delta` (each run pins one body atom to its
  /// delta relation; the rest read the full session database) — the seed
  /// delta the cascade feeds into Engine::Apply.
  Result<std::vector<Relation>> SeedDeltas(
      const CompiledUnit& unit, const std::map<std::string, Relation>& delta,
      const CancellationToken* cancel);
  /// True if `goal` qualifies for the σ-bind fast path; fills position
  /// and value.
  bool SigmaFastPath(const Atom& goal, const CompiledUnit& unit,
                     int* position, Value* value) const;
  /// Ensures units [0, limit) are materialized into the session database.
  Status MaterializeUpTo(std::size_t limit, const CancellationToken* cancel);
  Status MaterializeUnit(std::size_t index, const CancellationToken* cancel);
  /// Seed of one unit member: session facts plus base rules.
  Result<Relation> SeedMember(const CompiledUnit& unit, std::size_t member,
                              const CancellationToken* cancel);
  /// Recreates the session engine from the base facts (invalidation path:
  /// a fresh engine drops materializations and every cached index).
  void RebuildEngine();

  EngineOptions options_;
  /// Base facts, kept apart from the engine database so invalidation can
  /// rebuild it (materialization overwrites derived entries in place).
  Database facts_;
  std::unique_ptr<Engine> engine_;
  std::shared_ptr<const CompiledProgram> program_;
  /// Units fully materialized into the engine database (prefix lengths:
  /// units materialize in dependency order).
  std::size_t materialized_ = 0;
  /// Per-unit IVM handles, aligned with program_->units for the
  /// materialized prefix. Engaged for units with a prepared closure
  /// (recursive); units whose fixpoint IS the seed are maintained
  /// directly. Cleared by RebuildEngine (views name relations of the
  /// dropped engine).
  std::vector<std::optional<MaterializedView>> views_;
  ClosureStats totals_;
  std::uint64_t ivm_applies_ = 0;
  std::uint64_t ivm_retracts_ = 0;
  std::uint64_t ivm_rederived_ = 0;
};

/// Filters `rows` against `goal`: constants must match their column,
/// repeated variables must agree across their columns. Distinct variables
/// match anything. At most `row_limit` matching rows are copied into the
/// result — the streaming cap: a reply over a huge closure materializes
/// O(row_limit) rows, not a second full copy.
Relation MatchGoal(const Relation& rows, const Atom& goal,
                   std::size_t row_limit = SIZE_MAX);

}  // namespace linrec
