#include "datalog/rule.h"

#include <cassert>

#include "common/strings.h"

namespace linrec {

Rule::Rule(Atom head, std::vector<Atom> body,
           std::vector<std::string> var_names)
    : head_(std::move(head)),
      body_(std::move(body)),
      var_names_(std::move(var_names)) {
  distinguished_.assign(var_names_.size(), false);
  for (const Term& t : head_.terms) {
    if (t.is_var()) {
      assert(t.var() >= 0 && t.var() < var_count());
      distinguished_[static_cast<std::size_t>(t.var())] = true;
    }
  }
}

std::vector<int> Rule::HeadPositionsOf(VarId v) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < head_.terms.size(); ++i) {
    const Term& t = head_.terms[i];
    if (t.is_var() && t.var() == v) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::size_t Rule::TotalArgumentPositions() const {
  std::size_t a = head_.arity();
  for (const Atom& atom : body_) a += atom.arity();
  return a;
}

Status Rule::Validate() const {
  std::unordered_map<std::string, std::size_t> arities;
  auto check_atom = [&](const Atom& atom) -> Status {
    if (atom.predicate.empty()) {
      return Status::InvalidArgument("atom with empty predicate name");
    }
    auto [it, inserted] = arities.emplace(atom.predicate, atom.arity());
    if (!inserted && it->second != atom.arity()) {
      return Status::InvalidArgument(
          StrCat("predicate '", atom.predicate, "' used with arities ",
                 it->second, " and ", atom.arity()));
    }
    for (const Term& t : atom.terms) {
      if (t.is_var() && (t.var() < 0 || t.var() >= var_count())) {
        return Status::InvalidArgument(
            StrCat("variable id ", t.var(), " out of range in '",
                   atom.predicate, "'"));
      }
    }
    return Status::OK();
  };
  LINREC_RETURN_IF_ERROR(check_atom(head_));
  for (const Atom& atom : body_) LINREC_RETURN_IF_ERROR(check_atom(atom));
  return Status::OK();
}

VarId RuleBuilder::Var(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  VarId id = static_cast<VarId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

VarId RuleBuilder::FreshVar(const std::string& hint) {
  std::string name = hint;
  int suffix = 0;
  while (ids_.count(name) > 0) {
    name = StrCat(hint, "_", suffix++);
  }
  return Var(name);
}

void RuleBuilder::SetHead(std::string predicate, std::vector<Term> terms) {
  head_.predicate = std::move(predicate);
  head_.terms = std::move(terms);
}

void RuleBuilder::AddBodyAtom(std::string predicate, std::vector<Term> terms) {
  body_.push_back(Atom{std::move(predicate), std::move(terms)});
}

void RuleBuilder::SetHeadVars(const std::string& predicate,
                              const std::vector<std::string>& vars) {
  std::vector<Term> terms;
  terms.reserve(vars.size());
  for (const std::string& v : vars) terms.push_back(Term::MakeVar(Var(v)));
  SetHead(predicate, std::move(terms));
}

void RuleBuilder::AddBodyVars(const std::string& predicate,
                              const std::vector<std::string>& vars) {
  std::vector<Term> terms;
  terms.reserve(vars.size());
  for (const std::string& v : vars) terms.push_back(Term::MakeVar(Var(v)));
  AddBodyAtom(predicate, std::move(terms));
}

Result<Rule> RuleBuilder::Build() {
  Rule rule(head_, body_, names_);
  LINREC_RETURN_IF_ERROR(rule.Validate());
  return rule;
}

Result<LinearRule> LinearRule::Make(Rule rule) {
  LINREC_RETURN_IF_ERROR(rule.Validate());
  const std::string& pred = rule.head().predicate;
  int index = -1;
  for (std::size_t i = 0; i < rule.body().size(); ++i) {
    if (rule.body()[i].predicate == pred) {
      if (index >= 0) {
        return Status::InvalidArgument(
            StrCat("rule is not linear: predicate '", pred,
                   "' occurs more than once in the body"));
      }
      index = static_cast<int>(i);
    }
  }
  if (index < 0) {
    return Status::InvalidArgument(
        StrCat("rule is not recursive: predicate '", pred,
               "' does not occur in the body"));
  }
  if (rule.body()[static_cast<std::size_t>(index)].arity() !=
      rule.head().arity()) {
    return Status::InvalidArgument(
        StrCat("recursive predicate '", pred, "' used with mismatched arity"));
  }
  return LinearRule(std::move(rule), index);
}

std::vector<int> LinearRule::NonRecursiveAtomIndices() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < rule_.body().size(); ++i) {
    if (static_cast<int>(i) != recursive_index_) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace linrec
