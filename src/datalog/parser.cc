#include "datalog/parser.h"

#include <cctype>
#include <unordered_map>

#include "common/strings.h"
#include "datalog/equality.h"

namespace linrec {
namespace {

enum class TokKind { kIdent, kVariable, kInteger, kLParen, kRParen, kComma,
                     kImplies, kQuery, kPeriod, kEquals, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  Value number = 0;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      Token tok;
      tok.line = line_;
      tok.col = col_;
      if (pos_ >= text_.size()) {
        tok.kind = TokKind::kEnd;
        out.push_back(tok);
        return out;
      }
      char c = text_[pos_];
      if (c == '(') {
        tok.kind = TokKind::kLParen;
        Advance();
      } else if (c == ')') {
        tok.kind = TokKind::kRParen;
        Advance();
      } else if (c == ',') {
        tok.kind = TokKind::kComma;
        Advance();
      } else if (c == '.') {
        tok.kind = TokKind::kPeriod;
        Advance();
      } else if (c == '=') {
        tok.kind = TokKind::kEquals;
        Advance();
      } else if (c == ':') {
        Advance();
        if (pos_ >= text_.size() || text_[pos_] != '-') {
          return Error("expected '-' after ':'");
        }
        Advance();
        tok.kind = TokKind::kImplies;
      } else if (c == '?') {
        Advance();
        if (pos_ >= text_.size() || text_[pos_] != '-') {
          return Error("expected '-' after '?'");
        }
        Advance();
        tok.kind = TokKind::kQuery;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        tok.kind = TokKind::kInteger;
        std::string num;
        if (c == '-') {
          num += c;
          Advance();
          if (pos_ >= text_.size() ||
              !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            return Error("expected digit after '-'");
          }
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          num += text_[pos_];
          Advance();
        }
        tok.number = std::stoll(num);
        tok.text = num;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string name;
        // '#' appears in generated narrow-rule predicates ("p#0_2"); '\''
        // appears in renamed variables. Both round-trip through the printer.
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '\'' ||
                text_[pos_] == '#')) {
          name += text_[pos_];
          Advance();
        }
        tok.text = name;
        tok.kind = (std::isupper(static_cast<unsigned char>(name[0])) ||
                    name[0] == '_')
                       ? TokKind::kVariable
                       : TokKind::kIdent;
      } else {
        return Error(StrCat("unexpected character '", std::string(1, c), "'"));
      }
      out.push_back(tok);
    }
  }

 private:
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%' ||
                 (c == '/' && pos_ + 1 < text_.size() &&
                  text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        return;
      }
    }
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(StrCat(line_, ":", col_, ": ", msg));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseAll() {
    Program program;
    while (Peek().kind != TokKind::kEnd) {
      LINREC_RETURN_IF_ERROR(ParseClause(&program));
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  Status Error(const Token& tok, const std::string& msg) const {
    return Status::ParseError(StrCat(tok.line, ":", tok.col, ": ", msg));
  }

  Status Expect(TokKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Error(Peek(), StrCat("expected ", what));
    }
    ++pos_;
    return Status::OK();
  }

  // Parses one atom into `builder`-interned terms.
  Status ParseAtom(RuleBuilder* builder, std::string* predicate,
                   std::vector<Term>* terms) {
    if (Peek().kind != TokKind::kIdent) {
      return Error(Peek(), "expected predicate name (lowercase identifier)");
    }
    *predicate = Next().text;
    LINREC_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    while (true) {
      const Token& tok = Peek();
      if (tok.kind == TokKind::kVariable) {
        terms->push_back(Term::MakeVar(builder->Var(tok.text)));
        ++pos_;
      } else if (tok.kind == TokKind::kInteger) {
        terms->push_back(Term::MakeConst(tok.number));
        ++pos_;
      } else {
        return Error(tok, "expected variable or integer constant");
      }
      if (Peek().kind == TokKind::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    return Expect(TokKind::kRParen, "')'");
  }

  Status ParseClause(Program* program) {
    RuleBuilder builder;
    std::string head_pred;
    std::vector<Term> head_terms;
    const Token& start = Peek();
    if (start.kind == TokKind::kQuery) {
      // Query goal: "?- atom." — variables and constants both allowed.
      ++pos_;
      LINREC_RETURN_IF_ERROR(ParseAtom(&builder, &head_pred, &head_terms));
      LINREC_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.'"));
      program->queries.push_back(Atom{head_pred, std::move(head_terms)});
      return Status::OK();
    }
    LINREC_RETURN_IF_ERROR(ParseAtom(&builder, &head_pred, &head_terms));

    if (Peek().kind == TokKind::kPeriod) {
      ++pos_;
      // Fact: must be ground.
      for (const Term& t : head_terms) {
        if (t.is_var()) {
          return Error(start, StrCat("fact '", head_pred,
                                     "' contains a variable; facts must be "
                                     "ground"));
        }
      }
      program->facts.push_back(Atom{head_pred, head_terms});
      return Status::OK();
    }

    LINREC_RETURN_IF_ERROR(Expect(TokKind::kImplies, "':-' or '.'"));
    builder.SetHead(head_pred, std::move(head_terms));
    while (true) {
      // Body element: either an atom or an infix equality `term = term`
      // (sugar for eq(term, term)).
      if (Peek().kind == TokKind::kVariable ||
          Peek().kind == TokKind::kInteger) {
        Term lhs = Peek().kind == TokKind::kVariable
                       ? Term::MakeVar(builder.Var(Next().text))
                       : Term::MakeConst(Next().number);
        LINREC_RETURN_IF_ERROR(Expect(TokKind::kEquals, "'='"));
        const Token& rhs_tok = Peek();
        if (rhs_tok.kind != TokKind::kVariable &&
            rhs_tok.kind != TokKind::kInteger) {
          return Error(rhs_tok, "expected variable or constant after '='");
        }
        Term rhs = rhs_tok.kind == TokKind::kVariable
                       ? Term::MakeVar(builder.Var(Next().text))
                       : Term::MakeConst(Next().number);
        builder.AddBodyAtom(kEqualityPredicate, {lhs, rhs});
      } else {
        std::string pred;
        std::vector<Term> terms;
        LINREC_RETURN_IF_ERROR(ParseAtom(&builder, &pred, &terms));
        builder.AddBodyAtom(std::move(pred), std::move(terms));
      }
      if (Peek().kind == TokKind::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    LINREC_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.'"));
    Result<Rule> rule = builder.Build();
    if (!rule.ok()) return Error(start, rule.status().message());
    program->rules.push_back(std::move(rule).value());
    return Status::OK();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Database> Program::FactsToDatabase() const {
  Database db;
  for (const Atom& fact : facts) {
    const Relation* existing = db.Find(fact.predicate);
    if (existing != nullptr && existing->arity() != fact.arity()) {
      return Status::InvalidArgument(
          StrCat("fact predicate '", fact.predicate,
                 "' used with inconsistent arities"));
    }
    Relation& rel = db.GetOrCreate(fact.predicate, fact.arity());
    std::vector<Value> values;
    values.reserve(fact.arity());
    for (const Term& t : fact.terms) values.push_back(t.constant());
    rel.Insert(Tuple(std::move(values)));
  }
  return db;
}

std::vector<Rule> Program::RulesFor(const std::string& pred) const {
  std::vector<Rule> out;
  for (const Rule& r : rules) {
    if (r.head().predicate == pred) out.push_back(r);
  }
  return out;
}

Result<Program> ParseProgram(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseAll();
}

Result<Rule> ParseRule(const std::string& text) {
  Result<Program> program = ParseProgram(text);
  if (!program.ok()) return program.status();
  if (program->rules.size() != 1 || !program->facts.empty() ||
      !program->queries.empty()) {
    return Status::InvalidArgument(
        StrCat("expected exactly one rule, got ", program->rules.size(),
               " rule(s) and ", program->facts.size(), " fact(s)"));
  }
  return std::move(program->rules[0]);
}

Result<LinearRule> ParseLinearRule(const std::string& text) {
  Result<Rule> rule = ParseRule(text);
  if (!rule.ok()) return rule.status();
  return LinearRule::Make(std::move(rule).value());
}

}  // namespace linrec
