// Equality predicates and head-variable normalization (Section 5 preamble):
// "repeated variables in the consequent are replaced by distinct ones,
// while adding the appropriate equality predicates in the antecedent."
//
// Equality atoms use the reserved predicate name "eq" (the parser also
// accepts the infix form `X = Y`). They are eliminated statically before
// evaluation: eq(x,y) merges variables, eq(x,c) substitutes the constant,
// eq(c,c') with c ≠ c' makes the body unsatisfiable.

#pragma once

#include <optional>

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// The reserved equality predicate name.
inline constexpr const char* kEqualityPredicate = "eq";

/// True if any body atom is an equality atom.
bool HasEqualities(const Rule& rule);

/// Replaces the 2nd+ occurrence of each repeated head variable by a fresh
/// variable and adds eq(original, fresh) to the body, yielding an
/// equivalent rule with distinct head variables (the paper's normal form
/// for the Section 5 analyses).
Rule NormalizeHeadVariables(const Rule& rule);

/// Statically eliminates all equality atoms by merging variables and
/// substituting constants. Returns nullopt when the equalities are
/// unsatisfiable (the rule derives nothing); InvalidArgument for malformed
/// eq atoms (arity != 2).
Result<std::optional<Rule>> EliminateEqualities(const Rule& rule);

/// Convenience composition for linear rules: eliminate equalities and
/// re-identify the recursive atom. nullopt when unsatisfiable.
Result<std::optional<LinearRule>> EliminateEqualitiesLinear(
    const LinearRule& rule);

}  // namespace linrec
