// Pretty-printing of atoms and rules back into the parser's text format.

#pragma once

#include <string>

#include "datalog/rule.h"

namespace linrec {

/// Renders one atom using the variable names of `rule`.
std::string ToString(const Atom& atom, const Rule& rule);

/// Renders `head :- body_1, ..., body_n.` (or `head.` for a bodyless rule).
/// The output re-parses to a structurally identical rule.
std::string ToString(const Rule& rule);

/// Renders the rule carried by a LinearRule.
std::string ToString(const LinearRule& rule);

}  // namespace linrec
