#include "datalog/printer.h"

#include "common/strings.h"

namespace linrec {

std::string ToString(const Atom& atom, const Rule& rule) {
  std::string out = atom.predicate;
  out += "(";
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) out += ",";
    const Term& t = atom.terms[i];
    if (t.is_var()) {
      out += rule.var_name(t.var());
    } else {
      out += StrCat(t.constant());
    }
  }
  out += ")";
  return out;
}

std::string ToString(const Rule& rule) {
  std::string out = ToString(rule.head(), rule);
  if (!rule.body().empty()) {
    out += " :- ";
    for (std::size_t i = 0; i < rule.body().size(); ++i) {
      if (i > 0) out += ", ";
      out += ToString(rule.body()[i], rule);
    }
  }
  out += ".";
  return out;
}

std::string ToString(const LinearRule& rule) { return ToString(rule.rule()); }

}  // namespace linrec
