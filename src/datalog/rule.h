// Rule, RuleBuilder and the LinearRule view used by all analyses.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace linrec {

/// A Horn rule `head :- body_1, ..., body_n.` with a rule-local variable
/// name table. Rules are immutable values after construction.
class Rule {
 public:
  Rule() = default;
  /// `var_names[v]` is the display name of variable v. Callers normally use
  /// RuleBuilder; this constructor trusts its arguments (asserted in debug).
  Rule(Atom head, std::vector<Atom> body, std::vector<std::string> var_names);

  const Atom& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  int var_count() const { return static_cast<int>(var_names_.size()); }
  const std::string& var_name(VarId v) const {
    return var_names_[static_cast<std::size_t>(v)];
  }
  const std::vector<std::string>& var_names() const { return var_names_; }

  /// True iff variable v appears in the head (is "distinguished").
  bool IsDistinguished(VarId v) const {
    return distinguished_[static_cast<std::size_t>(v)];
  }

  /// Head positions (0-based) at which variable v appears.
  std::vector<int> HeadPositionsOf(VarId v) const;

  /// Total number of argument positions over head and body atoms — the size
  /// measure `a` used in the paper's complexity statements.
  std::size_t TotalArgumentPositions() const;

  /// Structural well-formedness: var ids in range, nonempty predicate names,
  /// consistent arity for repeated predicate symbols.
  Status Validate() const;

 private:
  Atom head_;
  std::vector<Atom> body_;
  std::vector<std::string> var_names_;
  std::vector<bool> distinguished_;
};

/// Incremental construction of a Rule with name interning.
class RuleBuilder {
 public:
  RuleBuilder() = default;

  /// Returns the id for `name`, interning it on first use.
  VarId Var(const std::string& name);
  /// Returns a new variable whose name starts with `hint` and is unique.
  VarId FreshVar(const std::string& hint);
  /// True if `name` has already been interned.
  bool HasVar(const std::string& name) const { return ids_.count(name) > 0; }

  void SetHead(std::string predicate, std::vector<Term> terms);
  void AddBodyAtom(std::string predicate, std::vector<Term> terms);

  /// Convenience: head/body atoms from variable names only.
  void SetHeadVars(const std::string& predicate,
                   const std::vector<std::string>& vars);
  void AddBodyVars(const std::string& predicate,
                   const std::vector<std::string>& vars);

  int atom_count() const { return static_cast<int>(body_.size()); }

  /// Builds and validates the rule.
  Result<Rule> Build();

 private:
  Atom head_;
  std::vector<Atom> body_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, VarId> ids_;
};

/// A validated view of a linear recursive rule: the head predicate occurs
/// exactly once in the body (the "recursive atom", the paper's P_I), with
/// the same arity as the head (P_O).
class LinearRule {
 public:
  /// Validates linearity. The rule must also be function-free (guaranteed by
  /// the IR). Constants are permitted here; analyses that need constant-free
  /// rules check separately.
  static Result<LinearRule> Make(Rule rule);

  const Rule& rule() const { return rule_; }
  const Atom& head() const { return rule_.head(); }
  int recursive_atom_index() const { return recursive_index_; }
  const Atom& recursive_atom() const {
    return rule_.body()[static_cast<std::size_t>(recursive_index_)];
  }
  const std::string& recursive_predicate() const {
    return rule_.head().predicate;
  }
  std::size_t arity() const { return rule_.head().arity(); }

  /// Indices of the body atoms other than the recursive one.
  std::vector<int> NonRecursiveAtomIndices() const;

 private:
  explicit LinearRule(Rule rule, int recursive_index)
      : rule_(std::move(rule)), recursive_index_(recursive_index) {}

  Rule rule_;
  int recursive_index_ = -1;
};

}  // namespace linrec
