// Rule-class predicates from Sections 5 and 6 of the paper, plus the
// alignment utility that puts two rules "over the same consequent".

#pragma once

#include <utility>

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// Syntactic properties of a single rule, per the paper's class definitions.
struct RuleTraits {
  /// Head predicate occurs exactly once in the body with matching arity.
  bool linear = false;
  /// No constants anywhere (functions are unrepresentable in the IR).
  bool constant_free = false;
  /// Every head variable also appears in the body.
  bool range_restricted = false;
  /// Some variable appears more than once in the head.
  bool repeated_head_vars = false;
  /// Some nonrecursive predicate symbol labels more than one body atom.
  bool repeated_nonrecursive_predicates = false;

  /// The class for which Theorem 5.2 makes the syntactic commutativity
  /// condition necessary and sufficient.
  bool InRestrictedClass() const {
    return linear && constant_free && range_restricted &&
           !repeated_head_vars && !repeated_nonrecursive_predicates;
  }
};

/// Computes the traits of `rule` (head predicate taken as the recursive one).
RuleTraits ComputeTraits(const Rule& rule);

/// Preconditions shared by the α-graph analyses (Section 5):
/// linear (already guaranteed by LinearRule), constant-free, and distinct
/// head variables. Returns InvalidArgument naming the first violation.
Status ValidateForAnalysis(const LinearRule& rule);

/// Puts two rules over the same consequent, per the setup of Section 5:
/// checks that both heads are distinct-variable atoms over the same
/// predicate/arity, then renames r2 so that (a) its head variables carry the
/// same names as r1's (positionally) and (b) its nondistinguished variables
/// are disjoint from r1's. Returns {r1, renamed r2}.
Result<std::pair<LinearRule, LinearRule>> AlignRules(const LinearRule& r1,
                                                     const LinearRule& r2);

}  // namespace linrec
