#include "datalog/equality.h"

#include <functional>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/strings.h"

namespace linrec {

bool HasEqualities(const Rule& rule) {
  for (const Atom& atom : rule.body()) {
    if (atom.predicate == kEqualityPredicate) return true;
  }
  return false;
}

Rule NormalizeHeadVariables(const Rule& rule) {
  RuleBuilder builder;
  // Copy all variables to keep names stable.
  for (VarId v = 0; v < rule.var_count(); ++v) {
    builder.Var(rule.var_name(v));
  }
  auto copy_term = [&](const Term& t) {
    return t.is_var() ? Term::MakeVar(builder.Var(rule.var_name(t.var())))
                      : t;
  };

  std::vector<Term> head_terms;
  std::vector<std::pair<Term, Term>> equalities;
  std::unordered_map<VarId, bool> seen;
  for (const Term& t : rule.head().terms) {
    if (t.is_var() && seen[t.var()]) {
      VarId fresh = builder.FreshVar(rule.var_name(t.var()));
      head_terms.push_back(Term::MakeVar(fresh));
      equalities.emplace_back(copy_term(t), Term::MakeVar(fresh));
    } else {
      if (t.is_var()) seen[t.var()] = true;
      head_terms.push_back(copy_term(t));
    }
  }
  builder.SetHead(rule.head().predicate, std::move(head_terms));
  for (const Atom& atom : rule.body()) {
    std::vector<Term> terms;
    for (const Term& t : atom.terms) terms.push_back(copy_term(t));
    builder.AddBodyAtom(atom.predicate, std::move(terms));
  }
  for (const auto& [a, b] : equalities) {
    builder.AddBodyAtom(kEqualityPredicate, {a, b});
  }
  Result<Rule> built = builder.Build();
  // Construction cannot fail: all inputs came from a valid rule.
  return std::move(built).value();
}

Result<std::optional<Rule>> EliminateEqualities(const Rule& rule) {
  // Union-find over variables, with an optional constant per class.
  std::vector<VarId> parent(static_cast<std::size_t>(rule.var_count()));
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<std::optional<Value>> constant(
      static_cast<std::size_t>(rule.var_count()));
  std::function<VarId(VarId)> find = [&](VarId x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  bool satisfiable = true;
  auto unify = [&](const Term& a, const Term& b) {
    if (a.is_const() && b.is_const()) {
      if (a.constant() != b.constant()) satisfiable = false;
      return;
    }
    if (a.is_var() && b.is_var()) {
      VarId ra = find(a.var());
      VarId rb = find(b.var());
      if (ra == rb) return;
      if (constant[static_cast<std::size_t>(ra)].has_value() &&
          constant[static_cast<std::size_t>(rb)].has_value() &&
          *constant[static_cast<std::size_t>(ra)] !=
              *constant[static_cast<std::size_t>(rb)]) {
        satisfiable = false;
        return;
      }
      if (!constant[static_cast<std::size_t>(rb)].has_value()) {
        constant[static_cast<std::size_t>(rb)] =
            constant[static_cast<std::size_t>(ra)];
      }
      parent[static_cast<std::size_t>(ra)] = rb;
      return;
    }
    const Term& var_term = a.is_var() ? a : b;
    const Term& const_term = a.is_var() ? b : a;
    VarId r = find(var_term.var());
    if (constant[static_cast<std::size_t>(r)].has_value()) {
      if (*constant[static_cast<std::size_t>(r)] != const_term.constant()) {
        satisfiable = false;
      }
    } else {
      constant[static_cast<std::size_t>(r)] = const_term.constant();
    }
  };

  for (const Atom& atom : rule.body()) {
    if (atom.predicate != kEqualityPredicate) continue;
    if (atom.arity() != 2) {
      return Status::InvalidArgument(
          StrCat("equality atom must be binary, got arity ", atom.arity()));
    }
    unify(atom.terms[0], atom.terms[1]);
  }
  if (!satisfiable) return std::optional<Rule>(std::nullopt);
  if (!HasEqualities(rule)) return std::optional<Rule>(rule);

  RuleBuilder builder;
  auto rewrite = [&](const Term& t) -> Term {
    if (t.is_const()) return t;
    VarId r = find(t.var());
    if (constant[static_cast<std::size_t>(r)].has_value()) {
      return Term::MakeConst(*constant[static_cast<std::size_t>(r)]);
    }
    return Term::MakeVar(builder.Var(rule.var_name(r)));
  };
  std::vector<Term> head_terms;
  for (const Term& t : rule.head().terms) head_terms.push_back(rewrite(t));
  builder.SetHead(rule.head().predicate, std::move(head_terms));
  for (const Atom& atom : rule.body()) {
    if (atom.predicate == kEqualityPredicate) continue;
    std::vector<Term> terms;
    for (const Term& t : atom.terms) terms.push_back(rewrite(t));
    builder.AddBodyAtom(atom.predicate, std::move(terms));
  }
  Result<Rule> built = builder.Build();
  if (!built.ok()) return built.status();
  return std::optional<Rule>(std::move(built).value());
}

Result<std::optional<LinearRule>> EliminateEqualitiesLinear(
    const LinearRule& rule) {
  Result<std::optional<Rule>> eliminated = EliminateEqualities(rule.rule());
  if (!eliminated.ok()) return eliminated.status();
  if (!eliminated->has_value()) {
    return std::optional<LinearRule>(std::nullopt);
  }
  Result<LinearRule> remade = LinearRule::Make(std::move(**eliminated));
  if (!remade.ok()) return remade.status();
  return std::optional<LinearRule>(std::move(remade).value());
}

}  // namespace linrec
