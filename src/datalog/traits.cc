#include "datalog/traits.h"

#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace linrec {

RuleTraits ComputeTraits(const Rule& rule) {
  RuleTraits traits;
  const std::string& pred = rule.head().predicate;

  int recursive_count = 0;
  bool recursive_arity_ok = true;
  traits.constant_free = true;
  std::unordered_map<std::string, int> nonrec_pred_count;
  std::unordered_set<VarId> body_vars;

  for (const Term& t : rule.head().terms) {
    if (t.is_const()) traits.constant_free = false;
  }
  for (const Atom& atom : rule.body()) {
    if (atom.predicate == pred) {
      ++recursive_count;
      if (atom.arity() != rule.head().arity()) recursive_arity_ok = false;
    } else {
      ++nonrec_pred_count[atom.predicate];
    }
    for (const Term& t : atom.terms) {
      if (t.is_const()) traits.constant_free = false;
      if (t.is_var()) body_vars.insert(t.var());
    }
  }
  traits.linear = (recursive_count == 1) && recursive_arity_ok;

  traits.range_restricted = true;
  std::unordered_set<VarId> head_seen;
  for (const Term& t : rule.head().terms) {
    if (!t.is_var()) continue;
    if (!head_seen.insert(t.var()).second) traits.repeated_head_vars = true;
    if (body_vars.count(t.var()) == 0) traits.range_restricted = false;
  }

  for (const auto& [name, count] : nonrec_pred_count) {
    if (count > 1) traits.repeated_nonrecursive_predicates = true;
  }
  return traits;
}

Status ValidateForAnalysis(const LinearRule& lr) {
  const Rule& rule = lr.rule();
  RuleTraits traits = ComputeTraits(rule);
  if (!traits.constant_free) {
    return Status::InvalidArgument(
        "analysis requires constant-free rules (Section 5 class)");
  }
  if (traits.repeated_head_vars) {
    return Status::InvalidArgument(
        "analysis requires distinct head variables; normalize repeated head "
        "variables first (the paper replaces them by equality predicates)");
  }
  return Status::OK();
}

Result<std::pair<LinearRule, LinearRule>> AlignRules(const LinearRule& r1,
                                                     const LinearRule& r2) {
  LINREC_RETURN_IF_ERROR(ValidateForAnalysis(r1));
  LINREC_RETURN_IF_ERROR(ValidateForAnalysis(r2));
  if (r1.head().predicate != r2.head().predicate) {
    return Status::InvalidArgument(
        StrCat("rules have different head predicates: '", r1.head().predicate,
               "' vs '", r2.head().predicate, "'"));
  }
  if (r1.arity() != r2.arity()) {
    return Status::InvalidArgument(
        StrCat("rules have different head arities: ", r1.arity(), " vs ",
               r2.arity()));
  }

  // Rename r2: head variables take r1's positional names; nondistinguished
  // variables get fresh names disjoint from r1's and from the new head names.
  RuleBuilder builder;
  const Rule& rule1 = r1.rule();
  const Rule& rule2 = r2.rule();

  std::unordered_map<VarId, VarId> rename;  // r2 var -> new builder var
  for (std::size_t i = 0; i < rule2.head().terms.size(); ++i) {
    VarId v2 = rule2.head().terms[i].var();
    VarId v1 = rule1.head().terms[i].var();
    rename[v2] = builder.Var(rule1.var_name(v1));
  }
  std::unordered_set<std::string> taken(rule1.var_names().begin(),
                                        rule1.var_names().end());
  auto map_term = [&](const Term& t) -> Term {
    VarId v = t.var();
    auto it = rename.find(v);
    if (it != rename.end()) return Term::MakeVar(it->second);
    std::string name = rule2.var_name(v);
    while (taken.count(name) > 0 || builder.HasVar(name)) name += "'";
    VarId nv = builder.Var(name);
    rename[v] = nv;
    return Term::MakeVar(nv);
  };

  std::vector<Term> head_terms;
  for (const Term& t : rule2.head().terms) head_terms.push_back(map_term(t));
  builder.SetHead(rule2.head().predicate, std::move(head_terms));
  for (const Atom& atom : rule2.body()) {
    std::vector<Term> terms;
    for (const Term& t : atom.terms) terms.push_back(map_term(t));
    builder.AddBodyAtom(atom.predicate, std::move(terms));
  }
  Result<Rule> built = builder.Build();
  if (!built.ok()) return built.status();
  Result<LinearRule> lr2 = LinearRule::Make(std::move(built).value());
  if (!lr2.ok()) return lr2.status();
  return std::make_pair(r1, std::move(lr2).value());
}

}  // namespace linrec
