// Core Datalog IR: terms, atoms, rules.
//
// The paper works with linear, function-free recursive rules
//
//   P(x^(k+1)) :- P(x^(0)) ∧ Q_1(x^(1)) ∧ ... ∧ Q_n(x^(n)).        (2.1)
//
// The IR here is slightly more general (constants are representable so the
// engine can evaluate selections and facts) but has no function symbols.
// Analyses that require constant-free rules validate explicitly.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace linrec {

/// Rule-local variable identifier; indexes the rule's variable-name table.
using VarId = std::int32_t;

/// A term is either a variable or a constant.
class Term {
 public:
  enum class Kind { kVariable, kConstant };

  static Term MakeVar(VarId v) { return Term(Kind::kVariable, v, 0); }
  static Term MakeConst(Value c) { return Term(Kind::kConstant, -1, c); }

  Kind kind() const { return kind_; }
  bool is_var() const { return kind_ == Kind::kVariable; }
  bool is_const() const { return kind_ == Kind::kConstant; }

  /// Requires is_var().
  VarId var() const { return var_; }
  /// Requires is_const().
  Value constant() const { return constant_; }

  bool operator==(const Term& other) const {
    return kind_ == other.kind_ && var_ == other.var_ &&
           constant_ == other.constant_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

 private:
  Term(Kind kind, VarId var, Value constant)
      : kind_(kind), var_(var), constant_(constant) {}

  Kind kind_;
  VarId var_;
  Value constant_;
};

/// A positive literal: predicate name applied to terms.
struct Atom {
  std::string predicate;
  std::vector<Term> terms;

  std::size_t arity() const { return terms.size(); }

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && terms == other.terms;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }
};

}  // namespace linrec
