// Text-format parser for Datalog programs.
//
// Grammar (comments run from '%' or "//" to end of line):
//
//   program  := clause*
//   clause   := atom ( ":-" atom ("," atom)* )? "."
//             | "?-" atom "."
//   atom     := predicate "(" term ("," term)* ")"
//   term     := VARIABLE | INTEGER
//
// Predicates are identifiers starting with a lowercase letter. Variables
// start with an uppercase letter or '_'. Constants are (signed) integers —
// the value domain is typeless (Section 2), so workloads intern any symbolic
// data to integers. A clause without a body and without variables is a fact.
// A "?-" clause is a query goal: its atom may mix variables and constants
// (the front end lowers a single constant into a σ bind, engine/query.h).

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "storage/database.h"

namespace linrec {

/// A parsed program: rules (clauses with a body), ground facts, and query
/// goals ("?-" clauses, in program order).
struct Program {
  std::vector<Rule> rules;
  std::vector<Atom> facts;
  std::vector<Atom> queries;

  /// Loads all facts into a Database (arities inferred; conflicting arities
  /// for one predicate yield InvalidArgument).
  Result<Database> FactsToDatabase() const;

  /// All rules whose head predicate is `pred`.
  std::vector<Rule> RulesFor(const std::string& pred) const;
};

/// Parses a whole program. Errors carry 1-based line:column positions.
Result<Program> ParseProgram(const std::string& text);

/// Parses exactly one rule (clause with a body).
Result<Rule> ParseRule(const std::string& text);

/// Parses exactly one rule and wraps it as a LinearRule.
Result<LinearRule> ParseLinearRule(const std::string& text);

}  // namespace linrec
