#include "commutativity/definitional.h"

#include "cq/compose.h"
#include "cq/homomorphism.h"

namespace linrec {

Result<bool> DefinitionalCommute(const LinearRule& r1, const LinearRule& r2) {
  Result<LinearRule> c12 = Compose(r1, r2);
  if (!c12.ok()) return c12.status();
  Result<LinearRule> c21 = Compose(r2, r1);
  if (!c21.ok()) return c21.status();
  return AreEquivalent(c12->rule(), c21->rule());
}

}  // namespace linrec
