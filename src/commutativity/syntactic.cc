#include "commutativity/syntactic.h"

#include <map>
#include <optional>

#include "analysis/narrow_wide.h"
#include "analysis/rule_analysis.h"
#include "common/strings.h"
#include "cq/fast_equivalence.h"
#include "cq/homomorphism.h"
#include "datalog/printer.h"
#include "datalog/traits.h"

namespace linrec {
namespace {

/// h applied through head positions: the head position of h_i(var at `pos`),
/// or nullopt if the image is nondistinguished.
std::optional<int> HPosition(const RuleAnalysis& a, int pos) {
  VarId x = a.classes().HeadVarAt(pos);
  std::optional<VarId> hx = a.classes().H(x);
  if (!hx.has_value()) return std::nullopt;
  int p = a.classes().HeadPositionOf(*hx);
  if (p < 0) return std::nullopt;
  return p;
}

}  // namespace

Result<SyntacticCommutativity> CheckSyntacticCondition(const LinearRule& r1,
                                                       const LinearRule& r2) {
  if (r1.head().predicate != r2.head().predicate ||
      r1.arity() != r2.arity()) {
    return Status::InvalidArgument(
        "commutativity requires the same head predicate and arity");
  }
  Result<RuleAnalysis> a1 = RuleAnalysis::Compute(r1);
  if (!a1.ok()) return a1.status();
  Result<RuleAnalysis> a2 = RuleAnalysis::Compute(r2);
  if (!a2.ok()) return a2.status();

  const int arity = static_cast<int>(r1.arity());
  SyntacticCommutativity out;
  out.condition_holds = true;
  out.clause_per_position.assign(static_cast<std::size_t>(arity), '-');
  out.notes.resize(static_cast<std::size_t>(arity));

  // Cache of narrow-rule equivalence per bridge pair.
  std::map<std::pair<int, int>, bool> bridge_equiv_cache;
  auto bridges_equivalent = [&](int b1, int b2) -> Result<bool> {
    auto key = std::make_pair(b1, b2);
    auto it = bridge_equiv_cache.find(key);
    if (it != bridge_equiv_cache.end()) return it->second;
    Result<LinearRule> n1 =
        MakeNarrowRule(*a1, a1->commutativity_bridges()[static_cast<std::size_t>(b1)]);
    if (!n1.ok()) return n1.status();
    Result<LinearRule> n2 =
        MakeNarrowRule(*a2, a2->commutativity_bridges()[static_cast<std::size_t>(b2)]);
    if (!n2.ok()) return n2.status();
    std::optional<bool> fast =
        FastEquivalenceDistinctPredicates(n1->rule(), n2->rule());
    bool equivalent =
        fast.has_value() ? *fast : AreEquivalent(n1->rule(), n2->rule());
    bridge_equiv_cache.emplace(key, equivalent);
    return equivalent;
  };

  for (int p = 0; p < arity; ++p) {
    VarId x1 = a1->classes().HeadVarAt(p);
    VarId x2 = a2->classes().HeadVarAt(p);
    const VarClass& c1 = a1->classes().Of(x1);
    const VarClass& c2 = a2->classes().Of(x2);
    char clause = '-';
    std::string note;

    if (c1.IsFree1Persistent() || c2.IsFree1Persistent()) {
      clause = 'a';
      note = StrCat("free 1-persistent in ",
                    c1.IsFree1Persistent() ? "r1" : "r2");
    } else if (c1.IsLink1Persistent() && c2.IsLink1Persistent()) {
      clause = 'b';
      note = "link 1-persistent in both rules";
    } else if (c1.IsFreePersistent() && c1.period > 1 &&
               c2.IsFreePersistent() && c2.period > 1) {
      // h1(h2(x)) = h2(h1(x)), compared through head positions.
      std::optional<int> j2 = HPosition(*a2, p);  // position of h2(x)
      std::optional<int> j1 = HPosition(*a1, p);  // position of h1(x)
      std::optional<int> h1h2 =
          j2.has_value() ? HPosition(*a1, *j2) : std::nullopt;
      std::optional<int> h2h1 =
          j1.has_value() ? HPosition(*a2, *j1) : std::nullopt;
      if (h1h2.has_value() && h2h1.has_value() && *h1h2 == *h2h1) {
        clause = 'c';
        note = StrCat("free ", c1.period, "-persistent in r1, free ",
                      c2.period, "-persistent in r2, h1h2 = h2h1");
      } else {
        note = "free persistent in both but h1(h2(x)) != h2(h1(x))";
      }
    }

    if (clause == '-') {
      bool d1 = c1.IsGeneral() || (c1.IsLinkPersistent() && c1.period > 1);
      bool d2 = c2.IsGeneral() || (c2.IsLinkPersistent() && c2.period > 1);
      if (d1 && d2) {
        int b1 = a1->CommutativityBridgeOf(x1);
        int b2 = a2->CommutativityBridgeOf(x2);
        if (b1 >= 0 && b2 >= 0) {
          Result<bool> eq = bridges_equivalent(b1, b2);
          if (!eq.ok()) return eq.status();
          if (*eq) {
            clause = 'd';
            note = "equivalent augmented bridges in both rules";
          } else {
            note = "augmented bridges are not equivalent";
          }
        } else {
          note = "variable not covered by a bridge";
        }
      } else if (note.empty()) {
        note = StrCat("classes do not match any clause: r1=", c1.Describe(),
                      ", r2=", c2.Describe());
      }
    }

    out.clause_per_position[static_cast<std::size_t>(p)] = clause;
    out.notes[static_cast<std::size_t>(p)] = StrCat(
        a1->rule().rule().var_name(x1), " @", p, ": ",
        clause == '-' ? StrCat("FAIL (", note, ")")
                      : StrCat("(", std::string(1, clause), ") ", note));
    if (clause == '-') out.condition_holds = false;
  }
  return out;
}

}  // namespace linrec
