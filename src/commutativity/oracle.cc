#include "commutativity/oracle.h"

#include "commutativity/definitional.h"
#include "datalog/traits.h"

namespace linrec {

Result<CommutativityReport> CheckCommutativity(const LinearRule& r1,
                                               const LinearRule& r2) {
  CommutativityReport report;
  Result<SyntacticCommutativity> syntactic = CheckSyntacticCondition(r1, r2);
  if (!syntactic.ok()) return syntactic.status();
  report.syntactic_holds = syntactic->condition_holds;
  report.notes = syntactic->notes;
  report.restricted_class = ComputeTraits(r1.rule()).InRestrictedClass() &&
                            ComputeTraits(r2.rule()).InRestrictedClass();

  if (report.syntactic_holds) {
    report.commute = true;  // Theorem 5.1 (sufficiency).
    return report;
  }
  if (report.restricted_class) {
    report.commute = false;  // Theorem 5.2 (necessity).
    return report;
  }
  // Outside the restricted class the condition is only sufficient; decide
  // exactly from the definition.
  Result<bool> exact = DefinitionalCommute(r1, r2);
  if (!exact.ok()) return exact.status();
  report.definitional_used = true;
  report.commute = *exact;
  return report;
}

Result<bool> Commute(const LinearRule& r1, const LinearRule& r2) {
  Result<CommutativityReport> report = CheckCommutativity(r1, r2);
  if (!report.ok()) return report.status();
  return report->commute;
}

}  // namespace linrec
