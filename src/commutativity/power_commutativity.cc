#include "commutativity/power_commutativity.h"

#include <algorithm>
#include <vector>

#include "cq/compose.h"
#include "cq/homomorphism.h"

namespace linrec {

Result<AbsorptionWitness> FindAbsorption(const LinearRule& b,
                                         const LinearRule& c,
                                         int max_power) {
  if (max_power < 1) {
    return Status::InvalidArgument("max_power must be >= 1");
  }
  Result<LinearRule> cb = Compose(c, b);
  if (!cb.ok()) return cb.status();

  // Precompute powers lazily.
  std::vector<LinearRule> b_powers{b};
  std::vector<LinearRule> c_powers{c};
  auto power_of = [&](std::vector<LinearRule>* cache, const LinearRule& base,
                      int n) -> Result<LinearRule> {
    while (static_cast<int>(cache->size()) < n) {
      Result<LinearRule> next = Compose(cache->back(), base);
      if (!next.ok()) return next.status();
      cache->push_back(std::move(next).value());
    }
    return (*cache)[static_cast<std::size_t>(n - 1)];
  };

  // Enumerate candidates in (k+l, k) order; the side condition requires
  // k <= 1 or l <= 1, and at least one factor present.
  AbsorptionWitness witness;
  for (int total = 1; total <= 2 * max_power; ++total) {
    for (int k = 0; k <= std::min(total, max_power); ++k) {
      int l = total - k;
      if (l > max_power) continue;
      if (k > 1 && l > 1) continue;  // outside the theorem's condition
      // Build B^k C^l (absent factors skipped).
      Result<LinearRule> rhs = Status::Internal("unset");
      if (k == 0) {
        rhs = power_of(&c_powers, c, l);
      } else if (l == 0) {
        rhs = power_of(&b_powers, b, k);
      } else {
        Result<LinearRule> bk = power_of(&b_powers, b, k);
        if (!bk.ok()) return bk.status();
        Result<LinearRule> cl = power_of(&c_powers, c, l);
        if (!cl.ok()) return cl.status();
        rhs = Compose(*bk, *cl);
      }
      if (!rhs.ok()) return rhs.status();
      if (IsContainedIn(cb->rule(), rhs->rule())) {
        witness.found = true;
        witness.k = k;
        witness.l = l;
        return witness;
      }
    }
  }
  return witness;
}

Result<bool> PowersCommute(const LinearRule& b, int i, const LinearRule& c,
                           int j) {
  Result<LinearRule> bi = Power(b, i);
  if (!bi.ok()) return bi.status();
  Result<LinearRule> cj = Power(c, j);
  if (!cj.ok()) return cj.status();
  Result<LinearRule> bc = Compose(*bi, *cj);
  if (!bc.ok()) return bc.status();
  Result<LinearRule> cb = Compose(*cj, *bi);
  if (!cb.ok()) return cb.status();
  return AreEquivalent(bc->rule(), cb->rule());
}

}  // namespace linrec
