// The syntactic commutativity condition (Theorems 5.1-5.3).
//
// Two aligned rules commute if every distinguished variable x satisfies one
// of:
//  (a) x is free 1-persistent in r1 or in r2;
//  (b) x is link 1-persistent in both;
//  (c) x is free m1-persistent (m1>1) in r1 and free m2-persistent (m2>1)
//      in r2, and h1(h2(x)) = h2(h1(x));
//  (d) x is link m-persistent (m>1) or general in both rules, and belongs to
//      equivalent augmented bridges in r1 and r2.
//
// The condition is sufficient for arbitrary linear, function-free,
// constant-free rules (Theorem 5.1) and necessary-and-sufficient for the
// restricted class (Theorem 5.2), where it runs in O(a log a) (Theorem 5.3).

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// Outcome of the per-position condition check.
struct SyntacticCommutativity {
  /// Whether the Theorem 5.1 condition holds for every head position.
  bool condition_holds = false;
  /// Which clause ('a'..'d') satisfied each head position; '-' when none.
  std::vector<char> clause_per_position;
  /// Human-readable per-position notes.
  std::vector<std::string> notes;
};

/// Evaluates the Theorem 5.1 condition. Requires both rules to pass
/// ValidateForAnalysis and to share the head predicate and arity.
Result<SyntacticCommutativity> CheckSyntacticCondition(const LinearRule& r1,
                                                       const LinearRule& r2);

}  // namespace linrec
