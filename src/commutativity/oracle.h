// Combined commutativity oracle.
//
// Strategy: run the O(a log a) syntactic condition first. If it holds, the
// rules commute (Theorem 5.1). If it fails and both rules are in the
// restricted class, they do not commute (Theorem 5.2). Otherwise fall back
// to the exact definition-based test.

#pragma once

#include <string>
#include <vector>

#include "commutativity/syntactic.h"
#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// Full verdict with provenance.
struct CommutativityReport {
  bool commute = false;
  /// The Theorem 5.1 condition held.
  bool syntactic_holds = false;
  /// Both rules are in the restricted class, making the syntactic condition
  /// exact (Theorem 5.2).
  bool restricted_class = false;
  /// The definition-based test was run (composites + CQ equivalence).
  bool definitional_used = false;
  /// Per-head-position explanation from the syntactic check.
  std::vector<std::string> notes;
};

/// Decides whether r1 and r2 commute.
Result<CommutativityReport> CheckCommutativity(const LinearRule& r1,
                                               const LinearRule& r2);

/// Convenience: just the verdict.
Result<bool> Commute(const LinearRule& r1, const LinearRule& r2);

}  // namespace linrec
