// Commutativity at higher powers and the generalized decomposition
// condition of Section 3.1 / [13]:
//
//   if CB ≤ BᵏCˡ with k ∈ {0,1} or l ∈ {0,1}, then (B+C)* = B*C*.
//
// Plain commutativity is the k = l = 1 case. Section 7 lists "commutativity
// appearing in some higher power of an operator" as a direction; the
// entry points here cover both: testing CB ≤ BᵏCˡ for small exponents and
// testing whether powers of two operators commute.

#pragma once

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// A witness for the decomposition condition CB ≤ BᵏCˡ.
struct AbsorptionWitness {
  bool found = false;
  int k = 0;
  int l = 0;
};

/// Searches exponents k, l ≤ max_power with k ∈ {0,1} or l ∈ {0,1} (the
/// paper's side condition) such that C·B ≤ Bᵏ·Cˡ. k = 0 (resp. l = 0)
/// means the factor is absent; k = l = 0 would mean CB ≤ 1, which is not
/// expressible for rules and is skipped. Returns the smallest witness in
/// (k+l, k) order.
Result<AbsorptionWitness> FindAbsorption(const LinearRule& b,
                                         const LinearRule& c, int max_power);

/// Do b^i and c^j commute? (Exact, via composites of the powers.)
Result<bool> PowersCommute(const LinearRule& b, int i, const LinearRule& c,
                           int j);

}  // namespace linrec
