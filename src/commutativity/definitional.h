// The definition-based commutativity test: form both composites and test
// their equivalence as conjunctive queries (Section 5 preamble).
// Exact for any pair of linear constant-free rules, but the equivalence
// test is NP-complete in general.

#pragma once

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// r1·r2 ≡ r2·r1? Requires composable rules (same head predicate/arity,
/// distinct head variables).
Result<bool> DefinitionalCommute(const LinearRule& r1, const LinearRule& r2);

}  // namespace linrec
