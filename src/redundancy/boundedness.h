// Uniform boundedness and torsion of linear operators (Section 4.2).
//
// B is uniformly bounded when Bᴺ ≤ Bᴷ for some K < N; torsion when
// Bᴺ = Bᴷ. Lemma 6.2: in the restricted class, uniformly bounded ⇒ torsion.
// Deciding these properties in general is not tractable, so the searches
// below are budgeted semi-decisions: they try all K < N ≤ max_power and
// report BudgetExhausted-like "not found" results beyond that.

#pragma once

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// Outcome of a budgeted exponent search.
struct ExponentSearch {
  bool found = false;
  int k = 0;  ///< smaller exponent (K)
  int n = 0;  ///< larger exponent (N), K < N
  int powers_computed = 0;
};

/// Smallest (n, k) with rⁿ ≡ rᵏ, n ≤ max_power.
Result<ExponentSearch> FindTorsion(const LinearRule& rule, int max_power);

/// Smallest (n, k) with rⁿ ≤ rᵏ, n ≤ max_power.
Result<ExponentSearch> FindUniformBound(const LinearRule& rule,
                                        int max_power);

}  // namespace linrec
