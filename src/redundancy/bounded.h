// Bounded recursion (Section 1 lists it among the special cases the paper's
// framework covers; Section 4.2 defines the underlying property).
//
// When the whole operator is uniformly bounded — Aᴺ ≤ Aᴷ for K < N — every
// power Aᵐ with m ≥ N is contained in a smaller one, so
//
//   A* = Σ_{m=0}^{N-1} Aᵐ ,
//
// and the closure needs at most N−1 applications regardless of the data.

#pragma once

#include "common/status.h"
#include "eval/fixpoint.h"
#include "redundancy/boundedness.h"

namespace linrec {

/// Detects uniform boundedness within `max_power` and, if found, returns a
/// closure evaluator bound N−1. NotFound when no witness exists in budget.
struct BoundedRecursion {
  ExponentSearch bound;
  LinearRule rule;
};
Result<BoundedRecursion> DetectBoundedRecursion(const LinearRule& rule,
                                                int max_power = 8);

/// Evaluates A* q as the bounded power sum Σ_{m<N} Aᵐ q.
Result<Relation> BoundedClosure(const BoundedRecursion& bounded,
                                const Database& db, const Relation& q,
                                ClosureStats* stats = nullptr);

}  // namespace linrec
