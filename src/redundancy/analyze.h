// Detection of recursively redundant predicates (Theorem 6.3):
// a nonrecursive predicate is recursively redundant iff it appears in a
// uniformly bounded augmented bridge of the α-graph with respect to G_I.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "redundancy/boundedness.h"

namespace linrec {

/// Per-bridge redundancy verdict.
struct RedundancyEntry {
  int bridge_index = -1;
  /// Nonrecursive predicates whose atoms lie in this bridge.
  std::vector<std::string> predicates;
  /// The bridge's wide rule was found uniformly bounded within budget.
  bool uniformly_bounded = false;
  ExponentSearch bound;
};

/// Whole-rule report.
struct RedundancyReport {
  std::vector<RedundancyEntry> entries;
  /// Union of predicates of the uniformly bounded bridges.
  std::vector<std::string> redundant_predicates;
};

/// Analyzes every redundancy bridge of `rule`, testing uniform boundedness
/// of its wide rule with the given power budget.
Result<RedundancyReport> AnalyzeRedundancy(const LinearRule& rule,
                                           int max_power = 8);

}  // namespace linrec
