#include "redundancy/bounded.h"

namespace linrec {

Result<BoundedRecursion> DetectBoundedRecursion(const LinearRule& rule,
                                                int max_power) {
  Result<ExponentSearch> search = FindUniformBound(rule, max_power);
  if (!search.ok()) return search.status();
  if (!search->found) {
    return Status::NotFound(
        "no uniform-boundedness witness within the power budget");
  }
  return BoundedRecursion{*search, rule};
}

Result<Relation> BoundedClosure(const BoundedRecursion& bounded,
                                const Database& db, const Relation& q,
                                ClosureStats* stats) {
  return PowerSum({bounded.rule}, db, q, bounded.bound.n - 1, stats);
}

}  // namespace linrec
