#include "redundancy/analyze.h"

#include <algorithm>
#include <set>

#include "analysis/narrow_wide.h"
#include "analysis/rule_analysis.h"

namespace linrec {

Result<RedundancyReport> AnalyzeRedundancy(const LinearRule& rule,
                                           int max_power) {
  Result<RuleAnalysis> analysis = RuleAnalysis::Compute(rule);
  if (!analysis.ok()) return analysis.status();

  RedundancyReport report;
  std::set<std::string> redundant;
  const std::vector<Bridge>& bridges = analysis->redundancy_bridges();
  for (std::size_t i = 0; i < bridges.size(); ++i) {
    const Bridge& bridge = bridges[i];
    if (bridge.atom_indices.empty()) continue;  // no nonrecursive predicate

    RedundancyEntry entry;
    entry.bridge_index = static_cast<int>(i);
    for (int ai : bridge.atom_indices) {
      entry.predicates.push_back(
          rule.rule().body()[static_cast<std::size_t>(ai)].predicate);
    }
    std::sort(entry.predicates.begin(), entry.predicates.end());

    Result<LinearRule> wide = MakeWideRule(*analysis, bridge);
    if (!wide.ok()) return wide.status();
    Result<ExponentSearch> bound = FindUniformBound(*wide, max_power);
    if (!bound.ok()) return bound.status();
    entry.bound = *bound;
    entry.uniformly_bounded = bound->found;
    if (entry.uniformly_bounded) {
      redundant.insert(entry.predicates.begin(), entry.predicates.end());
    }
    report.entries.push_back(std::move(entry));
  }
  report.redundant_predicates.assign(redundant.begin(), redundant.end());
  return report;
}

}  // namespace linrec
