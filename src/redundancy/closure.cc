#include "redundancy/closure.h"

#include <numeric>

#include "cq/compose.h"

namespace linrec {
namespace {

/// General evaluation per the Theorem 4.2 series:
///   A* = Σ_{m<KL} Aᵐ + (Σ_{n<L} Aⁿ)(Σ_{m=K..N-1} Aᵐᴸ)(B^{N-K})*.
/// Valid whenever the swap condition Cᴸ(BCᴸ) = Cᴸ(CᴸB) holds.
Result<Relation> GeneralPath(const RedundantFactorization& f,
                             const Database& db, const Relation& q,
                             ClosureStats* stats, IndexCache* cache,
                             int workers, const CancellationToken* cancel) {
  const int l = f.L;
  const int k = f.K;
  const int n = f.N;
  std::vector<LinearRule> a_rules{f.A};

  // Tail seed: (B^{N-K})* q.
  Result<LinearRule> b_power = Power(f.B, n - k);
  if (!b_power.ok()) return b_power.status();
  std::vector<LinearRule> b_rules{std::move(b_power).value()};
  Result<Relation> x =
      SemiNaiveClosure(b_rules, db, q, stats, cache, workers, cancel);
  if (!x.ok()) return x.status();

  // Y = Σ_{m=K}^{N-1} A^{mL} X, collected while iterating A.
  Relation y(q.arity());
  {
    Relation z = std::move(x).value();
    for (int step = 1; step <= (n - 1) * l; ++step) {
      LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
      Result<Relation> next = ApplySum(a_rules, db, z, stats, cache);
      if (!next.ok()) return next.status();
      z = std::move(next).value();
      if (step % l == 0 && step / l >= k) y.UnionWith(z);
    }
  }

  // W = Σ_{n'=0}^{L-1} A^{n'} Y.
  Result<Relation> w =
      PowerSum(a_rules, db, y, l - 1, stats, cache, workers, cancel);
  if (!w.ok()) return w.status();

  // Prefix Σ_{m=0}^{KL-1} A^m q.
  Result<Relation> prefix =
      PowerSum(a_rules, db, q, k * l - 1, stats, cache, workers, cancel);
  if (!prefix.ok()) return prefix.status();

  Relation result = std::move(prefix).value();
  result.UnionWith(*w);
  return result;
}

/// Fast path when B and E = Cᴸ commute. Writing D = Aᴸ = B·E and using the
/// torsion of C (Cᴺ ≡ Cᴷ, so Eᵐ cycles with index k' = ⌈K/L⌉ and period
/// p' = (N−K)/gcd(L, N−K)):
///
///   D* = Σ_{m<k'} Dᵐ + (B^{p'})* Σ_{j=0}^{p'-1} D^{k'+j},
///   A* = (Σ_{n<L} Aⁿ) D*.
///
/// Every application of the redundant predicates happens in the bounded
/// D-power prefix computed from q, never on the unbounded tail.
Result<Relation> CommutingPath(const RedundantFactorization& f,
                               const Database& db, const Relation& q,
                               ClosureStats* stats, IndexCache* cache,
                               int workers,
                               const CancellationToken* cancel) {
  const int l = f.L;
  const int k_prime = (f.K + l - 1) / l;
  // Smallest p with L·p ≡ 0 (mod N−K): the cycle period of Cᴸ-powers.
  const int period = (f.N - f.K) / std::gcd(l, f.N - f.K);
  std::vector<LinearRule> d_rules{f.AL};
  std::vector<LinearRule> a_rules{f.A};

  // S1 = Σ_{m=0}^{k'-1} D^m q, keeping the running power D^{k'-1} q.
  Relation s1 = q;
  Relation power = q;
  for (int m = 1; m <= k_prime - 1; ++m) {
    LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
    Result<Relation> next = ApplySum(d_rules, db, power, stats, cache);
    if (!next.ok()) return next.status();
    power = std::move(next).value();
    s1.UnionWith(power);
  }
  // T = Σ_{j=0}^{p'-1} D^{k'+j} q.
  Relation t(q.arity());
  for (int j = 0; j < period; ++j) {
    LINREC_RETURN_IF_ERROR(CheckCancel(cancel));
    Result<Relation> next = ApplySum(d_rules, db, power, stats, cache);
    if (!next.ok()) return next.status();
    power = std::move(next).value();
    t.UnionWith(power);
  }
  // X = (B^{p'})* T.
  Result<LinearRule> b_power = Power(f.B, period);
  if (!b_power.ok()) return b_power.status();
  std::vector<LinearRule> b_rules{std::move(b_power).value()};
  Result<Relation> x =
      SemiNaiveClosure(b_rules, db, t, stats, cache, workers, cancel);
  if (!x.ok()) return x.status();

  Relation d_star = std::move(s1);
  d_star.UnionWith(*x);

  // A* q = Σ_{n<L} A^n (D* q).
  return PowerSum(a_rules, db, d_star, l - 1, stats, cache, workers, cancel);
}

}  // namespace

Result<Relation> RedundantClosure(const RedundantFactorization& f,
                                  const Database& db, const Relation& q,
                                  ClosureStats* stats, IndexCache* cache,
                                  int workers,
                                  const CancellationToken* cancel) {
  if (!f.product_verified || !f.swap_verified) {
    return Status::InvalidArgument(
        "factorization not verified (product/swap); refusing to use it");
  }
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;
  Result<Relation> result =
      f.commuting ? CommutingPath(f, db, q, stats, cache, workers, cancel)
                  : GeneralPath(f, db, q, stats, cache, workers, cancel);
  if (result.ok() && stats != nullptr) stats->result_size = result->size();
  return result;
}

}  // namespace linrec
