#include "redundancy/boundedness.h"

#include <vector>

#include "cq/compose.h"
#include "cq/homomorphism.h"

namespace linrec {
namespace {

enum class Mode { kTorsion, kUniformBound };

Result<ExponentSearch> Search(const LinearRule& rule, int max_power,
                              Mode mode) {
  if (max_power < 2) {
    return Status::InvalidArgument("max_power must be >= 2");
  }
  ExponentSearch out;
  std::vector<LinearRule> powers;  // powers[i] = r^(i+1)
  powers.push_back(rule);
  for (int n = 2; n <= max_power; ++n) {
    Result<LinearRule> next = Compose(powers.back(), rule);
    if (!next.ok()) return next.status();
    powers.push_back(std::move(next).value());
    ++out.powers_computed;
    for (int k = 1; k < n; ++k) {
      const Rule& rn = powers[static_cast<std::size_t>(n - 1)].rule();
      const Rule& rk = powers[static_cast<std::size_t>(k - 1)].rule();
      bool hit = mode == Mode::kTorsion
                     ? AreEquivalent(rn, rk)
                     : IsContainedIn(rn, rk);  // r^n ≤ r^k
      if (hit) {
        out.found = true;
        out.k = k;
        out.n = n;
        return out;
      }
    }
  }
  return out;  // not found within budget
}

}  // namespace

Result<ExponentSearch> FindTorsion(const LinearRule& rule, int max_power) {
  return Search(rule, max_power, Mode::kTorsion);
}

Result<ExponentSearch> FindUniformBound(const LinearRule& rule,
                                        int max_power) {
  return Search(rule, max_power, Mode::kUniformBound);
}

}  // namespace linrec
