// Redundancy-aware closure (Theorem 4.2):
//
//   A* = Σ_{m=0}^{KL-1} Aᵐ
//      + (Σ_{n=0}^{L-1} Aⁿ)(Σ_{m=K}^{N-1} Aᵐᴸ)(Σ_{i≥0} B^{i(N-K)})
//
// where Aᴸ = BCᴸ, C is torsion with Cᴺ = Cᴷ, and Cᴸ(BCᴸ) = Cᴸ(CᴸB).
// The C-side predicates are touched at most NL−1 times; the unbounded tail
// only applies B.

#pragma once

#include "common/status.h"
#include "eval/fixpoint.h"
#include "redundancy/factorize.h"

namespace linrec {

/// Evaluates A* q using the factorization. Equal to the direct semi-naive
/// closure of A (verified in tests); asymptotically cheaper when the
/// redundant predicates are expensive. All phases share `cache` (or a
/// local one when null); `workers` parallelizes the inside of every
/// closure/power-sum phase's rounds (eval/fixpoint.h).
Result<Relation> RedundantClosure(const RedundantFactorization& f,
                                  const Database& db, const Relation& q,
                                  ClosureStats* stats = nullptr,
                                  IndexCache* cache = nullptr,
                                  int workers = 1,
                                  const CancellationToken* cancel = nullptr);

}  // namespace linrec
