// Factorization Aᴸ = B·Cᴸ for a uniformly bounded augmented bridge
// (Lemmas 6.3-6.5, Theorem 6.4).

#pragma once

#include "common/status.h"
#include "datalog/rule.h"
#include "redundancy/boundedness.h"

namespace linrec {

/// The verified factorization used by RedundantClosure.
struct RedundantFactorization {
  /// Lemma 6.3 exponent: in Aᴸ every link-persistent variable is link
  /// 1-persistent and every ray variable is 1-ray.
  int L = 1;
  /// Torsion exponents of C: Cᴺ ≡ Cᴷ, K < N.
  int K = 0;
  int N = 0;
  LinearRule A;    ///< the original operator
  LinearRule AL;   ///< Aᴸ
  LinearRule C;    ///< wide rule of the bounded bridge in A
  LinearRule CL;   ///< Cᴸ (wide rule of the generated bridges in Aᴸ)
  LinearRule B;    ///< complement in Aᴸ: Aᴸ = B·Cᴸ
  bool product_verified = false;  ///< Aᴸ ≡ B·Cᴸ (CQ equivalence)
  bool swap_verified = false;     ///< Cᴸ(BCᴸ) ≡ Cᴸ(CᴸB) — eq. (4.1)
  /// B and Cᴸ commute outright (stronger than the swap condition). When
  /// true, RedundantClosure can push the C-applications to the small prefix
  /// sets instead of the full tail closure (Example 6.2's regime; Example
  /// 6.3 only satisfies the swap condition).
  bool commuting = false;
};

/// Factors `rule` against redundancy bridge `bridge_index` (an index into
/// RuleAnalysis::redundancy_bridges()). Requires the restricted class (the
/// construction matches generated atoms by predicate name) and a torsion
/// witness for C within `max_power`.
Result<RedundantFactorization> FactorRedundant(const LinearRule& rule,
                                               int bridge_index,
                                               int max_power = 8);

/// Convenience: analyzes the rule and factors its first uniformly bounded
/// redundancy bridge; NotFound if none exists within budget.
Result<RedundantFactorization> FactorFirstRedundant(const LinearRule& rule,
                                                    int max_power = 8);

}  // namespace linrec
