#include "server/server.h"

#include <cstdint>
#include <utility>

#include "common/strings.h"
#include "datalog/parser.h"

namespace linrec {
namespace {

/// Parses one FACT / "?-" clause through the full program parser.
Result<Program> ParseClauseLine(const std::string& text) {
  Result<Program> parsed = ParseProgram(text);
  if (!parsed.ok()) return parsed.status();
  return parsed;
}

}  // namespace

std::unique_ptr<Session> Server::NewSession() {
  const long id = next_session_.fetch_add(1);
  return std::make_unique<Session>(StrCat("s", id), limits_, engine_options_);
}

Server::Action Server::HandleLine(Session& session, const std::string& line,
                                  std::vector<std::string>* out) {
  if (session.in_load()) {
    // Inside a LOAD block only END is a command; everything else is
    // program text (including blank lines and comments).
    Result<Request> request = ParseRequestLine(line);
    if (request.ok() && request->kind == RequestKind::kEnd) {
      HandleLoadEnd(session, out);
    } else {
      session.AppendLoadLine(line);
    }
    return Action::kContinue;
  }

  Result<Request> request = ParseRequestLine(line);
  if (!request.ok()) {
    out->push_back(FormatError(request.status()));
    return Action::kContinue;
  }
  switch (request->kind) {
    case RequestKind::kEmpty:
      return Action::kContinue;
    case RequestKind::kLoad:
      session.BeginLoad();
      return Action::kContinue;
    case RequestKind::kEnd:
      out->push_back(FormatError(
          Status::InvalidArgument("END outside a LOAD block")));
      return Action::kContinue;
    case RequestKind::kFact: {
      Result<Program> parsed = ParseClauseLine(request->text);
      if (!parsed.ok()) {
        out->push_back(FormatError(parsed.status()));
        return Action::kContinue;
      }
      if (parsed->facts.size() != 1 || !parsed->rules.empty() ||
          !parsed->queries.empty()) {
        out->push_back(FormatError(Status::InvalidArgument(
            "FACT expects exactly one ground atom clause")));
        return Action::kContinue;
      }
      Status added = session.instance().AddFact(parsed->facts.front());
      out->push_back(added.ok() ? "OK fact" : FormatError(added));
      return Action::kContinue;
    }
    case RequestKind::kInsert:
      HandleFactUpdate(session, request->text, /*insert=*/true, out);
      return Action::kContinue;
    case RequestKind::kDelete:
      HandleFactUpdate(session, request->text, /*insert=*/false, out);
      return Action::kContinue;
    case RequestKind::kQuery:
      SubmitQueryLines(session, {request->text}, out);
      return Action::kContinue;
    case RequestKind::kExplain:
      HandleExplain(session, out);
      return Action::kContinue;
    case RequestKind::kSet:
      HandleSet(session, request->text, out);
      return Action::kContinue;
    case RequestKind::kStats:
      HandleStats(session, out);
      return Action::kContinue;
    case RequestKind::kMetrics:
      HandleMetrics(out);
      return Action::kContinue;
    case RequestKind::kReset:
      session.instance().Reset();
      out->push_back("OK reset");
      return Action::kContinue;
    case RequestKind::kPing:
      out->push_back("OK pong");
      return Action::kContinue;
    case RequestKind::kQuit:
      out->push_back("OK bye");
      return Action::kCloseSession;
    case RequestKind::kShutdown:
      out->push_back("OK shutdown");
      return Action::kShutdown;
  }
  return Action::kContinue;
}

void Server::HandleLoadEnd(Session& session, std::vector<std::string>* out) {
  const std::string text = session.TakeLoadText();
  Result<Program> parsed = ParseProgram(text);
  if (!parsed.ok()) {
    out->push_back(FormatError(parsed.status()));
    return;
  }
  if (!parsed->rules.empty()) {
    const std::string digest = ProgramDigest(parsed->rules);
    Result<std::shared_ptr<const CompiledProgram>> compiled =
        registry_.GetOrCompile(digest, [&]() -> Result<CompiledProgram> {
          Result<CompiledProgram> program =
              CompileProgram(parsed->rules, planner_);
          return program;
        });
    if (!compiled.ok()) {
      out->push_back(FormatError(compiled.status()));
      return;
    }
    session.instance().SetProgram(std::move(compiled).value());
  }
  for (const Atom& fact : parsed->facts) {
    Status added = session.instance().AddFact(fact);
    if (!added.ok()) {
      out->push_back(FormatError(added));
      return;
    }
  }
  out->push_back(StrCat("OK loaded rules=", parsed->rules.size(),
                        " facts=", parsed->facts.size(),
                        " queries=", parsed->queries.size()));
  if (!parsed->queries.empty()) {
    SubmitQueries(session, parsed->queries, out);
  }
}

std::vector<Result<QueryResult>> Server::EvaluateGoals(
    Session& session, const std::vector<Atom>& goals) {
  if (goals.empty()) return {};
  // Overload shedding: while the global ledger sits in its pressure band,
  // new work is turned away with a retry hint instead of being admitted
  // only to die on a budget denial mid-round. The message leads with the
  // hint so the reply reads "ERR Unavailable retry_after_ms=<N> ...".
  if (memory_budget_.under_pressure()) {
    queries_shed_.fetch_add(static_cast<long>(goals.size()));
    const Status shed = Status::Unavailable(
        StrCat("retry_after_ms=", limits_.retry_after_ms,
               " server under memory pressure (", memory_budget_.used(), "/",
               memory_budget_.limit(), " bytes in use)"));
    return std::vector<Result<QueryResult>>(goals.size(),
                                            Result<QueryResult>(shed));
  }
  // Admission: the whole batch is admitted or rejected atomically against
  // the global pending bound.
  const long admitted = pending_.fetch_add(static_cast<long>(goals.size())) +
                        static_cast<long>(goals.size());
  if (admitted > static_cast<long>(limits_.max_pending)) {
    pending_.fetch_sub(static_cast<long>(goals.size()));
    queries_rejected_.fetch_add(static_cast<long>(goals.size()));
    const Status rejected = Status::Unavailable(
        StrCat("retry_after_ms=", limits_.retry_after_ms,
               " server at capacity (", limits_.max_pending,
               " queries in flight)"));
    return std::vector<Result<QueryResult>>(goals.size(),
                                            Result<QueryResult>(rejected));
  }

  // Arm per-goal deadlines. Tokens live here (stable addresses) for the
  // whole evaluation; deadline-armed tokens also register with the
  // watchdog, which force-expires them mid-chunk if they blow.
  std::vector<CancellationToken> tokens;
  tokens.reserve(goals.size());
  std::vector<const CancellationToken*> cancels(goals.size(), nullptr);
  std::vector<std::size_t> watch_handles;
  if (session.timeout_ms() >= 0) {
    for (std::size_t i = 0; i < goals.size(); ++i) {
      tokens.push_back(CancellationToken::WithTimeout(
          std::chrono::milliseconds(session.timeout_ms())));
    }
    watch_handles.reserve(goals.size());
    for (std::size_t i = 0; i < goals.size(); ++i) {
      cancels[i] = &tokens[i];
      watch_handles.push_back(watchdog_.Watch(&tokens[i]));
    }
  }

  // Per-goal memory budgets, attached whenever the session cap or the
  // global ledger is armed (unique_ptr: QueryBudget is address-pinned —
  // its destructor re-credits the parent). Wholly ungoverned sessions
  // skip this and pay nothing.
  std::vector<std::unique_ptr<QueryBudget>> budget_storage;
  std::vector<QueryBudget*> budgets(goals.size(), nullptr);
  if (session.memory_budget() > 0 || memory_budget_.limit() != 0) {
    budget_storage.reserve(goals.size());
    for (std::size_t i = 0; i < goals.size(); ++i) {
      budget_storage.push_back(std::make_unique<QueryBudget>(
          session.memory_budget(), &memory_budget_));
      budgets[i] = budget_storage.back().get();
    }
  }

  // row_limit = cap + 1: one row past the cap is enough to set
  // truncated=1, and the reply never materializes a full second copy of a
  // huge closure.
  const std::size_t cap = session.max_rows();
  const std::size_t row_limit = cap == SIZE_MAX ? SIZE_MAX : cap + 1;

  std::vector<Result<QueryResult>> outcomes = session.instance().EvalQueries(
      goals, planner_, &cancels, &budgets, row_limit);
  for (std::size_t handle : watch_handles) watchdog_.Unwatch(handle);
  for (const Result<QueryResult>& outcome : outcomes) {
    if (!outcome.ok() &&
        outcome.status().code() == StatusCode::kResourceExhausted) {
      queries_exhausted_.fetch_add(1);
    }
  }
  pending_.fetch_sub(static_cast<long>(goals.size()));
  session.CountQueries(goals.size());
  queries_served_.fetch_add(static_cast<long>(goals.size()));
  return outcomes;
}

void Server::SubmitQueries(Session& session, const std::vector<Atom>& goals,
                           std::vector<std::string>* out) {
  std::vector<Result<QueryResult>> outcomes = EvaluateGoals(session, goals);
  for (std::size_t i = 0; i < goals.size(); ++i) {
    AppendOutcome(session, goals[i], outcomes[i], out);
  }
}

void Server::SubmitQueryLines(Session& session,
                              const std::vector<std::string>& lines,
                              std::vector<std::string>* out) {
  // Parse every line first; failures reply ERR in place, the rest run as
  // one batch so pipelined point queries share seeds and worker lanes.
  std::vector<Status> parse_errors(lines.size(), Status::OK());
  std::vector<Atom> goals;
  std::vector<std::size_t> goal_line;  // batch slot -> line index
  for (std::size_t i = 0; i < lines.size(); ++i) {
    Result<Program> parsed = ParseClauseLine(lines[i]);
    if (!parsed.ok()) {
      parse_errors[i] = parsed.status();
      continue;
    }
    if (parsed->queries.size() != 1 || !parsed->rules.empty() ||
        !parsed->facts.empty()) {
      parse_errors[i] =
          Status::InvalidArgument("expected exactly one '?-' goal");
      continue;
    }
    goal_line.push_back(i);
    goals.push_back(std::move(parsed->queries.front()));
  }
  std::vector<Result<QueryResult>> outcomes = EvaluateGoals(session, goals);
  std::size_t slot = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!parse_errors[i].ok()) {
      out->push_back(FormatError(parse_errors[i]));
    } else {
      AppendOutcome(session, goals[slot], outcomes[slot], out);
      ++slot;
    }
  }
}

void Server::AppendOutcome(Session& session, const Atom& goal,
                           const Result<QueryResult>& outcome,
                           std::vector<std::string>* out) {
  if (!outcome.ok()) {
    out->push_back(FormatError(outcome.status()));
    return;
  }
  const Relation& rows = outcome->relations.front();
  const std::size_t cap = session.max_rows();
  const bool truncated = rows.size() > cap;
  const std::size_t emit = truncated ? cap : rows.size();
  out->push_back(
      FormatResultHeader(goal.predicate, goal.arity(), emit, truncated));
  std::size_t emitted = 0;
  for (TupleView row : rows) {
    if (emitted >= emit) break;
    out->push_back(FormatRow(row));
    ++emitted;
  }
  out->push_back(".");
}

void Server::HandleFactUpdate(Session& session, const std::string& text,
                              bool insert, std::vector<std::string>* out) {
  const char* verb = insert ? "INSERT" : "DELETE";
  // Protocol-layer validation first: a malformed line replies ERR and
  // touches nothing — no fact lands, no view moves. (Groundness and arity
  // are re-checked by InsertFact/DeleteFact before their first mutation,
  // so that path is just as safe.)
  Result<Program> parsed = ParseClauseLine(text);
  if (!parsed.ok()) {
    out->push_back(FormatError(parsed.status()));
    return;
  }
  if (parsed->facts.size() != 1 || !parsed->rules.empty() ||
      !parsed->queries.empty()) {
    out->push_back(FormatError(Status::InvalidArgument(
        StrCat(verb, " expects exactly one ground atom clause"))));
    return;
  }
  const Atom& fact = parsed->facts.front();

  // Maintenance is resource-governed exactly like a query: shed under
  // memory pressure, admitted against the pending bound, deadline-watched,
  // charged to the session and global budgets.
  if (memory_budget_.under_pressure()) {
    queries_shed_.fetch_add(1);
    out->push_back(FormatError(Status::Unavailable(
        StrCat("retry_after_ms=", limits_.retry_after_ms,
               " server under memory pressure (", memory_budget_.used(), "/",
               memory_budget_.limit(), " bytes in use)"))));
    return;
  }
  const long admitted = pending_.fetch_add(1) + 1;
  if (admitted > static_cast<long>(limits_.max_pending)) {
    pending_.fetch_sub(1);
    queries_rejected_.fetch_add(1);
    out->push_back(FormatError(Status::Unavailable(
        StrCat("retry_after_ms=", limits_.retry_after_ms,
               " server at capacity (", limits_.max_pending,
               " queries in flight)"))));
    return;
  }

  CancellationToken token;
  const CancellationToken* cancel = nullptr;
  std::size_t watch_handle = 0;
  bool watched = false;
  if (session.timeout_ms() >= 0) {
    token = CancellationToken::WithTimeout(
        std::chrono::milliseconds(session.timeout_ms()));
    cancel = &token;
    watch_handle = watchdog_.Watch(&token);
    watched = true;
  }
  std::unique_ptr<QueryBudget> budget;
  if (session.memory_budget() > 0 || memory_budget_.limit() != 0) {
    budget = std::make_unique<QueryBudget>(session.memory_budget(),
                                           &memory_budget_);
  }

  Result<FactUpdateOutcome> outcome =
      insert ? session.instance().InsertFact(fact, cancel, budget.get())
             : session.instance().DeleteFact(fact, cancel, budget.get());
  if (watched) watchdog_.Unwatch(watch_handle);
  pending_.fetch_sub(1);
  if (!outcome.ok()) {
    if (outcome.status().code() == StatusCode::kResourceExhausted) {
      queries_exhausted_.fetch_add(1);
    }
    out->push_back(FormatError(outcome.status()));
    return;
  }
  if (insert) {
    ivm_applied_.fetch_add(static_cast<long>(outcome->views_applied));
    out->push_back(StrCat("OK insert applied=", outcome->applied ? 1 : 0,
                          " views=", outcome->views_applied,
                          " added=", outcome->tuples_added));
  } else {
    ivm_retracted_.fetch_add(static_cast<long>(outcome->views_retracted));
    ivm_rederived_.fetch_add(static_cast<long>(outcome->rederived));
    out->push_back(StrCat("OK delete removed=", outcome->removed ? 1 : 0,
                          " views=", outcome->views_retracted,
                          " retracted=", outcome->tuples_removed,
                          " rederived=", outcome->rederived));
  }
}

void Server::HandleSet(Session& session, const std::string& args,
                       std::vector<std::string>* out) {
  // ParseSetArgs (protocol layer) fully validates key, syntax and range;
  // a returned SetArgs is safe to apply unconditionally.
  Result<SetArgs> parsed = ParseSetArgs(args);
  if (!parsed.ok()) {
    out->push_back(FormatError(parsed.status()));
    return;
  }
  if (parsed->key == "timeout_ms") {
    session.set_timeout_ms(static_cast<int>(parsed->value));
  } else if (parsed->key == "max_rows") {
    session.set_max_rows(static_cast<std::size_t>(parsed->value));
  } else {  // memory_budget — ParseSetArgs admits no other key
    session.set_memory_budget(static_cast<std::size_t>(parsed->value));
  }
  out->push_back(StrCat("OK set ", parsed->key, "=", parsed->value));
}

void Server::HandleStats(Session& session, std::vector<std::string>* out) {
  out->push_back("OK stats");
  out->push_back(StrCat("programs=", registry_.size()));
  out->push_back(StrCat("program_hits=", registry_.hits()));
  out->push_back(StrCat("program_misses=", registry_.misses()));
  out->push_back(StrCat("plan_hits=", planner_.plan_cache_hits()));
  out->push_back(StrCat("plan_misses=", planner_.plan_cache_misses()));
  out->push_back(StrCat("queries_served=", queries_served_.load()));
  out->push_back(StrCat("queries_rejected=", queries_rejected_.load()));
  out->push_back(StrCat("queries_exhausted=", queries_exhausted_.load()));
  out->push_back(StrCat("queries_shed=", queries_shed_.load()));
  out->push_back(StrCat("ivm_applied=", ivm_applied_.load()));
  out->push_back(StrCat("ivm_retracted=", ivm_retracted_.load()));
  out->push_back(StrCat("ivm_rederived=", ivm_rederived_.load()));
  out->push_back(StrCat("pending=", pending_.load()));
  out->push_back(StrCat("mem_budget_used=", memory_budget_.used()));
  out->push_back(StrCat("mem_budget_limit=", memory_budget_.limit()));
  out->push_back(
      StrCat("mem_pressure=", memory_budget_.under_pressure() ? 1 : 0));
  out->push_back(StrCat("watchdog_cancels=", watchdog_.cancels()));
  out->push_back(StrCat("session_queries=", session.queries_served()));
  out->push_back(
      StrCat("session_derivations=", session.instance().derivations()));
  const ClosureStats& totals = session.instance().totals();
  out->push_back(StrCat("session_rows_scanned=", totals.rows_scanned));
  out->push_back(StrCat("session_probes_issued=", totals.probes_issued));
  out->push_back(StrCat("session_simd_blocks=", totals.simd_blocks));
  out->push_back(StrCat("session_simd_lane_hits=", totals.simd_lane_hits));
  // Scan-lane utilization as an integer percent: how full the kLanes-row
  // vector compares ran, 0 when no block has been walked.
  const std::size_t lanes = totals.simd_blocks * simd::kLanes;
  out->push_back(StrCat("session_simd_lane_util_pct=",
                        lanes == 0 ? 0 : totals.simd_lane_hits * 100 / lanes));
  out->push_back(".");
}

void Server::HandleMetrics(std::vector<std::string>* out) {
  // Prometheus text exposition of the server-wide counters (the
  // session-scoped STATS keys are deliberately absent: a scraper sees the
  // process, not one connection). Dot-terminated like every multi-line OK
  // payload; an HTTP front can strip the first and last line verbatim.
  out->push_back("OK metrics");
  const auto emit = [out](const char* name, const char* type, long value) {
    out->push_back(StrCat("# TYPE linrec_", name, " ", type));
    out->push_back(StrCat("linrec_", name, " ", value));
  };
  emit("programs", "gauge", static_cast<long>(registry_.size()));
  emit("program_hits", "counter", static_cast<long>(registry_.hits()));
  emit("program_misses", "counter", static_cast<long>(registry_.misses()));
  emit("plan_hits", "counter", static_cast<long>(planner_.plan_cache_hits()));
  emit("plan_misses", "counter",
       static_cast<long>(planner_.plan_cache_misses()));
  emit("queries_served", "counter", queries_served_.load());
  emit("queries_rejected", "counter", queries_rejected_.load());
  emit("queries_exhausted", "counter", queries_exhausted_.load());
  emit("queries_shed", "counter", queries_shed_.load());
  emit("ivm_applied", "counter", ivm_applied_.load());
  emit("ivm_retracted", "counter", ivm_retracted_.load());
  emit("ivm_rederived", "counter", ivm_rederived_.load());
  emit("pending", "gauge", pending_.load());
  emit("mem_budget_used", "gauge", static_cast<long>(memory_budget_.used()));
  emit("mem_budget_limit", "gauge",
       static_cast<long>(memory_budget_.limit()));
  emit("mem_pressure", "gauge", memory_budget_.under_pressure() ? 1 : 0);
  emit("watchdog_cancels", "counter",
       static_cast<long>(watchdog_.cancels()));
  out->push_back(".");
}

void Server::HandleExplain(Session& session, std::vector<std::string>* out) {
  const auto& program = session.instance().program();
  if (program == nullptr) {
    out->push_back(FormatError(Status::InvalidArgument("no program loaded")));
    return;
  }
  out->push_back("OK explain");
  if (program->plan_explanations.empty()) {
    out->push_back("(no recursive predicates: nothing to plan)");
  }
  for (const std::string& explanation : program->plan_explanations) {
    std::size_t begin = 0;
    while (begin <= explanation.size()) {
      std::size_t end = explanation.find('\n', begin);
      if (end == std::string::npos) {
        if (begin < explanation.size()) {
          out->push_back(explanation.substr(begin));
        }
        break;
      }
      out->push_back(explanation.substr(begin, end - begin));
      begin = end + 1;
    }
  }
  out->push_back(".");
  return;
}

}  // namespace linrec
