// linrecd's front door, transport-agnostic: feed it request lines, get
// back protocol reply lines. The binary (tools/linrecd.cc) wires this to a
// file, stdin, or a TCP socket; the tests drive it directly.
//
// Sharing model (the plan-cache-miss=1 guarantee):
//
//   Server ── Planner             one planning-only Engine, mutexed; every
//         │                       Prepare of every session goes through it
//         ├─ DigestRegistry<CompiledProgram>
//         │                       programs keyed on ProgramDigest; N
//         │                       sessions LOADing one program compile once
//         └─ Session*             per client: ProgramInstance (private
//                                 facts + engine + index-cache tier)
//
// Admission control: a bounded count of in-flight queries across all
// sessions; past the bound, submissions reply ERR Unavailable instead of
// queueing. Per-query deadlines become CancellationTokens checked at round
// boundaries, so an expired query replies ERR DeadlineExceeded without
// killing the server or its batch neighbours.
//
// Resource governance (the graceful-degradation ladder):
//
//   1. Every admitted goal gets a QueryBudget (per-query limit = the
//      session's SET memory_budget, parent = the server-wide MemoryBudget
//      ledger). A query whose relation growth would cross either bound
//      replies ERR ResourceExhausted; its neighbours and every other
//      session keep running, and the ledger is re-credited when the
//      query's relations die.
//   2. While the global ledger sits in its pressure band (or the pending
//      bound is hit), new submissions shed with
//      "ERR Unavailable retry_after_ms=<N> ..." instead of being admitted
//      only to die mid-round.
//   3. A watchdog thread force-expires deadline-blown tokens every few
//      milliseconds, so even a query stuck inside one enormous Δ-chunk
//      stops at the next in-cursor probe instead of the next round.

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/memory.h"
#include "engine/registry.h"
#include "frontend/lower.h"
#include "server/limits.h"
#include "server/protocol.h"
#include "server/session.h"
#include "server/watchdog.h"

namespace linrec {

class Server {
 public:
  /// What the connection driver should do after a handled line.
  enum class Action { kContinue, kCloseSession, kShutdown };

  explicit Server(ServerLimits limits = {}, EngineOptions engine_options = {})
      : limits_(limits),
        engine_options_(engine_options),
        planner_(engine_options),
        watchdog_(limits.watchdog_interval_ms) {
    memory_budget_.set_limit(limits.global_memory_budget);
  }

  const ServerLimits& limits() const { return limits_; }

  /// The server-wide memory ledger every governed query charges into.
  MemoryBudget& global_budget() { return memory_budget_; }
  /// The deadline watchdog (observability: cancels()).
  const Watchdog& watchdog() const { return watchdog_; }

  /// Creates an independent session (the caller owns it; one per
  /// connection/REPL). Thread-safe.
  std::unique_ptr<Session> NewSession();

  /// Handles one request line for `session`, appending reply lines to
  /// `out`. Thread-safe across sessions; a single session must be driven
  /// from one thread at a time.
  Action HandleLine(Session& session, const std::string& line,
                    std::vector<std::string>* out);

  /// Evaluates a batch of pipelined query goals (the driver batches
  /// consecutive "?-" lines; HandleLine submits singletons through here).
  /// One RESULT block or ERR line per goal, in order. Counts against the
  /// pending bound as one unit per goal.
  void SubmitQueries(Session& session, const std::vector<Atom>& goals,
                     std::vector<std::string>* out);

  /// SubmitQueries over raw "?- ..." lines: lines that fail to parse reply
  /// ERR in place, the rest evaluate as one batch. Replies stay in line
  /// order.
  void SubmitQueryLines(Session& session,
                        const std::vector<std::string>& lines,
                        std::vector<std::string>* out);

  Planner& planner() { return planner_; }
  DigestRegistry<CompiledProgram>& registry() { return registry_; }
  /// Queries admitted and not yet completed, across sessions.
  std::size_t pending() const {
    return static_cast<std::size_t>(pending_.load());
  }

 private:
  void HandleLoadEnd(Session& session, std::vector<std::string>* out);
  /// The shared evaluation core: admission control, per-goal deadline
  /// tokens, EvalQueries. One Result per goal (Unavailable on rejection).
  std::vector<Result<QueryResult>> EvaluateGoals(Session& session,
                                                 const std::vector<Atom>& goals);
  void HandleSet(Session& session, const std::string& args,
                 std::vector<std::string>* out);
  void HandleStats(Session& session, std::vector<std::string>* out);
  void HandleMetrics(std::vector<std::string>* out);
  void HandleExplain(Session& session, std::vector<std::string>* out);
  /// INSERT/DELETE share one resource-governed path: validation happens
  /// before any session state is touched (malformed input replies ERR
  /// InvalidArgument and changes nothing), then the update runs under the
  /// same shedding / admission / deadline / budget regime as a query.
  void HandleFactUpdate(Session& session, const std::string& text,
                        bool insert, std::vector<std::string>* out);
  /// Formats one goal's outcome (RESULT block with the session's row cap,
  /// or an ERR line).
  void AppendOutcome(Session& session, const Atom& goal,
                     const Result<QueryResult>& outcome,
                     std::vector<std::string>* out);

  // Teardown ordering (load-bearing, enforced by declaration order +
  // tests/watchdog_teardown_test.cc): members destroy in reverse order, so
  // watchdog_ — declared LAST among the stateful members — dies FIRST. Its
  // destructor joins the scan thread (after any in-flight sweep's
  // MutexLock releases), so by the time planner_ / registry_ /
  // memory_budget_ destruct, no background thread can touch them. Sessions
  // are owned by callers and must finish their evaluations (which Watch /
  // Unwatch tokens against watchdog_) before the Server dies — Unwatch
  // returning is the hand-off that makes the token safe to destroy.
  ServerLimits limits_;
  EngineOptions engine_options_;
  Planner planner_;
  DigestRegistry<CompiledProgram> registry_;
  /// Global ledger across every in-flight query's relation growth.
  MemoryBudget memory_budget_;
  Watchdog watchdog_;
  std::atomic<long> pending_{0};
  std::atomic<long> next_session_{0};
  std::atomic<long> queries_served_{0};
  std::atomic<long> queries_rejected_{0};
  /// Queries that died on a budget denial (ERR ResourceExhausted).
  std::atomic<long> queries_exhausted_{0};
  /// Submissions turned away under memory pressure (ERR Unavailable).
  std::atomic<long> queries_shed_{0};
  // Incremental-maintenance counters across sessions: views extended by
  // INSERT, views retracted by DELETE, and suspect tuples DELETE kept
  // because an alternative derivation survived.
  std::atomic<long> ivm_applied_{0};
  std::atomic<long> ivm_retracted_{0};
  std::atomic<long> ivm_rederived_{0};
};

}  // namespace linrec
