// linrecd wire protocol: line-delimited text, identical over every front
// (file script, stdin REPL, TCP socket).
//
// Requests, one per line (blank lines and "% comment" lines are ignored):
//
//   LOAD                  starts a program block; subsequent lines are
//     <datalog text>      buffered verbatim until
//   END                   parses the block: rules are compiled (or fetched
//                         from the shared registry by program digest),
//                         facts become session facts, "?-" goals run
//   FACT p(1, 2).         adds one ground fact to the session
//   INSERT p(1, 2).       adds one ground fact AND incrementally maintains
//                         every materialized view (Engine::Apply cascade)
//   DELETE p(1, 2).       removes one ground fact, retracting its
//                         derivations via delete-and-rederive
//   ?- p(X, 5).           evaluates one goal (consecutive goal lines are
//                         batched through Engine::ExecuteBatchEach)
//   EXPLAIN               prints the loaded program's plan explanations
//   SET timeout_ms 50     per-session limits (also SET max_rows N;
//                         "SET key=value" is accepted too)
//   STATS                 server + session counters
//   METRICS               the STATS counters in Prometheus text format
//   RESET                 drops the session's program and facts
//   PING                  liveness probe
//   QUIT                  ends the session
//   SHUTDOWN              stops the server (socket mode)
//
// Replies:
//
//   OK <detail>
//   ERR <StatusCodeName> <message>        (message newline-sanitized)
//   RESULT <pred>/<arity> rows=<n> truncated=<0|1>
//   <v_1> ... <v_arity>                   (one line per row, then)
//   .
//
// Multi-line OK payloads (EXPLAIN, STATS) are also "."-terminated.

#pragma once

#include <string>

#include "common/status.h"
#include "storage/relation.h"

namespace linrec {

/// The classified form of one request line.
enum class RequestKind {
  kEmpty,     // blank or comment: no reply
  kLoad,      // LOAD — begins a program block
  kEnd,       // END — closes a program block
  kFact,      // FACT <atom>.
  kInsert,    // INSERT <atom>. — fact + incremental view maintenance
  kDelete,    // DELETE <atom>. — fact removal + delete-and-rederive
  kQuery,     // ?- <atom>.
  kExplain,
  kSet,       // SET <key> <value>
  kStats,
  kMetrics,   // METRICS — Prometheus text exposition of the counters
  kReset,
  kPing,
  kQuit,
  kShutdown,
};

struct Request {
  RequestKind kind = RequestKind::kEmpty;
  /// kFact/kInsert/kDelete/kQuery: the clause text (with the keyword
  /// stripped for FACT/INSERT/DELETE).
  /// kSet: "<key> <value>" normalized ('=' replaced by space).
  std::string text;
};

/// Classifies one input line. Unknown commands yield InvalidArgument (the
/// caller formats it as an ERR reply). Never returns kEnd/kLoad confusion:
/// block state lives in the session, not here.
Result<Request> ParseRequestLine(const std::string& line);

/// A fully validated SET request.
struct SetArgs {
  std::string key;
  long value = 0;
};

/// Parses and validates "<key> <value>" from a kSet request's text, at the
/// protocol layer — before any session state is touched. Typed
/// InvalidArgument on: missing value, non-integer value, unknown key,
/// negative max_rows / memory_budget, timeout_ms above one day. A valid
/// result is safe to apply directly (timeout_ms may be negative: no
/// deadline; memory_budget 0 = unlimited).
Result<SetArgs> ParseSetArgs(const std::string& args);

/// "ERR <StatusCodeName> <sanitized message>".
std::string FormatError(const Status& status);

/// "RESULT <pred>/<arity> rows=<n> truncated=<0|1>". `rows` is the emitted
/// (post-cap) count.
std::string FormatResultHeader(const std::string& predicate,
                               std::size_t arity, std::size_t rows,
                               bool truncated);

/// One result row: values space-separated.
std::string FormatRow(TupleView row);

/// Replaces newlines (which would desynchronize the line protocol) with
/// spaces.
std::string SanitizeMessage(std::string message);

}  // namespace linrec
