#include "server/protocol.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace linrec {
namespace {

/// First whitespace-delimited word, uppercased for keyword matching.
std::string Keyword(const std::string& line) {
  std::size_t end = 0;
  while (end < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  std::string word = line.substr(0, end);
  std::transform(word.begin(), word.end(), word.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return word;
}

std::string Rest(const std::string& line) {
  std::size_t end = 0;
  while (end < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  while (end < line.size() &&
         std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  return line.substr(end);
}

}  // namespace

Result<Request> ParseRequestLine(const std::string& line) {
  const std::string trimmed = Trim(line);
  Request request;
  if (trimmed.empty() || trimmed[0] == '%') {
    request.kind = RequestKind::kEmpty;
    return request;
  }
  if (trimmed.rfind("?-", 0) == 0) {
    request.kind = RequestKind::kQuery;
    request.text = trimmed;
    return request;
  }
  const std::string keyword = Keyword(trimmed);
  if (keyword == "LOAD") {
    request.kind = RequestKind::kLoad;
  } else if (keyword == "END") {
    request.kind = RequestKind::kEnd;
  } else if (keyword == "FACT") {
    request.kind = RequestKind::kFact;
    request.text = Trim(Rest(trimmed));
    if (request.text.empty()) {
      return Status::InvalidArgument("FACT expects a ground atom clause");
    }
  } else if (keyword == "INSERT") {
    request.kind = RequestKind::kInsert;
    request.text = Trim(Rest(trimmed));
    if (request.text.empty()) {
      return Status::InvalidArgument("INSERT expects a ground atom clause");
    }
  } else if (keyword == "DELETE") {
    request.kind = RequestKind::kDelete;
    request.text = Trim(Rest(trimmed));
    if (request.text.empty()) {
      return Status::InvalidArgument("DELETE expects a ground atom clause");
    }
  } else if (keyword == "EXPLAIN") {
    request.kind = RequestKind::kExplain;
  } else if (keyword == "SET") {
    request.kind = RequestKind::kSet;
    std::string args = Trim(Rest(trimmed));
    std::replace(args.begin(), args.end(), '=', ' ');
    request.text = args;
    if (request.text.empty()) {
      return Status::InvalidArgument("SET expects '<key> <value>'");
    }
  } else if (keyword == "STATS") {
    request.kind = RequestKind::kStats;
  } else if (keyword == "METRICS") {
    request.kind = RequestKind::kMetrics;
  } else if (keyword == "RESET") {
    request.kind = RequestKind::kReset;
  } else if (keyword == "PING") {
    request.kind = RequestKind::kPing;
  } else if (keyword == "QUIT") {
    request.kind = RequestKind::kQuit;
  } else if (keyword == "SHUTDOWN") {
    request.kind = RequestKind::kShutdown;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown command '", keyword,
               "' (expected LOAD, FACT, INSERT, DELETE, ?-, EXPLAIN, SET, "
               "STATS, METRICS, RESET, PING, QUIT or SHUTDOWN)"));
  }
  return request;
}

Result<SetArgs> ParseSetArgs(const std::string& args) {
  std::size_t space = args.find(' ');
  if (space == std::string::npos) {
    return Status::InvalidArgument("SET expects '<key> <value>'");
  }
  SetArgs set;
  set.key = args.substr(0, space);
  const std::string value_text = Trim(args.substr(space + 1));
  try {
    std::size_t consumed = 0;
    set.value = std::stol(value_text, &consumed);
    if (consumed != value_text.size()) {
      return Status::InvalidArgument(
          StrCat("SET ", set.key, ": '", value_text, "' is not an integer"));
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument(
        StrCat("SET ", set.key, ": '", value_text, "' is not an integer"));
  }
  // Range validation lives here, at the protocol layer: an invalid SET is
  // rejected before any session state could be half-applied.
  if (set.key == "timeout_ms") {
    if (set.value > 86400000) {
      return Status::InvalidArgument("timeout_ms above 86400000 (one day)");
    }
  } else if (set.key == "max_rows") {
    if (set.value < 0) {
      return Status::InvalidArgument("max_rows must be >= 0");
    }
  } else if (set.key == "memory_budget") {
    if (set.value < 0) {
      return Status::InvalidArgument(
          "memory_budget must be >= 0 bytes (0 = unlimited)");
    }
  } else {
    return Status::InvalidArgument(
        StrCat("unknown setting '", set.key,
               "' (expected timeout_ms, max_rows or memory_budget)"));
  }
  return set;
}

std::string SanitizeMessage(std::string message) {
  std::replace(message.begin(), message.end(), '\n', ' ');
  std::replace(message.begin(), message.end(), '\r', ' ');
  return message;
}

std::string FormatError(const Status& status) {
  return StrCat("ERR ", StatusCodeName(status.code()), " ",
                SanitizeMessage(status.message()));
}

std::string FormatResultHeader(const std::string& predicate,
                               std::size_t arity, std::size_t rows,
                               bool truncated) {
  return StrCat("RESULT ", predicate, "/", arity, " rows=", rows,
                " truncated=", truncated ? 1 : 0);
}

std::string FormatRow(TupleView row) {
  std::string out;
  for (std::size_t i = 0; i < row.arity(); ++i) {
    if (i > 0) out += ' ';
    out += StrCat(row[i]);
  }
  return out;
}

}  // namespace linrec
