#include "server/protocol.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace linrec {
namespace {

/// First whitespace-delimited word, uppercased for keyword matching.
std::string Keyword(const std::string& line) {
  std::size_t end = 0;
  while (end < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  std::string word = line.substr(0, end);
  std::transform(word.begin(), word.end(), word.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return word;
}

std::string Rest(const std::string& line) {
  std::size_t end = 0;
  while (end < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  while (end < line.size() &&
         std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  return line.substr(end);
}

}  // namespace

Result<Request> ParseRequestLine(const std::string& line) {
  const std::string trimmed = Trim(line);
  Request request;
  if (trimmed.empty() || trimmed[0] == '%') {
    request.kind = RequestKind::kEmpty;
    return request;
  }
  if (trimmed.rfind("?-", 0) == 0) {
    request.kind = RequestKind::kQuery;
    request.text = trimmed;
    return request;
  }
  const std::string keyword = Keyword(trimmed);
  if (keyword == "LOAD") {
    request.kind = RequestKind::kLoad;
  } else if (keyword == "END") {
    request.kind = RequestKind::kEnd;
  } else if (keyword == "FACT") {
    request.kind = RequestKind::kFact;
    request.text = Trim(Rest(trimmed));
    if (request.text.empty()) {
      return Status::InvalidArgument("FACT expects a ground atom clause");
    }
  } else if (keyword == "EXPLAIN") {
    request.kind = RequestKind::kExplain;
  } else if (keyword == "SET") {
    request.kind = RequestKind::kSet;
    std::string args = Trim(Rest(trimmed));
    std::replace(args.begin(), args.end(), '=', ' ');
    request.text = args;
    if (request.text.empty()) {
      return Status::InvalidArgument("SET expects '<key> <value>'");
    }
  } else if (keyword == "STATS") {
    request.kind = RequestKind::kStats;
  } else if (keyword == "RESET") {
    request.kind = RequestKind::kReset;
  } else if (keyword == "PING") {
    request.kind = RequestKind::kPing;
  } else if (keyword == "QUIT") {
    request.kind = RequestKind::kQuit;
  } else if (keyword == "SHUTDOWN") {
    request.kind = RequestKind::kShutdown;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown command '", keyword,
               "' (expected LOAD, FACT, ?-, EXPLAIN, SET, STATS, RESET, "
               "PING, QUIT or SHUTDOWN)"));
  }
  return request;
}

std::string SanitizeMessage(std::string message) {
  std::replace(message.begin(), message.end(), '\n', ' ');
  std::replace(message.begin(), message.end(), '\r', ' ');
  return message;
}

std::string FormatError(const Status& status) {
  return StrCat("ERR ", StatusCodeName(status.code()), " ",
                SanitizeMessage(status.message()));
}

std::string FormatResultHeader(const std::string& predicate,
                               std::size_t arity, std::size_t rows,
                               bool truncated) {
  return StrCat("RESULT ", predicate, "/", arity, " rows=", rows,
                " truncated=", truncated ? 1 : 0);
}

std::string FormatRow(TupleView row) {
  std::string out;
  for (std::size_t i = 0; i < row.arity(); ++i) {
    if (i > 0) out += ' ';
    out += StrCat(row[i]);
  }
  return out;
}

}  // namespace linrec
