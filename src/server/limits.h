// Serving limits: the knobs that keep one misbehaving client from taking
// the front door down. Every limit is enforced per request, with a typed
// error reply — never by dropping the connection or killing the server.

#pragma once

#include <cstddef>

namespace linrec {

struct ServerLimits {
  /// Global bound on queries admitted but not yet completed, across every
  /// session. A submission that would push the count past this replies
  /// ERR Unavailable (backpressure) instead of queueing unboundedly.
  std::size_t max_pending = 128;

  /// Per-query deadline default, in milliseconds; sessions override with
  /// SET timeout_ms. Negative = no deadline. Zero = an already-expired
  /// token — every closure replies ERR DeadlineExceeded at its first round
  /// boundary, which is how the tests exercise expiry deterministically.
  int default_timeout_ms = -1;

  /// Result-size cap default: replies stream at most this many rows and
  /// flag `truncated=1`. Sessions override with SET max_rows.
  std::size_t default_max_rows = 100000;
};

}  // namespace linrec
