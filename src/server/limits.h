// Serving limits: the knobs that keep one misbehaving client from taking
// the front door down. Every limit is enforced per request, with a typed
// error reply — never by dropping the connection or killing the server.

#pragma once

#include <cstddef>

namespace linrec {

struct ServerLimits {
  /// Global bound on queries admitted but not yet completed, across every
  /// session. A submission that would push the count past this replies
  /// ERR Unavailable (backpressure) instead of queueing unboundedly.
  std::size_t max_pending = 128;

  /// Per-query deadline default, in milliseconds; sessions override with
  /// SET timeout_ms. Negative = no deadline. Zero = an already-expired
  /// token — every closure replies ERR DeadlineExceeded at its first round
  /// boundary, which is how the tests exercise expiry deterministically.
  int default_timeout_ms = -1;

  /// Result-size cap default: replies stream at most this many rows and
  /// flag `truncated=1`. Sessions override with SET max_rows.
  std::size_t default_max_rows = 100000;

  /// Global memory ledger limit, in bytes, across every in-flight query's
  /// relation growth. 0 = unlimited. A query whose charge would cross it
  /// replies ERR ResourceExhausted; new submissions shed with
  /// ERR Unavailable while the ledger sits in the pressure band (top 1/8).
  std::size_t global_memory_budget = 0;

  /// Per-query memory budget default, in bytes (0 = unlimited). Sessions
  /// override with SET memory_budget.
  std::size_t default_query_memory_budget = 0;

  /// Retry hint stamped into every shed reply:
  /// "ERR Unavailable retry_after_ms=<N> ...".
  int retry_after_ms = 100;

  /// Watchdog scan interval: how often deadline-armed in-flight tokens are
  /// checked for expiry (and force-cancelled mid-chunk). The watchdog
  /// thread starts lazily with the first deadline-armed query.
  int watchdog_interval_ms = 10;
};

}  // namespace linrec
