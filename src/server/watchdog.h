// Deadline watchdog: the piece that makes mid-chunk cancellation real.
//
// Round/chunk boundaries call CancellationToken::Check() (which reads the
// clock), but the in-cursor probe inside the join loop is deliberately
// clock-free — one relaxed flag load every few thousand candidates. That
// flag only turns on when someone calls Cancel() or ForceDeadline(). The
// watchdog is that someone: a single lazily-started thread that scans the
// deadline-armed tokens of in-flight queries every `interval_ms` and calls
// ForceDeadline() on any whose deadline has passed, so a query stuck deep
// inside one enormous Δ-chunk still stops within roughly one watchdog
// interval.
//
// Thread safety (statically enforced): the watch table, the handle
// counter, the stop flag AND the scan thread handle are guarded by mu_.
// Watch/Unwatch may be called from any session thread; the scan thread
// holds mu_ while walking the table, so Unwatch returning means no sweep
// is touching the token — tokens must stay alive until Unwatch returns
// (the server keeps them on the evaluation's stack frame and unwatches
// before unwinding). Teardown moves the thread handle out under the lock,
// publishes stop_, and joins *outside* the lock: a destructor racing a
// mid-sweep scan blocks until the sweep's MutexLock releases, never while
// holding the mutex the scan needs to finish.

#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <thread>

#include "common/cancel.h"
#include "common/thread_annotations.h"

namespace linrec {

class Watchdog {
 public:
  explicit Watchdog(int interval_ms = 10) : interval_ms_(interval_ms) {}
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a token for deadline enforcement; returns a handle for
  /// Unwatch. Starts the scan thread on first use. Tokens without a
  /// deadline are accepted but never fire.
  std::size_t Watch(CancellationToken* token) LINREC_EXCLUDES(mu_);

  /// Deregisters; the token may be destroyed once this returns (the scan
  /// thread cannot hold a reference past it — sweeps run under mu_).
  void Unwatch(std::size_t handle) LINREC_EXCLUDES(mu_);

  /// Tokens force-expired by the scan thread since construction.
  std::size_t cancels() const {
    return cancels_.load(std::memory_order_relaxed);
  }

  /// Tokens currently under watch (observability / tests).
  std::size_t watched() const LINREC_EXCLUDES(mu_);

 private:
  void Loop() LINREC_EXCLUDES(mu_);

  const int interval_ms_;
  mutable Mutex mu_;
  CondVar cv_;
  std::map<std::size_t, CancellationToken*> watched_ LINREC_GUARDED_BY(mu_);
  std::size_t next_handle_ LINREC_GUARDED_BY(mu_) = 0;
  bool stop_ LINREC_GUARDED_BY(mu_) = false;
  bool started_ LINREC_GUARDED_BY(mu_) = false;
  /// Lazily started by Watch, moved out (under mu_) and joined by the
  /// destructor. Guarded so a Watch racing teardown is a compile-time
  /// question, not a schedule-dependent one.
  std::thread thread_ LINREC_GUARDED_BY(mu_);
  std::atomic<std::size_t> cancels_{0};
};

}  // namespace linrec
