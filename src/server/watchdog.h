// Deadline watchdog: the piece that makes mid-chunk cancellation real.
//
// Round/chunk boundaries call CancellationToken::Check() (which reads the
// clock), but the in-cursor probe inside the join loop is deliberately
// clock-free — one relaxed flag load every few thousand candidates. That
// flag only turns on when someone calls Cancel() or ForceDeadline(). The
// watchdog is that someone: a single lazily-started thread that scans the
// deadline-armed tokens of in-flight queries every `interval_ms` and calls
// ForceDeadline() on any whose deadline has passed, so a query stuck deep
// inside one enormous Δ-chunk still stops within roughly one watchdog
// interval.
//
// Thread safety: Watch/Unwatch may be called from any session thread; the
// scan thread holds the same mutex while walking the table. Tokens must
// stay alive until Unwatch returns (the server keeps them on the
// evaluation's stack frame and unwatches before unwinding).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <thread>

#include "common/cancel.h"

namespace linrec {

class Watchdog {
 public:
  explicit Watchdog(int interval_ms = 10) : interval_ms_(interval_ms) {}
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a token for deadline enforcement; returns a handle for
  /// Unwatch. Starts the scan thread on first use. Tokens without a
  /// deadline are accepted but never fire.
  std::size_t Watch(CancellationToken* token);

  /// Deregisters; the token may be destroyed once this returns.
  void Unwatch(std::size_t handle);

  /// Tokens force-expired by the scan thread since construction.
  std::size_t cancels() const {
    return cancels_.load(std::memory_order_relaxed);
  }

  /// Tokens currently under watch (observability / tests).
  std::size_t watched() const;

 private:
  void Loop();

  const int interval_ms_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::size_t, CancellationToken*> watched_;
  std::size_t next_handle_ = 0;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
  std::atomic<std::size_t> cancels_{0};
};

}  // namespace linrec
