// One client session: a private ProgramInstance (own base relations, own
// engine and therefore own TieredIndexCache tier), per-session limits, and
// the LOAD-block accumulator. Sessions are single-threaded by contract —
// the connection that owns one drives it; concurrency is across sessions,
// which share nothing but the server's Planner and program registry.

#pragma once

#include <cstddef>
#include <string>

#include "frontend/lower.h"
#include "server/limits.h"

namespace linrec {

class Session {
 public:
  Session(std::string id, const ServerLimits& limits,
          EngineOptions engine_options)
      : id_(std::move(id)),
        instance_(engine_options),
        timeout_ms_(limits.default_timeout_ms),
        max_rows_(limits.default_max_rows),
        memory_budget_(limits.default_query_memory_budget) {}

  const std::string& id() const { return id_; }
  ProgramInstance& instance() { return instance_; }

  /// Per-query deadline in ms; negative = none, zero = already expired.
  int timeout_ms() const { return timeout_ms_; }
  void set_timeout_ms(int ms) { timeout_ms_ = ms; }

  /// Reply row cap; results past it are cut and flagged truncated=1.
  std::size_t max_rows() const { return max_rows_; }
  void set_max_rows(std::size_t rows) { max_rows_ = rows; }

  /// Per-query memory budget in bytes; 0 = ungoverned.
  std::size_t memory_budget() const { return memory_budget_; }
  void set_memory_budget(std::size_t bytes) { memory_budget_ = bytes; }

  /// LOAD...END block state.
  bool in_load() const { return in_load_; }
  void BeginLoad() {
    in_load_ = true;
    load_text_.clear();
  }
  void AppendLoadLine(const std::string& line) {
    load_text_ += line;
    load_text_ += '\n';
  }
  std::string TakeLoadText() {
    in_load_ = false;
    std::string text = std::move(load_text_);
    load_text_.clear();
    return text;
  }

  std::size_t queries_served() const { return queries_served_; }
  void CountQueries(std::size_t n) { queries_served_ += n; }

 private:
  std::string id_;
  ProgramInstance instance_;
  int timeout_ms_;
  std::size_t max_rows_;
  std::size_t memory_budget_;
  bool in_load_ = false;
  std::string load_text_;
  std::size_t queries_served_ = 0;
};

}  // namespace linrec
