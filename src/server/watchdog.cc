#include "server/watchdog.h"

#include <chrono>

namespace linrec {

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::size_t Watchdog::Watch(CancellationToken* token) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  const std::size_t handle = next_handle_++;
  watched_.emplace(handle, token);
  return handle;
}

void Watchdog::Unwatch(std::size_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  watched_.erase(handle);
}

std::size_t Watchdog::watched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watched_.size();
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
    if (stop_) return;
    for (auto& [handle, token] : watched_) {
      // stop_requested() first: a token already flagged (cancelled, or
      // force-expired on an earlier scan) is not counted twice.
      if (!token->stop_requested() && token->has_deadline() &&
          token->expired()) {
        token->ForceDeadline();
        cancels_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace linrec
