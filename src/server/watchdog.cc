#include "server/watchdog.h"

#include <chrono>
#include <utility>

namespace linrec {

Watchdog::~Watchdog() {
  // Publish stop under the lock and take ownership of the thread handle,
  // but JOIN outside it: the scan thread's final iterations need mu_ to
  // observe stop_ and to finish a sweep already in flight. Joining under
  // the lock would deadlock with any mid-sweep scan; joining without
  // having moved the handle would race a concurrent lazy start (which the
  // guarded thread_ now makes impossible to write).
  std::thread scanner;
  {
    MutexLock lock(mu_);
    stop_ = true;
    scanner = std::move(thread_);
  }
  cv_.NotifyAll();
  if (scanner.joinable()) scanner.join();
}

std::size_t Watchdog::Watch(CancellationToken* token) {
  MutexLock lock(mu_);
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  const std::size_t handle = next_handle_++;
  watched_.emplace(handle, token);
  return handle;
}

void Watchdog::Unwatch(std::size_t handle) {
  MutexLock lock(mu_);
  watched_.erase(handle);
}

std::size_t Watchdog::watched() const {
  MutexLock lock(mu_);
  return watched_.size();
}

void Watchdog::Loop() {
  MutexLock lock(mu_);
  while (!stop_) {
    // Wake on notify (teardown) or after one interval; spurious wakeups
    // only make a sweep run early, which is harmless.
    cv_.WaitFor(mu_, std::chrono::milliseconds(interval_ms_));
    if (stop_) return;
    for (auto& [handle, token] : watched_) {
      // stop_requested() first: a token already flagged (cancelled, or
      // force-expired on an earlier scan) is not counted twice.
      if (!token->stop_requested() && token->has_deadline() &&
          token->expired()) {
        token->ForceDeadline();
        cancels_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace linrec
