// Naughton's separable recursions (Sections 4.1 and 6.1).
//
// Two rules r1, r2 with the same consequent are separable when
//  (1) for every distinguished x, h_i(x) = x or h_i(x) is nondistinguished;
//  (2) for every distinguished x, x and h_i(x) both appear under
//      nonrecursive predicates in r_i, or neither does;
//  (3) the sets of distinguished variables appearing under nonrecursive
//      predicates in r1 and r2 are equal or disjoint;
//  (4) the subgraph of each rule's α-graph induced by its static arcs is
//      connected.
//
// Theorem 6.2: separable rules commute (the converse fails — Example 5.3).

#pragma once

#include <string>

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// Outcome of the four-condition separability check.
struct SeparabilityReport {
  bool cond_persistence = false;       // (1) in both rules
  bool cond_nonrec_pairing = false;    // (2) in both rules
  bool cond_var_sets = false;          // (3) equal or disjoint
  bool cond_var_sets_disjoint = false; // the stronger, algorithm-enabling form
  bool cond_static_connected = false;  // (4) in both rules
  bool separable = false;              // all four
  std::string detail;
};

/// Checks Naughton's conditions. Requires both rules valid for analysis and
/// sharing head predicate/arity.
Result<SeparabilityReport> CheckSeparable(const LinearRule& r1,
                                          const LinearRule& r2);

}  // namespace linrec
