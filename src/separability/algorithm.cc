#include "separability/algorithm.h"

#include "analysis/classify.h"
#include "commutativity/oracle.h"
#include "common/strings.h"
#include "datalog/printer.h"

namespace linrec {

Result<bool> SelectionCommutesWith(const LinearRule& rule,
                                   const Selection& sigma) {
  if (sigma.position < 0 ||
      sigma.position >= static_cast<int>(rule.arity())) {
    return Status::InvalidArgument(
        StrCat("selection position ", sigma.position,
               " out of range for arity ", rule.arity()));
  }
  Result<Classification> classes = Classification::Compute(rule);
  if (!classes.ok()) return classes.status();
  VarId x = classes->HeadVarAt(sigma.position);
  const VarClass& vc = classes->Of(x);
  return vc.persistent && vc.period == 1;
}

Result<Relation> SeparableClosure(const std::vector<LinearRule>& a_rules,
                                  const std::vector<LinearRule>& b_rules,
                                  const Selection& sigma, const Database& db,
                                  const Relation& q, ClosureStats* stats,
                                  IndexCache* cache, int workers,
                                  const CancellationToken* cancel) {
  for (const LinearRule& a : a_rules) {
    for (const LinearRule& b : b_rules) {
      Result<bool> commute = Commute(a, b);
      if (!commute.ok()) return commute.status();
      if (!*commute) {
        return Status::InvalidArgument(
            StrCat("operators do not commute: ", ToString(a), " vs ",
                   ToString(b)));
      }
    }
  }
  for (const LinearRule& a : a_rules) {
    Result<bool> sc = SelectionCommutesWith(a, sigma);
    if (!sc.ok()) return sc.status();
    if (!*sc) {
      return Status::InvalidArgument(
          StrCat("selection on position ", sigma.position,
                 " does not commute with ", ToString(a)));
    }
  }

  return SeparableClosureUnchecked(a_rules, b_rules, sigma, db, q, stats,
                                   cache, workers, cancel);
}

Result<Relation> SeparableClosureUnchecked(
    const std::vector<LinearRule>& a_rules,
    const std::vector<LinearRule>& b_rules, const Selection& sigma,
    const Database& db, const Relation& q, ClosureStats* stats,
    IndexCache* cache, int workers, const CancellationToken* cancel) {
  // A*( σ( B* q ) ) — see the header derivation. Both phases share one
  // index cache so the parameter-relation indexes are built once.
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  Relation filtered;
  if (b_rules.empty()) {
    filtered = ApplySelection(q, sigma, stats);
  } else {
    ClosureStats phase;
    Result<Relation> after_b =
        SemiNaiveClosure(b_rules, db, q, &phase, cache, workers, cancel);
    if (!after_b.ok()) return after_b.status();
    if (stats != nullptr) stats->Accumulate(phase);
    filtered = ApplySelection(*after_b, sigma, stats);
  }

  ClosureStats phase2;
  Result<Relation> after_a =
      SemiNaiveClosure(a_rules, db, filtered, &phase2, cache, workers,
                       cancel);
  if (!after_a.ok()) return after_a.status();
  if (stats != nullptr) stats->Accumulate(phase2);
  return after_a;
}

Result<Relation> ClosureThenSelect(const std::vector<LinearRule>& a_rules,
                                   const std::vector<LinearRule>& b_rules,
                                   const Selection& sigma, const Database& db,
                                   const Relation& q, ClosureStats* stats,
                                   IndexCache* cache, int workers) {
  std::vector<LinearRule> all = a_rules;
  all.insert(all.end(), b_rules.begin(), b_rules.end());
  Result<Relation> closure =
      SemiNaiveClosure(all, db, q, stats, cache, workers);
  if (!closure.ok()) return closure.status();
  return ApplySelection(*closure, sigma, stats);
}

}  // namespace linrec
