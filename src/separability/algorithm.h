// The separable algorithm (Algorithm 4.1) generalized to commuting
// operators (Theorem 4.1). For commuting A and B with a selection σ that
// commutes with A:
//
//   σ(A + B)* = σ A* B* = (A* σ) B* = A*(σ B*) ,
//
// i.e. the B-closure is computed once, filtered by σ, and only then closed
// under A. The selection therefore never sees the (much larger) mixed
// closure; the A-side work shrinks to the selected cone. (Algorithm 4.1's
// first loop composes σ into the B-powers symbolically — the operator-level
// counterpart of this formula.)

#pragma once

#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/fixpoint.h"
#include "eval/selection.h"

namespace linrec {

/// σ commutes with the operator of `rule` iff the selected position's head
/// variable is 1-persistent (the column value passes through unchanged).
Result<bool> SelectionCommutesWith(const LinearRule& rule,
                                   const Selection& sigma);

/// Computes σ(ΣA + ΣB)* q as A*(σ(B*(q))).
///
/// Preconditions (verified; InvalidArgument if violated):
///  * every rule in `a_rules` commutes with every rule in `b_rules`
///    (combined oracle), and
///  * σ commutes with every rule in `a_rules` (the outer closure).
Result<Relation> SeparableClosure(const std::vector<LinearRule>& a_rules,
                                  const std::vector<LinearRule>& b_rules,
                                  const Selection& sigma, const Database& db,
                                  const Relation& q,
                                  ClosureStats* stats = nullptr);

/// Baseline for comparison: (ΣA + ΣB)* q computed fully, then filtered.
Result<Relation> ClosureThenSelect(const std::vector<LinearRule>& a_rules,
                                   const std::vector<LinearRule>& b_rules,
                                   const Selection& sigma, const Database& db,
                                   const Relation& q,
                                   ClosureStats* stats = nullptr);

}  // namespace linrec
