// The separable algorithm (Algorithm 4.1) generalized to commuting
// operators (Theorem 4.1). For commuting A and B with a selection σ that
// commutes with A:
//
//   σ(A + B)* = σ A* B* = (A* σ) B* = A*(σ B*) ,
//
// i.e. the B-closure is computed once, filtered by σ, and only then closed
// under A. The selection therefore never sees the (much larger) mixed
// closure; the A-side work shrinks to the selected cone. (Algorithm 4.1's
// first loop composes σ into the B-powers symbolically — the operator-level
// counterpart of this formula.)

#pragma once

#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/fixpoint.h"
#include "eval/selection.h"

namespace linrec {

/// σ commutes with the operator of `rule` iff the selected position's head
/// variable is 1-persistent (the column value passes through unchanged).
Result<bool> SelectionCommutesWith(const LinearRule& rule,
                                   const Selection& sigma);

/// Computes σ(ΣA + ΣB)* q as A*(σ(B*(q))).
///
/// Preconditions (verified; InvalidArgument if violated):
///  * every rule in `a_rules` commutes with every rule in `b_rules`
///    (combined oracle), and
///  * σ commutes with every rule in `a_rules` (the outer closure).
///
/// When `cache` is null a local IndexCache spans both phases; passing the
/// caller's cache shares parameter-relation indexes with other closures.
/// `workers` parallelizes the inside of both closure phases' rounds
/// (eval/fixpoint.h).
/// Prefer Engine::Execute (engine/engine.h), which plans this strategy
/// automatically; this entry point remains for direct use.
Result<Relation> SeparableClosure(const std::vector<LinearRule>& a_rules,
                                  const std::vector<LinearRule>& b_rules,
                                  const Selection& sigma, const Database& db,
                                  const Relation& q,
                                  ClosureStats* stats = nullptr,
                                  IndexCache* cache = nullptr,
                                  int workers = 1,
                                  const CancellationToken* cancel = nullptr);

/// The A*(σ(B* q)) pipeline WITHOUT the precondition checks — the shared
/// executor behind SeparableClosure (which verifies first) and the engine
/// (which verified during planning). `b_rules` may be empty: full
/// pushdown, the seed itself is filtered. Callers are responsible for the
/// Theorem 4.1 preconditions; violating them silently changes the result.
Result<Relation> SeparableClosureUnchecked(
    const std::vector<LinearRule>& a_rules,
    const std::vector<LinearRule>& b_rules, const Selection& sigma,
    const Database& db, const Relation& q, ClosureStats* stats = nullptr,
    IndexCache* cache = nullptr, int workers = 1,
    const CancellationToken* cancel = nullptr);

/// Baseline for comparison: (ΣA + ΣB)* q computed fully, then filtered.
Result<Relation> ClosureThenSelect(const std::vector<LinearRule>& a_rules,
                                   const std::vector<LinearRule>& b_rules,
                                   const Selection& sigma, const Database& db,
                                   const Relation& q,
                                   ClosureStats* stats = nullptr,
                                   IndexCache* cache = nullptr,
                                   int workers = 1);

}  // namespace linrec
