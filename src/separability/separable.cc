#include "separability/separable.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <numeric>
#include <set>
#include <vector>

#include "analysis/rule_analysis.h"
#include "common/strings.h"

namespace linrec {
namespace {

/// Head positions whose variable appears under a nonrecursive predicate.
std::set<int> NonRecPositions(const RuleAnalysis& a) {
  const Rule& r = a.rule().rule();
  std::set<VarId> under;
  for (int ai : a.rule().NonRecursiveAtomIndices()) {
    for (const Term& t : r.body()[static_cast<std::size_t>(ai)].terms) {
      under.insert(t.var());
    }
  }
  std::set<int> positions;
  for (int p = 0; p < static_cast<int>(a.rule().arity()); ++p) {
    if (under.count(a.classes().HeadVarAt(p)) > 0) positions.insert(p);
  }
  return positions;
}

/// Condition (1): h(x) = x or nondistinguished, for all distinguished x.
bool Condition1(const RuleAnalysis& a) {
  for (int p = 0; p < static_cast<int>(a.rule().arity()); ++p) {
    VarId x = a.classes().HeadVarAt(p);
    VarId hx = *a.classes().H(x);
    if (hx != x && a.classes().Of(hx).distinguished) return false;
  }
  return true;
}

/// Condition (2): x under nonrecursive predicates iff h(x) is.
bool Condition2(const RuleAnalysis& a) {
  const Rule& r = a.rule().rule();
  std::set<VarId> under;
  for (int ai : a.rule().NonRecursiveAtomIndices()) {
    for (const Term& t : r.body()[static_cast<std::size_t>(ai)].terms) {
      under.insert(t.var());
    }
  }
  for (int p = 0; p < static_cast<int>(a.rule().arity()); ++p) {
    VarId x = a.classes().HeadVarAt(p);
    VarId hx = *a.classes().H(x);
    if ((under.count(x) > 0) != (under.count(hx) > 0)) return false;
  }
  return true;
}

/// Condition (4): the static-arc subgraph is connected.
bool Condition4(const RuleAnalysis& a) {
  const AlphaGraph& g = a.graph();
  std::vector<int> parent(static_cast<std::size_t>(g.node_count()));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  std::set<VarId> touched;
  for (const AlphaArc& arc : g.arcs()) {
    if (arc.is_dynamic()) continue;
    touched.insert(arc.u);
    touched.insert(arc.v);
    parent[static_cast<std::size_t>(find(arc.u))] = find(arc.v);
  }
  if (touched.empty()) return true;  // vacuously connected
  int root = find(*touched.begin());
  for (VarId v : touched) {
    if (find(v) != root) return false;
  }
  return true;
}

}  // namespace

Result<SeparabilityReport> CheckSeparable(const LinearRule& r1,
                                          const LinearRule& r2) {
  if (r1.head().predicate != r2.head().predicate ||
      r1.arity() != r2.arity()) {
    return Status::InvalidArgument(
        "separability requires the same head predicate and arity");
  }
  Result<RuleAnalysis> a1 = RuleAnalysis::Compute(r1);
  if (!a1.ok()) return a1.status();
  Result<RuleAnalysis> a2 = RuleAnalysis::Compute(r2);
  if (!a2.ok()) return a2.status();

  SeparabilityReport report;
  report.cond_persistence = Condition1(*a1) && Condition1(*a2);
  report.cond_nonrec_pairing = Condition2(*a1) && Condition2(*a2);

  std::set<int> s1 = NonRecPositions(*a1);
  std::set<int> s2 = NonRecPositions(*a2);
  std::vector<int> intersection;
  std::set_intersection(s1.begin(), s1.end(), s2.begin(), s2.end(),
                        std::back_inserter(intersection));
  report.cond_var_sets_disjoint = intersection.empty();
  report.cond_var_sets = report.cond_var_sets_disjoint || s1 == s2;

  report.cond_static_connected = Condition4(*a1) && Condition4(*a2);

  report.separable = report.cond_persistence && report.cond_nonrec_pairing &&
                     report.cond_var_sets && report.cond_static_connected;
  report.detail = StrCat(
      "persistence=", report.cond_persistence,
      " pairing=", report.cond_nonrec_pairing,
      " var_sets=", report.cond_var_sets,
      " (disjoint=", report.cond_var_sets_disjoint, ")",
      " static_connected=", report.cond_static_connected);
  return report;
}

}  // namespace linrec
