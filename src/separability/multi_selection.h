// The n-operator, multi-selection generalization of Theorem 4.1
// (Section 4.1):
//
//   σ0 σ1 ... σn (A1 + A2 + ... + An)* = (σ1 A1*)(σ2 A2*)...(σn An*) σ0 ,
//
// for mutually commutative operators {A_i} and selections {σ_i} such that
// σ_i commutes with every operator except (possibly) A_i. Evaluation
// proceeds right to left: filter by σ0, then for i = n..1 close under A_i
// and filter by σ_i.

#pragma once

#include <optional>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/fixpoint.h"
#include "eval/selection.h"

namespace linrec {

/// One summand A_i together with its (optional) selection σ_i.
struct SelectedOperator {
  std::vector<LinearRule> rules;
  std::optional<Selection> sigma;
};

/// Computes σ0 σ1...σn (ΣA_i)* q per the formula above.
///
/// Verified preconditions:
///  * all rules across different groups commute pairwise;
///  * each σ_i commutes with every rule of every group j ≠ i;
///  * σ0 (if present) commutes with every rule of every group.
/// The order of `groups` determines the evaluation order (groups.back()
/// innermost); any order is valid under the preconditions.
Result<Relation> MultiSelectionClosure(
    const std::vector<SelectedOperator>& groups,
    const std::optional<Selection>& sigma0, const Database& db,
    const Relation& q, ClosureStats* stats = nullptr);

}  // namespace linrec
