#include "separability/multi_selection.h"

#include "commutativity/oracle.h"
#include "common/strings.h"
#include "datalog/printer.h"
#include "separability/algorithm.h"

namespace linrec {

Result<Relation> MultiSelectionClosure(
    const std::vector<SelectedOperator>& groups,
    const std::optional<Selection>& sigma0, const Database& db,
    const Relation& q, ClosureStats* stats) {
  if (groups.empty()) {
    return Status::InvalidArgument("at least one operator group is required");
  }
  // Cross-group commutativity.
  for (std::size_t i = 0; i < groups.size(); ++i) {
    for (std::size_t j = i + 1; j < groups.size(); ++j) {
      for (const LinearRule& a : groups[i].rules) {
        for (const LinearRule& b : groups[j].rules) {
          Result<bool> commute = Commute(a, b);
          if (!commute.ok()) return commute.status();
          if (!*commute) {
            return Status::InvalidArgument(
                StrCat("operators do not commute: ", ToString(a), " vs ",
                       ToString(b)));
          }
        }
      }
    }
  }
  // Selection/operator commutation: σ_i with every group j != i; σ0 with
  // every group.
  auto check_sigma = [&](const Selection& sigma,
                         std::size_t exempt) -> Status {
    for (std::size_t j = 0; j < groups.size(); ++j) {
      if (j == exempt) continue;
      for (const LinearRule& rule : groups[j].rules) {
        Result<bool> ok = SelectionCommutesWith(rule, sigma);
        if (!ok.ok()) return ok.status();
        if (!*ok) {
          return Status::InvalidArgument(
              StrCat("selection on position ", sigma.position,
                     " does not commute with ", ToString(rule)));
        }
      }
    }
    return Status::OK();
  };
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].sigma.has_value()) {
      LINREC_RETURN_IF_ERROR(check_sigma(*groups[i].sigma, i));
    }
  }
  if (sigma0.has_value()) {
    LINREC_RETURN_IF_ERROR(check_sigma(*sigma0, groups.size()));
  }

  // Right-to-left evaluation: σ0 first, then each (σ_i A_i*).
  Relation current =
      sigma0.has_value() ? ApplySelection(q, *sigma0, stats) : q;
  IndexCache cache;
  for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
    ClosureStats phase;
    Result<Relation> closed =
        SemiNaiveClosure(it->rules, db, current, &phase, &cache);
    if (!closed.ok()) return closed.status();
    if (stats != nullptr) stats->Accumulate(phase);
    current = it->sigma.has_value()
                  ? ApplySelection(*closed, *it->sigma, stats)
                  : std::move(*closed);
  }
  if (stats != nullptr) stats->result_size = current.size();
  return current;
}

}  // namespace linrec
