// The α-graph of a linear rule (Section 5.1).
//
//   (i)  one node per variable;
//   (ii) a static arc (x → y) for every pair of consecutive argument
//        positions x, y of a nonrecursive body atom, and a static self-arc
//        (x → x) for a unary nonrecursive atom, labeled by the predicate;
//   (iii) a dynamic arc (x → y) when x appears at some position of the
//        recursive atom in the antecedent and y at the same position of the
//        consequent.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// One arc of the α-graph.
struct AlphaArc {
  enum class Kind { kStatic, kDynamic };

  Kind kind = Kind::kStatic;
  VarId u = -1;  ///< tail (antecedent side for dynamic arcs)
  VarId v = -1;  ///< head (consequent side for dynamic arcs)
  /// Static arcs: index of the nonrecursive body atom; dynamic arcs: -1.
  int atom_index = -1;
  /// Static arcs: index of the first of the two consecutive positions.
  /// Dynamic arcs: the shared argument position.
  int position = 0;

  bool is_dynamic() const { return kind == Kind::kDynamic; }
};

/// The α-graph of a validated linear rule.
class AlphaGraph {
 public:
  /// Requires ValidateForAnalysis(rule) to hold (constant-free, distinct
  /// head variables); returns its error otherwise.
  static Result<AlphaGraph> Build(const LinearRule& rule);

  int node_count() const { return node_count_; }
  const std::vector<AlphaArc>& arcs() const { return arcs_; }

  /// Arc ids incident to node v (self-arcs listed once).
  const std::vector<int>& IncidentArcs(VarId v) const {
    return incident_[static_cast<std::size_t>(v)];
  }

  /// Ids of the dynamic arcs only.
  const std::vector<int>& dynamic_arcs() const { return dynamic_arcs_; }

 private:
  int node_count_ = 0;
  std::vector<AlphaArc> arcs_;
  std::vector<std::vector<int>> incident_;
  std::vector<int> dynamic_arcs_;
};

}  // namespace linrec
