#include "analysis/rule_analysis.h"

#include <algorithm>

namespace linrec {
namespace {

int FindBridgeByNode(const std::vector<Bridge>& bridges, VarId v) {
  for (std::size_t i = 0; i < bridges.size(); ++i) {
    if (std::binary_search(bridges[i].nodes.begin(), bridges[i].nodes.end(),
                           v)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

Result<RuleAnalysis> RuleAnalysis::Compute(LinearRule rule) {
  Result<AlphaGraph> graph = AlphaGraph::Build(rule);
  if (!graph.ok()) return graph.status();
  Result<Classification> classes = Classification::Compute(rule);
  if (!classes.ok()) return classes.status();

  RuleTraits traits = ComputeTraits(rule.rule());
  RuleAnalysis analysis(std::move(rule), traits, std::move(*graph),
                        std::move(*classes));

  const AlphaGraph& g = analysis.graph_;
  const Classification& c = analysis.classes_;
  const int nvars = g.node_count();

  // Commutativity decomposition: V′ = link 1-persistent variables,
  // E′ = their dynamic self-arcs.
  std::vector<bool> vprime(static_cast<std::size_t>(nvars), false);
  for (VarId v = 0; v < nvars; ++v) {
    vprime[static_cast<std::size_t>(v)] = c.Of(v).IsLink1Persistent();
  }
  std::vector<bool> eprime(g.arcs().size(), false);
  for (std::size_t id = 0; id < g.arcs().size(); ++id) {
    const AlphaArc& arc = g.arcs()[id];
    if (arc.is_dynamic() && arc.u == arc.v &&
        vprime[static_cast<std::size_t>(arc.u)]) {
      eprime[id] = true;
    }
  }
  analysis.commutativity_bridges_ = ComputeBridges(g, vprime, eprime);

  // Redundancy decomposition: V′ = I, E′ = dynamic arcs within I.
  std::vector<bool> iset(static_cast<std::size_t>(nvars), false);
  for (VarId v : c.i_set()) iset[static_cast<std::size_t>(v)] = true;
  std::vector<bool> gi(g.arcs().size(), false);
  for (std::size_t id = 0; id < g.arcs().size(); ++id) {
    const AlphaArc& arc = g.arcs()[id];
    if (arc.is_dynamic() && iset[static_cast<std::size_t>(arc.u)] &&
        iset[static_cast<std::size_t>(arc.v)]) {
      gi[id] = true;
    }
  }
  analysis.redundancy_bridges_ = ComputeBridges(g, iset, gi);

  return analysis;
}

int RuleAnalysis::CommutativityBridgeOf(VarId v) const {
  return FindBridgeByNode(commutativity_bridges_, v);
}

int RuleAnalysis::RedundancyBridgeOf(VarId v) const {
  return FindBridgeByNode(redundancy_bridges_, v);
}

}  // namespace linrec
