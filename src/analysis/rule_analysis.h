// One-stop structural analysis of a linear rule: α-graph, variable classes,
// and both bridge decompositions used by the paper.

#pragma once

#include <memory>

#include "analysis/alpha_graph.h"
#include "analysis/bridges.h"
#include "analysis/classify.h"
#include "datalog/traits.h"

namespace linrec {

/// Computes and caches every structural artifact of one rule.
class RuleAnalysis {
 public:
  /// Requires ValidateForAnalysis(rule).
  static Result<RuleAnalysis> Compute(LinearRule rule);

  const LinearRule& rule() const { return rule_; }
  const RuleTraits& traits() const { return traits_; }
  const AlphaGraph& graph() const { return graph_; }
  const Classification& classes() const { return classes_; }

  /// Bridges w.r.t. the subgraph induced by the dynamic self-arcs of the
  /// link 1-persistent variables — the decomposition used by the
  /// commutativity condition (Theorem 5.1 (d)).
  const std::vector<Bridge>& commutativity_bridges() const {
    return commutativity_bridges_;
  }
  /// Index of the commutativity bridge whose nodes include v, or -1.
  /// Unique for any variable outside V′ with at least one incident arc.
  int CommutativityBridgeOf(VarId v) const;

  /// Bridges w.r.t. G_I — the subgraph induced by the dynamic arcs
  /// connecting I = link-persistent ∪ ray variables (Section 6.2,
  /// recursive redundancy).
  const std::vector<Bridge>& redundancy_bridges() const {
    return redundancy_bridges_;
  }
  int RedundancyBridgeOf(VarId v) const;

 private:
  LinearRule rule_;
  RuleTraits traits_;
  AlphaGraph graph_;
  Classification classes_;
  std::vector<Bridge> commutativity_bridges_;
  std::vector<Bridge> redundancy_bridges_;

  RuleAnalysis(LinearRule rule, RuleTraits traits, AlphaGraph graph,
               Classification classes)
      : rule_(std::move(rule)),
        traits_(traits),
        graph_(std::move(graph)),
        classes_(std::move(classes)) {}
};

}  // namespace linrec
