// Rendering of α-graphs: Graphviz DOT and a plain-text report.
//
// The paper draws static arcs as thin lines and dynamic arcs as thick ones;
// the DOT output follows that convention (solid/bold).

#pragma once

#include <string>

#include "analysis/rule_analysis.h"

namespace linrec {

/// Graphviz digraph of the α-graph. Static arcs solid and labeled with the
/// predicate; dynamic arcs bold.
std::string ToDot(const RuleAnalysis& analysis);

/// Plain-text report: the rule, each variable's class, and both bridge
/// decompositions (used by examples/paper_figures to regenerate Figures 1-9).
std::string AsciiReport(const RuleAnalysis& analysis);

}  // namespace linrec
