#include "analysis/bridges.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace linrec {
namespace {

/// Plain union-find over int ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent_[static_cast<std::size_t>(Find(a))] = Find(b); }

 private:
  std::vector<int> parent_;
};

void SortUnique(std::vector<VarId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}
void SortUniqueInt(std::vector<int>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

bool Bridge::ContainsVar(VarId v) const {
  return std::binary_search(nodes.begin(), nodes.end(), v) ||
         std::binary_search(attached.begin(), attached.end(), v);
}

std::vector<Bridge> ComputeBridges(const AlphaGraph& graph,
                                   const std::vector<bool>& vprime,
                                   const std::vector<bool>& in_eprime) {
  const std::vector<AlphaArc>& arcs = graph.arcs();
  const int narcs = static_cast<int>(arcs.size());

  // 1. Walk equivalence: arcs sharing a non-V′ endpoint are equivalent.
  UnionFind uf(narcs);
  for (VarId v = 0; v < graph.node_count(); ++v) {
    if (vprime[static_cast<std::size_t>(v)]) continue;
    int first = -1;
    for (int arc_id : graph.IncidentArcs(v)) {
      if (in_eprime[static_cast<std::size_t>(arc_id)]) continue;
      if (first < 0) {
        first = arc_id;
      } else {
        uf.Union(first, arc_id);
      }
    }
  }
  // 2. Literal coarsening: all static arcs of one atom stay together.
  std::map<int, int> first_arc_of_atom;
  for (int id = 0; id < narcs; ++id) {
    if (in_eprime[static_cast<std::size_t>(id)]) continue;
    if (arcs[static_cast<std::size_t>(id)].atom_index < 0) continue;
    auto [it, inserted] =
        first_arc_of_atom.emplace(arcs[static_cast<std::size_t>(id)].atom_index, id);
    if (!inserted) uf.Union(it->second, id);
  }

  // 3. Collect bridges.
  std::map<int, Bridge> by_root;
  for (int id = 0; id < narcs; ++id) {
    if (in_eprime[static_cast<std::size_t>(id)]) continue;
    Bridge& b = by_root[uf.Find(id)];
    const AlphaArc& arc = arcs[static_cast<std::size_t>(id)];
    b.arcs.push_back(id);
    b.nodes.push_back(arc.u);
    b.nodes.push_back(arc.v);
    if (arc.atom_index >= 0) b.atom_indices.push_back(arc.atom_index);
  }

  // 4. Augmentation: connected components of G′ = (V′, E′), attached to the
  // bridges they touch.
  UnionFind gprime(graph.node_count());
  for (int id = 0; id < narcs; ++id) {
    if (!in_eprime[static_cast<std::size_t>(id)]) continue;
    gprime.Union(arcs[static_cast<std::size_t>(id)].u,
                 arcs[static_cast<std::size_t>(id)].v);
  }
  std::map<int, std::vector<VarId>> gprime_components;
  for (VarId v = 0; v < graph.node_count(); ++v) {
    if (vprime[static_cast<std::size_t>(v)]) {
      gprime_components[gprime.Find(v)].push_back(v);
    }
  }

  std::vector<Bridge> bridges;
  for (auto& [root, bridge] : by_root) {
    SortUnique(&bridge.nodes);
    SortUniqueInt(&bridge.atom_indices);
    SortUniqueInt(&bridge.arcs);
    for (VarId v : bridge.nodes) {
      if (vprime[static_cast<std::size_t>(v)]) {
        const std::vector<VarId>& component =
            gprime_components[gprime.Find(v)];
        bridge.attached.insert(bridge.attached.end(), component.begin(),
                               component.end());
      }
    }
    SortUnique(&bridge.attached);
    bridges.push_back(std::move(bridge));
  }
  return bridges;
}

}  // namespace linrec
