#include "analysis/dot.h"

#include "common/strings.h"
#include "datalog/printer.h"

namespace linrec {

std::string ToDot(const RuleAnalysis& analysis) {
  const Rule& r = analysis.rule().rule();
  std::string out = "digraph alpha {\n";
  out += StrCat("  label=\"", ToString(r), "\";\n");
  for (VarId v = 0; v < r.var_count(); ++v) {
    const VarClass& vc = analysis.classes().Of(v);
    out += StrCat("  \"", r.var_name(v), "\" [shape=",
                  vc.distinguished ? "circle" : "point", ", xlabel=\"",
                  vc.Describe(), "\"];\n");
  }
  for (const AlphaArc& arc : analysis.graph().arcs()) {
    if (arc.is_dynamic()) {
      out += StrCat("  \"", r.var_name(arc.u), "\" -> \"", r.var_name(arc.v),
                    "\" [style=bold];\n");
    } else {
      const Atom& atom = r.body()[static_cast<std::size_t>(arc.atom_index)];
      out += StrCat("  \"", r.var_name(arc.u), "\" -> \"", r.var_name(arc.v),
                    "\" [label=\"", atom.predicate, "\", arrowhead=none];\n");
    }
  }
  out += "}\n";
  return out;
}

namespace {

std::string DescribeBridges(const RuleAnalysis& analysis,
                            const std::vector<Bridge>& bridges) {
  const Rule& r = analysis.rule().rule();
  std::string out;
  for (std::size_t i = 0; i < bridges.size(); ++i) {
    const Bridge& b = bridges[i];
    std::vector<std::string> node_names;
    for (VarId v : b.nodes) node_names.push_back(r.var_name(v));
    std::vector<std::string> attached_names;
    for (VarId v : b.attached) attached_names.push_back(r.var_name(v));
    std::vector<std::string> atom_names;
    for (int ai : b.atom_indices) {
      atom_names.push_back(
          ToString(r.body()[static_cast<std::size_t>(ai)], r));
    }
    out += StrCat("  bridge ", i, ": nodes {", Join(node_names, ","),
                  "} attached {", Join(attached_names, ","), "} atoms {",
                  Join(atom_names, ", "), "}\n");
  }
  if (bridges.empty()) out += "  (none)\n";
  return out;
}

}  // namespace

std::string AsciiReport(const RuleAnalysis& analysis) {
  const Rule& r = analysis.rule().rule();
  std::string out = StrCat("rule: ", ToString(r), "\n");
  out += "variables:\n";
  for (VarId v = 0; v < r.var_count(); ++v) {
    out += StrCat("  ", r.var_name(v), ": ",
                  analysis.classes().Of(v).Describe(), "\n");
  }
  out += "commutativity bridges (V' = link 1-persistent):\n";
  out += DescribeBridges(analysis, analysis.commutativity_bridges());
  out += "redundancy bridges (V' = I = link-persistent + ray):\n";
  out += DescribeBridges(analysis, analysis.redundancy_bridges());
  return out;
}

}  // namespace linrec
