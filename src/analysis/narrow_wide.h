// Narrow, wide and complement rules of augmented bridges (Sections 5.1, 6.2,
// Lemma 6.5).
//
// For an augmented bridge of a rule r:
//  * the narrow rule keeps only the bridge's atoms and projects the
//    recursive predicate onto the argument positions whose consequent
//    variables appear in the augmented bridge;
//  * the wide rule keeps the recursive predicate at full arity, making the
//    remaining distinguished variables free 1-persistent;
//  * the complement rule (the operator B of Lemma 6.5) keeps every atom
//    outside the bridge and makes the bridge's distinguished variables
//    1-persistent, so that r = complement · wide as operators.

#pragma once

#include "analysis/rule_analysis.h"
#include "common/status.h"

namespace linrec {

/// Narrow rule of one augmented bridge. Its head predicate is suffixed with
/// the projected positions (e.g. "p#0_2"), so narrow rules are comparable
/// across rules exactly when they project the same positions.
Result<LinearRule> MakeNarrowRule(const RuleAnalysis& analysis,
                                  const Bridge& bridge);

/// Wide rule of the union of the given augmented bridges.
Result<LinearRule> MakeWideRule(const RuleAnalysis& analysis,
                                const std::vector<const Bridge*>& bridges);
Result<LinearRule> MakeWideRule(const RuleAnalysis& analysis,
                                const Bridge& bridge);

/// Lemma 6.5: the operator B with A = B·C, where C is the wide rule of the
/// given bridges.
Result<LinearRule> MakeComplementRule(
    const RuleAnalysis& analysis, const std::vector<const Bridge*>& bridges);

}  // namespace linrec
