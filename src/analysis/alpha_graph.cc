#include "analysis/alpha_graph.h"

#include "datalog/traits.h"

namespace linrec {

Result<AlphaGraph> AlphaGraph::Build(const LinearRule& rule) {
  LINREC_RETURN_IF_ERROR(ValidateForAnalysis(rule));

  AlphaGraph graph;
  graph.node_count_ = rule.rule().var_count();
  graph.incident_.resize(static_cast<std::size_t>(graph.node_count_));

  auto add_arc = [&](AlphaArc arc) {
    int id = static_cast<int>(graph.arcs_.size());
    graph.arcs_.push_back(arc);
    graph.incident_[static_cast<std::size_t>(arc.u)].push_back(id);
    if (arc.v != arc.u) {
      graph.incident_[static_cast<std::size_t>(arc.v)].push_back(id);
    }
    if (arc.is_dynamic()) graph.dynamic_arcs_.push_back(id);
  };

  // Static arcs from nonrecursive atoms.
  const Rule& r = rule.rule();
  for (int ai : rule.NonRecursiveAtomIndices()) {
    const Atom& atom = r.body()[static_cast<std::size_t>(ai)];
    if (atom.arity() == 1) {
      VarId x = atom.terms[0].var();
      add_arc({AlphaArc::Kind::kStatic, x, x, ai, 0});
      continue;
    }
    for (std::size_t p = 0; p + 1 < atom.terms.size(); ++p) {
      add_arc({AlphaArc::Kind::kStatic, atom.terms[p].var(),
               atom.terms[p + 1].var(), ai, static_cast<int>(p)});
    }
  }

  // Dynamic arcs from the recursive atom / head.
  const Atom& rec = rule.recursive_atom();
  const Atom& head = r.head();
  for (std::size_t p = 0; p < head.terms.size(); ++p) {
    add_arc({AlphaArc::Kind::kDynamic, rec.terms[p].var(),
             head.terms[p].var(), -1, static_cast<int>(p)});
  }
  return graph;
}

}  // namespace linrec
