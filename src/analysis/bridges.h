// Bridges of the α-graph with respect to a subgraph (Section 5.1).
//
// Given a graph G, a node set V′ and an arc set E′ (the subgraph G′), two
// arcs of G − E′ are equivalent when some walk contains both without passing
// through a node of V′ internally. The subgraph induced by an equivalence
// class is a bridge; a bridge plus the part of G′ connected to it is an
// augmented bridge. Identification is O(n + e) by union-find (Lemma 5.3).
//
// One refinement (documented in DESIGN.md): arcs of the same body atom are
// kept in one bridge even when a middle argument lies in V′, so that every
// atom belongs to exactly one augmented bridge and narrow/wide rules are
// well defined. On the paper's examples this coarsening changes nothing.

#pragma once

#include <vector>

#include "analysis/alpha_graph.h"

namespace linrec {

/// One augmented bridge.
struct Bridge {
  /// Arc ids (into AlphaGraph::arcs) forming the bridge (never E′ arcs).
  std::vector<int> arcs;
  /// Endpoint variables of the bridge arcs, sorted (may include V′ nodes).
  std::vector<VarId> nodes;
  /// Nonrecursive body atoms owning a static arc of the bridge, sorted.
  std::vector<int> atom_indices;
  /// The augmentation: V′ nodes of the G′ components connected to the
  /// bridge, sorted.
  std::vector<VarId> attached;

  /// True if v is a node or an attached node of this bridge.
  bool ContainsVar(VarId v) const;
};

/// Computes the augmented bridges of `graph` with respect to the subgraph
/// given by node set `vprime` and arc set `in_eprime` (both indexed by
/// id). E′ arcs belong to no bridge; they augment the bridges they connect
/// to.
std::vector<Bridge> ComputeBridges(const AlphaGraph& graph,
                                   const std::vector<bool>& vprime,
                                   const std::vector<bool>& in_eprime);

}  // namespace linrec
