#include "analysis/classify.h"

#include <algorithm>
#include <deque>

#include "common/strings.h"
#include "datalog/traits.h"

namespace linrec {

std::string VarClass::Describe() const {
  if (!distinguished) return "nondistinguished";
  if (persistent) {
    return StrCat(free_persistent ? "free " : "link ", period, "-persistent");
  }
  if (ray_depth >= 1) return StrCat(ray_depth, "-ray general");
  return "general";
}

Result<Classification> Classification::Compute(const LinearRule& rule) {
  LINREC_RETURN_IF_ERROR(ValidateForAnalysis(rule));
  const Rule& r = rule.rule();
  const Atom& head = r.head();
  const Atom& rec = rule.recursive_atom();
  const int nvars = r.var_count();
  const int arity = static_cast<int>(head.arity());

  Classification c;
  c.classes_.assign(static_cast<std::size_t>(nvars), VarClass{});
  c.head_position_.assign(static_cast<std::size_t>(nvars), -1);
  c.head_var_.resize(static_cast<std::size_t>(arity));
  c.recursive_var_.resize(static_cast<std::size_t>(arity));

  for (int p = 0; p < arity; ++p) {
    VarId hv = head.terms[static_cast<std::size_t>(p)].var();
    VarId rv = rec.terms[static_cast<std::size_t>(p)].var();
    c.head_var_[static_cast<std::size_t>(p)] = hv;
    c.recursive_var_[static_cast<std::size_t>(p)] = rv;
    c.head_position_[static_cast<std::size_t>(hv)] = p;
    c.classes_[static_cast<std::size_t>(hv)].distinguished = true;
  }

  // Occurrence counts used for the free/link distinction.
  std::vector<int> nonrec_occurrences(static_cast<std::size_t>(nvars), 0);
  std::vector<int> rec_occurrences(static_cast<std::size_t>(nvars), 0);
  for (int ai : rule.NonRecursiveAtomIndices()) {
    for (const Term& t : r.body()[static_cast<std::size_t>(ai)].terms) {
      ++nonrec_occurrences[static_cast<std::size_t>(t.var())];
    }
  }
  for (const Term& t : rec.terms) {
    ++rec_occurrences[static_cast<std::size_t>(t.var())];
  }

  // Persistence: follow h from each distinguished variable.
  auto h_of = [&](VarId x) -> std::optional<VarId> {
    int p = c.head_position_[static_cast<std::size_t>(x)];
    if (p < 0) return std::nullopt;
    return c.recursive_var_[static_cast<std::size_t>(p)];
  };
  for (int p = 0; p < arity; ++p) {
    VarId x = c.head_var_[static_cast<std::size_t>(p)];
    VarClass& vc = c.classes_[static_cast<std::size_t>(x)];
    if (vc.persistent) continue;  // already classified via another cycle walk
    VarId cur = x;
    for (int step = 1; step <= arity + 1; ++step) {
      std::optional<VarId> next = h_of(cur);
      if (!next.has_value()) break;  // cur nondistinguished: chain ends
      cur = *next;
      if (!c.classes_[static_cast<std::size_t>(cur)].distinguished) break;
      if (cur == x) {
        // Found the cycle {x, h(x), ..., h^{step-1}(x)}.
        std::vector<VarId> cycle;
        VarId w = x;
        for (int i = 0; i < step; ++i) {
          cycle.push_back(w);
          w = *h_of(w);
        }
        bool free_cycle = true;
        for (VarId v : cycle) {
          if (nonrec_occurrences[static_cast<std::size_t>(v)] > 0 ||
              rec_occurrences[static_cast<std::size_t>(v)] != 1) {
            free_cycle = false;
          }
        }
        for (VarId v : cycle) {
          VarClass& cvc = c.classes_[static_cast<std::size_t>(v)];
          cvc.persistent = true;
          cvc.period = step;
          cvc.free_persistent = free_cycle;
        }
        break;
      }
    }
  }

  // Ray depths: BFS from link-persistent variables along dynamic arcs,
  // treated as undirected ("connected ... through a path of dynamic arcs").
  std::vector<std::vector<VarId>> dyn_adj(static_cast<std::size_t>(nvars));
  for (int p = 0; p < arity; ++p) {
    VarId u = c.recursive_var_[static_cast<std::size_t>(p)];
    VarId v = c.head_var_[static_cast<std::size_t>(p)];
    dyn_adj[static_cast<std::size_t>(u)].push_back(v);
    if (u != v) dyn_adj[static_cast<std::size_t>(v)].push_back(u);
  }
  std::vector<int> depth(static_cast<std::size_t>(nvars), -1);
  std::deque<VarId> queue;
  for (VarId v = 0; v < nvars; ++v) {
    if (c.classes_[static_cast<std::size_t>(v)].IsLinkPersistent()) {
      depth[static_cast<std::size_t>(v)] = 0;
      queue.push_back(v);
      c.link_persistent_.push_back(v);
    }
  }
  while (!queue.empty()) {
    VarId v = queue.front();
    queue.pop_front();
    for (VarId w : dyn_adj[static_cast<std::size_t>(v)]) {
      if (depth[static_cast<std::size_t>(w)] < 0) {
        depth[static_cast<std::size_t>(w)] =
            depth[static_cast<std::size_t>(v)] + 1;
        queue.push_back(w);
      }
    }
  }
  for (VarId v = 0; v < nvars; ++v) {
    VarClass& vc = c.classes_[static_cast<std::size_t>(v)];
    if (vc.IsLinkPersistent()) {
      vc.ray_depth = 0;
    } else if (vc.IsGeneral() && depth[static_cast<std::size_t>(v)] >= 1) {
      vc.ray_depth = depth[static_cast<std::size_t>(v)];
    }
  }

  // I = link-persistent ∪ ray (sorted by construction order then sort).
  for (VarId v = 0; v < nvars; ++v) {
    const VarClass& vc = c.classes_[static_cast<std::size_t>(v)];
    if (vc.IsLinkPersistent() || vc.IsRay()) c.i_set_.push_back(v);
  }
  std::sort(c.i_set_.begin(), c.i_set_.end());
  std::sort(c.link_persistent_.begin(), c.link_persistent_.end());
  return c;
}

std::optional<VarId> Classification::H(VarId x) const {
  int p = head_position_[static_cast<std::size_t>(x)];
  if (p < 0) return std::nullopt;
  return recursive_var_[static_cast<std::size_t>(p)];
}

}  // namespace linrec
