#include "analysis/narrow_wide.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace linrec {
namespace {

/// Head positions (sorted) whose consequent variable lies in any of the
/// given augmented bridges.
std::vector<int> BridgeHeadPositions(const RuleAnalysis& analysis,
                                     const std::vector<const Bridge*>& bridges) {
  std::vector<int> positions;
  const int arity = static_cast<int>(analysis.rule().arity());
  for (int p = 0; p < arity; ++p) {
    VarId x = analysis.classes().HeadVarAt(p);
    for (const Bridge* b : bridges) {
      if (b->ContainsVar(x)) {
        positions.push_back(p);
        break;
      }
    }
  }
  return positions;
}

std::set<int> BridgeAtomSet(const std::vector<const Bridge*>& bridges) {
  std::set<int> atoms;
  for (const Bridge* b : bridges) {
    atoms.insert(b->atom_indices.begin(), b->atom_indices.end());
  }
  return atoms;
}

}  // namespace

Result<LinearRule> MakeNarrowRule(const RuleAnalysis& analysis,
                                  const Bridge& bridge) {
  const Rule& r = analysis.rule().rule();
  std::vector<const Bridge*> one{&bridge};
  std::vector<int> positions = BridgeHeadPositions(analysis, one);
  if (positions.empty()) {
    return Status::InvalidArgument(
        "bridge touches no distinguished variable; narrow rule undefined");
  }

  std::vector<std::string> pos_names;
  for (int p : positions) pos_names.push_back(StrCat(p));
  std::string pred = StrCat(r.head().predicate, "#", Join(pos_names, "_"));

  RuleBuilder builder;
  auto var_term = [&](const Term& t) {
    return Term::MakeVar(builder.Var(r.var_name(t.var())));
  };

  std::vector<Term> head_terms;
  std::vector<Term> rec_terms;
  const Atom& rec = analysis.rule().recursive_atom();
  for (int p : positions) {
    head_terms.push_back(var_term(r.head().terms[static_cast<std::size_t>(p)]));
    rec_terms.push_back(var_term(rec.terms[static_cast<std::size_t>(p)]));
  }
  builder.SetHead(pred, std::move(head_terms));
  builder.AddBodyAtom(pred, std::move(rec_terms));
  for (int ai : bridge.atom_indices) {
    const Atom& atom = r.body()[static_cast<std::size_t>(ai)];
    std::vector<Term> terms;
    for (const Term& t : atom.terms) terms.push_back(var_term(t));
    builder.AddBodyAtom(atom.predicate, std::move(terms));
  }
  Result<Rule> built = builder.Build();
  if (!built.ok()) return built.status();
  return LinearRule::Make(std::move(built).value());
}

Result<LinearRule> MakeWideRule(const RuleAnalysis& analysis,
                                const std::vector<const Bridge*>& bridges) {
  const Rule& r = analysis.rule().rule();
  const Atom& rec = analysis.rule().recursive_atom();
  std::vector<int> positions = BridgeHeadPositions(analysis, bridges);
  std::set<int> atom_set = BridgeAtomSet(bridges);

  RuleBuilder builder;
  auto var_term = [&](const Term& t) {
    return Term::MakeVar(builder.Var(r.var_name(t.var())));
  };

  std::vector<Term> head_terms;
  for (const Term& t : r.head().terms) head_terms.push_back(var_term(t));
  builder.SetHead(r.head().predicate, head_terms);

  std::vector<Term> rec_terms;
  const int arity = static_cast<int>(analysis.rule().arity());
  for (int p = 0; p < arity; ++p) {
    bool in_bridge = std::binary_search(positions.begin(), positions.end(), p);
    rec_terms.push_back(in_bridge
                            ? var_term(rec.terms[static_cast<std::size_t>(p)])
                            : head_terms[static_cast<std::size_t>(p)]);
  }
  builder.AddBodyAtom(r.head().predicate, std::move(rec_terms));
  for (int ai : atom_set) {
    const Atom& atom = r.body()[static_cast<std::size_t>(ai)];
    std::vector<Term> terms;
    for (const Term& t : atom.terms) terms.push_back(var_term(t));
    builder.AddBodyAtom(atom.predicate, std::move(terms));
  }
  Result<Rule> built = builder.Build();
  if (!built.ok()) return built.status();
  return LinearRule::Make(std::move(built).value());
}

Result<LinearRule> MakeWideRule(const RuleAnalysis& analysis,
                                const Bridge& bridge) {
  return MakeWideRule(analysis, std::vector<const Bridge*>{&bridge});
}

Result<LinearRule> MakeComplementRule(
    const RuleAnalysis& analysis, const std::vector<const Bridge*>& bridges) {
  const Rule& r = analysis.rule().rule();
  const Atom& rec = analysis.rule().recursive_atom();
  std::vector<int> positions = BridgeHeadPositions(analysis, bridges);
  std::set<int> atom_set = BridgeAtomSet(bridges);

  RuleBuilder builder;
  auto var_term = [&](const Term& t) {
    return Term::MakeVar(builder.Var(r.var_name(t.var())));
  };

  std::vector<Term> head_terms;
  for (const Term& t : r.head().terms) head_terms.push_back(var_term(t));
  builder.SetHead(r.head().predicate, head_terms);

  std::vector<Term> rec_terms;
  const int arity = static_cast<int>(analysis.rule().arity());
  for (int p = 0; p < arity; ++p) {
    bool in_bridge = std::binary_search(positions.begin(), positions.end(), p);
    rec_terms.push_back(in_bridge
                            ? head_terms[static_cast<std::size_t>(p)]
                            : var_term(rec.terms[static_cast<std::size_t>(p)]));
  }
  builder.AddBodyAtom(r.head().predicate, std::move(rec_terms));
  for (int ai : analysis.rule().NonRecursiveAtomIndices()) {
    if (atom_set.count(ai) > 0) continue;
    const Atom& atom = r.body()[static_cast<std::size_t>(ai)];
    std::vector<Term> terms;
    for (const Term& t : atom.terms) terms.push_back(var_term(t));
    builder.AddBodyAtom(atom.predicate, std::move(terms));
  }
  Result<Rule> built = builder.Build();
  if (!built.ok()) return built.status();
  return LinearRule::Make(std::move(built).value());
}

}  // namespace linrec
