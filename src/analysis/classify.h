// Classification of the variables of a linear rule (Section 5.1 and 6.2):
// free/link n-persistent, general, and n-ray, via the h function.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// The class of one variable.
struct VarClass {
  bool distinguished = false;
  /// x is n-persistent when h cycles back: hⁿ(x) = x through distinguished
  /// variables; `period` is that n (0 when not persistent).
  bool persistent = false;
  int period = 0;
  /// A persistent variable is *free* when no variable of its cycle appears
  /// anywhere in the rule beyond the cycle's own head/recursive-atom
  /// positions; otherwise it is *link* persistent.
  bool free_persistent = false;
  /// Link-persistent variables carry 0; an n-ray general variable carries n
  /// (shortest dynamic-arc path to a link-persistent variable); -1 otherwise.
  int ray_depth = -1;

  bool IsGeneral() const { return distinguished && !persistent; }
  bool IsFreePersistent() const { return persistent && free_persistent; }
  bool IsLinkPersistent() const { return persistent && !free_persistent; }
  bool IsFree1Persistent() const { return IsFreePersistent() && period == 1; }
  bool IsLink1Persistent() const { return IsLinkPersistent() && period == 1; }
  bool IsRay() const { return IsGeneral() && ray_depth >= 1; }

  /// Short description such as "free 2-persistent", "link 1-persistent",
  /// "general", "1-ray general", "nondistinguished".
  std::string Describe() const;
};

/// The h function of a rule plus per-variable classes.
class Classification {
 public:
  /// Requires ValidateForAnalysis(rule).
  static Result<Classification> Compute(const LinearRule& rule);

  const VarClass& Of(VarId v) const {
    return classes_[static_cast<std::size_t>(v)];
  }

  /// Head position of a distinguished variable (unique; -1 otherwise).
  int HeadPositionOf(VarId v) const {
    return head_position_[static_cast<std::size_t>(v)];
  }
  /// The variable at head position p (head variables are distinct).
  VarId HeadVarAt(int p) const {
    return head_var_[static_cast<std::size_t>(p)];
  }

  /// h(x): the variable at x's head position in the recursive atom.
  /// Defined exactly for distinguished x.
  std::optional<VarId> H(VarId x) const;

  /// All link-persistent variables (any period), sorted.
  const std::vector<VarId>& link_persistent_vars() const {
    return link_persistent_;
  }
  /// I = link-persistent ∪ ray variables (Section 6.2), sorted.
  const std::vector<VarId>& i_set() const { return i_set_; }

  int var_count() const { return static_cast<int>(classes_.size()); }

 private:
  std::vector<VarClass> classes_;
  std::vector<int> head_position_;
  std::vector<VarId> head_var_;
  std::vector<VarId> recursive_var_;  // per head position: antecedent var
  std::vector<VarId> link_persistent_;
  std::vector<VarId> i_set_;
};

}  // namespace linrec
