// Homomorphisms between conjunctive queries (Section 5 preamble).
//
// A homomorphism f: r → s maps the variables of r to terms of s such that
// (i) f fixes the head positionally (distinguished variables map onto s's
// head terms) and (ii) every body atom of r maps to a body atom of s.
// By Chandra–Merlin, s ≤ r (containment of the defined queries) iff a
// homomorphism r → s exists. The general problem is NP-complete; the finder
// here uses backtracking over body atoms ordered by candidate count.

#pragma once

#include <optional>
#include <unordered_map>

#include "datalog/rule.h"

namespace linrec {

/// Mapping from variables of the source rule to terms of the target rule.
using VarMapping = std::unordered_map<VarId, Term>;

/// Finds a homomorphism from `from` to `to`, or nullopt if none exists.
/// Requires from.head and to.head to have the same predicate and arity
/// (returns nullopt otherwise).
std::optional<VarMapping> FindHomomorphism(const Rule& from, const Rule& to);

/// s ≤ r: on every database, s's output is a subset of r's output.
bool IsContainedIn(const Rule& s, const Rule& r);

/// s ≡ r: containment in both directions.
bool AreEquivalent(const Rule& a, const Rule& b);
bool AreEquivalent(const LinearRule& a, const LinearRule& b);

/// r ≤ ∪_i sum[i]. For conjunctive queries, containment in a union holds
/// iff containment in a single member holds (Sagiv–Yannakakis), so this is
/// a disjunction of pairwise tests.
bool ContainedInUnion(const Rule& r, const std::vector<Rule>& sum);

/// Union equivalence: each member of one side contained in the other side.
bool UnionsEquivalent(const std::vector<Rule>& a, const std::vector<Rule>& b);

}  // namespace linrec
