// Minimization of conjunctive queries (unique minimal form / core).
//
// The proof of Theorem 5.1 assumes rules are in their unique minimal form
// [Chandra–Merlin]; composition and powers can introduce redundant atoms
// that minimization removes.

#pragma once

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// Removes syntactically identical duplicate body atoms (cheap pre-pass).
Rule DeduplicateBodyAtoms(const Rule& rule);

/// Returns an equivalent rule with a minimal body (the core): repeatedly
/// drops a body atom when a homomorphism from the rule onto the reduced rule
/// exists. The result is unique up to isomorphism.
Rule MinimizeRule(const Rule& rule);

/// Minimizes while preserving linearity (never drops the recursive atom;
/// with set semantics a homomorphism collapsing P_I away would change the
/// operator, so the recursive atom is pinned).
Result<LinearRule> MinimizeLinearRule(const LinearRule& rule);

}  // namespace linrec
