#include "cq/homomorphism.h"

#include <algorithm>
#include <vector>

namespace linrec {
namespace {

/// Backtracking state for the homomorphism search.
class HomSearch {
 public:
  HomSearch(const Rule& from, const Rule& to) : from_(from), to_(to) {
    mapping_.assign(static_cast<std::size_t>(from.var_count()), std::nullopt);
  }

  std::optional<VarMapping> Run() {
    if (from_.head().predicate != to_.head().predicate ||
        from_.head().arity() != to_.head().arity()) {
      return std::nullopt;
    }
    // Seed the mapping from the head: f(head_from) must equal head_to
    // positionally.
    for (std::size_t i = 0; i < from_.head().terms.size(); ++i) {
      if (!Assign(from_.head().terms[i], to_.head().terms[i])) {
        return std::nullopt;
      }
    }

    // Candidate targets per source atom.
    const std::vector<Atom>& to_body = to_.body();
    atoms_.clear();
    for (const Atom& atom : from_.body()) {
      std::vector<const Atom*> candidates;
      for (const Atom& target : to_body) {
        if (target.predicate == atom.predicate &&
            target.arity() == atom.arity()) {
          candidates.push_back(&target);
        }
      }
      if (candidates.empty()) return std::nullopt;
      atoms_.push_back({&atom, std::move(candidates)});
    }
    // Most-constrained-first: fewest candidates first.
    std::stable_sort(atoms_.begin(), atoms_.end(),
                     [](const SourceAtom& a, const SourceAtom& b) {
                       return a.candidates.size() < b.candidates.size();
                     });

    if (!Extend(0)) return std::nullopt;

    VarMapping result;
    for (VarId v = 0; v < from_.var_count(); ++v) {
      if (mapping_[static_cast<std::size_t>(v)].has_value()) {
        result.emplace(v, *mapping_[static_cast<std::size_t>(v)]);
      }
    }
    return result;
  }

 private:
  struct SourceAtom {
    const Atom* atom;
    std::vector<const Atom*> candidates;
  };

  /// Attempts f(source_term) = target_term; records new variable bindings in
  /// trail_ so they can be undone.
  bool Assign(const Term& source, const Term& target) {
    if (source.is_const()) {
      return target.is_const() && source.constant() == target.constant();
    }
    auto& slot = mapping_[static_cast<std::size_t>(source.var())];
    if (slot.has_value()) return *slot == target;
    slot = target;
    trail_.push_back(source.var());
    return true;
  }

  void UndoTo(std::size_t mark) {
    while (trail_.size() > mark) {
      mapping_[static_cast<std::size_t>(trail_.back())] = std::nullopt;
      trail_.pop_back();
    }
  }

  bool Extend(std::size_t depth) {
    if (depth == atoms_.size()) return true;
    const SourceAtom& sa = atoms_[depth];
    for (const Atom* target : sa.candidates) {
      std::size_t mark = trail_.size();
      bool ok = true;
      for (std::size_t i = 0; i < sa.atom->terms.size(); ++i) {
        if (!Assign(sa.atom->terms[i], target->terms[i])) {
          ok = false;
          break;
        }
      }
      if (ok && Extend(depth + 1)) return true;
      UndoTo(mark);
    }
    return false;
  }

  const Rule& from_;
  const Rule& to_;
  std::vector<std::optional<Term>> mapping_;
  std::vector<VarId> trail_;
  std::vector<SourceAtom> atoms_;
};

}  // namespace

std::optional<VarMapping> FindHomomorphism(const Rule& from, const Rule& to) {
  HomSearch search(from, to);
  return search.Run();
}

bool IsContainedIn(const Rule& s, const Rule& r) {
  return FindHomomorphism(r, s).has_value();
}

bool AreEquivalent(const Rule& a, const Rule& b) {
  return IsContainedIn(a, b) && IsContainedIn(b, a);
}

bool AreEquivalent(const LinearRule& a, const LinearRule& b) {
  return AreEquivalent(a.rule(), b.rule());
}

bool ContainedInUnion(const Rule& r, const std::vector<Rule>& sum) {
  for (const Rule& s : sum) {
    if (IsContainedIn(r, s)) return true;
  }
  return false;
}

bool UnionsEquivalent(const std::vector<Rule>& a, const std::vector<Rule>& b) {
  for (const Rule& r : a) {
    if (!ContainedInUnion(r, b)) return false;
  }
  for (const Rule& r : b) {
    if (!ContainedInUnion(r, a)) return false;
  }
  return true;
}

}  // namespace linrec
