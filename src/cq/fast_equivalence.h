// O(a log a) equivalence for the restricted class (Lemma 5.4).
//
// For range-restricted rules with no repeated head variables and no repeated
// nonrecursive predicate symbols, equivalence implies isomorphism, and the
// only candidate isomorphism is forced: each body atom must map onto the
// unique atom with the same predicate. Checking that forced alignment is a
// consistent bijection decides equivalence.

#pragma once

#include <optional>

#include "datalog/rule.h"

namespace linrec {

/// Decides equivalence when both rules have pairwise-distinct body predicate
/// symbols (the recursive atom counts as one symbol). Returns nullopt when
/// that precondition fails — callers fall back to the homomorphism test.
std::optional<bool> FastEquivalenceDistinctPredicates(const Rule& a,
                                                      const Rule& b);

}  // namespace linrec
