// Rule composition and powers (Section 5 preamble).
//
// The composite r1·r2 resolves the consequent of r2 with the recursive
// literal in the antecedent of r1; as operators, (r1·r2)P = r1(r2(P)).
// The composite of a rule with itself n times is the power rⁿ.

#pragma once

#include "common/status.h"
#include "datalog/rule.h"

namespace linrec {

/// Composes two linear rules over the same recursive predicate/arity.
/// Requires r2's head to be a distinct-variable atom (the resolution is then
/// a substitution). The result is linear with r1's head.
Result<LinearRule> Compose(const LinearRule& r1, const LinearRule& r2);

/// rⁿ for n ≥ 1 (r¹ = r). Duplicate body atoms introduced by composition
/// are removed syntactically; set `minimize` to also compute the core after
/// each composition (slower, smaller composites).
Result<LinearRule> Power(const LinearRule& r, int n, bool minimize = false);

}  // namespace linrec
