#include "cq/compose.h"

#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "cq/minimize.h"

namespace linrec {

Result<LinearRule> Compose(const LinearRule& r1, const LinearRule& r2) {
  if (r1.head().predicate != r2.head().predicate ||
      r1.arity() != r2.arity()) {
    return Status::InvalidArgument(
        StrCat("cannot compose rules over different recursive predicates: '",
               r1.head().predicate, "'/", r1.arity(), " vs '",
               r2.head().predicate, "'/", r2.arity()));
  }
  // r2's head must be a distinct-variable atom so that unifying it with
  // r1's recursive literal is a substitution on r2's variables.
  std::unordered_set<VarId> seen;
  for (const Term& t : r2.head().terms) {
    if (!t.is_var()) {
      return Status::InvalidArgument(
          "composition requires a constant-free head in the inner rule");
    }
    if (!seen.insert(t.var()).second) {
      return Status::InvalidArgument(
          "composition requires distinct head variables in the inner rule; "
          "normalize repeated head variables first");
    }
  }

  const Rule& rule1 = r1.rule();
  const Rule& rule2 = r2.rule();

  RuleBuilder builder;
  // Copy r1's variables verbatim.
  std::vector<VarId> copy1(static_cast<std::size_t>(rule1.var_count()));
  for (VarId v = 0; v < rule1.var_count(); ++v) {
    copy1[static_cast<std::size_t>(v)] = builder.Var(rule1.var_name(v));
  }
  auto map1 = [&](const Term& t) -> Term {
    return t.is_var() ? Term::MakeVar(copy1[static_cast<std::size_t>(t.var())])
                      : t;
  };

  // Substitution for r2: head var at position j ↦ r1's recursive-atom term
  // at position j; other (nondistinguished) vars ↦ fresh.
  std::unordered_map<VarId, Term> subst;
  const Atom& rec1 = r1.recursive_atom();
  for (std::size_t j = 0; j < rule2.head().terms.size(); ++j) {
    subst.emplace(rule2.head().terms[j].var(), map1(rec1.terms[j]));
  }
  auto map2 = [&](const Term& t) -> Term {
    if (t.is_const()) return t;
    auto it = subst.find(t.var());
    if (it != subst.end()) return it->second;
    Term fresh = Term::MakeVar(builder.FreshVar(rule2.var_name(t.var())));
    subst.emplace(t.var(), fresh);
    return fresh;
  };

  // Head of the composite = head of r1.
  std::vector<Term> head_terms;
  for (const Term& t : rule1.head().terms) head_terms.push_back(map1(t));
  builder.SetHead(rule1.head().predicate, std::move(head_terms));

  // Body: r1's nonrecursive atoms, then r2's body (mapped). r2's recursive
  // atom becomes the recursive atom of the composite.
  for (int i : r1.NonRecursiveAtomIndices()) {
    const Atom& atom = rule1.body()[static_cast<std::size_t>(i)];
    std::vector<Term> terms;
    for (const Term& t : atom.terms) terms.push_back(map1(t));
    builder.AddBodyAtom(atom.predicate, std::move(terms));
  }
  for (const Atom& atom : rule2.body()) {
    std::vector<Term> terms;
    for (const Term& t : atom.terms) terms.push_back(map2(t));
    builder.AddBodyAtom(atom.predicate, std::move(terms));
  }

  Result<Rule> built = builder.Build();
  if (!built.ok()) return built.status();
  return LinearRule::Make(DeduplicateBodyAtoms(std::move(built).value()));
}

Result<LinearRule> Power(const LinearRule& r, int n, bool minimize) {
  if (n < 1) {
    return Status::InvalidArgument(
        StrCat("Power requires n >= 1, got ", n,
               " (the identity operator is not a rule)"));
  }
  LinearRule acc = r;
  for (int i = 2; i <= n; ++i) {
    Result<LinearRule> next = Compose(acc, r);
    if (!next.ok()) return next.status();
    acc = std::move(next).value();
    if (minimize) {
      Result<LinearRule> reduced = MinimizeLinearRule(acc);
      if (!reduced.ok()) return reduced.status();
      acc = std::move(reduced).value();
    }
  }
  return acc;
}

}  // namespace linrec
