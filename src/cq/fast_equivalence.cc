#include "cq/fast_equivalence.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

namespace linrec {
namespace {

/// Maps predicate name to its unique body atom; nullopt if repeats exist.
std::optional<std::map<std::string, const Atom*>> AtomIndex(const Rule& r) {
  std::map<std::string, const Atom*> index;
  for (const Atom& atom : r.body()) {
    if (!index.emplace(atom.predicate, &atom).second) return std::nullopt;
  }
  return index;
}

}  // namespace

std::optional<bool> FastEquivalenceDistinctPredicates(const Rule& a,
                                                      const Rule& b) {
  auto index_a = AtomIndex(a);
  auto index_b = AtomIndex(b);
  if (!index_a.has_value() || !index_b.has_value()) return std::nullopt;

  if (a.head().predicate != b.head().predicate ||
      a.head().arity() != b.head().arity()) {
    return false;
  }
  if (index_a->size() != index_b->size()) return false;
  for (const auto& [pred, atom] : *index_a) {
    auto it = index_b->find(pred);
    if (it == index_b->end() || it->second->arity() != atom->arity()) {
      return false;
    }
  }

  // Forced alignment f: vars(a) → vars(b), seeded by the head, extended
  // positionally through every atom pair.
  std::unordered_map<VarId, VarId> f;
  std::unordered_set<VarId> image;
  auto align = [&](const Term& ta, const Term& tb) -> bool {
    if (ta.is_const() || tb.is_const()) {
      return ta.is_const() && tb.is_const() &&
             ta.constant() == tb.constant();
    }
    auto [it, inserted] = f.emplace(ta.var(), tb.var());
    if (!inserted) return it->second == tb.var();
    // Injectivity: two a-vars must not map to one b-var.
    return image.insert(tb.var()).second;
  };

  for (std::size_t i = 0; i < a.head().terms.size(); ++i) {
    if (!align(a.head().terms[i], b.head().terms[i])) return false;
  }
  for (const auto& [pred, atom_a] : *index_a) {
    const Atom* atom_b = index_b->at(pred);
    for (std::size_t i = 0; i < atom_a->terms.size(); ++i) {
      if (!align(atom_a->terms[i], atom_b->terms[i])) return false;
    }
  }
  // Surjectivity onto b's appearing variables.
  std::unordered_set<VarId> b_vars;
  for (const Term& t : b.head().terms) {
    if (t.is_var()) b_vars.insert(t.var());
  }
  for (const Atom& atom : b.body()) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) b_vars.insert(t.var());
    }
  }
  for (VarId v : b_vars) {
    if (image.count(v) == 0) return false;
  }
  return true;
}

}  // namespace linrec
