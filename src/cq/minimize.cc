#include "cq/minimize.h"

#include <unordered_set>

#include "cq/homomorphism.h"

namespace linrec {
namespace {

/// Rebuilds `rule` keeping only body atoms whose index passes `keep`.
Rule WithBody(const Rule& rule, const std::vector<Atom>& body) {
  return Rule(rule.head(), body, rule.var_names());
}

}  // namespace

Rule DeduplicateBodyAtoms(const Rule& rule) {
  std::vector<Atom> body;
  for (const Atom& atom : rule.body()) {
    bool seen = false;
    for (const Atom& kept : body) {
      if (kept == atom) {
        seen = true;
        break;
      }
    }
    if (!seen) body.push_back(atom);
  }
  return WithBody(rule, body);
}

Rule MinimizeRule(const Rule& rule) {
  Rule current = DeduplicateBodyAtoms(rule);
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<Atom>& body = current.body();
    for (std::size_t i = 0; i < body.size(); ++i) {
      std::vector<Atom> reduced;
      reduced.reserve(body.size() - 1);
      for (std::size_t j = 0; j < body.size(); ++j) {
        if (j != i) reduced.push_back(body[j]);
      }
      Rule candidate = WithBody(current, reduced);
      // candidate ⊇ current always (fewer constraints); equivalent iff
      // candidate ≤ current, i.e. a homomorphism current → candidate exists.
      if (FindHomomorphism(current, candidate).has_value()) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

Result<LinearRule> MinimizeLinearRule(const LinearRule& rule) {
  Rule current = DeduplicateBodyAtoms(rule.rule());
  const std::string& pred = current.head().predicate;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<Atom>& body = current.body();
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (body[i].predicate == pred) continue;  // pin the recursive atom
      std::vector<Atom> reduced;
      reduced.reserve(body.size() - 1);
      for (std::size_t j = 0; j < body.size(); ++j) {
        if (j != i) reduced.push_back(body[j]);
      }
      Rule candidate(current.head(), reduced, current.var_names());
      if (FindHomomorphism(current, candidate).has_value()) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return LinearRule::Make(std::move(current));
}

}  // namespace linrec
