// Strategy tags for the execution plans compiled by Engine::Plan.
//
// Each tag names one of the paper's evaluation strategies; the planner
// chooses among them from the rules' cached analysis (engine/engine.h).

#pragma once

namespace linrec {

enum class Strategy {
  /// Naive fixpoint: re-apply every operator to the full relation each
  /// round. Baseline only; never chosen automatically.
  kNaive,
  /// Semi-naive Δ-driven fixpoint [Bancilhon 85] — the default.
  kSemiNaive,
  /// Commuting-group product G_1* G_2* ... G_k* (Theorem 3.1).
  kDecomposed,
  /// Selection pushed through a commuting split: σ(A+B)* = A*(σ(B* q))
  /// (Theorem 4.1 / Algorithm 4.1).
  kSeparable,
  /// Uniformly bounded operator: A* = Σ_{m<N} A^m (Section 4.2).
  kPowerSum,
  /// Joint multi-relation semi-naive fixpoint over one strongly connected
  /// predicate component (stratified linear mutual recursion; eval/joint.h).
  kJointSemiNaive,
};

inline const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kSemiNaive:
      return "semi-naive";
    case Strategy::kDecomposed:
      return "decomposed";
    case Strategy::kSeparable:
      return "separable";
    case Strategy::kPowerSum:
      return "power-sum";
    case Strategy::kJointSemiNaive:
      return "joint-semi-naive";
  }
  return "unknown";
}

}  // namespace linrec
