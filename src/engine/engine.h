// linrec::Engine — the unified entry point for closure evaluation.
//
// The engine owns a Database, memoizes per-rule analysis (variable
// classes, pairwise commutativity, redundancy bridges, boundedness) in an
// AnalysisCache, and compiles Query descriptions into explainable
// ExecutionPlans. *Analysis chooses the strategy*: commutativity licenses
// the decomposed product (Theorem 3.1), selection-commutativity licenses
// the separable algorithm (Theorem 4.1), uniform boundedness licenses the
// power-sum short-circuit (Section 4.2), and a bounded redundancy bridge
// licenses eliding the redundant predicate (Theorems 6.3/6.4). Callers
// state the query; the planner applies the theorems.
//
//   Engine engine(std::move(db));
//   auto plan = engine.Plan(Query::Closure({r1, r2}).Select(sigma).From(q));
//   std::cout << plan->Explain();          // strategy + theorem citations
//   auto result = engine.Execute(*plan);   // shared IndexCache + stats
//
// The pre-engine free functions (SemiNaiveClosure, DecomposedClosure,
// SeparableClosure, ...) remain available as direct entry points; the
// engine is the recommended API.

#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/plan.h"
#include "engine/query.h"
#include "engine/rule_info.h"
#include "eval/index_cache.h"
#include "eval/stats.h"
#include "storage/database.h"

namespace linrec {

struct EngineOptions {
  /// Budget for the torsion / uniform-boundedness searches behind
  /// kPowerSum and redundancy elision (0 disables both analyses).
  int analysis_max_power = 6;
  /// Individual strategy gates (all on by default). Disabling one makes
  /// the planner fall back to the next applicable strategy.
  bool enable_decomposition = true;
  bool enable_separable = true;
  bool enable_power_sum = true;
  bool enable_redundancy_elision = true;
  /// Worker count applied to EVERY strategy (common/parallel.h rule:
  /// 0 = one lane per hardware thread, 1 = serial). kDecomposed spends it
  /// on parallel group closures first; every semi-naive/power-sum round —
  /// including the single-group case no decomposition can touch — splits
  /// its Δ into work-stealing chunks with thread-local output pools and a
  /// sharded merge (eval/fixpoint.h).
  int parallel_workers = 0;
  /// Memoize compiled plans keyed on (rule-set digest, σ, forced strategy)
  /// so repeated queries skip analysis and planning entirely.
  bool enable_plan_cache = true;
  /// Entry bound for the plan cache: at capacity the oldest entry is
  /// evicted (FIFO) before the next insert, so a long-lived engine serving
  /// unboundedly diverse queries stays bounded while hot plans survive —
  /// earlier versions dropped the whole cache, cold-starting every hot
  /// plan. 0 disables caching entirely.
  std::size_t plan_cache_capacity = 1024;
};

class Engine {
 public:
  Engine() : Engine(Database{}, EngineOptions{}) {}
  explicit Engine(Database db, EngineOptions options = {})
      : db_(std::move(db)),
        options_(options),
        analysis_(options.analysis_max_power) {}

  Database& db() { return db_; }
  const Database& db() const { return db_; }
  const EngineOptions& options() const { return options_; }

  /// Memoized structural analysis of one rule (pointer valid while the
  /// engine lives).
  Result<const RuleInfo*> Analyze(const LinearRule& rule);
  /// Memoized combined-oracle commutativity verdict.
  Result<CommutativityReport> Commutes(const LinearRule& r1,
                                       const LinearRule& r2);

  /// Compiles `query` into an ExecutionPlan, choosing the strategy from
  /// the cached analysis (or honoring Query::Force after checking its
  /// preconditions).
  Result<ExecutionPlan> Plan(const Query& query);

  /// Runs `plan` against the engine's database. Stats accumulate into
  /// stats(); indexes over parameter relations are shared across calls.
  /// Joint plans (Strategy::kJointSemiNaive) produce one relation per
  /// member and must go through ExecuteJoint.
  Result<Relation> Execute(const ExecutionPlan& plan);

  /// Plan + Execute in one step.
  Result<Relation> Execute(const Query& query);

  /// Runs a joint plan (from a Query::JointClosure), returning the closed
  /// member relations in member order. Stats and the shared IndexCache
  /// behave exactly as in Execute.
  Result<std::vector<Relation>> ExecuteJoint(const ExecutionPlan& plan);

  /// Plan + ExecuteJoint in one step.
  Result<std::vector<Relation>> ExecuteJoint(const Query& query);

  /// Aggregated ClosureStats over every Execute call since ResetStats.
  const ClosureStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ClosureStats{}; }

  IndexCache& index_cache() { return cache_; }
  const AnalysisCache& analysis_cache() const { return analysis_; }

  /// Plan-cache observability: queries answered from the cache vs planned
  /// from scratch (hits + misses == Plan() calls while the cache is on).
  std::size_t plan_cache_hits() const { return plan_cache_hits_; }
  std::size_t plan_cache_misses() const { return plan_cache_misses_; }
  std::size_t plan_cache_size() const { return plan_cache_.size(); }

 private:
  /// Fills groups via union-find over the memoized non-commuting pairs,
  /// appending per-pair verdicts to the plan's justification.
  Status ComputeGroups(ExecutionPlan* plan);
  /// Attempts the Theorem 4.1 split; true iff the plan was made separable.
  Result<bool> TrySeparable(ExecutionPlan* plan);
  /// Picks kPowerSum / redundancy elision / kSemiNaive for the rule sum.
  Status ChooseClosureStrategy(ExecutionPlan* plan);
  Status PlanSingleRule(ExecutionPlan* plan);
  Status PlanForced(Strategy forced, ExecutionPlan* plan);
  /// Drops cached indexes over an execution's temporaries (Δs, seeds):
  /// only the engine's own parameter relations are worth keeping across
  /// queries, and dead addresses would otherwise accumulate for the
  /// engine's lifetime.
  void EvictTemporaryIndexes();

  Database db_;
  EngineOptions options_;
  AnalysisCache analysis_;
  IndexCache cache_;
  ClosureStats stats_;
  /// Compiled plans keyed on the query digest, stored seedless (the seed is
  /// re-attached per query, so caching never pins a caller's relation).
  std::unordered_map<std::string, ExecutionPlan> plan_cache_;
  /// Digests in insertion order; at capacity the front (oldest entry) is
  /// evicted, one entry per insert.
  std::deque<std::string> plan_cache_order_;
  std::size_t plan_cache_hits_ = 0;
  std::size_t plan_cache_misses_ = 0;
};

}  // namespace linrec
