// linrec::Engine — the unified entry point for closure evaluation.
//
// The engine owns a Database, memoizes per-rule analysis (variable
// classes, pairwise commutativity, redundancy bridges, boundedness) in an
// AnalysisCache, and compiles Query descriptions into explainable
// ExecutionPlans. *Analysis chooses the strategy*: commutativity licenses
// the decomposed product (Theorem 3.1), selection-commutativity licenses
// the separable algorithm (Theorem 4.1), uniform boundedness licenses the
// power-sum short-circuit (Section 4.2), and a bounded redundancy bridge
// licenses eliding the redundant predicate (Theorems 6.3/6.4). Callers
// state the query; the planner applies the theorems.
//
// The execution API is built around *prepared* queries — compile once,
// bind and run many times (engine/prepared.h):
//
//   Engine engine(std::move(db));
//   auto prepared = engine.Prepare(
//       Query::Closure({r1, r2}).SelectPosition(0));  // σ is a parameter
//   std::cout << prepared->plan().Explain();  // strategy + theorem citations
//   auto result = engine.Execute(prepared->Bind(v).BindSeed(q));
//   // result->relation(), result->stats — and N bindings can run
//   // concurrently on the worker pool:
//   //   engine.ExecuteBatch({prepared->Bind(v1).BindSeed(q),
//   //                        prepared->Bind(v2).BindSeed(q)});
//
// Plans are cached on query *structure* (rules, σ position, forced
// strategy — never the σ value or the seed), so sweeping selection
// constants over one prepared query plans exactly once.
//
// The pre-engine free functions (SemiNaiveClosure, DecomposedClosure,
// SeparableClosure, ...) remain available as direct entry points; the
// engine is the recommended API.

#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/plan.h"
#include "engine/prepared.h"
#include "engine/query.h"
#include "engine/rule_info.h"
#include "eval/index_cache.h"
#include "eval/stats.h"
#include "ivm/view.h"
#include "storage/database.h"

namespace linrec {

struct EngineOptions {
  /// Budget for the torsion / uniform-boundedness searches behind
  /// kPowerSum and redundancy elision (0 disables both analyses).
  int analysis_max_power = 6;
  /// Individual strategy gates (all on by default). Disabling one makes
  /// the planner fall back to the next applicable strategy.
  bool enable_decomposition = true;
  bool enable_separable = true;
  bool enable_power_sum = true;
  bool enable_redundancy_elision = true;
  /// Worker count applied to EVERY strategy (common/parallel.h rule:
  /// 0 = one lane per hardware thread, 1 = serial). kDecomposed spends it
  /// on parallel group closures first; every semi-naive/power-sum round —
  /// including the single-group case no decomposition can touch — splits
  /// its Δ into work-stealing chunks with thread-local output pools and a
  /// sharded merge (eval/fixpoint.h).
  int parallel_workers = 0;
  /// Memoize compiled plans keyed on (rule-set digest, σ, forced strategy)
  /// so repeated queries skip analysis and planning entirely.
  bool enable_plan_cache = true;
  /// Entry bound for the plan cache: at capacity the oldest entry is
  /// evicted (FIFO) before the next insert, so a long-lived engine serving
  /// unboundedly diverse queries stays bounded while hot plans survive —
  /// earlier versions dropped the whole cache, cold-starting every hot
  /// plan. 0 disables caching entirely.
  std::size_t plan_cache_capacity = 1024;
};

class Engine {
 public:
  Engine() : Engine(Database{}, EngineOptions{}) {}
  explicit Engine(Database db, EngineOptions options = {})
      : db_(std::move(db)),
        options_(options),
        analysis_(options.analysis_max_power) {}

  Database& db() { return db_; }
  const Database& db() const { return db_; }
  const EngineOptions& options() const { return options_; }

  /// Memoized structural analysis of one rule (pointer valid while the
  /// engine lives).
  Result<const RuleInfo*> Analyze(const LinearRule& rule);
  /// Memoized combined-oracle commutativity verdict.
  Result<CommutativityReport> Commutes(const LinearRule& r1,
                                       const LinearRule& r2);

  /// Compiles `query` into an ExecutionPlan, choosing the strategy from
  /// the cached analysis (or honoring Query::Force after checking its
  /// preconditions).
  Result<ExecutionPlan> Plan(const Query& query);

  /// Compiles `query`'s structure into a reusable PreparedQuery: a
  /// seedless, σ-parameterized plan (the cache digest covers rules, σ
  /// position and forced strategy — not the σ value, not the seed).
  /// Bind(value)/BindSeed stamp out per-execution BoundQuery handles; one
  /// Prepare followed by N binds performs exactly one planning pass.
  /// Queries with Select(σ) prepare with that value as the Bind() default;
  /// queries with SelectPosition(p) must Bind(value) per execution.
  Result<PreparedQuery> Prepare(const Query& query);

  /// Runs one bound query, returning its relations (one, or one per joint
  /// member) and this execution's own ClosureStats. Also accumulates into
  /// stats(); indexes over parameter relations are shared across calls.
  Result<QueryResult> Execute(const BoundQuery& bound);

  /// Runs independent bound queries concurrently on the shared worker pool
  /// (EngineOptions::parallel_workers lanes, capped at the batch size; the
  /// queries themselves run their rounds serially — batch-level
  /// parallelism replaces intra-round parallelism here). All queries share
  /// one read-side IndexCache, so an index over a parameter relation is
  /// built once for the whole batch; per-query temporaries (Δs, seeds) use
  /// isolated private caches, and temporary-index eviction is deferred to
  /// batch end. Results are positionally aligned with `batch` and
  /// identical to executing each bound query sequentially, for every
  /// worker count. Stats accumulate into stats() in batch order. The
  /// first failing query fails the whole batch (Validate failures fail it
  /// before any work starts); callers needing per-slot outcomes use
  /// ExecuteBatchEach.
  Result<std::vector<QueryResult>> ExecuteBatch(
      const std::vector<BoundQuery>& batch);

  /// ExecuteBatch with per-slot outcomes: every slot runs to its own
  /// Result, so one failing (or deadline-expired) query never voids its
  /// neighbours' work. Scheduling, caching and determinism are identical
  /// to ExecuteBatch; stats accumulate into stats() for the successful
  /// slots, in batch order. This is the serving path: a batch of client
  /// queries with per-query cancellation tokens
  /// (BoundQuery::WithCancellation) degrades per query, not per batch.
  std::vector<Result<QueryResult>> ExecuteBatchEach(
      const std::vector<BoundQuery>& batch);

  /// Runs `bound` once and installs its result relations into the
  /// engine's database under `names` (one per member; a single-predicate
  /// query takes exactly one name), returning the MaterializedView
  /// handle that Apply/Retract maintain in place. Plans carrying a
  /// selection are rejected — a σ-filtered view is not closed under the
  /// rules, so it cannot be extended tuple-at-a-time. A non-null `stats`
  /// receives the materializing execution's own ClosureStats. Defined in
  /// ivm/maintain.cc with the rest of the delta engine.
  Result<MaterializedView> Materialize(const BoundQuery& bound,
                                       std::vector<std::string> names,
                                       ClosureStats* stats = nullptr);

  /// Extends `view` with new input tuples: unions the parameter deltas
  /// into the database, derives the one-step consequences of exactly the
  /// new tuples (delta rules: one body atom reads the delta, the
  /// recursive atom reads the closed view), appends them together with
  /// the new seed tuples, and resumes the semi-naive fixpoint from the
  /// appended rows only. On any failure (budget denial, cancellation,
  /// injected fault at FaultSite::kIvmApply) every touched relation is
  /// truncated back to its pre-call size — byte-identical rollback.
  Result<ApplyOutcome> Apply(MaterializedView& view, const DeltaInsert& delta,
                             const CancellationToken* cancel = nullptr,
                             QueryBudget* budget = nullptr);

  /// Removes input tuples from `view` by delete-and-rederive (DRed):
  /// over-approximates the suspect set (the closure of the directly
  /// deleted derivations), deletes it, then re-derives the suspects
  /// still reachable from the surviving tuples and updated parameters.
  /// The rebuilt relations are swapped in only at commit; a failure
  /// restores the displaced parameter relations and leaves the view
  /// untouched.
  Result<RetractOutcome> Retract(MaterializedView& view,
                                 const DeltaDelete& delta,
                                 const CancellationToken* cancel = nullptr,
                                 QueryBudget* budget = nullptr);

  /// Aggregated ClosureStats over every Execute call since ResetStats.
  /// Per-execution stats are returned in each QueryResult.
  const ClosureStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Resets every observability counter coherently: the ClosureStats
  /// accumulator (as ResetStats) plus the plan-cache hit/miss counters.
  /// Cache *contents* (plans, indexes, analysis) are untouched — so after
  /// ResetCounters a repeated query counts as a hit against an empty
  /// hit/miss ledger.
  void ResetCounters() {
    ResetStats();
    plan_cache_hits_ = 0;
    plan_cache_misses_ = 0;
  }

  /// The engine's long-lived index tier (SharedIndexCache: internally
  /// locked, so batch lanes and the post-execution eviction sweep share it
  /// without a side-channel mutex).
  IndexCache& index_cache() { return cache_; }
  const AnalysisCache& analysis_cache() const { return analysis_; }

  /// Plan-cache observability: queries answered from the cache vs planned
  /// from scratch (hits + misses == Plan() calls while the cache is on).
  std::size_t plan_cache_hits() const { return plan_cache_hits_; }
  std::size_t plan_cache_misses() const { return plan_cache_misses_; }
  std::size_t plan_cache_size() const { return plan_cache_.size(); }

 private:
  /// The shared planning core behind Plan and Prepare: returns a seedless,
  /// σ-parameterized plan for the query's *structure*, serving it from /
  /// inserting it into the plan cache (digest: rules, σ position, forced
  /// strategy, member list — never the σ value or the seed).
  Result<ExecutionPlan> PlanParameterized(const Query& query);
  /// One execution's bindings over a shared plan: the seed(s), the σ value,
  /// the cancellation token and the memory budget live here — never in the
  /// (cached, shared) ExecutionPlan — so N batch slots over one
  /// PreparedQuery share a single plan object instead of deep-copying it
  /// per slot.
  struct ExecutionBinding {
    const Relation* seed = nullptr;
    const std::vector<Relation>* seeds = nullptr;
    /// Engaged when the binding carries a σ value (parameterized plans
    /// require it; it overrides the plan's placeholder selection).
    std::optional<Selection> selection;
    const CancellationToken* cancel = nullptr;
    /// Charged by this execution's relation growth; null = ungoverned.
    QueryBudget* budget = nullptr;
  };
  static ExecutionBinding BindingOf(const BoundQuery& bound);
  /// The single execution path behind every public entry point: runs
  /// `plan` (single-predicate or joint) with this `binding` against db_
  /// through `cache`, filling one QueryResult with this execution's stats.
  /// Const — it mutates no engine state, so batch lanes may call it
  /// concurrently with distinct caches. `workers_override` > 0 replaces
  /// the plan's resolved worker count (ExecuteBatchEach forces 1:
  /// parallelism moves across queries). Installs the binding's budget for
  /// its duration and converts an escaped budget denial / bad_alloc into
  /// Status::ResourceExhausted (RunImpl is the unguarded body).
  Result<QueryResult> Run(const ExecutionPlan& plan,
                          const ExecutionBinding& binding, IndexCache* cache,
                          int workers_override) const;
  Result<QueryResult> RunImpl(const ExecutionPlan& plan,
                              const ExecutionBinding& binding,
                              IndexCache* cache, int workers_override) const;
  /// Fills groups via union-find over the memoized non-commuting pairs,
  /// appending per-pair verdicts to the plan's justification.
  Status ComputeGroups(ExecutionPlan* plan);
  /// Attempts the Theorem 4.1 split; true iff the plan was made separable.
  Result<bool> TrySeparable(ExecutionPlan* plan);
  /// Picks kPowerSum / redundancy elision / kSemiNaive for the rule sum.
  Status ChooseClosureStrategy(ExecutionPlan* plan);
  Status PlanSingleRule(ExecutionPlan* plan);
  Status PlanForced(Strategy forced, ExecutionPlan* plan);
  /// Drops cached indexes over an execution's temporaries (Δs, seeds):
  /// only the engine's own parameter relations are worth keeping across
  /// queries, and dead addresses would otherwise accumulate for the
  /// engine's lifetime.
  void EvictTemporaryIndexes();

  Database db_;
  EngineOptions options_;
  AnalysisCache analysis_;
  /// Self-locking: every Get / RetainOnly runs under its internal mutex,
  /// which is what lets ExecuteBatchEach's lanes and EvictTemporaryIndexes
  /// touch one tier with a statically checkable discipline.
  SharedIndexCache cache_;
  ClosureStats stats_;
  /// Compiled plans keyed on the query digest, stored seedless (the seed is
  /// re-attached per query, so caching never pins a caller's relation).
  std::unordered_map<std::string, ExecutionPlan> plan_cache_;
  /// Digests in insertion order; at capacity the front (oldest entry) is
  /// evicted, one entry per insert.
  std::deque<std::string> plan_cache_order_;
  std::size_t plan_cache_hits_ = 0;
  std::size_t plan_cache_misses_ = 0;
};

}  // namespace linrec
