#include "engine/plan.h"

#include <sstream>

#include "datalog/printer.h"

namespace linrec {

std::vector<LinearRule> ExecutionPlan::RulesOf(
    const std::vector<int>& indices) const {
  std::vector<LinearRule> selected;
  selected.reserve(indices.size());
  for (int i : indices) selected.push_back(rules[static_cast<std::size_t>(i)]);
  return selected;
}

std::string ExecutionPlan::Explain() const {
  std::ostringstream os;
  os << "strategy: " << StrategyName(strategy);
  switch (strategy) {
    case Strategy::kNaive:
      os << " — full re-application each round (baseline)";
      break;
    case Strategy::kSemiNaive:
      os << (factorization.has_value()
                 ? " — redundancy-aware closure: bounded C-prefix, "
                   "Δ-driven fixpoint on the B-tail (Theorem 4.2)"
                 : " — Δ-driven fixpoint over the operator sum");
      break;
    case Strategy::kDecomposed:
      os << " — commuting-group product of " << groups.size()
         << " closures (Theorem 3.1)";
      break;
    case Strategy::kSeparable:
      os << " — σ pushed through the commuting split (Theorem 4.1)";
      break;
    case Strategy::kPowerSum:
      os << " — bounded power sum Σ_{m<=" << power_bound
         << "} A^m (Section 4.2)";
      break;
  }
  os << "\n";

  os << "rules:\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "  [" << i << "] " << ToString(rules[i]) << "\n";
  }

  if (strategy == Strategy::kDecomposed) {
    os << "groups (rightmost closure applied first):";
    for (const std::vector<int>& group : groups) {
      os << " {";
      for (std::size_t i = 0; i < group.size(); ++i) {
        os << (i ? "," : "") << group[i];
      }
      os << "}";
    }
    os << "\n";
  }
  if (strategy == Strategy::kSeparable) {
    auto render = [&os](const char* name, const std::vector<int>& indices) {
      os << name << " {";
      for (std::size_t i = 0; i < indices.size(); ++i) {
        os << (i ? "," : "") << indices[i];
      }
      os << "}";
    };
    render("split: outer A =", outer);
    render(", inner B =", inner);
    os << "  (plan A*(σ(B* q)))\n";
  }

  if (parallel_workers <= 1) {
    os << "parallel: serial (1 worker)\n";
  } else {
    os << "parallel: " << parallel_workers
       << " workers — work-stealing Δ partitions inside every round, "
          "thread-local output pools, sharded dedup merge";
    if (strategy == Strategy::kDecomposed && groups.size() > 1) {
      os << "; group closures run concurrently before the ordered merge";
    }
    os << "\n";
  }

  if (selection.has_value()) {
    os << "selection: σ_{pos " << selection->position << " = "
       << selection->value << "} — "
       << (selection_pushed ? "pushed into the strategy"
                            : "applied to the final result")
       << "\n";
  }
  if (!elided_predicates.empty()) {
    os << "elided predicates (bounded bridge, Theorems 6.3/6.4):";
    for (const std::string& pred : elided_predicates) os << " " << pred;
    os << "\n";
  }

  if (from_plan_cache) {
    os << "plan cache: hit (analysis and planning skipped)\n";
  }
  if (!justification.empty()) {
    os << "why:\n";
    for (const std::string& reason : justification) {
      os << "  - " << reason << "\n";
    }
  }
  if (seed != nullptr) {
    os << "seed: " << seed->size() << " tuple(s), arity " << seed->arity()
       << "\n";
  }
  return os.str();
}

}  // namespace linrec
