#include "engine/plan.h"

#include <sstream>

#include "datalog/printer.h"

namespace linrec {

std::vector<LinearRule> ExecutionPlan::RulesOf(
    const std::vector<int>& indices) const {
  std::vector<LinearRule> selected;
  selected.reserve(indices.size());
  for (int i : indices) selected.push_back(rules[static_cast<std::size_t>(i)]);
  return selected;
}

std::string ExecutionPlan::Explain() const {
  std::ostringstream os;
  os << "strategy: " << StrategyName(strategy);
  switch (strategy) {
    case Strategy::kNaive:
      os << " — full re-application each round (baseline)";
      break;
    case Strategy::kSemiNaive:
      os << (factorization.has_value()
                 ? " — redundancy-aware closure: bounded C-prefix, "
                   "Δ-driven fixpoint on the B-tail (Theorem 4.2)"
                 : " — Δ-driven fixpoint over the operator sum");
      break;
    case Strategy::kDecomposed:
      os << " — commuting-group product of " << groups.size()
         << " closures (Theorem 3.1)";
      break;
    case Strategy::kSeparable:
      os << " — σ pushed through the commuting split (Theorem 4.1)";
      break;
    case Strategy::kPowerSum:
      os << " — bounded power sum Σ_{m<=" << power_bound
         << "} A^m (Section 4.2)";
      break;
    case Strategy::kJointSemiNaive:
      os << " — joint Δ-driven fixpoint over the strongly connected "
            "component {";
      for (std::size_t i = 0; i < members.size(); ++i) {
        os << (i ? ", " : "") << members[i];
      }
      os << "}";
      break;
  }
  os << "\n";

  os << "rules:\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "  [" << i << "] " << ToString(rules[i]) << "\n";
  }
  for (std::size_t i = 0; i < joint_rules.size(); ++i) {
    os << "  [" << i << "] " << ToString(joint_rules[i].rule)
       << "  (Δ source: " << members[static_cast<std::size_t>(
                                 joint_rules[i].recursive_member)]
       << ")\n";
  }

  if (strategy == Strategy::kDecomposed) {
    os << "groups (rightmost closure applied first):";
    for (const std::vector<int>& group : groups) {
      os << " {";
      for (std::size_t i = 0; i < group.size(); ++i) {
        os << (i ? "," : "") << group[i];
      }
      os << "}";
    }
    os << "\n";
  }
  if (strategy == Strategy::kSeparable) {
    auto render = [&os](const char* name, const std::vector<int>& indices) {
      os << name << " {";
      for (std::size_t i = 0; i < indices.size(); ++i) {
        os << (i ? "," : "") << indices[i];
      }
      os << "}";
    };
    render("split: outer A =", outer);
    render(", inner B =", inner);
    os << "  (plan A*(σ(B* q)))\n";
  }

  if (parallel_workers <= 1) {
    os << "parallel: serial (1 worker)\n";
  } else {
    os << "parallel: " << parallel_workers
       << " workers — work-stealing Δ partitions inside every round, "
          "thread-local output pools, sharded dedup merge";
    if (strategy == Strategy::kDecomposed && groups.size() > 1) {
      os << "; group closures run concurrently before the ordered merge";
    }
    os << "\n";
  }

  if (selection.has_value()) {
    os << "selection: σ_{pos " << selection->position << " = ";
    if (sigma_parameterized) {
      os << "<bind parameter>";
    } else {
      os << selection->value;
    }
    os << "} — "
       << (selection_pushed ? "pushed into the strategy"
                            : "applied to the final result")
       << "\n";
  }
  if (!elided_predicates.empty()) {
    os << "elided predicates (bounded bridge, Theorems 6.3/6.4):";
    for (const std::string& pred : elided_predicates) os << " " << pred;
    os << "\n";
  }

  if (from_plan_cache) {
    os << "plan cache: hit (analysis and planning skipped)\n";
  }
  if (!justification.empty()) {
    os << "why:\n";
    for (const std::string& reason : justification) {
      os << "  - " << reason << "\n";
    }
  }
  if (seed != nullptr) {
    os << "seed: " << seed->size() << " tuple(s), arity " << seed->arity()
       << "\n";
  }
  if (joint_seeds != nullptr) {
    os << "seeds:";
    for (std::size_t m = 0; m < joint_seeds->size() && m < members.size();
         ++m) {
      os << " " << members[m] << "=" << (*joint_seeds)[m].size();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace linrec
