#include "engine/prepared.h"

#include "common/strings.h"

namespace linrec {

BoundQuery PreparedQuery::Bind(Value sigma_value) const {
  BoundQuery bound;
  bound.plan_ = plan_;
  if (!sigma_position_.has_value()) {
    bound.error_ = Status::InvalidArgument(
        "Bind(value): the prepared query has no σ parameter (prepare with "
        "Select/SelectPosition to declare one)");
    return bound;
  }
  bound.selection_ = Selection{*sigma_position_, sigma_value};
  return bound;
}

BoundQuery PreparedQuery::Bind() const {
  BoundQuery bound;
  bound.plan_ = plan_;
  if (sigma_position_.has_value()) {
    if (!default_sigma_value_.has_value()) {
      bound.error_ = Status::InvalidArgument(
          "Bind(): the σ parameter has no default value; bind one with "
          "Bind(value)");
      return bound;
    }
    bound.selection_ = Selection{*sigma_position_, *default_sigma_value_};
  }
  return bound;
}

BoundQuery& BoundQuery::BindSeed(Relation seed) {
  return BindSeed(std::make_shared<const Relation>(std::move(seed)));
}

BoundQuery& BoundQuery::BindSeed(std::shared_ptr<const Relation> seed) {
  if (plan_ != nullptr && plan_->strategy == Strategy::kJointSemiNaive &&
      error_.ok()) {
    error_ = Status::InvalidArgument(
        "BindSeed on a joint prepared query; use BindSeeds (one relation "
        "per member)");
    return *this;
  }
  seed_ = std::move(seed);
  return *this;
}

BoundQuery& BoundQuery::BindSeeds(std::vector<Relation> seeds) {
  return BindSeeds(
      std::make_shared<const std::vector<Relation>>(std::move(seeds)));
}

BoundQuery& BoundQuery::BindSeeds(
    std::shared_ptr<const std::vector<Relation>> seeds) {
  if (plan_ != nullptr && plan_->strategy != Strategy::kJointSemiNaive &&
      error_.ok()) {
    error_ = Status::InvalidArgument(
        "BindSeeds on a single-predicate prepared query; use BindSeed");
    return *this;
  }
  seeds_ = std::move(seeds);
  return *this;
}

Status BoundQuery::Validate() const {
  if (plan_ == nullptr) {
    return Status::InvalidArgument(
        "bound query has no plan (default-constructed?)");
  }
  if (!error_.ok()) return error_;
  if (plan_->strategy == Strategy::kJointSemiNaive) {
    if (seeds_ == nullptr) {
      return Status::InvalidArgument(
          "joint bound query has no seed relations (BindSeeds)");
    }
    if (seeds_->size() != plan_->members.size()) {
      return Status::InvalidArgument(
          StrCat("joint bound query has ", seeds_->size(), " seeds for ",
                 plan_->members.size(), " members"));
    }
    return Status::OK();
  }
  if (seed_ == nullptr) {
    return Status::InvalidArgument(
        "bound query has no seed relation (BindSeed)");
  }
  const std::size_t arity = plan_->rules.front().arity();
  if (seed_->arity() != arity) {
    return Status::InvalidArgument(StrCat("seed arity ", seed_->arity(),
                                          " does not match rule arity ",
                                          arity));
  }
  if (plan_->sigma_parameterized && !selection_.has_value()) {
    return Status::InvalidArgument(
        "the plan's σ parameter is unbound; bind a value "
        "(PreparedQuery::Bind) before executing");
  }
  return Status::OK();
}

ExecutionPlan BoundQuery::ToPlan() const {
  ExecutionPlan plan = *plan_;
  plan.seed = seed_;
  plan.joint_seeds = seeds_;
  if (selection_.has_value()) {
    plan.selection = selection_;
    plan.sigma_parameterized = false;
  }
  return plan;
}

}  // namespace linrec
