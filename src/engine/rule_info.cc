#include "engine/rule_info.h"

#include "datalog/printer.h"

namespace linrec {

namespace {

/// Runs the budgeted semi-decisions once; a failure (budget or
/// precondition) simply leaves the optimization unavailable.
void RunBudgetedSearches(RuleInfo* info, int max_power) {
  if (info->budgeted_searches_done) return;
  info->budgeted_searches_done = true;
  if (!info->analyzable || max_power <= 0) return;
  Result<RedundancyReport> redundancy =
      AnalyzeRedundancy(info->rule, max_power);
  if (redundancy.ok()) info->redundancy = std::move(redundancy).value();
  Result<ExponentSearch> bound = FindUniformBound(info->rule, max_power);
  if (bound.ok()) info->uniform_bound = *bound;
}

}  // namespace

Result<const RuleInfo*> AnalysisCache::Info(const LinearRule& rule,
                                            bool budgeted_searches) {
  std::string key = ToString(rule);
  auto it = rules_.find(key);
  if (it != rules_.end()) {
    if (budgeted_searches) RunBudgetedSearches(it->second.get(), max_power_);
    return static_cast<const RuleInfo*>(it->second.get());
  }

  auto info = std::make_unique<RuleInfo>(rule);
  info->key = key;
  info->traits = ComputeTraits(rule.rule());

  Status precondition = ValidateForAnalysis(rule);
  info->analyzable = precondition.ok();
  if (!info->analyzable) {
    info->analysis_blocked = precondition.message();
  } else {
    Result<Classification> classes = Classification::Compute(rule);
    if (classes.ok()) {
      info->classes = std::move(classes).value();
    } else {
      info->analyzable = false;
      info->analysis_blocked = classes.status().message();
    }
  }
  if (budgeted_searches) RunBudgetedSearches(info.get(), max_power_);

  const RuleInfo* result = info.get();
  rules_.emplace(std::move(key), std::move(info));
  return result;
}

Result<CommutativityReport> AnalysisCache::Commutes(const LinearRule& r1,
                                                    const LinearRule& r2) {
  std::string k1 = ToString(r1);
  std::string k2 = ToString(r2);
  // A∘B = B∘A is symmetric: cache the pair unordered.
  std::string key = k1 <= k2 ? k1 + "\x1f" + k2 : k2 + "\x1f" + k1;
  auto it = pairs_.find(key);
  if (it != pairs_.end()) return it->second;

  Result<CommutativityReport> report = CheckCommutativity(r1, r2);
  if (!report.ok()) return report.status();
  pairs_.emplace(std::move(key), *report);
  return *report;
}

}  // namespace linrec
