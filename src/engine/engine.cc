#include "engine/engine.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_set>

#include "algebra/closure.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "datalog/printer.h"
#include "eval/fixpoint.h"
#include "redundancy/closure.h"
#include "redundancy/factorize.h"
#include "separability/algorithm.h"

namespace linrec {
namespace {

/// Plan-cache key: query *structure* only — the printed rules (text
/// determines semantics), the σ position, and any forced strategy. The σ
/// *value* is deliberately excluded: planning is positional (Theorem 4.1's
/// preconditions read the selected column, never the constant), so one
/// cached plan serves a whole σ-sweep — keying on the value made every
/// sweep step a cache miss. The seed is excluded for the same reason:
/// planning never reads it beyond validation, so one cached plan serves
/// every seed. Joint queries key on the member list plus the rule texts
/// (validation pins each rule's recursive atom to its unique member atom,
/// so the text determines the joint structure).
std::string QueryDigest(const Query& query) {
  std::string digest;
  if (query.is_joint()) {
    digest += "joint:";
    for (const std::string& member : query.members()) {
      digest += member;
      digest += ',';
    }
    digest += '\n';
    for (const JointRule& jr : query.joint_rules()) {
      digest += ToString(jr.rule);
      digest += '\n';
    }
    return digest;
  }
  for (const LinearRule& rule : query.rules()) {
    digest += ToString(rule);
    digest += '\n';
  }
  if (query.sigma_position().has_value()) {
    digest += StrCat("|sigma_pos:", *query.sigma_position());
  }
  if (query.forced_strategy().has_value()) {
    digest += StrCat("|force:", StrategyName(*query.forced_strategy()));
  }
  return digest;
}

/// Short provenance tag for a positive commutativity verdict.
std::string CommuteProvenance(const CommutativityReport& report) {
  if (report.syntactic_holds) return "syntactic condition, Theorem 5.1";
  if (report.definitional_used) return "definition-based test";
  return "combined oracle";
}

/// Short provenance tag for a negative verdict.
std::string NonCommuteProvenance(const CommutativityReport& report) {
  if (report.restricted_class) {
    return "syntactic condition fails in the restricted class, Theorem 5.2";
  }
  if (report.definitional_used) return "definition-based test";
  return "combined oracle";
}

}  // namespace

Result<const RuleInfo*> Engine::Analyze(const LinearRule& rule) {
  return analysis_.Info(rule, /*budgeted_searches=*/true);
}

Result<CommutativityReport> Engine::Commutes(const LinearRule& r1,
                                             const LinearRule& r2) {
  return analysis_.Commutes(r1, r2);
}

Status Engine::ComputeGroups(ExecutionPlan* plan) {
  const int n = static_cast<int>(plan->rules.size());
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      Result<CommutativityReport> report =
          analysis_.Commutes(plan->rules[static_cast<std::size_t>(i)],
                             plan->rules[static_cast<std::size_t>(j)]);
      bool commute = report.ok() && report->commute;
      if (!report.ok()) {
        plan->justification.push_back(
            StrCat("rules ", i, " and ", j, ": commutativity test failed (",
                   report.status().message(), ") — conservatively grouped"));
      } else if (commute) {
        plan->justification.push_back(StrCat("rules ", i, " and ", j,
                                             " commute (",
                                             CommuteProvenance(*report), ")"));
      } else {
        plan->justification.push_back(
            StrCat("rules ", i, " and ", j, " do not commute (",
                   NonCommuteProvenance(*report), ")"));
      }
      if (!commute) {
        parent[static_cast<std::size_t>(find(i))] = find(j);
      }
    }
  }
  std::map<int, std::vector<int>> by_root;
  for (int i = 0; i < n; ++i) by_root[find(i)].push_back(i);
  plan->groups.clear();
  for (auto& [root, group] : by_root) plan->groups.push_back(group);
  return Status::OK();
}

Result<bool> Engine::TrySeparable(ExecutionPlan* plan) {
  const Selection& sigma = *plan->selection;
  std::vector<int> outer;
  std::vector<int> inner;
  std::vector<std::string> notes;
  for (std::size_t i = 0; i < plan->rules.size(); ++i) {
    Result<const RuleInfo*> info = analysis_.Info(plan->rules[i]);
    if (!info.ok()) return info.status();
    bool commutes = false;
    if ((*info)->classes.has_value()) {
      const Classification& classes = *(*info)->classes;
      VarId x = classes.HeadVarAt(sigma.position);
      const VarClass& vc = classes.Of(x);
      // σ commutes with the operator iff the selected column's head
      // variable is 1-persistent: its value passes through unchanged.
      commutes = vc.persistent && vc.period == 1;
      notes.push_back(StrCat("σ on position ", sigma.position,
                             (commutes ? " commutes with rule "
                                       : " does not commute with rule "),
                             i, ": head variable is ", vc.Describe()));
    } else {
      notes.push_back(StrCat("rule ", i, " not analyzable (",
                             (*info)->analysis_blocked,
                             "): σ-commutation unknown"));
    }
    (commutes ? outer : inner).push_back(static_cast<int>(i));
  }
  if (outer.empty()) {
    plan->justification.push_back(
        StrCat("separable rejected: σ on position ", sigma.position,
               " commutes with no rule (needs a 1-persistent column, "
               "Theorem 4.1)"));
    return false;
  }
  for (int a : outer) {
    for (int b : inner) {
      Result<CommutativityReport> report =
          analysis_.Commutes(plan->rules[static_cast<std::size_t>(a)],
                             plan->rules[static_cast<std::size_t>(b)]);
      if (!report.ok() || !report->commute) {
        plan->justification.push_back(StrCat(
            "separable rejected: rules ", a, " and ", b,
            report.ok() ? StrCat(" do not commute (",
                                 NonCommuteProvenance(*report), ")")
                        : StrCat(" — commutativity test failed (",
                                 report.status().message(), ")")));
        return false;
      }
      notes.push_back(StrCat("rules ", a, " and ", b, " commute (",
                             CommuteProvenance(*report), ")"));
    }
  }
  plan->strategy = Strategy::kSeparable;
  plan->outer = std::move(outer);
  plan->inner = std::move(inner);
  plan->selection_pushed = true;
  for (std::string& note : notes) {
    plan->justification.push_back(std::move(note));
  }
  if (plan->inner.empty()) {
    plan->justification.push_back(
        "σ commutes with every rule: full pushdown σ(ΣA)* = (ΣA)*(σ q)");
  }
  return true;
}

Status Engine::PlanSingleRule(ExecutionPlan* plan) {
  const LinearRule& rule = plan->rules.front();
  Result<const RuleInfo*> info_result =
      analysis_.Info(rule, /*budgeted_searches=*/true);
  if (!info_result.ok()) return info_result.status();
  const RuleInfo* info = *info_result;

  if (options_.enable_power_sum && info->uniform_bound.found) {
    plan->strategy = Strategy::kPowerSum;
    plan->power_bound = info->uniform_bound.n - 1;
    plan->justification.push_back(StrCat(
        "operator uniformly bounded: A^", info->uniform_bound.n, " ≤ A^",
        info->uniform_bound.k, " — closure is the power sum Σ_{m<",
        info->uniform_bound.n, "} A^m (Section 4.2)"));
    return Status::OK();
  }

  if (options_.enable_redundancy_elision && info->HasRedundantPredicates()) {
    Result<RedundantFactorization> factorization =
        FactorFirstRedundant(rule, analysis_.max_power());
    if (factorization.ok() && factorization->product_verified &&
        factorization->swap_verified) {
      plan->strategy = Strategy::kSemiNaive;
      // FactorFirstRedundant factors only the FIRST uniformly bounded
      // bridge; the plan must claim exactly that elision, no more.
      bool factored = false;
      for (const RedundancyEntry& entry : info->redundancy->entries) {
        if (!entry.uniformly_bounded) continue;
        std::string preds;
        for (const std::string& pred : entry.predicates) {
          preds += (preds.empty() ? "" : ",") + pred;
        }
        if (!factored) {
          factored = true;
          plan->elided_predicates = entry.predicates;
          plan->justification.push_back(StrCat(
              "bridge ", entry.bridge_index, " {", preds,
              "} uniformly bounded: C^", entry.bound.n, " ≤ C^",
              entry.bound.k,
              " — its predicates are recursively redundant (Theorem 6.3)"));
        } else {
          plan->justification.push_back(StrCat(
              "bridge ", entry.bridge_index, " {", preds,
              "} also uniformly bounded but NOT elided (single-bridge "
              "factorization)"));
        }
      }
      plan->justification.push_back(StrCat(
          "factorization A^", factorization->L,
          " = B·C^", factorization->L,
          " verified — the elided predicates are applied a bounded number "
          "of times (Theorems 6.4/4.2)"));
      plan->factorization = std::move(factorization).value();
      return Status::OK();
    }
    plan->justification.push_back(StrCat(
        "redundant predicates found but the factorization is unavailable (",
        factorization.ok() ? "verification failed"
                           : factorization.status().message(),
        "); falling back to semi-naive"));
  }

  plan->strategy = Strategy::kSemiNaive;
  plan->justification.push_back("single operator; semi-naive Δ fixpoint");
  return Status::OK();
}

Status Engine::ChooseClosureStrategy(ExecutionPlan* plan) {
  if (plan->rules.size() == 1) return PlanSingleRule(plan);
  if (!options_.enable_decomposition) {
    plan->strategy = Strategy::kSemiNaive;
    plan->justification.push_back(
        "decomposition disabled by options; semi-naive over the sum");
    return Status::OK();
  }
  LINREC_RETURN_IF_ERROR(ComputeGroups(plan));
  if (plan->groups.size() > 1) {
    plan->strategy = Strategy::kDecomposed;
    plan->justification.push_back(StrCat(
        plan->groups.size(),
        " commuting groups: (ΣA)* = G_1*·...·G_k* with no more duplicate "
        "derivations (Theorem 3.1)"));
  } else {
    plan->strategy = Strategy::kSemiNaive;
    plan->groups.clear();
    plan->justification.push_back(
        "all rules linked by non-commuting chains — one group, no "
        "decomposition; semi-naive over the sum");
  }
  return Status::OK();
}

Status Engine::PlanForced(Strategy forced, ExecutionPlan* plan) {
  plan->justification.push_back(
      StrCat("strategy forced by caller: ", StrategyName(forced)));
  switch (forced) {
    case Strategy::kNaive:
    case Strategy::kSemiNaive:
      plan->strategy = forced;
      return Status::OK();
    case Strategy::kDecomposed:
      LINREC_RETURN_IF_ERROR(ComputeGroups(plan));
      plan->strategy = Strategy::kDecomposed;
      return Status::OK();
    case Strategy::kSeparable: {
      if (!plan->selection.has_value()) {
        return Status::InvalidArgument(
            "forced separable strategy requires a selection");
      }
      Result<bool> separable = TrySeparable(plan);
      if (!separable.ok()) return separable.status();
      if (!*separable) {
        return Status::InvalidArgument(
            "forced separable strategy: preconditions of Theorem 4.1 do "
            "not hold for this query");
      }
      return Status::OK();
    }
    case Strategy::kPowerSum: {
      if (plan->rules.size() != 1) {
        return Status::InvalidArgument(
            "forced power-sum strategy requires a single rule");
      }
      Result<const RuleInfo*> info =
          analysis_.Info(plan->rules.front(), /*budgeted_searches=*/true);
      if (!info.ok()) return info.status();
      if (!(*info)->uniform_bound.found) {
        return Status::InvalidArgument(
            "forced power-sum strategy: no uniform bound found within the "
            "analysis budget");
      }
      plan->strategy = Strategy::kPowerSum;
      plan->power_bound = (*info)->uniform_bound.n - 1;
      return Status::OK();
    }
    case Strategy::kJointSemiNaive:
      return Status::InvalidArgument(
          "the joint strategy cannot be forced on a single-predicate "
          "query; use Query::JointClosure");
  }
  return Status::Internal("unhandled forced strategy");
}

Result<ExecutionPlan> Engine::PlanParameterized(const Query& query) {
  std::string digest;
  const bool cache_on =
      options_.enable_plan_cache && options_.plan_cache_capacity > 0;
  if (cache_on) {
    digest = QueryDigest(query);
    auto it = plan_cache_.find(digest);
    if (it != plan_cache_.end()) {
      ++plan_cache_hits_;
      // Cached plans are seedless and σ-parameterized; the caller
      // re-attaches this query's seed(s) and σ value.
      ExecutionPlan plan = it->second;
      plan.from_plan_cache = true;
      return plan;
    }
    ++plan_cache_misses_;
  }

  ExecutionPlan plan;
  plan.parallel_workers = ResolveWorkers(options_.parallel_workers);
  if (query.is_joint()) {
    plan.strategy = Strategy::kJointSemiNaive;
    plan.members = query.members();
    plan.joint_rules = query.joint_rules();
    plan.justification.push_back(StrCat(
        plan.members.size(),
        " mutually recursive predicates form one strongly connected "
        "component; closed jointly by multi-relation semi-naive rounds "
        "(one Δ row-range per member)"));
  } else {
    plan.rules = query.rules();
    if (query.sigma_position().has_value()) {
      // Planning reads only the position (every σ-commutation test is
      // positional), so the plan is compiled as a σ template: value 0 is a
      // placeholder until a Bind substitutes the execution's constant.
      plan.selection = Selection{*query.sigma_position(), 0};
      plan.sigma_parameterized = true;
    }

    if (query.forced_strategy().has_value()) {
      LINREC_RETURN_IF_ERROR(PlanForced(*query.forced_strategy(), &plan));
    } else {
      bool planned_separable = false;
      if (plan.selection.has_value() && options_.enable_separable) {
        Result<bool> separable = TrySeparable(&plan);
        if (!separable.ok()) return separable.status();
        planned_separable = *separable;
      }
      if (!planned_separable) {
        LINREC_RETURN_IF_ERROR(ChooseClosureStrategy(&plan));
        if (plan.selection.has_value() && !plan.selection_pushed) {
          plan.justification.push_back(
              "selection does not push through the closure; filtering the "
              "final result");
        }
      }
    }
  }

  if (cache_on) {
    // FIFO eviction of single entries: the oldest plan makes room, so a
    // diverse query stream at capacity no longer cold-starts every other
    // hot plan the way a full clear() did.
    while (plan_cache_.size() >= options_.plan_cache_capacity &&
           !plan_cache_order_.empty()) {
      plan_cache_.erase(plan_cache_order_.front());
      plan_cache_order_.pop_front();
    }
    plan_cache_order_.push_back(digest);
    plan_cache_.emplace(std::move(digest), plan);
  }
  return plan;
}

Result<ExecutionPlan> Engine::Plan(const Query& query) {
  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  Result<ExecutionPlan> planned = PlanParameterized(query);
  if (!planned.ok()) return planned;
  ExecutionPlan plan = std::move(*planned);
  plan.seed = query.shared_seed();
  if (query.is_joint()) plan.joint_seeds = query.shared_seeds();
  if (query.sigma_value().has_value()) {
    plan.selection->value = *query.sigma_value();
    plan.sigma_parameterized = false;
  }
  return plan;
}

Result<PreparedQuery> Engine::Prepare(const Query& query) {
  // Structure-only validation: a prepared query is seedless by design
  // (seeds bind per execution), though a seed given anyway is checked.
  Status valid = query.ValidateStructure();
  if (!valid.ok()) return valid;
  Result<ExecutionPlan> planned = PlanParameterized(query);
  if (!planned.ok()) return planned.status();
  return PreparedQuery(
      std::make_shared<const ExecutionPlan>(std::move(*planned)),
      query.sigma_position(), query.sigma_value());
}

Engine::ExecutionBinding Engine::BindingOf(const BoundQuery& bound) {
  ExecutionBinding binding;
  binding.seed = bound.seed().get();
  binding.seeds = bound.seeds().get();
  binding.selection = bound.selection();
  binding.cancel = bound.cancel();
  binding.budget = bound.budget();
  return binding;
}

Result<QueryResult> Engine::Run(const ExecutionPlan& plan,
                                const ExecutionBinding& binding,
                                IndexCache* cache,
                                int workers_override) const {
  // Install this execution's budget: storage growth below charges the
  // thread-local current budget, and the parallel rounds re-install it
  // inside their worker lanes. Without a binding budget, any budget already
  // in effect on this thread (e.g. installed by the serving layer around a
  // whole goal) stays active. The guard converts a denial that escaped on
  // the calling thread — the serial path — into the same typed
  // ResourceExhausted the lanes report.
  ScopedQueryBudget budget_scope(
      binding.budget != nullptr ? binding.budget : CurrentQueryBudget());
  return GuardAllocFailures([&]() -> Result<QueryResult> {
    return RunImpl(plan, binding, cache, workers_override);
  });
}

Result<QueryResult> Engine::RunImpl(const ExecutionPlan& plan,
                                    const ExecutionBinding& binding,
                                    IndexCache* cache,
                                    int workers_override) const {
  // Plans from older callers may predate the resolved field; fall back to
  // the engine's own options.
  const int workers =
      workers_override > 0
          ? workers_override
          : (plan.parallel_workers > 0
                 ? plan.parallel_workers
                 : ResolveWorkers(options_.parallel_workers));
  const CancellationToken* cancel = binding.cancel;

  if (plan.strategy == Strategy::kJointSemiNaive) {
    const std::vector<Relation>* seeds =
        binding.seeds != nullptr ? binding.seeds : plan.joint_seeds.get();
    if (seeds == nullptr) {
      return Status::InvalidArgument("joint plan has no seed relations");
    }
    if (seeds->size() != plan.members.size()) {
      return Status::InvalidArgument(
          StrCat("joint plan has ", seeds->size(), " seeds for ",
                 plan.members.size(), " members"));
    }
    QueryResult result;
    result.joint = true;
    Result<std::vector<Relation>> out =
        JointSemiNaiveClosure(plan.members, plan.joint_rules, db_, *seeds,
                              &result.stats, cache, workers, cancel);
    if (!out.ok()) return out.status();
    result.relations = std::move(out).value();
    return result;
  }

  if (plan.rules.empty()) {
    return Status::InvalidArgument("plan has no rules");
  }
  const Relation* seed_ptr =
      binding.seed != nullptr ? binding.seed : plan.seed.get();
  if (seed_ptr == nullptr) {
    return Status::InvalidArgument("plan has no seed relation");
  }
  // The binding's σ value (when present) overrides the plan's selection —
  // parameterized plans store a value-free placeholder.
  std::optional<Selection> selection = plan.selection;
  if (binding.selection.has_value()) {
    selection = binding.selection;
  } else if (plan.sigma_parameterized) {
    return Status::InvalidArgument(
        "the plan's σ parameter is unbound; bind a value "
        "(PreparedQuery::Bind) before executing");
  }
  if (selection.has_value()) {
    // Engine-boundary validation: bindings normally arrive through
    // Prepare/Bind (whose validation covers this), but a hand-built plan
    // with an out-of-range σ position would otherwise reach
    // Relation::WhereEquals as undefined behavior in NDEBUG builds.
    const int arity = static_cast<int>(plan.rules.front().arity());
    if (selection->position < 0 || selection->position >= arity) {
      return Status::InvalidArgument(
          StrCat("selection position ", selection->position,
                 " out of range for arity ", arity));
    }
  }
  const Relation& seed = *seed_ptr;
  QueryResult result;
  ClosureStats& s = result.stats;
  Result<Relation> out = Status::Internal("strategy not executed");
  switch (plan.strategy) {
    case Strategy::kNaive:
      out = NaiveClosure(plan.rules, db_, seed, &s, cache, workers, cancel);
      break;
    case Strategy::kSemiNaive:
      out = plan.factorization.has_value()
                ? RedundantClosure(*plan.factorization, db_, seed, &s,
                                   cache, workers, cancel)
                : SemiNaiveClosure(plan.rules, db_, seed, &s, cache,
                                   workers, cancel);
      break;
    case Strategy::kDecomposed: {
      if (plan.groups.empty()) {
        return Status::InvalidArgument("decomposed plan has no groups");
      }
      std::vector<std::vector<LinearRule>> groups;
      groups.reserve(plan.groups.size());
      for (const std::vector<int>& group : plan.groups) {
        groups.push_back(plan.RulesOf(group));
      }
      out = DecomposedClosure(groups, db_, seed, &s, cache, workers,
                              cancel);
      break;
    }
    case Strategy::kSeparable: {
      if (!selection.has_value() || plan.outer.empty()) {
        return Status::InvalidArgument(
            "separable plan requires a selection and a nonempty outer "
            "group");
      }
      // A*( σ( B* q ) ) — Theorem 4.1. Preconditions were verified by
      // TrySeparable during planning; the σ value flows in here, at
      // execute time (the plan itself is value-free).
      out = SeparableClosureUnchecked(plan.RulesOf(plan.outer),
                                      plan.RulesOf(plan.inner),
                                      *selection, db_, seed, &s, cache,
                                      workers, cancel);
      break;
    }
    case Strategy::kPowerSum:
      out = PowerSum(plan.rules, db_, seed, plan.power_bound, &s, cache,
                     workers, cancel);
      break;
    case Strategy::kJointSemiNaive:
      return Status::Internal("joint strategy handled above");
  }
  if (!out.ok()) return out.status();
  Relation relation = std::move(out).value();
  if (selection.has_value() && !plan.selection_pushed) {
    relation = ApplySelection(relation, *selection, &s);
    s.result_size = relation.size();
  }
  result.relations.push_back(std::move(relation));
  return result;
}

void Engine::EvictTemporaryIndexes() {
  std::unordered_set<const Relation*> keep;
  for (const std::string& name : db_.Names()) keep.insert(db_.Find(name));
  cache_.RetainOnly(keep);
}

Result<QueryResult> Engine::Execute(const BoundQuery& bound) {
  LINREC_RETURN_IF_ERROR(bound.Validate());
  // The shared plan is used in place: the seed, σ value and cancellation
  // token flow through the binding, so executing never copies the plan.
  Result<QueryResult> result = Run(*bound.plan(), BindingOf(bound), &cache_,
                                   /*workers_override=*/0);
  // Evict on the failure path too: an aborted execution (cancelled, budget
  // denied) may have left indexes over its already-destroyed temporaries in
  // the cache, and the next query would read dangling addresses.
  EvictTemporaryIndexes();
  if (!result.ok()) return result;
  stats_.Accumulate(result->stats);
  return result;
}

std::vector<Result<QueryResult>> Engine::ExecuteBatchEach(
    const std::vector<BoundQuery>& batch) {
  std::vector<Result<QueryResult>> slots;
  slots.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    slots.emplace_back(Status::Internal("batch query not executed"));
  }
  if (batch.empty()) return slots;

  // Validate serially up front; an invalid slot fails alone, its
  // neighbours still run. Bindings are pointers into the BoundQuery — the
  // shared prepared plan is used in place, so N slots over one
  // PreparedQuery share a single plan object (no per-slot deep copy, no
  // per-slot digest hashing).
  std::vector<ExecutionBinding> bindings(batch.size());
  std::vector<char> runnable(batch.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Status valid = batch[i].Validate();
    if (!valid.ok()) {
      slots[i] = std::move(valid);
      continue;
    }
    bindings[i] = BindingOf(batch[i]);
    runnable[i] = 1;
  }

  // The batch's shared read side: the engine's parameter relations are
  // quiescent for the whole batch, so their indexes live in the engine's
  // SharedIndexCache — internally locked, built by whichever query needs
  // one first, reused by every other. Everything else a query indexes is a
  // private temporary.
  std::unordered_set<const Relation*> shared_relations;
  for (const std::string& name : db_.Names()) {
    shared_relations.insert(db_.Find(name));
  }

  auto run_one = [&](std::size_t i) {
    if (!runnable[i]) return;  // failed validation above
    TieredIndexCache cache(&cache_, &shared_relations);
    // Each query runs its rounds serially: batch-level parallelism
    // replaces intra-round parallelism, so results cannot depend on the
    // lane schedule. The per-query temporary tier dies right here, at the
    // end of the query; the shared tier is swept once, below.
    slots[i] = Run(*batch[i].plan(), bindings[i], &cache,
                   /*workers_override=*/1);
  };

  const int lanes = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(ResolveWorkers(
                                options_.parallel_workers)),
                            batch.size()));
  if (lanes <= 1) {
    for (std::size_t i = 0; i < batch.size(); ++i) run_one(i);
  } else {
    WorkerPool pool(lanes);
    pool.Run(batch.size(), [&](int, std::size_t i) { run_one(i); });
  }

  // Accumulate in batch order, so the engine-global record is identical
  // to having executed the successful slots sequentially.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (slots[i].ok()) stats_.Accumulate(slots[i]->stats);
  }
  // Deferred to batch end: one sweep drops whatever the batch pinned into
  // the shared tier beyond the parameter relations (today: nothing — the
  // tiering keeps temporaries private — but the sweep keeps the invariant
  // explicit and cheap).
  EvictTemporaryIndexes();
  return slots;
}

Result<std::vector<QueryResult>> Engine::ExecuteBatch(
    const std::vector<BoundQuery>& batch) {
  // Fail fast on validation, before any work starts (the per-slot path
  // lets valid neighbours run; the all-or-nothing contract here does not).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Status valid = batch[i].Validate();
    if (!valid.ok()) {
      return Status(valid.code(),
                    StrCat("batch query ", i, ": ", valid.message()));
    }
  }
  std::vector<Result<QueryResult>> slots = ExecuteBatchEach(batch);
  std::vector<QueryResult> results;
  results.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].ok()) {
      const Status& st = slots[i].status();
      return Status(st.code(),
                    StrCat("batch query ", i, ": ", st.message()));
    }
    results.push_back(std::move(*slots[i]));
  }
  return results;
}

}  // namespace linrec
