#include "engine/query.h"

#include "common/strings.h"

namespace linrec {

Query Query::Closure(std::vector<LinearRule> rules) {
  Query query;
  query.rules_ = std::move(rules);
  return query;
}

Query Query::JointClosure(std::vector<std::string> members,
                          std::vector<JointRule> rules) {
  Query query;
  query.members_ = std::move(members);
  query.joint_rules_ = std::move(rules);
  return query;
}

Query& Query::Select(Selection sigma) {
  selection_ = sigma;
  sigma_param_ = false;
  return *this;
}

Query& Query::SelectPosition(int position) {
  selection_ = Selection{position, 0};
  sigma_param_ = true;
  return *this;
}

Query& Query::From(Relation seed) {
  seed_ = std::make_shared<const Relation>(std::move(seed));
  return *this;
}

Query& Query::FromSeeds(std::vector<Relation> seeds) {
  seeds_ = std::make_shared<const std::vector<Relation>>(std::move(seeds));
  return *this;
}

Query& Query::Force(Strategy strategy) {
  forced_ = strategy;
  return *this;
}

Status Query::Validate() const { return ValidateImpl(/*require_seed=*/true); }

Status Query::ValidateStructure() const {
  return ValidateImpl(/*require_seed=*/false);
}

Status Query::ValidateImpl(bool require_seed) const {
  if (is_joint()) {
    // Query-level structural checks; the per-rule/member checks are the
    // shared joint boundary validation (eval/joint.h ValidateJointRules).
    if (selection_.has_value() || forced_.has_value() || !rules_.empty() ||
        seed_ != nullptr) {
      return Status::InvalidArgument(
          "joint queries do not support Select, Force, From or single-"
          "predicate rules");
    }
    if (joint_rules_.empty()) {
      return Status::InvalidArgument("joint query has no rules");
    }
    if (seeds_ == nullptr) {
      if (require_seed) {
        return Status::InvalidArgument(
            "joint query has no initial relations (FromSeeds)");
      }
      return ValidateJointRuleStructure(members_, joint_rules_);
    }
    return ValidateJointRules(members_, joint_rules_, *seeds_);
  }
  if (seeds_ != nullptr || !joint_rules_.empty()) {
    return Status::InvalidArgument(
        "FromSeeds and joint rules require a Query::JointClosure");
  }
  if (rules_.empty()) {
    return Status::InvalidArgument("query has no rules");
  }
  const std::string& pred = rules_.front().recursive_predicate();
  const std::size_t arity = rules_.front().arity();
  for (const LinearRule& rule : rules_) {
    if (rule.recursive_predicate() != pred || rule.arity() != arity) {
      return Status::InvalidArgument(
          StrCat("rules mix head predicates: ", pred, "/", arity, " vs ",
                 rule.recursive_predicate(), "/", rule.arity()));
    }
  }
  if (seed_ == nullptr) {
    if (require_seed) {
      return Status::InvalidArgument("query has no initial relation (From)");
    }
  } else if (seed_->arity() != arity) {
    return Status::InvalidArgument(StrCat("seed arity ", seed_->arity(),
                                          " does not match rule arity ",
                                          arity));
  }
  if (selection_.has_value() &&
      (selection_->position < 0 ||
       selection_->position >= static_cast<int>(arity))) {
    return Status::InvalidArgument(
        StrCat("selection position ", selection_->position,
               " out of range for arity ", arity));
  }
  return Status::OK();
}

}  // namespace linrec
