#include "engine/query.h"

#include "common/strings.h"

namespace linrec {

Query Query::Closure(std::vector<LinearRule> rules) {
  Query query;
  query.rules_ = std::move(rules);
  return query;
}

Query& Query::Select(Selection sigma) {
  selection_ = sigma;
  return *this;
}

Query& Query::From(Relation seed) {
  seed_ = std::make_shared<const Relation>(std::move(seed));
  return *this;
}

Query& Query::Force(Strategy strategy) {
  forced_ = strategy;
  return *this;
}

Status Query::Validate() const {
  if (rules_.empty()) {
    return Status::InvalidArgument("query has no rules");
  }
  const std::string& pred = rules_.front().recursive_predicate();
  const std::size_t arity = rules_.front().arity();
  for (const LinearRule& rule : rules_) {
    if (rule.recursive_predicate() != pred || rule.arity() != arity) {
      return Status::InvalidArgument(
          StrCat("rules mix head predicates: ", pred, "/", arity, " vs ",
                 rule.recursive_predicate(), "/", rule.arity()));
    }
  }
  if (seed_ == nullptr) {
    return Status::InvalidArgument("query has no initial relation (From)");
  }
  if (seed_->arity() != arity) {
    return Status::InvalidArgument(StrCat("seed arity ", seed_->arity(),
                                          " does not match rule arity ",
                                          arity));
  }
  if (selection_.has_value() &&
      (selection_->position < 0 ||
       selection_->position >= static_cast<int>(arity))) {
    return Status::InvalidArgument(
        StrCat("selection position ", selection_->position,
               " out of range for arity ", arity));
  }
  return Status::OK();
}

}  // namespace linrec
