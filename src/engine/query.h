// Fluent query description: σ (Σ_i rules_i)* q.
//
// A Query says *what* to compute; Engine::Plan decides *how* from the
// rules' cached analysis. Typical use:
//
//   Engine engine(std::move(db));
//   auto plan = engine.Plan(Query::Closure({r1, r2}).Select(sigma).From(q));
//   std::cout << plan->Explain();
//   auto result = engine.Execute(*plan);

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "engine/strategy.h"
#include "eval/selection.h"
#include "storage/relation.h"

namespace linrec {

class Query {
 public:
  /// Starts a query for the closure (Σ_i rules_i)* — the least relation
  /// containing the initial relation and closed under every rule.
  static Query Closure(std::vector<LinearRule> rules);

  /// Applies σ_{position=value} to the closure. The planner pushes the
  /// selection through the closure when Theorem 4.1 licenses it, and
  /// filters the final result otherwise.
  Query& Select(Selection sigma);

  /// Sets the initial relation q (the paper's P ⊇ q seed). Required.
  Query& From(Relation seed);

  /// Overrides automatic strategy selection (e.g. Strategy::kNaive as an
  /// experiment baseline). Plan() fails if the forced strategy's
  /// preconditions do not hold.
  Query& Force(Strategy strategy);

  const std::vector<LinearRule>& rules() const { return rules_; }
  const std::optional<Selection>& selection() const { return selection_; }
  /// Requires has_seed().
  const Relation& seed() const { return *seed_; }
  bool has_seed() const { return seed_ != nullptr; }
  /// The seed is shared (immutable) between the query and its plans, so
  /// planning never copies the relation.
  const std::shared_ptr<const Relation>& shared_seed() const { return seed_; }
  const std::optional<Strategy>& forced_strategy() const { return forced_; }

  /// Structural checks: at least one rule, all rules over one head
  /// predicate/arity, a seed of that arity, selection position in range.
  Status Validate() const;

 private:
  std::vector<LinearRule> rules_;
  std::optional<Selection> selection_;
  std::shared_ptr<const Relation> seed_;
  std::optional<Strategy> forced_;
};

}  // namespace linrec
