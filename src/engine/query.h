// Fluent query description: σ (Σ_i rules_i)* q.
//
// A Query says *what* to compute; Engine::Plan decides *how* from the
// rules' cached analysis. Typical use:
//
//   Engine engine(std::move(db));
//   auto prepared = engine.Prepare(
//       Query::Closure({r1, r2}).SelectPosition(0));
//   std::cout << prepared->plan().Explain();
//   auto result = engine.Execute(prepared->Bind(v).BindSeed(q));

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "engine/strategy.h"
#include "eval/joint.h"
#include "eval/selection.h"
#include "storage/relation.h"

namespace linrec {

class Query {
 public:
  /// Starts a query for the closure (Σ_i rules_i)* — the least relation
  /// containing the initial relation and closed under every rule.
  static Query Closure(std::vector<LinearRule> rules);

  /// Starts a joint query: the least relations P_0..P_{M-1} (one per
  /// member predicate of a strongly connected component) jointly closed
  /// under mutually recursive linear rules. Seed with FromSeeds (or bind
  /// seeds per execution with BoundQuery::BindSeeds). Selections and Force
  /// are not supported on joint queries.
  static Query JointClosure(std::vector<std::string> members,
                            std::vector<JointRule> rules);

  /// Applies σ_{position=value} to the closure. The planner pushes the
  /// selection through the closure when Theorem 4.1 licenses it, and
  /// filters the final result otherwise.
  Query& Select(Selection sigma);

  /// Declares a σ bind parameter: the selection *position* (the structural
  /// part the planner reads) without a value. The value is bound per
  /// execution via PreparedQuery::Bind — the prepared form of a σ-sweep
  /// (Theorem 4.1's workload) plans once and binds many times. A query with
  /// an unbound σ can be Prepared but not Executed directly.
  Query& SelectPosition(int position);

  /// Sets the initial relation q (the paper's P ⊇ q seed). Required for
  /// single-predicate closures.
  Query& From(Relation seed);

  /// Sets the per-member initial relations of a joint query (one per
  /// member, in member order). Required for joint closures.
  Query& FromSeeds(std::vector<Relation> seeds);

  /// Overrides automatic strategy selection (e.g. Strategy::kNaive as an
  /// experiment baseline). Plan() fails if the forced strategy's
  /// preconditions do not hold.
  Query& Force(Strategy strategy);

  const std::vector<LinearRule>& rules() const { return rules_; }
  /// The selection, if any. When has_sigma_param() the value field is a
  /// placeholder (0) — only the position is meaningful.
  const std::optional<Selection>& selection() const { return selection_; }
  /// True iff σ was declared as a bind parameter (SelectPosition): the
  /// position is fixed, the value arrives at Bind time.
  bool has_sigma_param() const { return sigma_param_; }
  /// The σ position, if a selection (bound or parameterized) is present.
  std::optional<int> sigma_position() const {
    return selection_.has_value() ? std::optional<int>(selection_->position)
                                  : std::nullopt;
  }
  /// The σ value, if a *bound* selection is present (empty for a σ
  /// parameter).
  std::optional<Value> sigma_value() const {
    return selection_.has_value() && !sigma_param_
               ? std::optional<Value>(selection_->value)
               : std::nullopt;
  }
  /// Requires has_seed().
  const Relation& seed() const { return *seed_; }
  bool has_seed() const { return seed_ != nullptr; }
  /// The seed is shared (immutable) between the query and its plans, so
  /// planning never copies the relation.
  const std::shared_ptr<const Relation>& shared_seed() const { return seed_; }
  const std::optional<Strategy>& forced_strategy() const { return forced_; }

  /// True iff this is a joint (multi-predicate) query.
  bool is_joint() const { return !members_.empty(); }
  const std::vector<std::string>& members() const { return members_; }
  const std::vector<JointRule>& joint_rules() const { return joint_rules_; }
  bool has_seeds() const { return seeds_ != nullptr; }
  /// Requires has_seeds(). Shared (immutable) between the query and its
  /// plans, like the single-predicate seed.
  const std::shared_ptr<const std::vector<Relation>>& shared_seeds() const {
    return seeds_;
  }

  /// Structural checks: at least one rule, all rules over one head
  /// predicate/arity, a seed of that arity, selection position in range.
  /// Joint queries check instead: distinct members, one seed per member,
  /// every rule headed by its member with exactly one member atom in the
  /// body (the recursive atom), arities consistent; selections and forced
  /// strategies are rejected.
  Status Validate() const;

  /// Validate minus the seed-presence requirement: what Engine::Prepare
  /// checks. A prepared query is seedless by design — seeds arrive per
  /// execution via BoundQuery::BindSeed(s) — but a seed given anyway (the
  /// migration path: Prepare(old_query)) is still checked for arity.
  Status ValidateStructure() const;

 private:
  Status ValidateImpl(bool require_seed) const;
  std::vector<LinearRule> rules_;
  std::optional<Selection> selection_;
  /// True ⇒ selection_->value is a placeholder (σ declared by position only).
  bool sigma_param_ = false;
  std::shared_ptr<const Relation> seed_;
  std::optional<Strategy> forced_;
  // Joint-query state (is_joint() == !members_.empty()).
  std::vector<std::string> members_;
  std::vector<JointRule> joint_rules_;
  std::shared_ptr<const std::vector<Relation>> seeds_;
};

}  // namespace linrec
