// ExecutionPlan: the compiled, explainable strategy choice for one Query.
//
// A plan is self-contained — it carries the rules, the seed, the strategy
// and every parameter the executor needs — so it can be inspected
// (Explain()), cached, or executed repeatedly against the engine's
// (possibly updated) database.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datalog/rule.h"
#include "engine/strategy.h"
#include "eval/joint.h"
#include "eval/selection.h"
#include "redundancy/factorize.h"
#include "storage/relation.h"

namespace linrec {

struct ExecutionPlan {
  Strategy strategy = Strategy::kSemiNaive;
  /// The planned rule vector, in query order.
  std::vector<LinearRule> rules;
  /// kDecomposed: groups of indices into `rules`. The product
  /// G_1* G_2* ... G_k* applies the last group first (operator order).
  std::vector<std::vector<int>> groups;
  /// kSeparable: indices of the σ-commuting rules (the outer closure A)
  /// and of the rest (the inner closure B; may be empty for full pushdown).
  std::vector<int> outer;
  std::vector<int> inner;
  /// The query's selection, if any.
  std::optional<Selection> selection;
  /// True while `selection->value` is an unbound placeholder: the plan was
  /// compiled against the σ *position* only (planning never reads the
  /// value — Theorem 4.1's preconditions are positional), so one plan
  /// serves every selection constant. Prepared/cached plans stay in this
  /// state; binding a value (PreparedQuery::Bind, or re-attaching the
  /// query's σ on a plan-cache hit) clears the flag. Executing a plan with
  /// the flag still set is an error — the σ value must flow in at execute
  /// time, never be baked in at plan time.
  bool sigma_parameterized = false;
  /// True when the strategy evaluates the selection internally
  /// (kSeparable); false ⇒ σ filters the final result.
  bool selection_pushed = false;
  /// kPowerSum: A* = Σ_{m=0}^{power_bound} A^m (Section 4.2).
  int power_bound = -1;
  /// Redundancy elision (Theorems 6.3/6.4): when set, execution routes
  /// through RedundantClosure so the elided predicates are applied a
  /// bounded number of times instead of once per iteration.
  std::optional<RedundantFactorization> factorization;
  /// Predicates elided by the factorization (from the bounded bridges).
  std::vector<std::string> elided_predicates;
  /// Resolved worker count the executor will use (from
  /// EngineOptions::parallel_workers via ResolveWorkers): 1 = serial,
  /// >= 2 = intra-round Δ-partition parallelism (plus group-level
  /// parallelism for kDecomposed).
  int parallel_workers = 1;
  /// Theorem-level reasons for the choice, in planning order.
  std::vector<std::string> justification;
  /// True when this plan was served from the engine's plan cache (same
  /// rule-set digest, selection and forced strategy as a prior query).
  bool from_plan_cache = false;
  /// The initial relation q, shared immutably with the originating Query
  /// (planning never copies the relation).
  std::shared_ptr<const Relation> seed;
  /// kJointSemiNaive: the member predicate names of the strongly connected
  /// component, the joint rules over them (eval/joint.h), and the
  /// per-member seeds (shared with the Query like `seed`). Executing a
  /// joint BoundQuery yields a QueryResult with one relation per member.
  std::vector<std::string> members;
  std::vector<JointRule> joint_rules;
  std::shared_ptr<const std::vector<Relation>> joint_seeds;

  /// Rules at `indices`, in order.
  std::vector<LinearRule> RulesOf(const std::vector<int>& indices) const;

  /// Multi-line human-readable rendering: the strategy, the rules, the
  /// grouping/split, the selection placement, and the justification.
  std::string Explain() const;
};

}  // namespace linrec
