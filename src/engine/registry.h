// DigestRegistry: a digest-keyed, single-flight registry of compiled
// artifacts (prepared programs, in the server's case).
//
// The engine's plan cache deduplicates *queries* by structural digest; the
// registry lifts the same idea one level up, to whole compiled programs:
// GetOrCompile(digest, factory) runs `factory` exactly once per digest,
// however many sessions submit the same program text concurrently, and
// every caller shares one immutable compiled artifact. Because the factory
// funnels all Engine::Prepare calls of a program through one place, N
// sessions loading the same program cost exactly one plan-cache miss per
// distinct query structure — the serving-path guarantee the front door is
// built on.
//
// The registry is a header-only template so src/engine/ never depends on
// the types compiled into it (the server instantiates it with the
// frontend's CompiledProgram).
//
// Everything behind mu_ — the entry table and the hit/miss ledger — is
// annotated LINREC_GUARDED_BY, so an unlocked fast path added later fails
// the thread-safety build instead of the next TSan lottery.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace linrec {

template <typename T>
class DigestRegistry {
 public:
  using Factory = std::function<Result<T>()>;

  /// Returns the artifact registered under `digest`, running `factory` to
  /// compile it on first use. Single-flight: the registry mutex is held
  /// across the factory, so concurrent callers with the same digest block
  /// until the first compile finishes and then share its result — the
  /// factory never runs twice for one digest. A failing factory registers
  /// nothing (the next caller retries). The factory must not call back
  /// into this registry (LINREC_EXCLUDES: re-entry deadlocks).
  Result<std::shared_ptr<const T>> GetOrCompile(const std::string& digest,
                                                const Factory& factory)
      LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = entries_.find(digest);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    Result<T> compiled = factory();
    if (!compiled.ok()) return compiled.status();
    auto entry = std::make_shared<const T>(std::move(*compiled));
    entries_.emplace(digest, entry);
    return entry;
  }

  /// Returns the artifact under `digest`, or null if absent (no counter
  /// movement — a pure probe).
  std::shared_ptr<const T> Find(const std::string& digest) const
      LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = entries_.find(digest);
    return it == entries_.end() ? nullptr : it->second;
  }

  std::size_t size() const LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_.size();
  }
  std::size_t hits() const LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return hits_;
  }
  std::size_t misses() const LINREC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return misses_;
  }

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const T>> entries_
      LINREC_GUARDED_BY(mu_);
  std::size_t hits_ LINREC_GUARDED_BY(mu_) = 0;
  std::size_t misses_ LINREC_GUARDED_BY(mu_) = 0;
};

}  // namespace linrec
