// Memoized per-rule and pairwise analysis backing Engine plan selection.
//
// The planner consults the same theorems for every query over a rule —
// variable classes (Section 5.1), the pairwise commutativity verdict
// (Theorems 5.1/5.2), recursively redundant predicates (Theorem 6.3) and
// whole-operator uniform boundedness (Section 4.2). AnalysisCache computes
// each of them at most once per rule (or rule pair), keyed on the rule's
// canonical text form.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "analysis/classify.h"
#include "commutativity/oracle.h"
#include "common/status.h"
#include "datalog/rule.h"
#include "datalog/traits.h"
#include "redundancy/analyze.h"
#include "redundancy/boundedness.h"

namespace linrec {

/// Everything the planner knows about one linear rule, computed once.
struct RuleInfo {
  explicit RuleInfo(LinearRule r) : rule(std::move(r)) {}

  LinearRule rule;
  /// Canonical text form; the memoization key (identical text implies
  /// identical analysis).
  std::string key;
  RuleTraits traits;
  /// ValidateForAnalysis passed, so the α-graph artifacts below exist.
  bool analyzable = false;
  /// First violated precondition when !analyzable.
  std::string analysis_blocked;
  /// Variable classes / h function (only when analyzable).
  std::optional<Classification> classes;
  /// Theorem 6.3 bridge report (only when analyzable).
  std::optional<RedundancyReport> redundancy;
  /// Budgeted whole-operator uniform boundedness (Section 4.2):
  /// found ⇒ A* = Σ_{m<n} A^m.
  ExponentSearch uniform_bound;
  /// The budgeted searches (redundancy, uniform_bound) have run. They are
  /// computed lazily: only single-rule plans can use them.
  bool budgeted_searches_done = false;

  bool HasRedundantPredicates() const {
    return redundancy.has_value() && !redundancy->redundant_predicates.empty();
  }
};

/// Computes and memoizes RuleInfo per rule and the combined-oracle
/// commutativity verdict per unordered rule pair.
class AnalysisCache {
 public:
  /// `max_power` budgets the torsion / uniform-boundedness searches
  /// (0 disables them: uniform_bound.found and redundancy stay unset).
  explicit AnalysisCache(int max_power = 6) : max_power_(max_power) {}

  /// Cached info for `rule`, computed on first sight. The pointer stays
  /// valid for the cache's lifetime. The budgeted searches (redundancy
  /// bridges, uniform boundedness) run only when `budgeted_searches` is
  /// requested — they cost up to max_power symbolic rule powers each and
  /// only single-rule plans consult them.
  Result<const RuleInfo*> Info(const LinearRule& rule,
                               bool budgeted_searches = false);

  /// Memoized combined-oracle verdict (commutativity is symmetric, so the
  /// pair is cached unordered).
  Result<CommutativityReport> Commutes(const LinearRule& r1,
                                       const LinearRule& r2);

  int max_power() const { return max_power_; }
  std::size_t rule_entries() const { return rules_.size(); }
  std::size_t pair_entries() const { return pairs_.size(); }

 private:
  int max_power_;
  std::unordered_map<std::string, std::unique_ptr<RuleInfo>> rules_;
  std::unordered_map<std::string, CommutativityReport> pairs_;
};

}  // namespace linrec
