// Prepared queries: compile once, bind and run many times.
//
// Engine::Prepare compiles a Query's *structure* — rules, σ position,
// forced strategy — into a seedless, σ-parameterized ExecutionPlan and
// hands back a PreparedQuery owning it. Bind calls stamp out lightweight
// BoundQuery handles (a shared pointer to the plan plus the per-execution
// σ value and seed relations); Engine::Execute(BoundQuery) runs one,
// Engine::ExecuteBatch runs many concurrently on the shared worker pool.
// Planning happens exactly once however many values are swept:
//
//   auto prepared = engine.Prepare(
//       Query::Closure({r1, r2}).SelectPosition(0));
//   std::vector<BoundQuery> batch;
//   for (Value v : constants)
//     batch.push_back(prepared->Bind(v).BindSeed(seed));
//   auto results = engine.ExecuteBatch(batch);   // one QueryResult each
//
// Every execution path reports through one result type, QueryResult: the
// closed relation(s) plus that execution's own ClosureStats.

#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/memory.h"
#include "common/status.h"
#include "engine/plan.h"
#include "eval/stats.h"
#include "storage/relation.h"

namespace linrec {

/// The unified result of one query execution.
///
/// Single-predicate plans produce exactly one relation; joint plans
/// (Strategy::kJointSemiNaive) produce one per member, in member order.
/// `stats` is this execution's own record — the engine-global accumulator
/// (Engine::stats()) still aggregates across executions, but callers no
/// longer need to Reset/diff it to attribute work to a query.
struct QueryResult {
  /// The closed relation(s): size 1 unless `joint`.
  std::vector<Relation> relations;
  /// Per-execution counters (derivations, duplicates, rounds, wall time).
  ClosureStats stats;
  /// True iff this result came from a joint plan (member-ordered
  /// relations).
  bool joint = false;

  /// The single result relation. Requires a single-predicate result
  /// (asserted); joint results are read through `relations`.
  Relation& relation() {
    assert(!joint && relations.size() == 1);
    return relations.front();
  }
  const Relation& relation() const {
    assert(!joint && relations.size() == 1);
    return relations.front();
  }
};

class BoundQuery;

/// A compiled, reusable query: the seedless, σ-parameterized plan plus the
/// binding surface. Immutable and cheaply copyable (the plan is shared);
/// safe to Bind from concurrently.
class PreparedQuery {
 public:
  /// The underlying parameterized plan (seedless; σ value unbound when
  /// has_sigma_param()). Explain() works as usual.
  const ExecutionPlan& plan() const { return *plan_; }
  bool is_joint() const {
    return plan_->strategy == Strategy::kJointSemiNaive;
  }
  /// True iff the plan carries a σ whose value is bound per execution.
  bool has_sigma_param() const { return sigma_position_.has_value(); }
  /// The σ position fixed at Prepare time, if any.
  const std::optional<int>& sigma_position() const { return sigma_position_; }

  /// Binds the σ parameter to `sigma_value`. Requires has_sigma_param();
  /// misuse is deferred to BoundQuery::Validate / Engine::Execute (fluent
  /// chains cannot return a Status).
  BoundQuery Bind(Value sigma_value) const;

  /// Binds nothing: valid when the prepared query has no σ, and also when
  /// the Query handed to Prepare carried a *bound* σ (its value becomes the
  /// default binding, so migrating callers keep their one-line flow).
  BoundQuery Bind() const;

 private:
  friend class Engine;
  PreparedQuery(std::shared_ptr<const ExecutionPlan> plan,
                std::optional<int> sigma_position,
                std::optional<Value> default_sigma_value)
      : plan_(std::move(plan)),
        sigma_position_(sigma_position),
        default_sigma_value_(default_sigma_value) {}

  std::shared_ptr<const ExecutionPlan> plan_;
  std::optional<int> sigma_position_;
  /// Engaged when Prepare was given a bound σ: Bind() with no argument
  /// reuses it.
  std::optional<Value> default_sigma_value_;
};

/// One executable instance of a PreparedQuery: the shared plan plus this
/// execution's σ value and seed relation(s). Lightweight — copying a
/// BoundQuery copies two shared pointers and a Selection, never a relation.
class BoundQuery {
 public:
  /// Sets the initial relation q of a single-predicate execution. The
  /// relation is shared immutably, like Query::From.
  BoundQuery& BindSeed(Relation seed);
  BoundQuery& BindSeed(std::shared_ptr<const Relation> seed);

  /// Sets the per-member initial relations of a joint execution (member
  /// order).
  BoundQuery& BindSeeds(std::vector<Relation> seeds);
  BoundQuery& BindSeeds(std::shared_ptr<const std::vector<Relation>> seeds);

  /// Attaches a cancellation token checked at round boundaries of this
  /// execution. Not owned: the token must outlive the execution. A null
  /// token (the default) never cancels. The token never reaches the plan
  /// cache — cancellation is a property of the binding, not the plan.
  BoundQuery& WithCancellation(const CancellationToken* cancel) {
    cancel_ = cancel;
    return *this;
  }

  /// Attaches a memory budget charged by this execution's relation growth
  /// (pool growth + dedup rehash). Not owned: the budget must outlive the
  /// execution. A null budget (the default) means ungoverned. Like the
  /// cancellation token, the budget is a property of the binding and never
  /// reaches the plan cache.
  BoundQuery& WithBudget(QueryBudget* budget) {
    budget_ = budget;
    return *this;
  }

  const std::shared_ptr<const ExecutionPlan>& plan() const { return plan_; }
  /// The fully bound selection, if the prepared query had a σ parameter or
  /// default value.
  const std::optional<Selection>& selection() const { return selection_; }
  const std::shared_ptr<const Relation>& seed() const { return seed_; }
  const std::shared_ptr<const std::vector<Relation>>& seeds() const {
    return seeds_;
  }
  const CancellationToken* cancel() const { return cancel_; }
  QueryBudget* budget() const { return budget_; }

  /// Checks the binding is complete and coherent: a plan is attached, any
  /// deferred Bind misuse surfaces here, σ is bound iff the plan is
  /// parameterized, the right seed shape is attached and its arity matches
  /// the plan. Engine::Execute/ExecuteBatch call this first.
  Status Validate() const;

  /// Materializes the executable plan: a copy of the prepared plan with
  /// this binding's seed(s) attached and the σ value substituted
  /// (clearing ExecutionPlan::sigma_parameterized). Requires Validate().
  ExecutionPlan ToPlan() const;

 private:
  friend class PreparedQuery;
  std::shared_ptr<const ExecutionPlan> plan_;
  std::optional<Selection> selection_;
  std::shared_ptr<const Relation> seed_;
  std::shared_ptr<const std::vector<Relation>> seeds_;
  const CancellationToken* cancel_ = nullptr;
  QueryBudget* budget_ = nullptr;
  /// First misuse of the fluent surface (Bind(v) without a σ parameter,
  /// BindSeed on a joint plan, ...), reported by Validate.
  Status error_ = Status::OK();
};

}  // namespace linrec
