#include "common/memory.h"

#include "common/strings.h"

namespace linrec {

namespace {
thread_local QueryBudget* g_current_budget = nullptr;
}  // namespace

void QueryBudget::Charge(std::size_t bytes) {
  const std::size_t total =
      charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && total > limit_) {
    // Roll back: the destructor releases charged() from the parent, which
    // must match only the charges the parent actually accepted below.
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
    throw ResourceExhaustedError(
        StrCat("query memory budget exhausted: would use ", total,
               " bytes of ", limit_, " allowed"));
  }
  if (parent_ != nullptr && !parent_->TryCharge(bytes)) {
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
    throw ResourceExhaustedError(
        StrCat("global memory budget exhausted: ", parent_->used(),
               " bytes in flight of ", parent_->limit(), " allowed"));
  }
}

QueryBudget* CurrentQueryBudget() { return g_current_budget; }

ScopedQueryBudget::ScopedQueryBudget(QueryBudget* budget)
    : previous_(g_current_budget) {
  g_current_budget = budget;
}

ScopedQueryBudget::~ScopedQueryBudget() { g_current_budget = previous_; }

void ChargeBytesOrThrow(std::size_t bytes, FaultSite site) {
  if (FaultFires(site)) {
    throw ResourceExhaustedError(
        StrCat("injected allocation failure at ", FaultSiteName(site),
               " (hit ", FaultInjector::Instance().last_fired_hit(site), ")"));
  }
  QueryBudget* budget = g_current_budget;
  if (budget != nullptr && bytes != 0) budget->Charge(bytes);
}

}  // namespace linrec
