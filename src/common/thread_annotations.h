// Clang Thread Safety Analysis: annotation macros and annotated
// synchronization primitives.
//
// The repo's concurrency invariants — which mutex guards the plan cache,
// the shared index tier, the worker-pool batch state, the watchdog table —
// used to live in comments and in whatever schedules the TSan job happened
// to execute. These macros move them into the type system: a field tagged
// LINREC_GUARDED_BY(mu_) cannot be touched without holding mu_, a method
// tagged LINREC_REQUIRES(mu_) cannot be called without it, and the CI
// `-Werror=thread-safety` Clang job turns every violation into a compile
// error. Under GCC (and every non-Clang compiler) the macros expand to
// nothing, so the annotations cost exactly zero outside analysis builds.
//
// The analysis only understands capabilities it can see, so std::mutex /
// std::lock_guard / std::condition_variable are replaced at every locking
// site by the wrappers below:
//
//   linrec::Mutex      — std::mutex with the capability attribute.
//   linrec::MutexLock  — scoped lock (std::lock_guard shape) the analyzer
//                        tracks as acquiring/releasing its Mutex.
//   linrec::CondVar    — std::condition_variable bound to a Mutex. Waits
//                        take the Mutex explicitly and are annotated
//                        LINREC_REQUIRES(mu), so a wait outside the lock is
//                        a compile error. There is deliberately NO
//                        predicate-taking Wait: the analysis cannot see
//                        that a predicate lambda runs with the lock held,
//                        so guarded reads inside one would (rightly) fail
//                        the build. Callers write the explicit loop:
//
//                          MutexLock lock(mu_);
//                          while (!ready_) cv_.Wait(mu_);
//
// Annotation conventions used across the repo (see CONTRIBUTING.md):
//   - Every guarded field carries LINREC_GUARDED_BY(mu) (or
//     LINREC_PT_GUARDED_BY for pointees) naming the mutex declared in the
//     same class.
//   - Private methods that assume the lock is held are LINREC_REQUIRES(mu)
//     instead of re-locking.
//   - Public entry points that take the lock themselves are
//     LINREC_EXCLUDES(mu) where re-entry would deadlock.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define LINREC_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define LINREC_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability ("mutex") the analysis tracks.
#define LINREC_CAPABILITY(x) LINREC_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define LINREC_SCOPED_CAPABILITY LINREC_THREAD_ANNOTATION__(scoped_lockable)

/// The annotated data member may only be accessed while holding `x`.
#define LINREC_GUARDED_BY(x) LINREC_THREAD_ANNOTATION__(guarded_by(x))

/// The data the annotated pointer points at may only be accessed while
/// holding `x` (the pointer itself is unguarded).
#define LINREC_PT_GUARDED_BY(x) LINREC_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The annotated function may only be called while holding the listed
/// capabilities (callers lock; the function does not).
#define LINREC_REQUIRES(...) \
  LINREC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities and returns
/// holding them.
#define LINREC_ACQUIRE(...) \
  LINREC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities.
#define LINREC_RELEASE(...) \
  LINREC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The annotated function must NOT be called while holding the listed
/// capabilities (it acquires them itself; re-entry would deadlock).
#define LINREC_EXCLUDES(...) LINREC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the given capability.
#define LINREC_RETURN_CAPABILITY(x) LINREC_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Used only where
/// the safety argument is external to what the analyzer can see (document
/// it at the use site).
#define LINREC_NO_THREAD_SAFETY_ANALYSIS \
  LINREC_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace linrec {

/// std::mutex carrying the TSA capability attribute. Lock/Unlock exist for
/// the analysis (and for CondVar); almost every use site should be a
/// scoped MutexLock.
class LINREC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LINREC_ACQUIRE() { mu_.lock(); }
  void Unlock() LINREC_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over a Mutex — the std::lock_guard of the annotated world.
/// The analyzer treats construction as acquiring `mu` and scope exit as
/// releasing it, so every guarded access inside the scope checks out.
class LINREC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LINREC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() LINREC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to a Mutex at each wait. Implemented over
/// std::condition_variable (not _any) by adopting the Mutex's underlying
/// std::mutex for the duration of the wait — same codegen as a plain
/// condition_variable wait, no extra locking layer.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified (or spuriously
  /// woken); reacquires `mu` before returning. Callers loop on their
  /// guarded predicate.
  void Wait(Mutex& mu) LINREC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the Mutex
  }

  /// Wait with a timeout; returns false if the wait timed out (like
  /// std::cv_status::timeout), true if notified/spuriously woken. Callers
  /// re-check their guarded predicate either way.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      LINREC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status != std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace linrec
