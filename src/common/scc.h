// Iterative Tarjan strongly-connected-components condensation.
//
// Used by EvaluateProgram to order predicate evaluation: the predicate
// dependency graph is condensed into SCCs, singleton components run the
// per-predicate engine path, and non-trivial components are closed jointly
// (eval/joint.h). The implementation is fully iterative — an explicit
// frame stack replaces the DFS call stack — so dependency chains of
// hundreds of thousands of nodes cannot overflow the thread stack.

#pragma once

#include <vector>

namespace linrec {

/// Strongly connected components of the directed graph `adjacency`
/// (adjacency[u] lists the successors of node u; out-of-range successor
/// ids are ignored). With the convention that an edge u → v means
/// "u depends on v", components are returned in dependency-first
/// (reverse topological) order: every component a component depends on
/// appears earlier in the result. Node ids inside each component are
/// sorted ascending. Self-loops make a singleton component cyclic but do
/// not change the partition.
std::vector<std::vector<int>> StronglyConnectedComponents(
    const std::vector<std::vector<int>>& adjacency);

}  // namespace linrec
