// Small string helpers used by the parser, printer and diagnostics.

#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace linrec {

/// Joins `parts` with `sep`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// printf-free concatenation: StrCat(1, "+", 2.5) == "1+2.5".
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

}  // namespace linrec
