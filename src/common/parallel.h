// A minimal work-stealing worker pool for intra-round parallelism.
//
// The pool model is deliberately simple: a Run() call publishes a batch of
// `chunks` independent work items; every participating thread (the caller
// plus the pool's helper threads) repeatedly claims the next unclaimed chunk
// through one shared atomic counter until the batch is drained. Dynamic
// claiming is what balances skewed chunks — a thread that finishes early
// immediately steals the next chunk instead of idling at a static split.
//
// Threads persist across Run() calls, so a semi-naive closure that executes
// hundreds of rounds pays thread creation once, not once per round.
//
// Lock discipline (statically enforced, see common/thread_annotations.h):
// all batch hand-off state — the published function, chunk count,
// generation stamp, helper countdown, stop flag — is guarded by mutex_;
// only the chunk-claim counter is lock-free (an atomic on its own cache
// line, hammered by every lane mid-batch).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace linrec {

/// Resolves a caller-facing worker count: 0 means "one lane per hardware
/// thread" (hardware_concurrency, at least 1); any positive value is taken
/// literally; negative values clamp to 1. Serial execution is workers == 1.
int ResolveWorkers(int workers);

/// A fixed-size pool of helper threads plus the calling thread, draining
/// chunk batches via an atomic work-stealing counter.
///
/// `lanes` is the logical parallelism callers size their per-lane state
/// (output pools, index caches) for. The pool never runs more OS threads
/// than the host has hardware threads — oversubscribing a small machine
/// with sleeping helpers would add context-switch cost to every round
/// barrier without adding parallelism — so on an H-way host at most
/// min(lanes, H) threads participate (helpers are lanes 1..k; the Run()
/// caller is always lane 0 and always participates).
class WorkerPool {
 public:
  explicit WorkerPool(int lanes);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Logical lane count (the value passed to the constructor, >= 1).
  int lanes() const { return lanes_; }
  /// Actual participating threads: helpers + the caller. <= lanes().
  int participants() const { return static_cast<int>(threads_.size()) + 1; }

  /// Runs fn(lane, chunk) for every chunk in [0, chunks). Chunks are
  /// claimed dynamically; `lane` identifies the executing thread (0 = the
  /// caller), so fn may use lane-indexed scratch without locking. Blocks
  /// until the batch is drained. Exceptions thrown by fn are caught and
  /// swallowed per chunk — fn must report failures through its own
  /// lane-indexed state (closure code records a Status per lane).
  void Run(std::size_t chunks,
           const std::function<void(int, std::size_t)>& fn)
      LINREC_EXCLUDES(mutex_);

  /// Test hook: overrides the hardware-thread cap on helper threads so a
  /// single-core CI host can still exercise true cross-thread execution.
  /// 0 restores the hardware cap. Affects pools constructed afterwards.
  static void OverrideThreadCapForTesting(int cap);

 private:
  void HelperLoop(int lane) LINREC_EXCLUDES(mutex_);

  int lanes_;
  /// Helper threads; written once in the constructor, joined in the
  /// destructor after stopping_ is published — never touched mid-batch.
  std::vector<std::thread> threads_;

  Mutex mutex_;
  /// Signals helpers that a new batch (generation_ moved) or stop was
  /// published under mutex_.
  CondVar work_ready_;
  /// Signals the Run() caller that active_helpers_ hit zero.
  CondVar batch_done_;
  const std::function<void(int, std::size_t)>* fn_
      LINREC_GUARDED_BY(mutex_) = nullptr;
  std::size_t chunk_count_ LINREC_GUARDED_BY(mutex_) = 0;
  /// Own cache line: every lane hammers this with fetch_add while stealing
  /// chunks; sharing its line with the batch bookkeeping the main thread
  /// reads would false-share the hottest counter in a parallel round.
  alignas(64) std::atomic<std::size_t> next_chunk_{0};  // lint: hot-atomic
  std::uint64_t generation_ LINREC_GUARDED_BY(mutex_) = 0;
  int active_helpers_ LINREC_GUARDED_BY(mutex_) = 0;
  bool stopping_ LINREC_GUARDED_BY(mutex_) = false;
};

}  // namespace linrec
