// The vector scan kernels. Include this header ONLY from a translation
// unit that may legitimately be compiled with widened ISA flags (today:
// storage/relation.cc and eval/apply.cc — see LINREC_SIMD_AVX2 in
// CMakeLists.txt). Everything here has internal linkage, so each TU gets
// its own copy compiled with its own flags and the linker can never leak
// an AVX2 instantiation into a baseline TU.
//
// Implementation notes:
//  * GCC/Clang generic vector extensions, no intrinsics: the same source
//    lowers to SSE2 pairs on baseline x86-64, single 256-bit ops under
//    -mavx2, and scalar code on any other target.
//  * All loads are unaligned-capable (the aligned(8) typedef); the pool
//    allocator's 32-byte alignment makes the common case aligned anyway.
//  * Tail blocks are loaded FULL and masked in the result, never in the
//    load: Relation pads every pool capacity to a kLanes-row multiple
//    (simd::kPadRows), so the over-read stays inside the allocation.
//    Callers must only hand these kernels pointers into a Relation pool
//    (or another buffer padded the same way).

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

#if LINREC_SIMD

namespace linrec {
namespace simd {
namespace {

typedef std::int64_t VecI64 __attribute__((vector_size(32)));
typedef std::int64_t VecI64Unaligned
    __attribute__((vector_size(32), aligned(8)));

inline VecI64 LoadU(const std::int64_t* p) {
  return *reinterpret_cast<const VecI64Unaligned*>(p);
}

inline VecI64 Broadcast(std::int64_t v) { return VecI64{v, v, v, v}; }

/// One block (kLanes rows) of a strided column as a vector. stride 1 is a
/// straight load; stride 2 (the ubiquitous binary-relation case) is two
/// loads and a compile-time de-interleave; wider strides gather by scalar
/// insert — still one vector compare per four rows downstream.
inline VecI64 GatherColumn(const std::int64_t* col, std::size_t stride) {
  if (stride == 1) return LoadU(col);
  if (stride == 2) {
    VecI64 lo = LoadU(col);      // rows 0,1: lanes 0 and 2
    VecI64 hi = LoadU(col + 4);  // rows 2,3: lanes 0 and 2
    return __builtin_shufflevector(lo, hi, 0, 2, 4, 6);
  }
  return VecI64{col[0], col[stride], col[2 * stride], col[3 * stride]};
}

/// Equality mask of one full block: bit i set iff col[i * stride] == v.
/// Reads kLanes rows unconditionally (see the tail-padding note above).
inline unsigned BlockEqMask(const std::int64_t* col, std::size_t stride,
                            std::int64_t v) {
  VecI64 eq = GatherColumn(col, stride) == Broadcast(v);
  return static_cast<unsigned>((eq[0] & 1) | ((eq[1] & 1) << 1) |
                               ((eq[2] & 1) << 2) | ((eq[3] & 1) << 3));
}

/// Counts rows whose strided column equals v — the σ count pass. Equal
/// lanes compare to -1, so subtracting the compare vector from a running
/// accumulator counts all four lanes in one op; the horizontal fold
/// happens once at the end, and the partial tail block is masked.
inline std::size_t CountEqStrided(const std::int64_t* col, std::size_t stride,
                                  std::size_t rows, std::int64_t v) {
  const std::size_t blocks = rows / kLanes;
  const VecI64 target = Broadcast(v);
  VecI64 acc = {0, 0, 0, 0};
  if (stride == 1) {
    for (std::size_t b = 0; b < blocks; ++b) {
      acc -= (LoadU(col + b * kLanes) == target);
    }
  } else if (stride == 2) {
    for (std::size_t b = 0; b < blocks; ++b) {
      VecI64 lo = LoadU(col + b * 8);
      VecI64 hi = LoadU(col + b * 8 + 4);
      acc -= (__builtin_shufflevector(lo, hi, 0, 2, 4, 6) == target);
    }
  } else {
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::int64_t* p = col + b * kLanes * stride;
      VecI64 lanes = {p[0], p[stride], p[2 * stride], p[3 * stride]};
      acc -= (lanes == target);
    }
  }
  std::size_t matches =
      static_cast<std::size_t>(acc[0] + acc[1] + acc[2] + acc[3]);
  const std::size_t tail = rows % kLanes;
  if (tail != 0) {
    const unsigned mask =
        BlockEqMask(col + blocks * kLanes * stride, stride, v) &
        ((1u << tail) - 1u);
    matches += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  return matches;
}

}  // namespace
}  // namespace simd
}  // namespace linrec

#endif  // LINREC_SIMD
