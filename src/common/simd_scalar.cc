// Scalar reference kernels for the SIMD scans. This TU is compiled WITHOUT
// the widened ISA flags the kernel TUs may get (see LINREC_SIMD_AVX2), so
// these loops stay the honest portable baseline: what a scalar-fallback
// build runs, and what the scan_sigma microbench measures the vector
// kernels against.

#include "common/simd.h"

namespace linrec {
namespace simd {

std::size_t CountEqStridedScalar(const std::int64_t* col, std::size_t stride,
                                 std::size_t rows, std::int64_t v) {
  std::size_t matches = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    matches += static_cast<std::size_t>(col[i * stride] == v);
  }
  return matches;
}

unsigned BlockEqMaskScalar(const std::int64_t* col, std::size_t stride,
                           std::int64_t v) {
  unsigned mask = 0;
  for (std::size_t i = 0; i < kLanes; ++i) {
    mask |= static_cast<unsigned>(col[i * stride] == v) << i;
  }
  return mask;
}

}  // namespace simd
}  // namespace linrec
