// Hashing helpers shared across linrec containers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace linrec {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline void HashCombine(std::size_t* seed, std::size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hashes a contiguous range of integral values.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (It it = first; it != last; ++it) {
    HashCombine(&seed, std::hash<std::int64_t>{}(static_cast<std::int64_t>(*it)));
  }
  return seed;
}

}  // namespace linrec
