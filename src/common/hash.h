// Hashing helpers shared across linrec containers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace linrec {

/// Seed every incremental hash starts from (FNV offset basis). Code that
/// reproduces HashRange piecewise (e.g. hashing a projection of a row) must
/// start here and finish with HashFinalize so the two hashes agree.
inline constexpr std::size_t kHashSeed = 0xcbf29ce484222325ULL;

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline void HashCombine(std::size_t* seed, std::size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Finalizer (splitmix64): diffuses every input bit across the whole word.
/// Required wherever a hash feeds a power-of-two-masked open-addressing
/// table: std::hash of an integer is the identity on libstdc++, and the
/// combine step above is close to linear in its last input, so without this
/// step sequential keys form huge primary clusters and probes degrade from
/// O(1) to O(table).
inline std::size_t HashFinalize(std::size_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Hashes a contiguous range of integral values.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = kHashSeed;
  for (It it = first; it != last; ++it) {
    HashCombine(&seed, std::hash<std::int64_t>{}(static_cast<std::int64_t>(*it)));
  }
  return HashFinalize(seed);
}

}  // namespace linrec
