#include "common/scc.h"

#include <algorithm>

namespace linrec {

std::vector<std::vector<int>> StronglyConnectedComponents(
    const std::vector<std::vector<int>>& adjacency) {
  const int n = static_cast<int>(adjacency.size());
  constexpr int kUnvisited = -1;
  std::vector<int> index(static_cast<std::size_t>(n), kUnvisited);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;  // Tarjan's component stack

  // Explicit DFS frames: the node plus the next successor edge to explore.
  struct Frame {
    int node;
    std::size_t edge;
  };
  std::vector<Frame> frames;

  std::vector<std::vector<int>> components;
  int next_index = 0;

  auto push_node = [&](int v) {
    index[static_cast<std::size_t>(v)] = next_index;
    lowlink[static_cast<std::size_t>(v)] = next_index;
    ++next_index;
    stack.push_back(v);
    on_stack[static_cast<std::size_t>(v)] = true;
    frames.push_back(Frame{v, 0});
  };

  for (int start = 0; start < n; ++start) {
    if (index[static_cast<std::size_t>(start)] != kUnvisited) continue;
    push_node(start);
    while (!frames.empty()) {
      const int v = frames.back().node;
      const std::vector<int>& succ = adjacency[static_cast<std::size_t>(v)];
      bool descended = false;
      while (frames.back().edge < succ.size()) {
        const int w = succ[frames.back().edge++];
        if (w < 0 || w >= n) continue;  // ignore out-of-range ids
        if (index[static_cast<std::size_t>(w)] == kUnvisited) {
          push_node(w);
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)],
                       index[static_cast<std::size_t>(w)]);
        }
      }
      if (descended) continue;
      frames.pop_back();
      if (!frames.empty()) {
        const int parent = frames.back().node;
        lowlink[static_cast<std::size_t>(parent)] =
            std::min(lowlink[static_cast<std::size_t>(parent)],
                     lowlink[static_cast<std::size_t>(v)]);
      }
      if (lowlink[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        std::vector<int> component;
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          component.push_back(w);
        } while (w != v);
        std::sort(component.begin(), component.end());
        components.push_back(std::move(component));
      }
    }
  }
  // Tarjan pops a component only after every component reachable from it:
  // with u → v meaning "u depends on v", that is dependency-first order.
  return components;
}

}  // namespace linrec
