// Memory budgets: byte accounting for evaluation growth, charged at the
// Relation pool-growth and dedup-rehash sites in src/storage/.
//
// Two layers:
//   MemoryBudget — a global (typically server-wide) atomic ledger of bytes
//     currently held by in-flight queries. Thread-safe; many queries charge
//     it concurrently.
//   QueryBudget  — per-query high-water accounting. Relations never release
//     bytes mid-evaluation (pools only grow until the query finishes), so a
//     QueryBudget only accumulates; its destructor returns the full total to
//     the parent MemoryBudget. The global budget therefore bounds *in-flight
//     evaluation growth*, not retained session memory.
//
// Charging happens deep inside the storage hot path where signatures return
// row ids, not Status — so a denied charge throws ResourceExhaustedError.
// The exception is converted back to a typed Status::ResourceExhausted at
// the evaluation boundaries: worker lanes catch it per chunk, and
// GuardAllocFailures wraps the serial entry points (it also converts
// std::bad_alloc, so a genuine allocation failure surfaces as the same typed
// status instead of a crash).
//
// Propagation is via a thread_local current budget (ScopedQueryBudget):
// storage code stays signature-stable, and the parallel round installs the
// caller's budget inside each worker lane.

#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "common/fault.h"
#include "common/status.h"

namespace linrec {

/// Thrown (internally, never across public API boundaries) when a charge is
/// denied or injected to fail. Caught at lane/entry boundaries and converted
/// to Status::ResourceExhausted.
class ResourceExhaustedError : public std::runtime_error {
 public:
  explicit ResourceExhaustedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Global byte ledger shared by concurrent queries. limit 0 = unlimited.
class MemoryBudget {
 public:
  explicit MemoryBudget(std::size_t limit_bytes = 0) : limit_(limit_bytes) {}

  /// Attempts to reserve `bytes`; false when it would push used past the
  /// limit (the reservation is rolled back).
  bool TryCharge(std::size_t bytes) {
    if (limit_ == 0) {
      used_.fetch_add(bytes, std::memory_order_relaxed);
      return true;
    }
    std::size_t used = used_.fetch_add(bytes, std::memory_order_relaxed);
    if (used + bytes > limit_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  void Release(std::size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::size_t used() const { return used_.load(std::memory_order_relaxed); }
  std::size_t limit() const { return limit_; }
  void set_limit(std::size_t limit_bytes) { limit_ = limit_bytes; }

  /// Load-shedding signal: 7/8 of the limit is committed to in-flight
  /// queries. Never under pressure when unlimited.
  bool under_pressure() const {
    return limit_ != 0 && used() >= limit_ - limit_ / 8;
  }

 private:
  /// Own cache line: charged from every governed thread's growth path;
  /// keeps the read-mostly limit_ (and anything placed after the budget)
  /// off the contended line.
  alignas(64) std::atomic<std::size_t> used_{0};  // lint: hot-atomic
  std::size_t limit_;
};

/// Per-query high-water accounting; releases its total from the parent
/// global budget (if any) on destruction. Charge() is thread-safe so the
/// lanes of one query's parallel round can share it.
class QueryBudget {
 public:
  /// limit 0 = unlimited (still counts, still charges the parent).
  explicit QueryBudget(std::size_t limit_bytes = 0,
                       MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  ~QueryBudget() {
    if (parent_ != nullptr) parent_->Release(charged());
  }

  QueryBudget(const QueryBudget&) = delete;
  QueryBudget& operator=(const QueryBudget&) = delete;

  /// Reserves `bytes` against this query and the parent; throws
  /// ResourceExhaustedError when either refuses.
  void Charge(std::size_t bytes);

  std::size_t charged() const {
    return charged_.load(std::memory_order_relaxed);
  }
  std::size_t limit() const { return limit_; }
  MemoryBudget* parent() const { return parent_; }

 private:
  std::size_t limit_;
  MemoryBudget* parent_;
  /// Own cache line, like MemoryBudget::used_: all lanes of one query's
  /// parallel round charge through this atomic.
  alignas(64) std::atomic<std::size_t> charged_{0};  // lint: hot-atomic
};

/// The budget charged by storage growth on this thread; null = ungoverned.
QueryBudget* CurrentQueryBudget();

/// Installs `budget` as the thread's current budget for its scope; restores
/// the previous one (supports nesting). Each worker-lane lambda of a
/// governed parallel round installs the round's budget this way.
class ScopedQueryBudget {
 public:
  explicit ScopedQueryBudget(QueryBudget* budget);
  ~ScopedQueryBudget();
  ScopedQueryBudget(const ScopedQueryBudget&) = delete;
  ScopedQueryBudget& operator=(const ScopedQueryBudget&) = delete;

 private:
  QueryBudget* previous_;
};

/// Charge helper for storage growth sites: checks the fault injector first
/// (an armed allocation fault fires here), then charges the thread's current
/// budget if one is installed. Throws ResourceExhaustedError on either.
void ChargeBytesOrThrow(std::size_t bytes, FaultSite site);

/// Runs `fn` (returning Status or Result<T>), converting an escaped
/// ResourceExhaustedError or std::bad_alloc into Status::ResourceExhausted.
/// Wraps the serial evaluation entry points so budget denial on the caller
/// thread surfaces as the same typed status the parallel lanes produce.
template <typename Fn>
auto GuardAllocFailures(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const ResourceExhaustedError& e) {
    return Status::ResourceExhausted(e.what());
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("allocation failed (out of memory)");
  }
}

}  // namespace linrec
