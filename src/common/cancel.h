// CancellationToken: cooperative cancellation + deadline for long closures.
//
// A token is owned by the caller (typically one per in-flight query) and
// passed by const pointer down through the closure entry points. It is
// checked at two granularities:
//   - Check() at round and Δ-chunk boundaries: one relaxed flag load plus,
//     when a deadline is armed, one steady_clock read.
//   - stop_requested() inside the join cursor every few thousand candidate
//     rows: a single relaxed flag load, no clock. The flag is set either by
//     Cancel() or by a watchdog that notices the deadline passed and calls
//     ForceDeadline() — so a query stuck inside one enormous chunk still
//     stops within the watchdog interval instead of at the next boundary.
//
// Thread safety: Cancel()/ForceDeadline() may be called from any thread
// while workers are inside Check(); the flags live in a single atomic. A
// token must outlive every execution it was handed to.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

#include "common/status.h"

namespace linrec {

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  /// A token that expires `timeout` from now. A non-positive timeout makes a
  /// token that is already expired — useful for deterministic tests.
  static CancellationToken WithTimeout(std::chrono::milliseconds timeout) {
    CancellationToken t;
    t.deadline_ = Clock::now() + timeout;
    return t;
  }

  CancellationToken(const CancellationToken& other)
      : flags_(other.flags_.load(std::memory_order_relaxed)),
        deadline_(other.deadline_) {}
  CancellationToken& operator=(const CancellationToken& other) {
    flags_.store(other.flags_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    deadline_ = other.deadline_;
    return *this;
  }

  /// Requests cancellation; every subsequent Check() fails with kCancelled.
  void Cancel() { flags_.fetch_or(kCancelledBit, std::memory_order_relaxed); }

  /// Marks the deadline as blown without a clock read on the reader side:
  /// subsequent Check()s fail with kDeadlineExceeded and stop_requested()
  /// turns true. Called by the server watchdog when it observes expiry, so
  /// in-cursor checks stay clock-free.
  void ForceDeadline() {
    flags_.fetch_or(kDeadlineBit, std::memory_order_relaxed);
  }

  /// Arms (or re-arms) an absolute deadline.
  void SetDeadline(Clock::time_point deadline) { deadline_ = deadline; }

  /// True once Cancel() or ForceDeadline() ran: the cheapest possible stop
  /// probe (one relaxed load, no clock), safe to call every few thousand
  /// join candidates.
  bool stop_requested() const {
    return flags_.load(std::memory_order_relaxed) != 0;
  }

  bool cancelled() const {
    return (flags_.load(std::memory_order_relaxed) & kCancelledBit) != 0;
  }
  bool expired() const {
    if ((flags_.load(std::memory_order_relaxed) & kDeadlineBit) != 0) {
      return true;
    }
    return deadline_.has_value() && Clock::now() >= *deadline_;
  }
  bool has_deadline() const { return deadline_.has_value(); }

  /// OK while the execution may continue; kCancelled / kDeadlineExceeded
  /// once it must stop. Called at round and chunk boundaries.
  Status Check() const {
    const std::uint8_t flags = flags_.load(std::memory_order_relaxed);
    if ((flags & kDeadlineBit) != 0) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    if ((flags & kCancelledBit) != 0) {
      return Status::Cancelled("execution cancelled");
    }
    if (deadline_.has_value() && Clock::now() >= *deadline_) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    return Status::OK();
  }

 private:
  static constexpr std::uint8_t kCancelledBit = 1u << 0;
  static constexpr std::uint8_t kDeadlineBit = 1u << 1;

  std::atomic<std::uint8_t> flags_{0};
  std::optional<Clock::time_point> deadline_;
};

/// Checks a possibly-null token: a null token never cancels.
inline Status CheckCancel(const CancellationToken* cancel) {
  return cancel == nullptr ? Status::OK() : cancel->Check();
}

}  // namespace linrec
