// CancellationToken: cooperative cancellation + deadline for long closures.
//
// A token is owned by the caller (typically one per in-flight query) and
// passed by const pointer down through the closure entry points, which check
// it at round boundaries. Checking is cheap — one relaxed atomic load plus,
// when a deadline is armed, one steady_clock read — so a fixpoint that runs
// thousands of rounds pays nothing measurable, while a runaway closure stops
// within one round of the deadline passing.
//
// Thread safety: Cancel() may be called from any thread while workers are
// inside Check(); the flag is a single atomic. A token must outlive every
// execution it was handed to.

#pragma once

#include <atomic>
#include <chrono>
#include <optional>

#include "common/status.h"

namespace linrec {

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  /// A token that expires `timeout` from now. A non-positive timeout makes a
  /// token that is already expired — useful for deterministic tests.
  static CancellationToken WithTimeout(std::chrono::milliseconds timeout) {
    CancellationToken t;
    t.deadline_ = Clock::now() + timeout;
    return t;
  }

  CancellationToken(const CancellationToken& other)
      : cancelled_(other.cancelled_.load(std::memory_order_relaxed)),
        deadline_(other.deadline_) {}
  CancellationToken& operator=(const CancellationToken& other) {
    cancelled_.store(other.cancelled_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    deadline_ = other.deadline_;
    return *this;
  }

  /// Requests cancellation; every subsequent Check() fails with kCancelled.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) an absolute deadline.
  void SetDeadline(Clock::time_point deadline) { deadline_ = deadline; }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  bool expired() const {
    return deadline_.has_value() && Clock::now() >= *deadline_;
  }

  /// OK while the execution may continue; kCancelled / kDeadlineExceeded
  /// once it must stop. Called at round boundaries.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("execution cancelled");
    if (expired()) return Status::DeadlineExceeded("deadline exceeded");
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::optional<Clock::time_point> deadline_;
};

/// Checks a possibly-null token: a null token never cancels.
inline Status CheckCancel(const CancellationToken* cancel) {
  return cancel == nullptr ? Status::OK() : cancel->Check();
}

}  // namespace linrec
