// SIMD scan-kernel support: pool-layout constants, the aligned pool
// allocator, and the always-compiled scalar reference kernels.
//
// The actual vector kernels live in common/simd_kernels.h, which is
// included ONLY by the two hot translation units (storage/relation.cc and
// eval/apply.cc) — those TUs may be compiled with wider ISA flags (see
// LINREC_SIMD_AVX2 in CMakeLists.txt), and keeping the kernels out of
// shared headers means no other TU can pick up an over-qualified
// instantiation through the linker.
//
// LINREC_SIMD is a compile-time toggle (CMake option, default ON). The
// scalar fallback is bit-identical: every kernel pair (vector, scalar)
// examines the same rows in the same order and produces the same matches,
// so closures computed by the two builds are equal row for row. CI runs the
// full test suite on both settings.
//
// The scalar kernels below are deliberately defined out of line in
// common/simd_scalar.cc, which is never compiled with the widened ISA
// flags: they are the honest baseline the scan_sigma microbench and the
// property tests compare the vector kernels against, so the compiler must
// not be allowed to auto-vectorize them into the thing they measure.

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#ifndef LINREC_SIMD
#define LINREC_SIMD 0
#endif

#ifndef LINREC_POOL_ALIGNMENT
#define LINREC_POOL_ALIGNMENT 32
#endif

namespace linrec {
namespace simd {

/// 64-bit lanes per vector block. Fixed at 4 (one 256-bit vector) in every
/// build — the scalar fallback processes the same 4-row blocks — so pool
/// padding, microbench block counts and lane-utilization stats mean the
/// same thing whichever kernel ran.
inline constexpr std::size_t kLanes = 4;

/// Rows every Relation pool capacity is rounded up to a multiple of. A
/// full-block vector load issued at the scan tail (the last `rows % kLanes`
/// rows) reads up to kLanes - 1 rows past the end; rounding the capacity —
/// not the size — up to this stride keeps that read inside the allocation
/// in every build, SIMD or not, so ASan stays clean and the kernels need no
/// tail special-case on the load side (tail lanes are masked out of the
/// *result* instead).
inline constexpr std::size_t kPadRows = kLanes;

#if LINREC_SIMD
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

static_assert(!kEnabled || LINREC_POOL_ALIGNMENT >= 32,
              "LINREC_SIMD requires the pool allocation to be at least "
              "32-byte (256-bit vector) aligned; configure with "
              "-DLINREC_POOL_ALIGNMENT=32 or higher (CMake enforces this)");

/// Allocator for Relation's flat value pool: over-aligns every allocation
/// to LINREC_POOL_ALIGNMENT so a vector load of the first block is aligned
/// and no block load ever splits more cache lines than it must. Routes
/// through the aligned global operator new so the allocation-counting
/// tests (tests/join_alloc_test.cc) still observe pool growth.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  static constexpr std::size_t kAlign =
      LINREC_POOL_ALIGNMENT > alignof(T) ? LINREC_POOL_ALIGNMENT : alignof(T);

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlign)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(kAlign));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const {
    return false;
  }
};

/// Scalar reference kernels (defined in common/simd_scalar.cc; see the
/// header comment for why they live in their own TU).
///
/// Counts rows whose strided column equals `v`: the column of row i is
/// col[i * stride].
std::size_t CountEqStridedScalar(const std::int64_t* col, std::size_t stride,
                                 std::size_t rows, std::int64_t v);

/// Equality mask of one block of kLanes consecutive rows: bit i set iff
/// col[i * stride] == v. Never reads past row kLanes - 1.
unsigned BlockEqMaskScalar(const std::int64_t* col, std::size_t stride,
                           std::int64_t v);

}  // namespace simd
}  // namespace linrec
