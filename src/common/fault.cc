#include "common/fault.h"

#include <cstring>

#include "common/hash.h"

namespace linrec {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kPoolGrowth:
      return "pool_growth";
    case FaultSite::kRehash:
      return "rehash";
    case FaultSite::kWorkerDispatch:
      return "worker_dispatch";
    case FaultSite::kSocketWrite:
      return "socket_write";
    case FaultSite::kIvmApply:
      return "ivm_apply";
    case FaultSite::kSiteCount:
      break;
  }
  return "unknown";
}

bool ParseFaultSite(const char* name, FaultSite* out) {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    if (std::strcmp(name, FaultSiteName(site)) == 0) {
      *out = site;
      return true;
    }
  }
  return false;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::ResetCounters() {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    hits_[i].store(0, std::memory_order_relaxed);
    fired_[i].store(0, std::memory_order_relaxed);
    last_fired_hit_[i].store(0, std::memory_order_relaxed);
  }
}

void FaultInjector::ArmAt(FaultSite site, std::uint64_t nth) {
  armed_.store(false, std::memory_order_seq_cst);
  ResetCounters();
  mode_ = Mode::kNth;
  target_site_ = site;
  nth_ = nth;
  armed_.store(true, std::memory_order_seq_cst);
}

void FaultInjector::ArmSeeded(std::uint64_t seed, std::uint64_t period) {
  armed_.store(false, std::memory_order_seq_cst);
  ResetCounters();
  mode_ = Mode::kSeeded;
  seed_ = seed;
  period_ = period == 0 ? 1 : period;
  armed_.store(true, std::memory_order_seq_cst);
}

void FaultInjector::Disarm() { armed_.store(false, std::memory_order_seq_cst); }

bool FaultInjector::ShouldFire(FaultSite site) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  const int idx = static_cast<int>(site);
  const std::uint64_t hit =
      hits_[idx].fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (mode_) {
    case Mode::kNth:
      fire = site == target_site_ && hit == nth_;
      break;
    case Mode::kSeeded:
      fire = HashFinalize(seed_ ^ (static_cast<std::uint64_t>(idx) << 32) ^
                          hit) %
                 period_ ==
             0;
      break;
    case Mode::kDisarmed:
      break;
  }
  if (fire) {
    fired_[idx].fetch_add(1, std::memory_order_relaxed);
    last_fired_hit_[idx].store(hit, std::memory_order_relaxed);
  }
  return fire;
}

std::uint64_t FaultInjector::hits(FaultSite site) const {
  return hits_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(FaultSite site) const {
  return fired_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::last_fired_hit(FaultSite site) const {
  return last_fired_hit_[static_cast<int>(site)].load(
      std::memory_order_relaxed);
}

}  // namespace linrec
