// Lightweight Status / Result error-handling primitives.
//
// Library code in linrec does not throw exceptions across public API
// boundaries; fallible operations return Status or Result<T> in the style of
// Arrow / RocksDB.

#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace linrec {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  /// Input violates a documented precondition (e.g. rule not linear).
  kInvalidArgument,
  /// Text could not be parsed; message carries line/column context.
  kParseError,
  /// A budgeted search (torsion, boundedness) gave up before deciding.
  kBudgetExhausted,
  /// An entity (predicate, relation, variable) was not found.
  kNotFound,
  /// The operation was cancelled before it completed.
  kCancelled,
  /// The operation ran past its deadline and was stopped.
  kDeadlineExceeded,
  /// The service cannot accept the request right now (e.g. queue full);
  /// the caller may retry after backing off.
  kUnavailable,
  /// The operation exceeded a resource budget (memory) and was aborted;
  /// the system itself stays healthy and other work continues.
  kResourceExhausted,
  /// Internal invariant violated; indicates a bug in linrec itself.
  kInternal,
};

/// Returns a short human-readable name such as "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a human-readable message.
///
/// Default-constructed Status is OK. Statuses are cheap to copy (the message
/// is empty in the OK case, which is the common path).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define LINREC_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::linrec::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (0)

}  // namespace linrec
