// Deterministic fault injection: named sites in the hot paths that tests
// and the smoke harness can arm to fail on a precise, reproducible schedule.
//
// Each site calls FaultFires(site) at the moment the real failure would
// happen (an allocation about to grow the pool, a worker about to pick up a
// chunk, a socket about to be written). Disarmed — the default — a site
// costs one relaxed atomic load; built with -DLINREC_FAULT_INJECTION=0 the
// call compiles to a constant `false` and the sites vanish entirely.
//
// Two arming modes, both deterministic:
//   ArmAt(site, nth)        — fire exactly on the nth hit of `site` (1-based).
//   ArmSeeded(seed, period) — fire whenever splitmix64(seed ^ site ^ hit)
//                             lands in 1/period; the same seed replays the
//                             same schedule across Debug/Release/TSan builds
//                             as long as execution is serial (hit counters
//                             are per-site and ordered by program order).
//
// Arming resets every per-site hit/fired counter, so a test's observed
// `last_fired_hit` is comparable across runs. The injector is a process-wide
// singleton: tests that arm it must disarm before returning (ScopedFault
// does this with RAII) and must not run armed sections concurrently.

#pragma once

#include <atomic>
#include <cstdint>

namespace linrec {

enum class FaultSite : int {
  /// Relation value-pool / hash-array growth (storage/relation.cc).
  kPoolGrowth = 0,
  /// Dedup-table rehash growth (storage/relation.cc).
  kRehash,
  /// A parallel-round lane about to run a Δ chunk (eval/fixpoint.cc, joint.cc).
  kWorkerDispatch,
  /// A reply about to be written to a client socket (tools/linrecd.cc).
  kSocketWrite,
  /// An incremental maintenance pass about to commit its in-place delta
  /// (src/ivm/maintain.cc) — checked after the view mutation begins and
  /// again after the resume, so arming it proves the rollback path
  /// restores the pre-Apply bytes.
  kIvmApply,
  kSiteCount,
};

inline constexpr int kFaultSiteCount = static_cast<int>(FaultSite::kSiteCount);

/// Short stable name ("pool_growth", "rehash", ...) for flags and logs.
const char* FaultSiteName(FaultSite site);

/// Parses a FaultSiteName back to its site; returns false on unknown names.
bool ParseFaultSite(const char* name, FaultSite* out);

class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Fire exactly on the nth hit (1-based) of `site`; other sites never fire.
  /// Resets all counters.
  void ArmAt(FaultSite site, std::uint64_t nth);

  /// Fire on every hit h (of any site) where
  /// splitmix64(seed ^ site ^ h) % period == 0. Resets all counters.
  void ArmSeeded(std::uint64_t seed, std::uint64_t period);

  /// Back to pass-through; counters keep their final values for inspection.
  void Disarm();

  /// Counts a hit at `site` and reports whether the fault fires there.
  /// Disarmed, returns false without counting (one relaxed load).
  bool ShouldFire(FaultSite site);

  std::uint64_t hits(FaultSite site) const;
  std::uint64_t fired(FaultSite site) const;
  /// Hit number (1-based) of the most recent firing at `site`; 0 = never.
  std::uint64_t last_fired_hit(FaultSite site) const;

 private:
  FaultInjector() = default;

  enum class Mode : int { kDisarmed = 0, kNth, kSeeded };

  void ResetCounters();

  std::atomic<bool> armed_{false};
  Mode mode_ = Mode::kDisarmed;
  FaultSite target_site_ = FaultSite::kPoolGrowth;
  std::uint64_t nth_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t period_ = 0;
  std::atomic<std::uint64_t> hits_[kFaultSiteCount] = {};
  std::atomic<std::uint64_t> fired_[kFaultSiteCount] = {};
  std::atomic<std::uint64_t> last_fired_hit_[kFaultSiteCount] = {};
};

#ifndef LINREC_FAULT_INJECTION
#define LINREC_FAULT_INJECTION 1
#endif

#if LINREC_FAULT_INJECTION
inline bool FaultFires(FaultSite site) {
  return FaultInjector::Instance().ShouldFire(site);
}
#else
inline bool FaultFires(FaultSite) { return false; }
#endif

/// RAII arm/disarm so a throwing test body cannot leave the process-wide
/// injector armed for the next test.
class ScopedFault {
 public:
  ScopedFault(FaultSite site, std::uint64_t nth) {
    FaultInjector::Instance().ArmAt(site, nth);
  }
  ScopedFault(std::uint64_t seed, std::uint64_t period) {
    FaultInjector::Instance().ArmSeeded(seed, period);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace linrec
