#include "common/status.h"

namespace linrec {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace linrec
