#include "common/parallel.h"

#include <algorithm>

namespace linrec {
namespace {

std::atomic<int> g_thread_cap_override{0};

int HardwareThreadCap() {
  int cap = g_thread_cap_override.load(std::memory_order_relaxed);
  if (cap > 0) return cap;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

int ResolveWorkers(int workers) {
  if (workers > 0) return workers;
  if (workers < 0) return 1;
  return HardwareThreadCap();
}

void WorkerPool::OverrideThreadCapForTesting(int cap) {
  g_thread_cap_override.store(cap, std::memory_order_relaxed);
}

WorkerPool::WorkerPool(int lanes) : lanes_(std::max(lanes, 1)) {
  int participants = std::min(lanes_, HardwareThreadCap());
  threads_.reserve(static_cast<std::size_t>(participants - 1));
  for (int lane = 1; lane < participants; ++lane) {
    threads_.emplace_back([this, lane] { HelperLoop(lane); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::HelperLoop(int lane) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(int, std::size_t)>* fn;
    std::size_t chunks;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && generation_ == seen) work_ready_.Wait(mutex_);
      if (stopping_) return;
      seen = generation_;
      fn = fn_;
      chunks = chunk_count_;
    }
    for (std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
         c < chunks;
         c = next_chunk_.fetch_add(1, std::memory_order_relaxed)) {
      try {
        (*fn)(lane, c);
      } catch (...) {
        // fn's contract: failures are reported via lane-indexed state.
      }
    }
    {
      MutexLock lock(mutex_);
      if (--active_helpers_ == 0) batch_done_.NotifyOne();
    }
  }
}

void WorkerPool::Run(std::size_t chunks,
                     const std::function<void(int, std::size_t)>& fn) {
  if (chunks == 0) return;
  bool woke_helpers = !threads_.empty() && chunks > 1;
  if (woke_helpers) {
    MutexLock lock(mutex_);
    fn_ = &fn;
    chunk_count_ = chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    active_helpers_ = static_cast<int>(threads_.size());
    ++generation_;
    work_ready_.NotifyAll();
  } else {
    next_chunk_.store(0, std::memory_order_relaxed);
  }
  // The caller is lane 0 and drains chunks like any helper.
  for (std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
       c < chunks;
       c = next_chunk_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      fn(0, c);
    } catch (...) {
    }
  }
  if (woke_helpers) {
    MutexLock lock(mutex_);
    while (active_helpers_ != 0) batch_done_.Wait(mutex_);
    fn_ = nullptr;
  }
}

}  // namespace linrec
