#include "storage/relation.h"

#include <algorithm>
#include <atomic>

namespace linrec {
namespace {

std::atomic<std::uint64_t> g_version_counter{0};

/// Smallest power of two ≥ n (and ≥ 8).
std::size_t NextPow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// Grow the dedup table when occupancy crosses 7/8: linear probing stays
// short and the growth factor (2x) keeps inserts amortized O(1).
bool Relation::InsertHashed(const Value* row, std::size_t hash) {
  if (slots_.empty()) Rehash(8);
  std::size_t mask = slots_.size() - 1;
  std::size_t i = hash & mask;
  while (true) {
    RowId slot = slots_[i];
    if (slot == 0) break;  // empty: the row is new
    RowId id = slot - 1;
    if (hashes_[id] == hash && RowEquals(id, row)) return false;
    i = (i + 1) & mask;
  }
  assert(row_count_ < static_cast<std::size_t>(kNoRow) &&
         "relation exceeds RowId capacity");
  RowId id = static_cast<RowId>(row_count_++);
  pool_.insert(pool_.end(), row, row + arity_);
  hashes_.push_back(hash);
  slots_[i] = id + 1;
  version_ = g_version_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  if (row_count_ * 8 >= slots_.size() * 7) Rehash(slots_.size() * 2);
  return true;
}

RowId Relation::FindRow(const Value* row, std::size_t hash) const {
  if (slots_.empty()) return kNoRow;
  std::size_t mask = slots_.size() - 1;
  std::size_t i = hash & mask;
  while (true) {
    RowId slot = slots_[i];
    if (slot == 0) return kNoRow;
    RowId id = slot - 1;
    if (hashes_[id] == hash && RowEquals(id, row)) return id;
    i = (i + 1) & mask;
  }
}

void Relation::Rehash(std::size_t slot_count) {
  slots_.assign(slot_count, 0);
  std::size_t mask = slot_count - 1;
  for (RowId id = 0; id < row_count_; ++id) {
    std::size_t i = hashes_[id] & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = id + 1;
  }
}

void Relation::Reserve(std::size_t rows) {
  pool_.reserve(rows * arity_);
  hashes_.reserve(rows);
  // Size the table so `rows` insertions stay under the 7/8 growth trigger.
  std::size_t needed = NextPow2(rows * 8 / 7 + 1);
  if (needed > slots_.size()) Rehash(needed);
}

std::size_t Relation::UnionWith(const Relation& other) {
  assert(other.arity() == arity_ && "relation arities must match");
  if (other.row_count_ > 0) Reserve(row_count_ + other.row_count_);
  std::size_t added = 0;
  for (RowId id = 0; id < other.row_count_; ++id) {
    if (InsertHashed(other.RowData(id), other.hashes_[id])) ++added;
  }
  return added;
}

std::vector<Tuple> Relation::Sorted() const {
  std::vector<Tuple> out;
  out.reserve(row_count_);
  for (RowId id = 0; id < row_count_; ++id) out.push_back(Row(id).ToTuple());
  std::sort(out.begin(), out.end());
  return out;
}

bool Relation::operator==(const Relation& other) const {
  if (arity_ != other.arity_ || row_count_ != other.row_count_) return false;
  for (RowId id = 0; id < other.row_count_; ++id) {
    if (FindRow(other.RowData(id), other.hashes_[id]) == kNoRow) return false;
  }
  return true;
}

HashIndex::HashIndex(const Relation& rel, std::vector<int> key_positions)
    : rel_(&rel),
      key_positions_(std::move(key_positions)),
      built_at_version_(rel.version()) {
  std::size_t slot_count = NextPow2(rel.size() * 8 / 7 + 1);
  slots_.assign(slot_count, 0);
  std::size_t mask = slot_count - 1;
  const RowId rows = static_cast<RowId>(rel.size());
  for (RowId row = 0; row < rows; ++row) {
    std::size_t hash = RowKeyHash(row);
    std::size_t i = hash & mask;
    while (true) {
      std::uint32_t slot = slots_[i];
      if (slot == 0) {
        // New key: open a group. Groups never exceed row count, which the
        // table was sized for, so no grow step is needed here.
        slots_[i] = static_cast<std::uint32_t>(groups_.size()) + 1;
        groups_.emplace_back().push_back(row);
        group_hashes_.push_back(hash);
        break;
      }
      std::size_t g = slot - 1;
      if (group_hashes_[g] == hash &&
          RowMatchesKey(groups_[g].front(), rel.RowData(row))) {
        groups_[g].push_back(row);
        break;
      }
      i = (i + 1) & mask;
    }
  }
}

// Must produce the same value as KeyHash (= HashRange) over the projected
// key, including the seed and finalizer, so build-time and probe-time
// hashes agree.
std::size_t HashIndex::RowKeyHash(RowId row) const {
  const Value* data = rel_->RowData(row);
  std::size_t seed = kHashSeed;
  for (int p : key_positions_) {
    HashCombine(&seed, std::hash<std::int64_t>{}(
                           data[static_cast<std::size_t>(p)]));
  }
  return HashFinalize(seed);
}

/// Does `row`'s projection equal the projection of the full row `other`?
/// (Build-time comparison: both sides are full rows of the relation.)
bool HashIndex::RowMatchesKey(RowId row, const Value* other) const {
  const Value* mine = rel_->RowData(row);
  for (int p : key_positions_) {
    std::size_t i = static_cast<std::size_t>(p);
    if (mine[i] != other[i]) return false;
  }
  return true;
}

const std::vector<RowId>* HashIndex::Lookup(const Value* key) const {
  std::size_t hash = KeyHash(key);
  std::size_t mask = slots_.size() - 1;
  std::size_t i = hash & mask;
  while (true) {
    std::uint32_t slot = slots_[i];
    if (slot == 0) return nullptr;
    std::size_t g = slot - 1;
    if (group_hashes_[g] == hash) {
      const Value* repr = rel_->RowData(groups_[g].front());
      bool match = true;
      for (std::size_t k = 0; k < key_positions_.size(); ++k) {
        if (repr[static_cast<std::size_t>(key_positions_[k])] != key[k]) {
          match = false;
          break;
        }
      }
      if (match) return &groups_[g];
    }
    i = (i + 1) & mask;
  }
}

}  // namespace linrec
