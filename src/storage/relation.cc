#include "storage/relation.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace linrec {
namespace {
std::atomic<std::uint64_t> g_version_counter{0};
}  // namespace

bool Relation::Insert(const Tuple& t) {
  assert(t.arity() == arity_ && "tuple arity must match relation arity");
  bool added = tuples_.insert(t).second;
  if (added) {
    version_ = g_version_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return added;
}

std::size_t Relation::UnionWith(const Relation& other) {
  assert(other.arity() == arity_ && "relation arities must match");
  std::size_t added = 0;
  for (const Tuple& t : other) {
    if (Insert(t)) ++added;
  }
  return added;
}

std::vector<Tuple> Relation::Sorted() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

HashIndex::HashIndex(const Relation& rel, std::vector<int> key_positions)
    : key_positions_(std::move(key_positions)),
      built_at_version_(rel.version()) {
  for (const Tuple& t : rel) {
    buckets_[t.Project(key_positions_)].push_back(t);
  }
}

}  // namespace linrec
