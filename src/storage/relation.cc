#include "storage/relation.h"

#include <algorithm>
#include <atomic>

#include "common/memory.h"
#include "common/parallel.h"
#include "common/simd_kernels.h"

namespace linrec {
namespace {

/// Own cache line: bumped from every thread that first reads a mutated
/// relation's version; sharing a line with unrelated statics would make
/// those reads contend with it.
alignas(64) std::atomic<std::uint64_t> g_version_counter{0};  // lint: hot-atomic

/// Smallest power of two ≥ n (and ≥ 8).
std::size_t NextPow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t Relation::version() const {
  // Lazy stamp: mutation only marks the version stale; the first reader
  // draws one fresh value off the shared counter. Concurrent readers of a
  // stale relation may both draw — the last store wins and both values are
  // new, so (address, version) never aliases older contents. The
  // release/acquire pair orders the version_ store before the stale_ clear:
  // a reader that observes stale_ == false is guaranteed to see the fresh
  // stamp, never the pre-mutation one.
  if (version_stale_.load(std::memory_order_acquire)) {
    version_.store(g_version_counter.fetch_add(1, std::memory_order_relaxed) +
                       1,
                   std::memory_order_relaxed);
    version_stale_.store(false, std::memory_order_release);
  }
  return version_.load(std::memory_order_relaxed);
}

// Grow the dedup table when occupancy crosses 7/8. Small tables double;
// large ones quadruple: every rehash re-probes all rows at random (the
// dominant cost of a growing closure-sized relation), and 4x growth cuts
// the total reinserted rows from ~2N to ~1.33N for a few extra bytes of
// slot space per row.
bool Relation::InsertHashed(const Value* row, std::size_t hash) {
  if (slots_.empty()) Rehash(8);
  std::size_t mask = slots_.size() - 1;
  std::size_t i = hash & mask;
  while (true) {
    RowId slot = slots_[i];
    if (slot == 0) break;  // empty: the row is new
    RowId id = slot - 1;
    if (hashes_[id] == hash && RowEquals(id, row)) return false;
    i = (i + 1) & mask;
  }
  assert(row_count_ < static_cast<std::size_t>(kNoRow) &&
         "relation exceeds RowId capacity");
  // Growth happens before any mutation, so a denied charge (or injected
  // allocation fault) leaves the relation exactly as it was.
  if (pool_.size() + arity_ > pool_.capacity()) GrowPool(pool_.size() + arity_);
  if (hashes_.size() == hashes_.capacity()) GrowHashes(hashes_.size() + 1);
  RowId id = static_cast<RowId>(row_count_++);
  pool_.insert(pool_.end(), row, row + arity_);
  hashes_.push_back(hash);
  slots_[i] = id + 1;
  version_stale_.store(true, std::memory_order_release);
  if (row_count_ * 8 >= slots_.size() * 7) {
    Rehash(slots_.size() * (slots_.size() >= 32768 ? 4 : 2));
  }
  return true;
}

RowId Relation::FindRow(const Value* row, std::size_t hash) const {
  if (slots_.empty()) return kNoRow;
  std::size_t mask = slots_.size() - 1;
  std::size_t i = hash & mask;
  while (true) {
    RowId slot = slots_[i];
    if (slot == 0) return kNoRow;
    RowId id = slot - 1;
    if (hashes_[id] == hash && RowEquals(id, row)) return id;
    i = (i + 1) & mask;
  }
}

// Pool and hash-array growth is explicit (never left to the vectors'
// internal reallocation) so the capacity delta can be charged to the active
// memory budget — and an armed allocation fault can fire — before the bytes
// are committed. These are the only growth paths a closure's result takes.
void Relation::GrowPool(std::size_t needed_values) {
  std::size_t new_cap = std::max(needed_values, pool_.capacity() * 2);
  if (new_cap < 64) new_cap = 64;
  // Round up to a whole number of kPadRows-row blocks: the scan kernels
  // load the tail as one full block, and this keeps that load inside the
  // allocation. The padding is charged like any other capacity.
  new_cap = PaddedPoolCapacity(new_cap, arity_);
  ChargeBytesOrThrow((new_cap - pool_.capacity()) * sizeof(Value),
                     FaultSite::kPoolGrowth);
  pool_.reserve(new_cap);
}

void Relation::GrowHashes(std::size_t needed_rows) {
  std::size_t new_cap = std::max(needed_rows, hashes_.capacity() * 2);
  if (new_cap < 16) new_cap = 16;
  ChargeBytesOrThrow((new_cap - hashes_.capacity()) * sizeof(std::size_t),
                     FaultSite::kPoolGrowth);
  hashes_.reserve(new_cap);
}

void Relation::Rehash(std::size_t slot_count) {
  if (slot_count > slots_.capacity()) {
    ChargeBytesOrThrow((slot_count - slots_.capacity()) * sizeof(RowId),
                       FaultSite::kRehash);
  }
  slots_.assign(slot_count, 0);
  std::size_t mask = slot_count - 1;
  // Reinsertion is a stream of independent random probes — prefetch a
  // batch ahead so their cache misses overlap (most rows land in their
  // first slot of the fresh, sparsely filled table).
  constexpr RowId kBatch = 16;
  for (RowId base = 0; base < row_count_; base += kBatch) {
    const RowId limit =
        static_cast<RowId>(std::min<std::size_t>(row_count_, base + kBatch));
    for (RowId id = base; id < limit; ++id) {
      __builtin_prefetch(slots_.data() + (hashes_[id] & mask), 1);
    }
    for (RowId id = base; id < limit; ++id) {
      std::size_t i = hashes_[id] & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = id + 1;
    }
  }
}

void Relation::Reserve(std::size_t rows) {
  // Grow geometrically past the request: vector::reserve allocates exactly
  // what is asked, so a closure loop reserving `current + Δ` every round
  // would otherwise reallocate (and copy the whole pool) every round.
  if (rows * arity_ > pool_.capacity()) GrowPool(rows * arity_);
  if (rows > hashes_.capacity()) GrowHashes(rows);
  // Size the table so `rows` insertions stay under the 7/8 growth trigger.
  std::size_t needed = NextPow2(rows * 8 / 7 + 1);
  if (needed > slots_.size()) Rehash(needed);
}

void Relation::Clear() {
  row_count_ = 0;
  version_.store(0, std::memory_order_relaxed);
  version_stale_.store(false, std::memory_order_relaxed);
  pool_.clear();
  hashes_.clear();
  std::fill(slots_.begin(), slots_.end(), 0);
}

void Relation::TruncateRows(std::size_t rows) {
  assert(rows <= row_count_ && "can only truncate, never extend");
  if (rows == row_count_) return;
  row_count_ = rows;
  // resize() never shrinks capacity, so the padded-capacity invariant the
  // scan kernels rely on (capacity = whole kPadRows blocks) still holds.
  pool_.resize(rows * arity_);
  hashes_.resize(rows);
  if (rows == 0) {
    // An empty relation must report version 0 (the "two empties share a
    // stamp" rule in version()).
    version_.store(0, std::memory_order_relaxed);
    version_stale_.store(false, std::memory_order_relaxed);
    std::fill(slots_.begin(), slots_.end(), 0);
    return;
  }
  // Same slot count: Rehash only charges when capacity grows, so the
  // rollback path cannot itself be denied.
  Rehash(slots_.size());
  version_stale_.store(true, std::memory_order_release);
}

// The σ scan, parameterized on the kernel. Both instantiations walk the
// same rows in the same order (the copy pass drains each block's equality
// mask low bit first), so SIMD and scalar results are bit-identical —
// arity, size, and row-by-row insertion order.
template <bool kSimd>
Relation Relation::WhereEqualsKernel(int position, Value value,
                                     ScanCounters* counters) const {
  assert(position >= 0 && static_cast<std::size_t>(position) < arity_);
  Relation out(arity_);
  const std::size_t rows = row_count_;
  if (counters != nullptr) {
    counters->rows += rows;
    counters->blocks += (rows + simd::kLanes - 1) / simd::kLanes;
  }
  if (rows == 0) return out;
  const Value* column = pool_.data() + position;
  const std::size_t stride = arity_;
  // Pass 1: count matches along one strided column.
  std::size_t matches;
#if LINREC_SIMD
  if constexpr (kSimd) {
    matches = simd::CountEqStrided(column, stride, rows, value);
  } else
#endif
  {
    matches = simd::CountEqStridedScalar(column, stride, rows, value);
  }
  if (counters != nullptr) counters->hits += matches;
  if (matches == 0) return out;
  out.Reserve(matches);
  // Pass 2: bulk-copy the matching rows from blockwise equality masks,
  // reusing their cached hashes (rows of a relation are unique, so every
  // insert lands). The SIMD tail is a full-block load masked down — safe
  // because pool capacities are padded to whole blocks (GrowPool).
  const std::size_t full = rows / simd::kLanes * simd::kLanes;
  auto drain = [&](std::size_t base, unsigned mask) {
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      const std::size_t i = base + lane;
      out.InsertHashed(pool_.data() + i * stride, hashes_[i]);
    }
  };
  for (std::size_t base = 0; base < full; base += simd::kLanes) {
    unsigned mask;
#if LINREC_SIMD
    if constexpr (kSimd) {
      mask = simd::BlockEqMask(column + base * stride, stride, value);
    } else
#endif
    {
      mask = simd::BlockEqMaskScalar(column + base * stride, stride, value);
    }
    drain(base, mask);
  }
  if (const std::size_t tail = rows - full; tail != 0) {
    unsigned mask;
#if LINREC_SIMD
    if constexpr (kSimd) {
      mask = simd::BlockEqMask(column + full * stride, stride, value) &
             ((1u << tail) - 1u);
    } else
#endif
    {
      mask = 0;
      for (std::size_t i = 0; i < tail; ++i) {
        mask |= static_cast<unsigned>(column[(full + i) * stride] == value)
                << i;
      }
    }
    drain(full, mask);
  }
  return out;
}

Relation Relation::WhereEquals(int position, Value value,
                               ScanCounters* counters) const {
  return WhereEqualsKernel<simd::kEnabled>(position, value, counters);
}

Relation Relation::WhereEqualsScalar(int position, Value value,
                                     ScanCounters* counters) const {
  return WhereEqualsKernel<false>(position, value, counters);
}

std::size_t Relation::UnionWith(const Relation& other) {
  assert(other.arity() == arity_ && "relation arities must match");
  if (other.row_count_ > 0) Reserve(row_count_ + other.row_count_);
  std::size_t added = 0;
  for (RowId id = 0; id < other.row_count_; ++id) {
    if (InsertHashed(other.RowData(id), other.hashes_[id])) ++added;
  }
  return added;
}

std::vector<Tuple> Relation::Sorted() const {
  std::vector<Tuple> out;
  out.reserve(row_count_);
  for (RowId id = 0; id < row_count_; ++id) out.push_back(Row(id).ToTuple());
  std::sort(out.begin(), out.end());
  return out;
}

bool Relation::operator==(const Relation& other) const {
  if (arity_ != other.arity_ || row_count_ != other.row_count_) return false;
  for (RowId id = 0; id < other.row_count_; ++id) {
    if (FindRow(other.RowData(id), other.hashes_[id]) == kNoRow) return false;
  }
  return true;
}

PoolMerger::PoolMerger(int shard_bits)
    : shard_bits_(shard_bits),
      shard_count_(static_cast<std::size_t>(1) << shard_bits),
      shards_(shard_count_) {}

void PoolMerger::BucketPool(std::size_t pool_index, const Relation& pool) {
  std::vector<RowId>* row_buckets = &buckets_[pool_index * shard_count_];
  const RowId rows = static_cast<RowId>(pool.size());
  for (RowId r = 0; r < rows; ++r) {
    row_buckets[ShardOf(pool.hashes_[r])].push_back(r);
  }
}

void PoolMerger::DedupShard(std::size_t shard, const Relation* const* pools,
                            std::size_t pool_count, const Relation& target) {
  Shard& s = shards_[shard];
  std::size_t incoming = 0;
  for (std::size_t p = 0; p < pool_count; ++p) {
    incoming += buckets_[p * shard_count_ + shard].size();
  }
  if (incoming == 0) return;
  std::size_t needed = 8;
  while (needed * 7 < incoming * 8) needed <<= 1;
  if (s.slots.size() < needed) s.slots.resize(needed);
  std::fill(s.slots.begin(), s.slots.end(), 0);
  const std::size_t mask = s.slots.size() - 1;

  for (std::size_t p = 0; p < pool_count; ++p) {
    const Relation& pool = *pools[p];
    for (RowId r : buckets_[p * shard_count_ + shard]) {
      const std::size_t hash = pool.hashes_[r];
      const Value* row = pool.RowData(r);
      if (target.FindRow(row, hash) != Relation::kNoRow) continue;
      // Probe the shard-local table of surviving rows; first occurrence
      // (in pool order) wins.
      std::size_t i = hash & mask;
      bool duplicate = false;
      while (true) {
        std::uint32_t slot = s.slots[i];
        if (slot == 0) break;
        const auto& [sp, sr] = s.survivors[slot - 1];
        if (pools[sp]->hashes_[sr] == hash &&
            std::equal(row, row + pool.arity(), pools[sp]->RowData(sr))) {
          duplicate = true;
          break;
        }
        i = (i + 1) & mask;
      }
      if (duplicate) continue;
      s.survivors.emplace_back(static_cast<std::uint32_t>(p), r);
      s.slots[i] = static_cast<std::uint32_t>(s.survivors.size());
    }
  }
}

std::size_t PoolMerger::Merge(const Relation* const* pools,
                              std::size_t pool_count, Relation* target,
                              WorkerPool* pool) {
  std::size_t total = 0;
  for (std::size_t p = 0; p < pool_count; ++p) {
    assert(pools[p]->arity() == target->arity());
    total += pools[p]->size();
  }
  buckets_.resize(pool_count * shard_count_);
  for (std::vector<RowId>& b : buckets_) b.clear();
  for (Shard& s : shards_) s.survivors.clear();
  if (total == 0) return 0;

  // WorkerPool swallows exceptions on its threads (its contract: report
  // through lane state); capture the first one here and rethrow after the
  // phases so an allocation failure mid-shard can never yield a silently
  // incomplete merge.
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  auto guarded = [&](auto&& body) {
    try {
      body();
    } catch (...) {
      if (!failed.exchange(true)) error = std::current_exception();
    }
  };

  // Phase 1: bucket each pool's rows by the high hash bits (pool-major
  // bucket storage: no two lanes ever write the same vector).
  if (pool != nullptr && pool_count > 1) {
    pool->Run(pool_count, [&](int, std::size_t p) {
      guarded([&] { BucketPool(p, *pools[p]); });
    });
  } else {
    for (std::size_t p = 0; p < pool_count; ++p) BucketPool(p, *pools[p]);
  }

  // Phase 2: deduplicate every shard independently — disjoint hash ranges,
  // read-only target probes, per-shard scratch: no contention.
  if (pool != nullptr) {
    pool->Run(shard_count_, [&](int, std::size_t shard) {
      guarded([&] { DedupShard(shard, pools, pool_count, *target); });
    });
  } else {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      DedupShard(s, pools, pool_count, *target);
    }
  }
  if (failed.load()) std::rethrow_exception(error);

  // Phase 3: append the survivors — all provably new and pairwise distinct
  // (cross-shard rows differ in their high hash bits), so every insert
  // probes straight to an empty slot and lands.
  std::size_t added = 0;
  for (const Shard& s : shards_) added += s.survivors.size();
  if (added == 0) return 0;
  target->Reserve(target->size() + added);
  for (const Shard& s : shards_) {
    for (const auto& [p, r] : s.survivors) {
      target->InsertHashed(pools[p]->RowData(r), pools[p]->hashes_[r]);
    }
  }
  return added;
}

HashIndex::HashIndex(const Relation& rel, std::vector<int> key_positions)
    : rel_(&rel),
      key_positions_(std::move(key_positions)),
      built_at_version_(rel.version()) {
  std::size_t slot_count = NextPow2(rel.size() * 8 / 7 + 1);
  slots_.assign(slot_count, 0);
  std::size_t mask = slot_count - 1;
  const RowId rows = static_cast<RowId>(rel.size());

  // Pass 1: discover groups and count their sizes. `group_of[row]` records
  // each row's group so pass 2 is a straight scatter; `repr` holds one
  // representative row per group for key comparison.
  std::vector<std::uint32_t> group_of(rows);
  std::vector<RowId> repr;
  std::vector<std::uint32_t> counts;
  auto projections_match = [&](RowId a, RowId b) {
    const Value* ra = rel_->RowData(a);
    const Value* rb = rel_->RowData(b);
    for (int p : key_positions_) {
      std::size_t i = static_cast<std::size_t>(p);
      if (ra[i] != rb[i]) return false;
    }
    return true;
  };
  for (RowId row = 0; row < rows; ++row) {
    std::size_t hash = RowKeyHash(row);
    std::size_t i = hash & mask;
    while (true) {
      std::uint32_t slot = slots_[i];
      if (slot == 0) {
        // New key: open a group. Groups never exceed row count, which the
        // table was sized for, so no grow step is needed here.
        slots_[i] = static_cast<std::uint32_t>(repr.size()) + 1;
        group_of[row] = static_cast<std::uint32_t>(repr.size());
        repr.push_back(row);
        counts.push_back(1);
        group_hashes_.push_back(hash);
        break;
      }
      std::size_t g = slot - 1;
      if (group_hashes_[g] == hash && projections_match(repr[g], row)) {
        group_of[row] = static_cast<std::uint32_t>(g);
        ++counts[g];
        break;
      }
      i = (i + 1) & mask;
    }
  }

  // Prefix-sum the counts into CSR offsets, then scatter the rows; within
  // a group insertion order is preserved.
  starts_.resize(repr.size() + 1);
  std::uint32_t total = 0;
  for (std::size_t g = 0; g < repr.size(); ++g) {
    starts_[g] = total;
    total += counts[g];
  }
  starts_[repr.size()] = total;
  row_ids_.resize(rows);
  std::vector<std::uint32_t> cursor(starts_.begin(), starts_.end() - 1);
  for (RowId row = 0; row < rows; ++row) {
    row_ids_[cursor[group_of[row]]++] = row;
  }
}

// Must produce the same value as KeyHash (= HashRange) over the projected
// key, including the seed and finalizer, so build-time and probe-time
// hashes agree.
std::size_t HashIndex::RowKeyHash(RowId row) const {
  const Value* data = rel_->RowData(row);
  std::size_t seed = kHashSeed;
  for (int p : key_positions_) {
    HashCombine(&seed, std::hash<std::int64_t>{}(
                           data[static_cast<std::size_t>(p)]));
  }
  return HashFinalize(seed);
}

RowSpan HashIndex::Lookup(const Value* key) const {
  std::size_t hash = KeyHash(key);
  std::size_t mask = slots_.size() - 1;
  std::size_t i = hash & mask;
  while (true) {
    std::uint32_t slot = slots_[i];
    if (slot == 0) return RowSpan{};
    std::size_t g = slot - 1;
    if (group_hashes_[g] == hash) {
      const Value* repr = rel_->RowData(row_ids_[starts_[g]]);
      bool match = true;
      for (std::size_t k = 0; k < key_positions_.size(); ++k) {
        if (repr[static_cast<std::size_t>(key_positions_[k])] != key[k]) {
          match = false;
          break;
        }
      }
      if (match) {
        return RowSpan{row_ids_.data() + starts_[g],
                       starts_[g + 1] - starts_[g]};
      }
    }
    i = (i + 1) & mask;
  }
}

}  // namespace linrec
