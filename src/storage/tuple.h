// Tuple: a fixed-arity row of Values with a cached hash.

#pragma once

#include <initializer_list>
#include <ostream>
#include <vector>

#include "common/hash.h"
#include "storage/value.h"

namespace linrec {

/// An immutable-after-construction row of Values.
///
/// Hash is computed eagerly so repeated set probes are cheap; equality
/// short-circuits on the hash.
class Tuple {
 public:
  Tuple() : hash_(HashRange(values_.begin(), values_.end())) {}
  explicit Tuple(std::vector<Value> values)
      : values_(std::move(values)),
        hash_(HashRange(values_.begin(), values_.end())) {}
  Tuple(std::initializer_list<Value> values)
      : values_(values), hash_(HashRange(values_.begin(), values_.end())) {}

  std::size_t arity() const { return values_.size(); }
  Value operator[](std::size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  std::size_t hash() const { return hash_; }

  bool operator==(const Tuple& other) const {
    return hash_ == other.hash_ && values_ == other.values_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  /// Lexicographic order; used for deterministic iteration in tests/output.
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  /// Returns the projection of this tuple onto `positions` (0-based).
  Tuple Project(const std::vector<int>& positions) const {
    std::vector<Value> out;
    out.reserve(positions.size());
    for (int p : positions) out.push_back(values_[static_cast<std::size_t>(p)]);
    return Tuple(std::move(out));
  }

 private:
  std::vector<Value> values_;
  std::size_t hash_;
};

struct TupleHash {
  std::size_t operator()(const Tuple& t) const { return t.hash(); }
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

}  // namespace linrec
