// Tuple: an owning fixed-arity row of Values, plus TupleView, the
// non-owning view that iteration and the join kernel traffic in.

#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <vector>

#include "common/hash.h"
#include "storage/value.h"

namespace linrec {

/// Hash of one contiguous row of `n` Values.
inline std::size_t HashRow(const Value* row, std::size_t n) {
  return HashRange(row, row + n);
}

/// An immutable-after-construction row of Values.
///
/// The owning boundary type of the storage layer: relations store their rows
/// in a flat pool (storage/relation.h) and hand out TupleViews; a Tuple is
/// what callers build to insert or probe, and what Sorted() materializes.
/// Hash is computed eagerly so repeated set probes are cheap; equality
/// short-circuits on the hash.
class Tuple {
 public:
  Tuple() : hash_(HashRange(values_.begin(), values_.end())) {}
  explicit Tuple(std::vector<Value> values)
      : values_(std::move(values)),
        hash_(HashRange(values_.begin(), values_.end())) {}
  Tuple(std::initializer_list<Value> values)
      : values_(values), hash_(HashRange(values_.begin(), values_.end())) {}

  std::size_t arity() const { return values_.size(); }
  Value operator[](std::size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  const Value* data() const { return values_.data(); }
  std::size_t hash() const { return hash_; }

  bool operator==(const Tuple& other) const {
    return hash_ == other.hash_ && values_ == other.values_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  /// Lexicographic order; used for deterministic iteration in tests/output.
  bool operator<(const Tuple& other) const { return values_ < other.values_; }

  /// Returns the projection of this tuple onto `positions` (0-based).
  Tuple Project(const std::vector<int>& positions) const {
    std::vector<Value> out;
    out.reserve(positions.size());
    for (int p : positions) out.push_back(values_[static_cast<std::size_t>(p)]);
    return Tuple(std::move(out));
  }

 private:
  std::vector<Value> values_;
  std::size_t hash_;
};

/// A non-owning view of one row inside a Relation's value pool.
///
/// Valid only while the underlying relation is alive and not mutated
/// (inserts may reallocate the pool). Cheap to copy; pass by value.
class TupleView {
 public:
  TupleView() = default;
  TupleView(const Value* data, std::size_t arity)
      : data_(data), arity_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return arity_; }
  Value operator[](std::size_t i) const { return data_[i]; }
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + arity_; }

  /// Materializes an owning copy.
  Tuple ToTuple() const {
    return Tuple(std::vector<Value>(data_, data_ + arity_));
  }

  bool operator==(TupleView other) const {
    if (arity_ != other.arity_) return false;
    for (std::size_t i = 0; i < arity_; ++i) {
      if (data_[i] != other.data_[i]) return false;
    }
    return true;
  }
  bool operator!=(TupleView other) const { return !(*this == other); }
  /// Lexicographic order, matching Tuple::operator<.
  bool operator<(TupleView other) const {
    return std::lexicographical_compare(begin(), end(), other.begin(),
                                        other.end());
  }

 private:
  const Value* data_ = nullptr;
  std::size_t arity_ = 0;
};

struct TupleHash {
  std::size_t operator()(const Tuple& t) const { return t.hash(); }
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);
std::ostream& operator<<(std::ostream& os, TupleView t);

}  // namespace linrec
