#include "storage/database.h"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "common/strings.h"
#include "storage/tuple.h"

namespace linrec {

Relation& Database::GetOrCreate(const std::string& name, std::size_t arity) {
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    assert(it->second.arity() == arity && "arity mismatch for relation");
    return it->second;
  }
  return relations_.emplace(name, Relation(arity)).first->second;
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::FindMutable(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

Result<const Relation*> Database::GetChecked(const std::string& name,
                                             std::size_t arity) const {
  const Relation* rel = Find(name);
  if (rel == nullptr) {
    return Status::NotFound(StrCat("relation '", name, "' not in database"));
  }
  if (rel->arity() != arity) {
    return Status::InvalidArgument(
        StrCat("relation '", name, "' has arity ", rel->arity(),
               ", expected ", arity));
  }
  return rel;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::ostream& operator<<(std::ostream& os, const Database& db) {
  for (const std::string& name : db.Names()) {
    const Relation* rel = db.Find(name);
    os << name << "/" << rel->arity() << " (" << rel->size() << " tuples)\n";
    for (const Tuple& t : rel->Sorted()) {
      os << "  " << name << t << "\n";
    }
  }
  return os;
}

}  // namespace linrec
