// The typeless value domain.
//
// Per Section 2 of the paper the system is typeless: a relation's schema is
// just its number of argument positions. Domain elements are 64-bit integers;
// workloads that conceptually use strings intern them to Values.

#pragma once

#include <cstdint>

namespace linrec {

/// A single domain element.
using Value = std::int64_t;

}  // namespace linrec
