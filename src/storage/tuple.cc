#include "storage/tuple.h"

namespace linrec {
namespace {

template <typename Row>
std::ostream& Print(std::ostream& os, const Row& t) {
  os << "(";
  for (std::size_t i = 0; i < t.arity(); ++i) {
    if (i > 0) os << ",";
    os << t[i];
  }
  return os << ")";
}

}  // namespace

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return Print(os, t);
}

std::ostream& operator<<(std::ostream& os, TupleView t) {
  return Print(os, t);
}

}  // namespace linrec
