#include "storage/tuple.h"

namespace linrec {

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  os << "(";
  for (std::size_t i = 0; i < t.arity(); ++i) {
    if (i > 0) os << ",";
    os << t[i];
  }
  return os << ")";
}

}  // namespace linrec
