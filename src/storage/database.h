// Database: named relations (the parameter relations {Q_i} of operators).

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace linrec {

/// A map from predicate name to Relation.
class Database {
 public:
  /// Creates or returns the relation `name` with the given arity.
  /// If the relation exists with a different arity, asserts (programming
  /// error); use GetChecked for a Status-returning variant.
  Relation& GetOrCreate(const std::string& name, std::size_t arity);

  /// Returns nullptr if `name` is absent.
  const Relation* Find(const std::string& name) const;
  Relation* FindMutable(const std::string& name);

  /// Status-returning lookup with an arity check.
  Result<const Relation*> GetChecked(const std::string& name,
                                     std::size_t arity) const;

  bool Has(const std::string& name) const { return relations_.count(name) > 0; }
  std::size_t relation_count() const { return relations_.size(); }

  /// Names in sorted order (deterministic iteration).
  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, Relation> relations_;
};

std::ostream& operator<<(std::ostream& os, const Database& db);

}  // namespace linrec
