// Relation: a set of same-arity tuples in one flat value pool, plus hash
// indexes (row-id based) built on demand.

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "storage/tuple.h"

namespace linrec {

/// Index of a row inside a Relation's pool (insertion order, 0-based).
using RowId = std::uint32_t;

class Relation;
class WorkerPool;

/// What one columnar σ scan examined — accumulated into ClosureStats
/// (rows_scanned / simd_blocks / simd_lane_hits) by callers that carry
/// stats. Deterministic across SIMD and scalar builds: a "block" is a
/// kLanes-row window whichever kernel walked it.
struct ScanCounters {
  std::size_t rows = 0;    // rows examined
  std::size_t blocks = 0;  // kLanes-row blocks, including a partial tail
  std::size_t hits = 0;    // matching rows
};

/// A borrowed contiguous row range [begin, end) of one Relation — the unit
/// of work the parallel semi-naive round hands to each worker. Views are
/// cheap value types; they are invalidated (like TupleViews) by inserts
/// into the underlying relation.
struct PartitionView {
  const Relation* relation = nullptr;
  RowId begin = 0;
  RowId end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// A set of tuples sharing one arity, stored columnar-free but flat: all
/// values live contiguously in one arity-strided pool, so a row is a
/// (pointer, arity) view and iteration is a linear sweep with no per-tuple
/// indirection. Deduplication is an open-addressing table of row ids over
/// the pool — no tuple is ever stored twice, and inserting from a raw value
/// span allocates nothing beyond amortized pool growth.
///
/// Mutation is insert-only (the algebra of the paper is monotone); each
/// successful insert bumps a version counter that index caches key on.
/// Iteration yields TupleViews in insertion order (deterministic).
class Relation {
 public:
  Relation() : arity_(0) {}
  explicit Relation(std::size_t arity) : arity_(arity) {}

  // Copy/move are member-wise; spelled out because the version stamp is
  // atomic (for concurrent version() reads) and atomics are not copyable,
  // and because the pool copy must re-establish the padded-capacity
  // invariant (a plain vector copy would give capacity == size, and the
  // scan kernels' full-block tail loads rely on capacity being a
  // kPadRows-row multiple; see GrowPool).
  Relation(const Relation& o)
      : arity_(o.arity_),
        version_(o.version_.load(std::memory_order_relaxed)),
        version_stale_(o.version_stale_.load(std::memory_order_relaxed)),
        row_count_(o.row_count_),
        hashes_(o.hashes_),
        slots_(o.slots_) {
    if (!o.pool_.empty()) {
      pool_.reserve(PaddedPoolCapacity(o.pool_.size(), arity_));
      pool_.insert(pool_.end(), o.pool_.begin(), o.pool_.end());
    }
  }
  Relation(Relation&& o) noexcept
      : arity_(o.arity_),
        version_(o.version_.load(std::memory_order_relaxed)),
        version_stale_(o.version_stale_.load(std::memory_order_relaxed)),
        row_count_(o.row_count_),
        pool_(std::move(o.pool_)),
        hashes_(std::move(o.hashes_)),
        slots_(std::move(o.slots_)) {
    o.row_count_ = 0;
    o.version_.store(0, std::memory_order_relaxed);
    o.version_stale_.store(false, std::memory_order_relaxed);
  }
  Relation& operator=(const Relation& o) {
    if (this != &o) *this = Relation(o);
    return *this;
  }
  Relation& operator=(Relation&& o) noexcept {
    if (this != &o) {
      arity_ = o.arity_;
      version_.store(o.version_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      version_stale_.store(
          o.version_stale_.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      row_count_ = o.row_count_;
      pool_ = std::move(o.pool_);
      hashes_ = std::move(o.hashes_);
      slots_ = std::move(o.slots_);
      o.row_count_ = 0;
      o.version_.store(0, std::memory_order_relaxed);
      o.version_stale_.store(false, std::memory_order_relaxed);
    }
    return *this;
  }

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return row_count_; }
  bool empty() const { return row_count_ == 0; }
  /// Content stamp for index caching: 0 for an empty relation, otherwise a
  /// process-globally unique value taken at the first version() read after
  /// a successful insert (lazily — a closure round doing 10^5 inserts
  /// draws one stamp, not 10^5, off the shared counter). Global uniqueness
  /// matters: distinct Relation objects can reuse one address (e.g. the Δ
  /// of successive semi-naive rounds), and (address, version) must never
  /// alias two different contents. Two relations may share version 0 only
  /// when both are empty — identical contents.
  std::uint64_t version() const;

  /// Inserts `t`; returns true iff the tuple was new.
  /// The tuple's arity must match the relation's (asserted).
  bool Insert(const Tuple& t) {
    assert(t.arity() == arity_ && "tuple arity must match relation arity");
    return InsertHashed(t.data(), t.hash());
  }
  bool Insert(std::initializer_list<Value> values) {
    assert(values.size() == arity_ && "arity must match relation arity");
    return InsertRow(values.begin());
  }
  bool Insert(TupleView t) {
    assert(t.arity() == arity_ && "view arity must match relation arity");
    return InsertRow(t.data());
  }
  /// Inserts the row at `row[0..arity)`. The allocation-free hot path: no
  /// Tuple is constructed, and nothing is heap-allocated unless the pool or
  /// the dedup table must grow (amortized by Reserve).
  bool InsertRow(const Value* row) { return InsertHashed(row, Hash(row)); }
  /// InsertRow with the row hash already computed (must equal
  /// HashRow(row, arity); asserted). Lets batched writers hash once, then
  /// prefetch, then insert.
  bool InsertRowHashed(const Value* row, std::size_t hash) {
    assert(hash == Hash(row));
    return InsertHashed(row, hash);
  }

  /// Prefetches the dedup slot a row with this hash probes first. A writer
  /// holding a batch of pending inserts issues these ahead of the inserts
  /// so the probes' cache misses overlap instead of serializing.
  void PrefetchSlot(std::size_t hash) const {
    if (!slots_.empty()) {
      __builtin_prefetch(slots_.data() + (hash & (slots_.size() - 1)));
    }
  }

  /// Inserts every tuple of `other` (same arity); returns number added.
  std::size_t UnionWith(const Relation& other);

  /// Pre-sizes the pool and the dedup table for `rows` total tuples, so a
  /// closure loop that knows its Δ size inserts without reallocation.
  void Reserve(std::size_t rows);

  /// Removes every row but keeps the pool, hash and slot capacity, so a
  /// per-round scratch relation (a worker's thread-local output pool) is
  /// reused across rounds without reallocating.
  void Clear();

  /// Shrinks the relation back to its first `rows` rows (requires
  /// rows <= size()). Insert order, pool bytes and cached hashes of the
  /// surviving prefix are untouched, so truncating to a recorded size
  /// restores the exact pre-append bytes — the IVM rollback primitive
  /// (appends are the only mutation, so size() is a checkpoint). The dedup
  /// table is rebuilt over the survivors in place; no capacity grows, so
  /// no budget charge (and no injected fault) can fire mid-rollback.
  void TruncateRows(std::size_t rows);

  /// Rows [begin, end) as a borrowed view (no copy).
  PartitionView View(RowId begin, RowId end) const {
    assert(begin <= end && end <= row_count_);
    return PartitionView{this, begin, end};
  }

  /// σ_{position = value} as a columnar scan: stride-walks the selected
  /// column of the flat pool counting matches (SIMD blocks of simd::kLanes
  /// rows when LINREC_SIMD is on, the scalar reference kernel otherwise),
  /// reserves the output exactly, then bulk-copies the matching rows from
  /// blockwise equality masks, reusing their cached hashes. Allocates
  /// O(matches), not O(rows). The scalar and SIMD paths examine the same
  /// rows in the same order, so results are bit-identical.
  /// When `counters` is non-null the scan's row/block/hit counts are added
  /// to it.
  Relation WhereEquals(int position, Value value,
                       ScanCounters* counters = nullptr) const;
  /// WhereEquals forced onto the scalar reference kernel in every build —
  /// the baseline the scan_sigma microbench and the SIMD parity tests
  /// compare against.
  Relation WhereEqualsScalar(int position, Value value,
                             ScanCounters* counters = nullptr) const;

  bool Contains(const Tuple& t) const {
    assert(t.arity() == arity_);
    return FindRow(t.data(), t.hash()) != kNoRow;
  }
  bool Contains(TupleView t) const {
    assert(t.arity() == arity_);
    return ContainsRow(t.data());
  }
  bool Contains(std::initializer_list<Value> values) const {
    assert(values.size() == arity_);
    return ContainsRow(values.begin());
  }
  bool ContainsRow(const Value* row) const {
    return FindRow(row, Hash(row)) != kNoRow;
  }

  /// The `id`-th inserted row. Views are invalidated by the next insert.
  TupleView Row(RowId id) const {
    assert(id < row_count_);
    return TupleView(pool_.data() + static_cast<std::size_t>(id) * arity_,
                     arity_);
  }
  /// Raw pointer to the `id`-th row (arity_ consecutive values).
  const Value* RowData(RowId id) const {
    assert(id < row_count_);
    return pool_.data() + static_cast<std::size_t>(id) * arity_;
  }
  /// Cached hash of the `id`-th row.
  std::size_t RowHash(RowId id) const { return hashes_[id]; }

  /// Forward iterator over rows in insertion order, yielding TupleView.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TupleView;
    using difference_type = std::ptrdiff_t;
    using pointer = const TupleView*;
    using reference = TupleView;

    const_iterator() = default;
    const_iterator(const Relation* rel, RowId row) : rel_(rel), row_(row) {}
    TupleView operator*() const { return rel_->Row(row_); }
    const_iterator& operator++() {
      ++row_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++row_;
      return copy;
    }
    bool operator==(const const_iterator& o) const { return row_ == o.row_; }
    bool operator!=(const const_iterator& o) const { return row_ != o.row_; }

   private:
    const Relation* rel_ = nullptr;
    RowId row_ = 0;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, static_cast<RowId>(row_count_));
  }

  /// Tuples in lexicographic order (deterministic output for tests/printing).
  std::vector<Tuple> Sorted() const;

  /// Set equality (arity + contents, any insertion order).
  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

 private:
  friend class PoolMerger;

  static constexpr RowId kNoRow = static_cast<RowId>(-1);

  std::size_t Hash(const Value* row) const { return HashRow(row, arity_); }
  bool InsertHashed(const Value* row, std::size_t hash);
  RowId FindRow(const Value* row, std::size_t hash) const;
  bool RowEquals(RowId id, const Value* row) const {
    const Value* mine = pool_.data() + static_cast<std::size_t>(id) * arity_;
    for (std::size_t i = 0; i < arity_; ++i) {
      if (mine[i] != row[i]) return false;
    }
    return true;
  }
  void Rehash(std::size_t slot_count);
  /// Budget-charged capacity growth (see ChargeBytesOrThrow in
  /// common/memory.h); may throw ResourceExhaustedError before mutating.
  /// GrowPool rounds the new capacity up to a simd::kPadRows-row multiple
  /// (the scan kernels' tail-load invariant).
  void GrowPool(std::size_t needed_values);
  void GrowHashes(std::size_t needed_rows);
  /// `values` rounded up to a multiple of simd::kPadRows rows of `arity`,
  /// plus one extra pad block: the stride-2 de-interleave load reads
  /// 2·kLanes consecutive values starting at pool + column, so the last
  /// full block's load ends up to `column` values past the rounded row
  /// count — the extra block keeps every such read inside the allocation.
  static std::size_t PaddedPoolCapacity(std::size_t values,
                                        std::size_t arity) {
    if (arity == 0) return values;
    const std::size_t block = simd::kPadRows * arity;
    return (values + block - 1) / block * block + block;
  }
  template <bool kSimd>
  Relation WhereEqualsKernel(int position, Value value,
                             ScanCounters* counters) const;

  std::size_t arity_;
  /// Lazily drawn content stamp; see version(). Atomics make concurrent
  /// version() reads of a quiescent relation race-free (mutation itself is
  /// single-writer, like every other mutating member).
  mutable std::atomic<std::uint64_t> version_{0};
  mutable std::atomic<bool> version_stale_{false};
  std::size_t row_count_ = 0;     // == pool_.size() / arity_ unless arity 0
  /// Arity-strided row storage. The aligned allocator starts every pool on
  /// a vector-width boundary; every capacity is a kPadRows-row multiple
  /// (GrowPool / copy ctor), so a full-block load at the scan tail stays
  /// inside the allocation.
  std::vector<Value, simd::PoolAllocator<Value>> pool_;
  std::vector<std::size_t> hashes_;  // per-row hash (dedup probes, rehash)
  std::vector<RowId> slots_;      // open addressing: row id + 1; 0 = empty
};

/// Merges thread-local output pools into one target relation with no
/// locking on any row: rows are bucketed by the HIGH bits of their cached
/// hashes into shards (the dedup table probes with the LOW bits, so the two
/// partitions are independent), each shard is deduplicated on its own —
/// against the target, then across pools, first pool-order occurrence wins
/// — and only the surviving, provably-unique rows are appended to the
/// target. Bucketing parallelizes over pools and deduplication over shards
/// (disjoint hash ranges never contend); the final append is a short
/// sequential pass over new rows only.
///
/// Scratch buffers persist across Merge calls, so the steady state of a
/// semi-naive closure (one Merge per round) allocates nothing.
class PoolMerger {
 public:
  /// 2^shard_bits shards. More shards = finer parallelism and smaller
  /// per-shard dedup tables; 64 is plenty for any realistic worker count.
  explicit PoolMerger(int shard_bits = 6);

  /// Appends every row of `pools[0..pool_count)` absent from `*target` to
  /// `*target` (deduplicating across pools) and returns the number of rows
  /// appended. All relations must share the target's arity. When `pool` is
  /// non-null the bucket and dedup phases run on it; serial otherwise.
  /// The appended rows occupy target ids [old_size, new_size) in shard-
  /// major, then pool-major, then row order — deterministic for fixed pool
  /// contents. An exception thrown inside a parallel phase (WorkerPool
  /// swallows them on its threads) is captured and rethrown here on the
  /// calling thread — a failed phase must surface, never return a
  /// silently incomplete merge.
  std::size_t Merge(const Relation* const* pools, std::size_t pool_count,
                    Relation* target, WorkerPool* pool = nullptr);

 private:
  /// Cache-line aligned: neighbouring shards are written by different
  /// worker lanes during the dedup phase, and an unaligned Shard would put
  /// two lanes' vector headers (data/size/capacity, mutated on every
  /// survivor push) on one line — false sharing on the hottest merge loop.
  struct alignas(64) Shard {
    /// Surviving rows as (pool index, row id), in arrival order.
    std::vector<std::pair<std::uint32_t, RowId>> survivors;
    /// Open-addressing table over `survivors` (index + 1; 0 = empty).
    std::vector<std::uint32_t> slots;
  };

  std::size_t ShardOf(std::size_t hash) const {
    return hash >> (sizeof(std::size_t) * 8 - static_cast<unsigned>(shard_bits_));
  }
  void BucketPool(std::size_t pool_index, const Relation& pool);
  void DedupShard(std::size_t shard, const Relation* const* pools,
                  std::size_t pool_count, const Relation& target);

  int shard_bits_;
  std::size_t shard_count_;
  /// buckets_[pool * shard_count_ + shard] = row ids of that pool whose
  /// hash lands in that shard. Pool-major so bucketing never contends.
  std::vector<std::vector<RowId>> buckets_;
  std::vector<Shard> shards_;
};

/// A borrowed, contiguous list of row ids — what HashIndex::Lookup yields.
struct RowSpan {
  const RowId* ids = nullptr;
  std::size_t count = 0;

  bool empty() const { return count == 0; }
  const RowId* begin() const { return ids; }
  const RowId* end() const { return ids + count; }
  RowId operator[](std::size_t i) const { return ids[i]; }
};

/// A hash index over one relation keyed by a subset of positions.
///
/// Maps the projection of each row onto `key_positions` to the span of
/// matching row ids — no tuple is copied. Groups live in one flat CSR
/// layout (offsets + row ids) rather than per-group vectors, so building
/// does two allocation-free passes over the rows and probing follows no
/// per-group heap pointer. Lookup takes a raw key span (values in
/// key_positions order) and allocates nothing, so join loops probe without
/// constructing a Tuple.
class HashIndex {
 public:
  HashIndex(const Relation& rel, std::vector<int> key_positions);

  /// Row ids whose `key_positions` projection equals `key[0..k)`, in
  /// insertion order; an empty span when the key is absent.
  /// Allocation-free.
  RowSpan Lookup(const Value* key) const;
  /// Convenience probe from an owning key tuple (arity must equal the
  /// number of key positions).
  RowSpan Lookup(const Tuple& key) const {
    assert(key.arity() == key_positions_.size());
    return Lookup(key.data());
  }

  const Relation& relation() const { return *rel_; }
  const std::vector<int>& key_positions() const { return key_positions_; }
  std::uint64_t built_at_version() const { return built_at_version_; }
  std::size_t distinct_keys() const { return starts_.size() - 1; }

 private:
  std::size_t KeyHash(const Value* key) const {
    return HashRange(key, key + key_positions_.size());
  }
  std::size_t RowKeyHash(RowId row) const;

  const Relation* rel_;
  std::vector<int> key_positions_;
  std::uint64_t built_at_version_;
  std::vector<std::uint32_t> slots_;   // group index + 1; 0 = empty
  /// CSR: group g's rows are row_ids_[starts_[g], starts_[g+1]); its key is
  /// the projection of its first row.
  std::vector<std::uint32_t> starts_;
  std::vector<RowId> row_ids_;
  std::vector<std::size_t> group_hashes_;
};

}  // namespace linrec
