// Relation: a set of same-arity tuples in one flat value pool, plus hash
// indexes (row-id based) built on demand.

#pragma once

#include <cassert>
#include <cstdint>
#include <iterator>
#include <vector>

#include "storage/tuple.h"

namespace linrec {

/// Index of a row inside a Relation's pool (insertion order, 0-based).
using RowId = std::uint32_t;

/// A set of tuples sharing one arity, stored columnar-free but flat: all
/// values live contiguously in one arity-strided pool, so a row is a
/// (pointer, arity) view and iteration is a linear sweep with no per-tuple
/// indirection. Deduplication is an open-addressing table of row ids over
/// the pool — no tuple is ever stored twice, and inserting from a raw value
/// span allocates nothing beyond amortized pool growth.
///
/// Mutation is insert-only (the algebra of the paper is monotone); each
/// successful insert bumps a version counter that index caches key on.
/// Iteration yields TupleViews in insertion order (deterministic).
class Relation {
 public:
  Relation() : arity_(0) {}
  explicit Relation(std::size_t arity) : arity_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return row_count_; }
  bool empty() const { return row_count_ == 0; }
  /// Content stamp for index caching: 0 for an empty relation, otherwise a
  /// process-globally unique value taken at the last successful insert.
  /// Global uniqueness matters: distinct Relation objects can reuse one
  /// address (e.g. the Δ of successive semi-naive rounds), and (address,
  /// version) must never alias two different contents. Two relations may
  /// share version 0 only when both are empty — identical contents.
  std::uint64_t version() const { return version_; }

  /// Inserts `t`; returns true iff the tuple was new.
  /// The tuple's arity must match the relation's (asserted).
  bool Insert(const Tuple& t) {
    assert(t.arity() == arity_ && "tuple arity must match relation arity");
    return InsertHashed(t.data(), t.hash());
  }
  bool Insert(std::initializer_list<Value> values) {
    assert(values.size() == arity_ && "arity must match relation arity");
    return InsertRow(values.begin());
  }
  bool Insert(TupleView t) {
    assert(t.arity() == arity_ && "view arity must match relation arity");
    return InsertRow(t.data());
  }
  /// Inserts the row at `row[0..arity)`. The allocation-free hot path: no
  /// Tuple is constructed, and nothing is heap-allocated unless the pool or
  /// the dedup table must grow (amortized by Reserve).
  bool InsertRow(const Value* row) { return InsertHashed(row, Hash(row)); }

  /// Inserts every tuple of `other` (same arity); returns number added.
  std::size_t UnionWith(const Relation& other);

  /// Pre-sizes the pool and the dedup table for `rows` total tuples, so a
  /// closure loop that knows its Δ size inserts without reallocation.
  void Reserve(std::size_t rows);

  bool Contains(const Tuple& t) const {
    assert(t.arity() == arity_);
    return FindRow(t.data(), t.hash()) != kNoRow;
  }
  bool Contains(TupleView t) const {
    assert(t.arity() == arity_);
    return ContainsRow(t.data());
  }
  bool Contains(std::initializer_list<Value> values) const {
    assert(values.size() == arity_);
    return ContainsRow(values.begin());
  }
  bool ContainsRow(const Value* row) const {
    return FindRow(row, Hash(row)) != kNoRow;
  }

  /// The `id`-th inserted row. Views are invalidated by the next insert.
  TupleView Row(RowId id) const {
    assert(id < row_count_);
    return TupleView(pool_.data() + static_cast<std::size_t>(id) * arity_,
                     arity_);
  }
  /// Raw pointer to the `id`-th row (arity_ consecutive values).
  const Value* RowData(RowId id) const {
    assert(id < row_count_);
    return pool_.data() + static_cast<std::size_t>(id) * arity_;
  }
  /// Cached hash of the `id`-th row.
  std::size_t RowHash(RowId id) const { return hashes_[id]; }

  /// Forward iterator over rows in insertion order, yielding TupleView.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TupleView;
    using difference_type = std::ptrdiff_t;
    using pointer = const TupleView*;
    using reference = TupleView;

    const_iterator() = default;
    const_iterator(const Relation* rel, RowId row) : rel_(rel), row_(row) {}
    TupleView operator*() const { return rel_->Row(row_); }
    const_iterator& operator++() {
      ++row_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++row_;
      return copy;
    }
    bool operator==(const const_iterator& o) const { return row_ == o.row_; }
    bool operator!=(const const_iterator& o) const { return row_ != o.row_; }

   private:
    const Relation* rel_ = nullptr;
    RowId row_ = 0;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, static_cast<RowId>(row_count_));
  }

  /// Tuples in lexicographic order (deterministic output for tests/printing).
  std::vector<Tuple> Sorted() const;

  /// Set equality (arity + contents, any insertion order).
  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

 private:
  static constexpr RowId kNoRow = static_cast<RowId>(-1);

  std::size_t Hash(const Value* row) const { return HashRow(row, arity_); }
  bool InsertHashed(const Value* row, std::size_t hash);
  RowId FindRow(const Value* row, std::size_t hash) const;
  bool RowEquals(RowId id, const Value* row) const {
    const Value* mine = pool_.data() + static_cast<std::size_t>(id) * arity_;
    for (std::size_t i = 0; i < arity_; ++i) {
      if (mine[i] != row[i]) return false;
    }
    return true;
  }
  void Rehash(std::size_t slot_count);

  std::size_t arity_;
  std::uint64_t version_ = 0;
  std::size_t row_count_ = 0;     // == pool_.size() / arity_ unless arity 0
  std::vector<Value> pool_;       // arity-strided row storage
  std::vector<std::size_t> hashes_;  // per-row hash (dedup probes, rehash)
  std::vector<RowId> slots_;      // open addressing: row id + 1; 0 = empty
};

/// A hash index over one relation keyed by a subset of positions.
///
/// Maps the projection of each row onto `key_positions` to the list of
/// matching row ids — no tuple is copied. Built in one pass; Lookup takes a
/// raw key span (values in key_positions order) and allocates nothing, so
/// join loops probe without constructing a Tuple.
class HashIndex {
 public:
  HashIndex(const Relation& rel, std::vector<int> key_positions);

  /// Row ids whose `key_positions` projection equals `key[0..k)`, in
  /// insertion order; nullptr when the key is absent. Allocation-free.
  const std::vector<RowId>* Lookup(const Value* key) const;
  /// Convenience probe from an owning key tuple (arity must equal the
  /// number of key positions).
  const std::vector<RowId>* Lookup(const Tuple& key) const {
    assert(key.arity() == key_positions_.size());
    return Lookup(key.data());
  }

  const Relation& relation() const { return *rel_; }
  const std::vector<int>& key_positions() const { return key_positions_; }
  std::uint64_t built_at_version() const { return built_at_version_; }
  std::size_t distinct_keys() const { return groups_.size(); }

 private:
  std::size_t KeyHash(const Value* key) const {
    return HashRange(key, key + key_positions_.size());
  }
  std::size_t RowKeyHash(RowId row) const;
  bool RowMatchesKey(RowId row, const Value* key) const;

  const Relation* rel_;
  std::vector<int> key_positions_;
  std::uint64_t built_at_version_;
  std::vector<std::uint32_t> slots_;       // group index + 1; 0 = empty
  std::vector<std::vector<RowId>> groups_; // group's key = projection of
                                           // its first row
  std::vector<std::size_t> group_hashes_;
};

}  // namespace linrec
