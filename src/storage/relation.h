// Relation: a set of same-arity tuples, plus hash indexes built on demand.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/tuple.h"

namespace linrec {

/// A set of tuples sharing one arity.
///
/// Mutation is insert-only (the algebra of the paper is monotone); each
/// successful insert bumps a version counter that index caches key on.
class Relation {
 public:
  Relation() : arity_(0) {}
  explicit Relation(std::size_t arity) : arity_(arity) {}

  std::size_t arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  /// Content stamp for index caching: 0 for an empty relation, otherwise a
  /// process-globally unique value taken at the last successful insert.
  /// Global uniqueness matters: distinct Relation objects can reuse one
  /// address (e.g. the Δ of successive semi-naive rounds), and (address,
  /// version) must never alias two different contents. Two relations may
  /// share version 0 only when both are empty — identical contents.
  std::uint64_t version() const { return version_; }

  /// Inserts `t`; returns true iff the tuple was new.
  /// The tuple's arity must match the relation's (asserted).
  bool Insert(const Tuple& t);
  bool Insert(std::initializer_list<Value> values) {
    return Insert(Tuple(values));
  }

  /// Inserts every tuple of `other` (same arity); returns number added.
  std::size_t UnionWith(const Relation& other);

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }

  using const_iterator = std::unordered_set<Tuple, TupleHash>::const_iterator;
  const_iterator begin() const { return tuples_.begin(); }
  const_iterator end() const { return tuples_.end(); }

  /// Tuples in lexicographic order (deterministic output for tests/printing).
  std::vector<Tuple> Sorted() const;

  bool operator==(const Relation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

 private:
  std::size_t arity_;
  std::uint64_t version_ = 0;
  std::unordered_set<Tuple, TupleHash> tuples_;
};

/// A hash index over one relation keyed by a subset of positions.
///
/// Maps the projection of each tuple onto `key_positions` to the list of
/// matching tuples. Built in one pass; lookups return an empty span when the
/// key is absent.
class HashIndex {
 public:
  HashIndex(const Relation& rel, std::vector<int> key_positions);

  /// All tuples whose `key_positions` projection equals `key`.
  const std::vector<Tuple>* Lookup(const Tuple& key) const {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  const std::vector<int>& key_positions() const { return key_positions_; }
  std::uint64_t built_at_version() const { return built_at_version_; }

 private:
  std::vector<int> key_positions_;
  std::uint64_t built_at_version_;
  std::unordered_map<Tuple, std::vector<Tuple>, TupleHash> buckets_;
};

}  // namespace linrec
