// The IVM delta engine: Engine::Materialize / Apply / Retract.
//
// Apply is the insert half: the closed view plus freshly appended tuples
// is handed to the in-place semi-naive continuation (SemiNaiveExtend /
// JointSemiNaiveExtend), which runs Δ rounds from exactly the appended
// row ranges. The one-step consequences of new PARAMETER tuples are
// produced first by "delta rules" — the rule with one body atom pinned
// to the delta relation and the recursive atom pinned to the closed view
// — so a parameter insert seeds the continuation the same way a seed
// insert does. Every mutation on this path is an append; failure
// rollback is Relation::TruncateRows back to the recorded sizes, which
// restores the exact pre-call bytes (and cannot itself fail: same-size
// rehash never charges the budget).
//
// Retract is the delete half — delete-and-rederive (DRed):
//   1. Over-delete: close the set of DIRECTLY damaged tuples (deleted
//      seed tuples, plus heads of derivations consuming a deleted
//      parameter tuple) under the rules — linearity makes "derivable
//      from a suspect" the same linear closure the view itself uses, so
//      the suspect set D is computed by SemiNaiveClosure over the
//      suspects.
//   2. Re-derive: the survivors closed \ D are sound (none of their
//      derivations touched a deleted tuple). Re-seed with the deleted-
//      then-still-present seed tuples and every one-step head derivable
//      from the survivors over the POST-delete database, intersected
//      into D, and resume the fixpoint in place. The result equals the
//      from-scratch closure of the new seed over the new database: any
//      tuple of that closure has a minimal derivation chain, and
//      induction along the chain lands it either in the survivors or in
//      the re-derivation frontier.
// The rebuilt relations replace the view only at commit; the only
// in-place mutation before commit is the parameter filtering, which
// keeps the displaced originals for restore-on-failure.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/memory.h"
#include "common/status.h"
#include "common/strings.h"
#include "datalog/equality.h"
#include "engine/engine.h"
#include "eval/apply.h"
#include "eval/fixpoint.h"
#include "eval/joint.h"
#include "ivm/view.h"
#include "storage/relation.h"

namespace linrec {

namespace {

/// Uniform shape for the delta runs: every rule as (rule, head member,
/// recursive atom, recursive member), equality atoms statically
/// eliminated (elimination shifts atom indices, so the recursive atom is
/// re-identified afterwards). Single-predicate plans use member 0.
struct DeltaRule {
  Rule rule;
  int head_member = 0;
  int recursive_atom = -1;
  int recursive_member = 0;
};

Result<std::vector<DeltaRule>> DeltaRulesOf(
    const std::vector<LinearRule>& rules) {
  std::vector<DeltaRule> out;
  out.reserve(rules.size());
  for (const LinearRule& lr : rules) {
    if (!HasEqualities(lr.rule())) {
      out.push_back({lr.rule(), 0, lr.recursive_atom_index(), 0});
      continue;
    }
    Result<std::optional<LinearRule>> e = EliminateEqualitiesLinear(lr);
    if (!e.ok()) return e.status();
    if (!e->has_value()) continue;  // unsatisfiable: derives nothing
    out.push_back({(*e)->rule(), 0, (*e)->recursive_atom_index(), 0});
  }
  return out;
}

Result<std::vector<DeltaRule>> DeltaRulesOf(
    const std::vector<std::string>& members,
    const std::vector<JointRule>& rules) {
  std::vector<DeltaRule> out;
  out.reserve(rules.size());
  for (const JointRule& jr : rules) {
    Rule rule = jr.rule;
    if (HasEqualities(rule)) {
      Result<std::optional<Rule>> e = EliminateEqualities(rule);
      if (!e.ok()) return e.status();
      if (!e->has_value()) continue;
      rule = std::move(**e);
    }
    int rec_atom = -1;
    int rec_member = -1;
    for (std::size_t i = 0; i < rule.body().size(); ++i) {
      for (std::size_t m = 0; m < members.size(); ++m) {
        if (rule.body()[i].predicate == members[m]) {
          rec_atom = static_cast<int>(i);
          rec_member = static_cast<int>(m);
        }
      }
    }
    // Exactly one member atom per body (ValidateJointRuleStructure held at
    // plan time), and elimination never drops a non-equality atom.
    if (rec_atom < 0) {
      return Status::Internal(StrCat("joint rule lost its member atom"));
    }
    out.push_back({std::move(rule), jr.head_member, rec_atom, rec_member});
  }
  return out;
}

/// Rows of `rel` absent from `drop`, in `rel`'s insertion order.
Relation Difference(const Relation& rel, const Relation& drop) {
  if (drop.empty()) return rel;
  Relation out(rel.arity());
  for (TupleView t : rel) {
    if (!drop.Contains(t)) out.Insert(t);
  }
  return out;
}

}  // namespace

Result<MaterializedView> Engine::Materialize(const BoundQuery& bound,
                                             std::vector<std::string> names,
                                             ClosureStats* stats) {
  LINREC_RETURN_IF_ERROR(bound.Validate());
  const std::shared_ptr<const ExecutionPlan>& plan = bound.plan();
  if (bound.selection().has_value() || plan->selection.has_value()) {
    return Status::InvalidArgument(
        "cannot materialize a view over a selected (σ) query: the filtered "
        "relation is not closed under the rules, so it cannot be maintained "
        "incrementally");
  }
  const bool joint = plan->strategy == Strategy::kJointSemiNaive;
  const std::size_t members = joint ? plan->members.size() : 1;
  if (names.size() != members) {
    return Status::InvalidArgument(
        StrCat("Materialize needs one name per member: got ", names.size(),
               " names for ", members, " member(s)"));
  }

  Result<QueryResult> result = Execute(bound);
  if (!result.ok()) return result.status();
  if (stats != nullptr) *stats = result->stats;

  // Arity guard before any installation (GetOrCreate asserts on mismatch).
  for (std::size_t m = 0; m < members; ++m) {
    const Relation* existing = db_.Find(names[m]);
    if (existing != nullptr &&
        existing->arity() != result->relations[m].arity()) {
      return Status::InvalidArgument(
          StrCat("cannot install view member '", names[m], "' of arity ",
                 result->relations[m].arity(), " over existing relation of ",
                 "arity ", existing->arity()));
    }
  }

  MaterializedView view;
  view.plan_ = plan;
  view.joint_ = joint;
  view.names_ = std::move(names);
  if (joint) {
    view.seeds_ = *bound.seeds();
  } else {
    view.seeds_.push_back(*bound.seed());
  }
  for (std::size_t m = 0; m < members; ++m) {
    Relation& slot =
        db_.GetOrCreate(view.names_[m], result->relations[m].arity());
    slot = std::move(result->relations[m]);
  }
  return view;
}

Result<ApplyOutcome> Engine::Apply(MaterializedView& view,
                                   const DeltaInsert& delta,
                                   const CancellationToken* cancel,
                                   QueryBudget* budget) {
  if (view.plan_ == nullptr) {
    return Status::InvalidArgument("Apply on a default-constructed view");
  }
  const ExecutionPlan& plan = view.plan();
  const std::size_t members = view.member_count();

  // Resolve and validate everything before the first mutation.
  std::vector<Relation*> closed(members, nullptr);
  for (std::size_t m = 0; m < members; ++m) {
    closed[m] = db_.FindMutable(view.names_[m]);
    if (closed[m] == nullptr) {
      return Status::Internal(StrCat("view relation '", view.names_[m],
                                     "' missing from the database"));
    }
  }
  if (!delta.seed_inserts.empty() && delta.seed_inserts.size() != members) {
    return Status::InvalidArgument(
        StrCat("seed_inserts must have one relation per member: got ",
               delta.seed_inserts.size(), " for ", members, " member(s)"));
  }
  for (std::size_t m = 0; m < delta.seed_inserts.size(); ++m) {
    if (delta.seed_inserts[m].arity() != closed[m]->arity()) {
      return Status::InvalidArgument(
          StrCat("seed_inserts[", m, "] arity ", delta.seed_inserts[m].arity(),
                 " != member arity ", closed[m]->arity()));
    }
  }
  for (const auto& [pred, rel] : delta.param_inserts) {
    for (const std::string& name : view.names_) {
      if (pred == name) {
        return Status::InvalidArgument(
            StrCat("cannot insert into '", pred,
                   "': it is a derived member of the view, not an input"));
      }
    }
    const Relation* existing = db_.Find(pred);
    if (existing != nullptr && existing->arity() != rel.arity()) {
      return Status::InvalidArgument(
          StrCat("param_inserts['", pred, "'] arity ", rel.arity(),
                 " != database arity ", existing->arity()));
    }
  }
  Result<std::vector<DeltaRule>> delta_rules =
      view.joint_ ? DeltaRulesOf(plan.members, plan.joint_rules)
                  : DeltaRulesOf(plan.rules);
  if (!delta_rules.ok()) return delta_rules.status();

  // Checkpoint: every relation this call may touch is append-only, so the
  // sizes are the rollback state.
  std::vector<std::size_t> closed_pre(members), seed_pre(members);
  for (std::size_t m = 0; m < members; ++m) {
    closed_pre[m] = closed[m]->size();
    seed_pre[m] = view.seeds_[m].size();
  }
  std::vector<std::pair<Relation*, std::size_t>> param_pre;

  const int workers = plan.parallel_workers > 0 ? plan.parallel_workers : 1;
  ApplyOutcome outcome;
  outcome.appended.assign(members, {0, 0});

  ScopedQueryBudget budget_scope(budget != nullptr ? budget
                                                   : CurrentQueryBudget());
  Status status = GuardAllocFailures([&]() -> Status {
    // 1. Union the parameter deltas into the database. The given delta —
    // not the subset that was actually new — seeds the delta rules below:
    // a stale delta row only re-derives heads the closure already holds
    // (deduplicated), and taking it as-given is what lets a cascading
    // caller pre-insert facts and still pass them here.
    for (const auto& [pred, rel] : delta.param_inserts) {
      Relation& target = db_.GetOrCreate(pred, rel.arity());
      param_pre.emplace_back(&target, target.size());
      target.UnionWith(rel);
    }

    // 2. Delta rules: the one-step consequences of exactly the new
    // parameter tuples, with the recursive atom reading the closed view.
    // Other body atoms read the full post-update database, which covers
    // derivations combining several new tuples.
    std::vector<Relation> heads;
    heads.reserve(members);
    for (std::size_t m = 0; m < members; ++m) {
      heads.emplace_back(closed[m]->arity());
    }
    for (const DeltaRule& dr : *delta_rules) {
      for (std::size_t i = 0; i < dr.rule.body().size(); ++i) {
        if (static_cast<int>(i) == dr.recursive_atom) continue;
        auto it = delta.param_inserts.find(dr.rule.body()[i].predicate);
        if (it == delta.param_inserts.end()) continue;
        ApplyOptions options;
        options.overrides[dr.recursive_atom] = closed[dr.recursive_member];
        options.overrides[static_cast<int>(i)] = &it->second;
        options.first_atom = static_cast<int>(i);
        LINREC_RETURN_IF_ERROR(ApplyRule(dr.rule, db_, options,
                                         &heads[dr.head_member],
                                         &outcome.stats, &cache_));
      }
    }

    // 3. Append the new seed tuples (to the maintained seed too) and the
    // delta-rule heads; the appended ranges seed the continuation.
    for (std::size_t m = 0; m < members; ++m) {
      outcome.appended[m].first = static_cast<RowId>(closed[m]->size());
      if (!delta.seed_inserts.empty()) {
        view.seeds_[m].UnionWith(delta.seed_inserts[m]);
        closed[m]->UnionWith(delta.seed_inserts[m]);
      }
      closed[m]->UnionWith(heads[m]);
    }

    if (FaultFires(FaultSite::kIvmApply)) {
      return Status::Internal(
          "injected fault at ivm_apply (before the resume)");
    }

    // 4. Resume the fixpoint in place from the appended rows only.
    if (!view.joint_) {
      LINREC_RETURN_IF_ERROR(SemiNaiveExtend(
          plan.rules, db_, closed[0], outcome.appended[0].first,
          &outcome.stats, &cache_, workers, cancel));
    } else {
      // JointSemiNaiveExtend works on a member vector; the members live as
      // separate database entries, so move them out, extend, move back
      // (O(1) moves — and safe: the linearity invariant means no rule body
      // reads a member through the database).
      std::vector<Relation> rels;
      rels.reserve(members);
      for (std::size_t m = 0; m < members; ++m) {
        rels.push_back(std::move(*closed[m]));
      }
      std::vector<RowId> begin(members);
      for (std::size_t m = 0; m < members; ++m) {
        begin[m] = outcome.appended[m].first;
      }
      Status extended = JointSemiNaiveExtend(
          plan.members, plan.joint_rules, db_, &rels, begin, &outcome.stats,
          &cache_, workers, cancel);
      for (std::size_t m = 0; m < members; ++m) {
        *closed[m] = std::move(rels[m]);
      }
      LINREC_RETURN_IF_ERROR(extended);
    }

    if (FaultFires(FaultSite::kIvmApply)) {
      return Status::Internal("injected fault at ivm_apply (at commit)");
    }

    for (std::size_t m = 0; m < members; ++m) {
      outcome.appended[m].second = static_cast<RowId>(closed[m]->size());
      outcome.added += outcome.appended[m].second - outcome.appended[m].first;
    }
    return Status::OK();
  });

  if (!status.ok()) {
    // Byte-identical rollback: every mutation above was an append, so
    // truncating to the recorded sizes restores the pre-call state exactly
    // (a parameter relation this call created stays behind empty —
    // indistinguishable from absent to every reader). Truncation never
    // grows capacity, so the rollback itself cannot be denied.
    for (std::size_t m = 0; m < members; ++m) {
      closed[m]->TruncateRows(closed_pre[m]);
      view.seeds_[m].TruncateRows(seed_pre[m]);
    }
    for (auto& [rel, size] : param_pre) rel->TruncateRows(size);
    EvictTemporaryIndexes();
    return status;
  }

  ++view.applies_;
  stats_.Accumulate(outcome.stats);
  EvictTemporaryIndexes();
  return outcome;
}

Result<RetractOutcome> Engine::Retract(MaterializedView& view,
                                       const DeltaDelete& delta,
                                       const CancellationToken* cancel,
                                       QueryBudget* budget) {
  if (view.plan_ == nullptr) {
    return Status::InvalidArgument("Retract on a default-constructed view");
  }
  const ExecutionPlan& plan = view.plan();
  const std::size_t members = view.member_count();

  std::vector<Relation*> closed(members, nullptr);
  for (std::size_t m = 0; m < members; ++m) {
    closed[m] = db_.FindMutable(view.names_[m]);
    if (closed[m] == nullptr) {
      return Status::Internal(StrCat("view relation '", view.names_[m],
                                     "' missing from the database"));
    }
  }
  if (!delta.seed_deletes.empty() && delta.seed_deletes.size() != members) {
    return Status::InvalidArgument(
        StrCat("seed_deletes must have one relation per member: got ",
               delta.seed_deletes.size(), " for ", members, " member(s)"));
  }
  for (std::size_t m = 0; m < delta.seed_deletes.size(); ++m) {
    if (delta.seed_deletes[m].arity() != closed[m]->arity()) {
      return Status::InvalidArgument(
          StrCat("seed_deletes[", m, "] arity ", delta.seed_deletes[m].arity(),
                 " != member arity ", closed[m]->arity()));
    }
  }
  for (const auto& [pred, rel] : delta.param_deletes) {
    for (const std::string& name : view.names_) {
      if (pred == name) {
        return Status::InvalidArgument(
            StrCat("cannot delete from '", pred,
                   "': it is a derived member of the view, not an input"));
      }
    }
    const Relation* existing = db_.Find(pred);
    if (existing != nullptr && existing->arity() != rel.arity()) {
      return Status::InvalidArgument(
          StrCat("param_deletes['", pred, "'] arity ", rel.arity(),
                 " != database arity ", existing->arity()));
    }
  }
  Result<std::vector<DeltaRule>> delta_rules =
      view.joint_ ? DeltaRulesOf(plan.members, plan.joint_rules)
                  : DeltaRulesOf(plan.rules);
  if (!delta_rules.ok()) return delta_rules.status();

  const int workers = plan.parallel_workers > 0 ? plan.parallel_workers : 1;

  // Parameter relations whose rows this call filtered out, with the
  // displaced originals — the rollback state (everything else mutates only
  // at commit, by whole-relation swap).
  std::vector<std::pair<Relation*, Relation>> displaced;

  ScopedQueryBudget budget_scope(budget != nullptr ? budget
                                                   : CurrentQueryBudget());
  Result<RetractOutcome> result =
      GuardAllocFailures([&]() -> Result<RetractOutcome> {
        RetractOutcome out;
        for (std::size_t m = 0; m < members; ++m) {
          out.removed.emplace_back(closed[m]->arity());
        }

        // Pre-delete image of each deleted parameter (current ∪ delta):
        // the delta is taken as-given, so the over-deletion pass sees the
        // same derivations whether or not a cascading caller already
        // filtered the database.
        std::map<std::string, Relation> pre;
        for (const auto& [pred, rel] : delta.param_deletes) {
          const Relation* current = db_.Find(pred);
          Relation p = current != nullptr ? *current : Relation(rel.arity());
          p.UnionWith(rel);
          pre.emplace(pred, std::move(p));
        }

        // 1a. Directly damaged tuples: deleted seed tuples still in the
        // seed, plus heads of derivations consuming a deleted parameter
        // tuple (delta rules with the deleted atom pinned to the delta,
        // every other deleted-parameter atom pinned to its pre-delete
        // image, and the recursive atom reading the closed view).
        // Intersected with the closure: a never-present "deleted" tuple
        // must not seed suspects.
        std::vector<Relation> suspects0;
        suspects0.reserve(members);
        for (std::size_t m = 0; m < members; ++m) {
          suspects0.emplace_back(closed[m]->arity());
        }
        if (!delta.seed_deletes.empty()) {
          for (std::size_t m = 0; m < members; ++m) {
            for (TupleView t : delta.seed_deletes[m]) {
              if (view.seeds_[m].Contains(t)) suspects0[m].Insert(t);
            }
          }
        }
        for (const DeltaRule& dr : *delta_rules) {
          for (std::size_t i = 0; i < dr.rule.body().size(); ++i) {
            if (static_cast<int>(i) == dr.recursive_atom) continue;
            auto it = delta.param_deletes.find(dr.rule.body()[i].predicate);
            if (it == delta.param_deletes.end()) continue;
            ApplyOptions options;
            options.overrides[dr.recursive_atom] =
                closed[dr.recursive_member];
            for (std::size_t j = 0; j < dr.rule.body().size(); ++j) {
              if (j == i || static_cast<int>(j) == dr.recursive_atom) {
                continue;
              }
              auto pj = pre.find(dr.rule.body()[j].predicate);
              if (pj != pre.end()) {
                options.overrides[static_cast<int>(j)] = &pj->second;
              }
            }
            options.overrides[static_cast<int>(i)] = &it->second;
            options.first_atom = static_cast<int>(i);
            Relation scratch(closed[dr.head_member]->arity());
            LINREC_RETURN_IF_ERROR(ApplyRule(dr.rule, db_, options, &scratch,
                                             &out.stats, &cache_));
            for (TupleView t : scratch) {
              if (closed[dr.head_member]->Contains(t)) {
                suspects0[dr.head_member].Insert(t);
              }
            }
          }
        }

        // 1b. Close the suspects: everything derivable FROM a suspect is
        // suspect (linear rules — one recursive tuple per derivation — so
        // this is the view's own closure seeded with the suspects).
        std::vector<Relation> suspects;
        if (!view.joint_) {
          Result<Relation> d =
              SemiNaiveClosure(plan.rules, db_, suspects0[0], &out.stats,
                               &cache_, workers, cancel);
          if (!d.ok()) return d.status();
          suspects.push_back(*std::move(d));
        } else {
          Result<std::vector<Relation>> d = JointSemiNaiveClosure(
              plan.members, plan.joint_rules, db_, suspects0, &out.stats,
              &cache_, workers, cancel);
          if (!d.ok()) return d.status();
          suspects = *std::move(d);
        }

        // 2. Filter the deleted parameter tuples out of the database,
        // keeping the displaced originals for restore-on-failure. From
        // here on the database is post-delete.
        for (const auto& [pred, rel] : delta.param_deletes) {
          Relation* slot = db_.FindMutable(pred);
          if (slot == nullptr) continue;
          bool any = false;
          for (TupleView t : rel) {
            if (slot->Contains(t)) {
              any = true;
              break;
            }
          }
          if (!any) continue;
          Relation filtered = Difference(*slot, rel);
          displaced.emplace_back(slot, std::move(*slot));
          *slot = std::move(filtered);
        }

        bool have_suspects = false;
        for (const Relation& s : suspects) have_suspects |= !s.empty();
        if (!have_suspects) {
          // Nothing derived is affected; only the parameter filtering (if
          // any) mattered. Commit as-is.
          ++view.retracts_;
          return out;
        }

        // 3. Survivors: the closure minus every suspect — sound, since no
        // surviving tuple's derivation consumed a deleted tuple. The new
        // seed drops the deleted seed tuples.
        std::vector<Relation> survivors;
        std::vector<Relation> new_seeds;
        survivors.reserve(members);
        new_seeds.reserve(members);
        for (std::size_t m = 0; m < members; ++m) {
          survivors.push_back(Difference(*closed[m], suspects[m]));
          new_seeds.push_back(
              delta.seed_deletes.empty()
                  ? view.seeds_[m]
                  : Difference(view.seeds_[m], delta.seed_deletes[m]));
        }

        // 4. Re-derivation frontier: suspects that are still seed tuples,
        // plus every one-step head derivable from the survivors over the
        // post-delete database (all such heads lie inside the old closure,
        // so appending them — deduplicated — only re-establishes
        // suspects). Then resume the fixpoint in place: the Δ rounds run
        // from the frontier only, which is complete precisely because the
        // frontier already holds ALL one-step heads of the survivor
        // prefix.
        std::vector<RowId> begin(members);
        for (std::size_t m = 0; m < members; ++m) {
          begin[m] = static_cast<RowId>(survivors[m].size());
          for (TupleView t : new_seeds[m]) {
            if (suspects[m].Contains(t)) survivors[m].Insert(t);
          }
        }
        std::vector<Relation> pass;
        pass.reserve(members);
        for (std::size_t m = 0; m < members; ++m) {
          pass.emplace_back(survivors[m].arity());
        }
        for (const DeltaRule& dr : *delta_rules) {
          ApplyOptions options;
          options.overrides[dr.recursive_atom] = &survivors[dr.recursive_member];
          LINREC_RETURN_IF_ERROR(ApplyRule(dr.rule, db_, options,
                                           &pass[dr.head_member], &out.stats,
                                           &cache_));
        }
        for (std::size_t m = 0; m < members; ++m) {
          for (TupleView t : pass[m]) {
            if (suspects[m].Contains(t)) survivors[m].Insert(t);
          }
        }
        if (!view.joint_) {
          LINREC_RETURN_IF_ERROR(SemiNaiveExtend(plan.rules, db_,
                                                 &survivors[0], begin[0],
                                                 &out.stats, &cache_, workers,
                                                 cancel));
        } else {
          LINREC_RETURN_IF_ERROR(JointSemiNaiveExtend(
              plan.members, plan.joint_rules, db_, &survivors, begin,
              &out.stats, &cache_, workers, cancel));
        }

        // 5. Outcome + commit (whole-relation swaps; nothing here can
        // fail).
        for (std::size_t m = 0; m < members; ++m) {
          out.rederived += survivors[m].size() - begin[m];
          for (TupleView t : suspects[m]) {
            if (!survivors[m].Contains(t)) out.removed[m].Insert(t);
          }
          out.removed_count += out.removed[m].size();
        }
        for (std::size_t m = 0; m < members; ++m) {
          *closed[m] = std::move(survivors[m]);
        }
        view.seeds_ = std::move(new_seeds);
        ++view.retracts_;
        view.rederived_ += out.rederived;
        return out;
      });

  if (!result.ok()) {
    // The only pre-commit in-place mutation was the parameter filtering:
    // restore the displaced originals and the database is byte-identical.
    for (auto& [slot, original] : displaced) *slot = std::move(original);
    EvictTemporaryIndexes();
    return result.status();
  }
  stats_.Accumulate(result->stats);
  EvictTemporaryIndexes();
  return result;
}

}  // namespace linrec
