// Incremental view maintenance: the handle and delta types of the IVM
// subsystem (the delta engine lives in ivm/maintain.cc as the
// Engine::Materialize / Apply / Retract methods).
//
// A MaterializedView names one closed relation — or one per member of a
// joint component — living inside the engine's Database, together with
// the plan that produced it and the seed it was closed from. Updates
// arrive as deltas against the view's INPUTS:
//
//   * DeltaInsert — new seed tuples and/or new parameter tuples. Apply
//     extends the closure semi-naively from exactly the new tuples
//     (eval/fixpoint.h SemiNaiveExtend): the closed part is never
//     re-derived, and every mutation is an append, so a failed Apply
//     rolls back by truncation to the exact pre-call bytes.
//
//   * DeltaDelete — seed tuples and/or parameter tuples to remove.
//     Retract runs delete-and-rederive (DRed): over-approximate the
//     affected tuples (everything derivable from a deleted tuple), then
//     re-derive the survivors of that suspect set from the untouched
//     remainder. Linearity makes the suspect closure exact-in-shape:
//     each derivation consumes one recursive tuple, so "derivable from"
//     is itself a linear closure over the same rules.
//
// The delta API reuses everything the from-scratch path uses: the
// compiled ExecutionPlan (strategy analysis is not repeated), the
// engine's shared index tier, the thread-current QueryBudget, and
// round-boundary cancellation.

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/plan.h"
#include "eval/stats.h"
#include "storage/relation.h"

namespace linrec {

class Engine;

/// New input tuples for one Apply call. Either part may be empty.
struct DeltaInsert {
  /// New seed tuples, one relation per view member (empty vector = no
  /// seed delta; otherwise must match the view's member count and
  /// arities). Tuples already in the closure are ignored (deduplicated).
  std::vector<Relation> seed_inserts;
  /// New tuples per parameter predicate, keyed by predicate name. Apply
  /// unions them into the engine database (creating missing relations)
  /// and seeds the delta rounds from them. Tuples already present are
  /// sound to pass — the union deduplicates and a stale delta row only
  /// re-derives heads the closure already contains — which is what lets
  /// a cascading caller insert facts up front and still hand the same
  /// tuples to every affected view.
  std::map<std::string, Relation> param_inserts;
};

/// Input tuples to remove for one Retract call. Same shape as
/// DeltaInsert; tuples that were never present are ignored.
struct DeltaDelete {
  std::vector<Relation> seed_deletes;
  /// Tuples to remove per parameter predicate. Retract filters them out
  /// of the engine database; the over-deletion pass reconstructs the
  /// pre-delete parameter (current ∪ delta) internally, so the call is
  /// correct whether or not a cascading caller already removed the
  /// tuples from the database.
  std::map<std::string, Relation> param_deletes;
};

/// What one Apply did. `appended[m]` is the half-open row range of
/// member m's relation holding every tuple this call added (new seed
/// rows first, then derived rows, in derivation order) — a cascading
/// caller reads the ranges to build the delta for downstream views.
struct ApplyOutcome {
  std::vector<std::pair<RowId, RowId>> appended;
  /// Total rows appended across members.
  std::size_t added = 0;
  ClosureStats stats;
};

/// What one Retract did. `removed[m]` holds the tuples that left member
/// m's relation (net of re-derivation) — the downstream delta for a
/// cascading caller. `rederived` counts suspects that survived because
/// an alternative derivation re-established them.
struct RetractOutcome {
  std::vector<Relation> removed;
  std::size_t removed_count = 0;
  std::size_t rederived = 0;
  ClosureStats stats;
};

/// Handle to a materialized closure maintained in place. Created by
/// Engine::Materialize; meaningful only with that engine (the closed
/// relations live in the engine's Database under names()). The view
/// owns the seed the closure was built from — Apply and Retract keep it
/// current, and it is what makes deletion well-defined (a deleted seed
/// tuple may still be re-derivable from the survivors).
class MaterializedView {
 public:
  MaterializedView() = default;

  /// Database names of the closed relations, one per member (a single
  /// non-joint view has exactly one).
  const std::vector<std::string>& names() const { return names_; }
  std::size_t member_count() const { return names_.size(); }
  bool joint() const { return joint_; }

  /// The maintained seed of member `m` (what a from-scratch evaluation
  /// of the plan would be given today).
  const Relation& seed(std::size_t m = 0) const { return seeds_[m]; }

  /// The plan the view was materialized from (shared, never mutated).
  const ExecutionPlan& plan() const { return *plan_; }

  /// Lifetime counters for observability.
  std::uint64_t applies() const { return applies_; }
  std::uint64_t retracts() const { return retracts_; }
  std::uint64_t rederived() const { return rederived_; }

  /// Rollback surface for callers composing several Apply calls into one
  /// atomic cascade: Apply only ever APPENDS to the seeds, so recording
  /// SeedSizes() before the cascade and truncating back restores them
  /// byte-identically (pair with Relation::TruncateRows on the closed
  /// relations themselves).
  std::vector<std::size_t> SeedSizes() const {
    std::vector<std::size_t> sizes;
    sizes.reserve(seeds_.size());
    for (const Relation& s : seeds_) sizes.push_back(s.size());
    return sizes;
  }
  void TruncateSeeds(const std::vector<std::size_t>& sizes) {
    for (std::size_t m = 0; m < seeds_.size() && m < sizes.size(); ++m) {
      seeds_[m].TruncateRows(sizes[m]);
    }
  }

 private:
  friend class Engine;

  std::shared_ptr<const ExecutionPlan> plan_;
  bool joint_ = false;
  std::vector<std::string> names_;
  std::vector<Relation> seeds_;
  std::uint64_t applies_ = 0;
  std::uint64_t retracts_ = 0;
  std::uint64_t rederived_ = 0;
};

}  // namespace linrec
