#include "algebra/plan.h"

#include <map>
#include <numeric>

#include "algebra/closure.h"
#include "commutativity/oracle.h"

namespace linrec {

Result<DecompositionPlan> PlanDecomposition(
    const std::vector<LinearRule>& rules) {
  const int n = static_cast<int>(rules.size());
  if (n == 0) {
    return Status::InvalidArgument("PlanDecomposition requires >= 1 rule");
  }
  // Union-find over rule indices: union rules that do NOT commute.
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };

  DecompositionPlan plan;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      Result<bool> commute = Commute(rules[static_cast<std::size_t>(i)],
                                     rules[static_cast<std::size_t>(j)]);
      if (!commute.ok()) return commute.status();
      ++plan.pair_tests;
      if (!*commute) {
        parent[static_cast<std::size_t>(find(i))] = find(j);
      }
    }
  }
  std::map<int, std::vector<int>> by_root;
  for (int i = 0; i < n; ++i) by_root[find(i)].push_back(i);
  for (auto& [root, group] : by_root) plan.groups.push_back(group);
  plan.fully_decomposed =
      static_cast<int>(plan.groups.size()) == n;
  return plan;
}

Result<Relation> EvaluateWithPlan(const std::vector<LinearRule>& rules,
                                  const DecompositionPlan& plan,
                                  const Database& db, const Relation& q,
                                  ClosureStats* stats, IndexCache* cache) {
  std::vector<std::vector<LinearRule>> groups;
  for (const std::vector<int>& indices : plan.groups) {
    std::vector<LinearRule> group;
    for (int i : indices) group.push_back(rules[static_cast<std::size_t>(i)]);
    groups.push_back(std::move(group));
  }
  return DecomposedClosure(groups, db, q, stats, cache);
}

}  // namespace linrec
