// Decomposition planning: partition a sum of operators into groups such
// that operators in different groups commute pairwise, so that
// (Σ A_i)* = G_1* G_2* ... G_k* (Section 3.1; n-operator generalization of
// (B+C)* = B*C*).

#pragma once

#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/fixpoint.h"

namespace linrec {

/// A partition of rule indices into commuting groups.
struct DecompositionPlan {
  /// Groups of indices into the planned rule vector. Operators in different
  /// groups commute pairwise; within a group, nothing is guaranteed.
  std::vector<std::vector<int>> groups;
  /// True when every group is a singleton (all operators mutually commute).
  bool fully_decomposed = false;
  /// Number of pairwise commutativity tests performed.
  int pair_tests = 0;
};

/// Builds the finest valid plan: the groups are the connected components of
/// the non-commutativity graph (two rules in one group iff they are linked
/// by a chain of non-commuting pairs). Uses the combined oracle per pair.
Result<DecompositionPlan> PlanDecomposition(
    const std::vector<LinearRule>& rules);

/// Evaluates (Σ rules)* q according to `plan` via DecomposedClosure.
Result<Relation> EvaluateWithPlan(const std::vector<LinearRule>& rules,
                                  const DecompositionPlan& plan,
                                  const Database& db, const Relation& q,
                                  ClosureStats* stats = nullptr,
                                  IndexCache* cache = nullptr);

}  // namespace linrec
