// Symbolic operator expressions over the closed semi-ring of linear
// relational operators (Section 2).
//
// An OpExpr is a tree of named base operators combined with + (union of
// results), · (composition: (A·B)P = A(BP)) and * (transitive closure).
// Expressions evaluate against a database and an initial relation, and
// closures of sums can be rewritten into products of smaller closures using
// the commutativity planner:
//
//   (A + B)*  ──DecomposeClosures──►  A* · B*      when A, B commute.
//
// Every node denotes a linear (hence additive) operator, so the generic
// closure evaluator can run semi-naive over arbitrary sub-expressions.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/fixpoint.h"

namespace linrec {

/// Immutable operator-expression tree.
class OpExpr {
 public:
  enum class Kind { kOperator, kSum, kProduct, kClosure };

  /// A base operator; `name` is used by ToString (defaults to the head
  /// predicate with an index).
  static OpExpr Leaf(LinearRule rule, std::string name = "");
  /// A1 + A2 + ... (at least one child).
  static OpExpr Sum(std::vector<OpExpr> children);
  /// A1 · A2 · ... — the rightmost factor applies first.
  static OpExpr Product(std::vector<OpExpr> children);
  /// A*.
  static OpExpr Closure(OpExpr child);

  Kind kind() const { return node_->kind; }
  const std::vector<OpExpr>& children() const { return node_->children; }
  /// Requires kind() == kOperator.
  const LinearRule& rule() const { return *node_->rule; }
  const std::string& name() const { return node_->name; }

  /// Applies the denoted operator to `input` (closure nodes compute the
  /// full closure including the identity term, i.e. Closure(A).Evaluate(q)
  /// = A* q ⊇ q).
  Result<Relation> Evaluate(const Database& db, const Relation& input,
                            ClosureStats* stats = nullptr) const;

  /// Rewrites every Closure(Sum(...)) node whose summands reduce to single
  /// rules into a product of group closures per the commutativity planner
  /// (Section 3). Sub-expressions that cannot be analyzed are left intact.
  Result<OpExpr> DecomposeClosures() const;

  /// If the expression is a leaf or a product of reducible factors, the
  /// single LinearRule it denotes (via composition); nullopt otherwise.
  Result<std::optional<LinearRule>> AsSingleRule() const;

  /// Rendering such as "(up + down)*" or "up*·down*".
  std::string ToString() const;

 private:
  struct Node {
    Kind kind;
    std::vector<OpExpr> children;
    std::optional<LinearRule> rule;
    std::string name;
  };
  explicit OpExpr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace linrec
