#include "algebra/program_eval.h"

#include <map>
#include <set>
#include <vector>

#include "common/scc.h"
#include "common/strings.h"
#include "datalog/equality.h"
#include "datalog/printer.h"
#include "engine/engine.h"
#include "eval/apply.h"
#include "eval/joint.h"

namespace linrec {
namespace {

/// Rules grouped per derived predicate. Classification (base vs recursive)
/// happens per strongly connected component, because a rule of a mutually
/// recursive predicate is "recursive" exactly when its body reads a member
/// of the same component — a property of the condensation, not the rule.
struct PredicateRules {
  std::size_t arity = 0;
  std::vector<Rule> rules;
};

/// "a, b, c" for error messages and plan labels.
std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// Seeds `pred`'s initial relation: facts for the predicate itself plus
/// every base rule (equalities eliminated; unsatisfiable rules contribute
/// nothing).
Result<Relation> SeedPredicate(const std::string& pred, std::size_t arity,
                               const std::vector<Rule>& base_rules,
                               Engine& engine, ClosureStats* stats) {
  Relation seed(arity);
  if (const Relation* facts = engine.db().Find(pred)) {
    if (facts->arity() != arity) {
      return Status::InvalidArgument(
          StrCat("facts for '", pred, "' have arity ", facts->arity(),
                 ", rules use ", arity));
    }
    seed = *facts;
  }
  for (const Rule& base : base_rules) {
    Rule effective = base;
    if (HasEqualities(base)) {
      Result<std::optional<Rule>> eliminated = EliminateEqualities(base);
      if (!eliminated.ok()) return eliminated.status();
      if (!eliminated->has_value()) continue;
      effective = std::move(**eliminated);
    }
    LINREC_RETURN_IF_ERROR(ApplyRule(effective, engine.db(), {}, &seed,
                                     stats, &engine.index_cache()));
  }
  return seed;
}

/// The paper's single-predicate path: base rules seed Q, linear recursive
/// rules close through the engine (the planner picks the strategy when
/// use_decomposition is set).
Status EvaluateSingleton(const std::string& pred,
                         const PredicateRules& group,
                         const ProgramEvalOptions& options, Engine& engine,
                         ProgramResult* result) {
  std::vector<Rule> base;
  std::vector<LinearRule> linear;
  for (const Rule& rule : group.rules) {
    int occurrences = 0;
    for (const Atom& atom : rule.body()) {
      if (atom.predicate == pred) ++occurrences;
    }
    if (occurrences == 0) {
      base.push_back(rule);
    } else {
      Result<LinearRule> lr = LinearRule::Make(rule);
      if (!lr.ok()) {
        return Status::InvalidArgument(
            StrCat("rule is not linear: ", ToString(rule), " (",
                   lr.status().message(), ")"));
      }
      linear.push_back(std::move(lr).value());
    }
  }

  Result<Relation> seed =
      SeedPredicate(pred, group.arity, base, engine, &result->stats);
  if (!seed.ok()) return seed.status();
  Relation value = std::move(seed).value();
  if (!linear.empty()) {
    Query query = Query::Closure(std::move(linear));
    if (!options.use_decomposition) query.Force(Strategy::kSemiNaive);
    Result<PreparedQuery> prepared = engine.Prepare(query);
    if (!prepared.ok()) return prepared.status();
    result->plan_explanations.push_back(
        StrCat(pred, ":\n", prepared->plan().Explain()));
    Result<QueryResult> closed =
        engine.Execute(prepared->Bind().BindSeed(std::move(value)));
    if (!closed.ok()) return closed.status();
    value = std::move(closed->relation());
  }
  engine.db().GetOrCreate(pred, group.arity) = std::move(value);
  return Status::OK();
}

/// A non-trivial strongly connected component: classify every member rule
/// against the component (0 member atoms = base, 1 = joint recursive,
/// >= 2 = non-linear → rejected naming the full component), seed each
/// member, and close the component jointly through the engine.
Status EvaluateComponent(const std::vector<std::string>& members,
                         const std::map<std::string, PredicateRules>& rules,
                         Engine& engine, ProgramResult* result) {
  const std::set<std::string> member_set(members.begin(), members.end());
  std::map<std::string, int> member_index;
  for (std::size_t i = 0; i < members.size(); ++i) {
    member_index[members[i]] = static_cast<int>(i);
  }

  std::vector<Relation> seeds;
  seeds.reserve(members.size());
  std::vector<JointRule> joint_rules;
  for (std::size_t mi = 0; mi < members.size(); ++mi) {
    const std::string& pred = members[mi];
    const PredicateRules& group = rules.at(pred);
    std::vector<Rule> base;
    for (const Rule& rule : group.rules) {
      int member_atoms = 0;
      for (const Atom& atom : rule.body()) {
        if (member_set.count(atom.predicate) > 0) ++member_atoms;
      }
      if (member_atoms == 0) {
        base.push_back(rule);
        continue;
      }
      if (member_atoms >= 2) {
        return Status::InvalidArgument(StrCat(
            "recursion through strongly connected component {",
            JoinNames(members), "} is non-linear: rule ", ToString(rule),
            " reads ", member_atoms,
            " component predicates (at most one recursive atom is "
            "supported)"));
      }
      // Locate the single member atom; equality atoms are eliminated by
      // the joint closure itself, which remaps this index.
      JointRule jr;
      jr.rule = rule;
      jr.head_member = static_cast<int>(mi);
      for (std::size_t a = 0; a < rule.body().size(); ++a) {
        auto it = member_index.find(rule.body()[a].predicate);
        if (it != member_index.end()) {
          jr.recursive_atom = static_cast<int>(a);
          jr.recursive_member = it->second;
          break;
        }
      }
      joint_rules.push_back(std::move(jr));
    }

    Result<Relation> seed =
        SeedPredicate(pred, group.arity, base, engine, &result->stats);
    if (!seed.ok()) return seed.status();
    seeds.push_back(std::move(seed).value());
  }

  std::vector<Relation> closed;
  if (joint_rules.empty()) {
    // Unreachable for a genuine multi-member component (its cycles imply
    // member atoms), but harmless: the seeds are already the fixpoint.
    closed = std::move(seeds);
  } else {
    Result<PreparedQuery> prepared =
        engine.Prepare(Query::JointClosure(members, std::move(joint_rules)));
    if (!prepared.ok()) return prepared.status();
    result->plan_explanations.push_back(
        StrCat(JoinNames(members), ":\n", prepared->plan().Explain()));
    Result<QueryResult> out =
        engine.Execute(prepared->Bind().BindSeeds(std::move(seeds)));
    if (!out.ok()) return out.status();
    closed = std::move(out->relations);
  }
  for (std::size_t mi = 0; mi < members.size(); ++mi) {
    engine.db().GetOrCreate(members[mi], rules.at(members[mi]).arity) =
        std::move(closed[mi]);
  }
  return Status::OK();
}

}  // namespace

Result<ProgramResult> EvaluateProgram(const Program& program,
                                      const ProgramEvalOptions& options) {
  ProgramResult result;
  Result<Database> edb = program.FactsToDatabase();
  if (!edb.ok()) return edb.status();
  EngineOptions engine_options;
  engine_options.parallel_workers = options.parallel_workers;
  Engine engine(std::move(edb).value(), engine_options);

  // Group rules by head predicate; arities must be consistent.
  std::map<std::string, PredicateRules> rules;
  for (const Rule& rule : program.rules) {
    const std::string& pred = rule.head().predicate;
    PredicateRules& group = rules[pred];
    if (group.rules.empty()) {
      group.arity = rule.head().arity();
    } else if (group.arity != rule.head().arity()) {
      return Status::InvalidArgument(
          StrCat("predicate '", pred, "' defined with arities ", group.arity,
                 " and ", rule.head().arity()));
    }
    group.rules.push_back(rule);
  }

  // Condense the predicate dependency graph (edge u → v: some rule of u
  // reads derived predicate v) into strongly connected components,
  // returned dependency-first. std::map iteration makes predicate ids —
  // and therefore the condensation — deterministic.
  std::vector<std::string> names;
  names.reserve(rules.size());
  std::map<std::string, int> id_of;
  for (const auto& [pred, group] : rules) {
    id_of[pred] = static_cast<int>(names.size());
    names.push_back(pred);
  }
  std::vector<std::vector<int>> adjacency(names.size());
  for (const auto& [pred, group] : rules) {
    std::set<int> deps;
    for (const Rule& rule : group.rules) {
      for (const Atom& atom : rule.body()) {
        auto it = id_of.find(atom.predicate);
        if (it != id_of.end()) deps.insert(it->second);
      }
    }
    adjacency[static_cast<std::size_t>(id_of[pred])]
        .assign(deps.begin(), deps.end());
  }

  for (const std::vector<int>& component :
       StronglyConnectedComponents(adjacency)) {
    if (component.size() == 1) {
      const std::string& pred =
          names[static_cast<std::size_t>(component.front())];
      LINREC_RETURN_IF_ERROR(EvaluateSingleton(pred, rules.at(pred), options,
                                               engine, &result));
    } else {
      std::vector<std::string> members;
      members.reserve(component.size());
      for (int id : component) {
        members.push_back(names[static_cast<std::size_t>(id)]);
      }
      LINREC_RETURN_IF_ERROR(
          EvaluateComponent(members, rules, engine, &result));
    }
  }
  result.stats.Accumulate(engine.stats());
  result.db = std::move(engine.db());
  result.stats.result_size = 0;
  for (const std::string& name : result.db.Names()) {
    result.stats.result_size += result.db.Find(name)->size();
  }
  return result;
}

}  // namespace linrec
