#include "algebra/program_eval.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "algebra/plan.h"
#include "common/strings.h"
#include "datalog/equality.h"
#include "datalog/printer.h"
#include "eval/apply.h"
#include "eval/fixpoint.h"

namespace linrec {
namespace {

/// Rules grouped per derived predicate.
struct PredicateRules {
  std::size_t arity = 0;
  std::vector<Rule> base;          // head predicate absent from the body
  std::vector<LinearRule> linear;  // head predicate exactly once in body
};

/// Topological order of derived predicates by body dependencies; mutual
/// recursion across predicates is rejected.
Result<std::vector<std::string>> OrderPredicates(
    const std::map<std::string, PredicateRules>& rules) {
  std::map<std::string, std::set<std::string>> deps;
  for (const auto& [pred, group] : rules) {
    std::set<std::string>& d = deps[pred];
    auto scan = [&](const Rule& rule) {
      for (const Atom& atom : rule.body()) {
        if (atom.predicate != pred && rules.count(atom.predicate) > 0) {
          d.insert(atom.predicate);
        }
      }
    };
    for (const Rule& rule : group.base) scan(rule);
    for (const LinearRule& lr : group.linear) scan(lr.rule());
  }
  std::vector<std::string> order;
  std::set<std::string> done;
  std::set<std::string> in_progress;
  std::function<Status(const std::string&)> visit =
      [&](const std::string& pred) -> Status {
    if (done.count(pred) > 0) return Status::OK();
    if (!in_progress.insert(pred).second) {
      return Status::InvalidArgument(
          StrCat("mutual recursion through predicate '", pred,
                 "' is outside the linear single-predicate class"));
    }
    for (const std::string& dep : deps[pred]) {
      LINREC_RETURN_IF_ERROR(visit(dep));
    }
    in_progress.erase(pred);
    done.insert(pred);
    order.push_back(pred);
    return Status::OK();
  };
  for (const auto& [pred, group] : rules) {
    LINREC_RETURN_IF_ERROR(visit(pred));
  }
  return order;
}

}  // namespace

Result<ProgramResult> EvaluateProgram(const Program& program,
                                      const ProgramEvalOptions& options) {
  ProgramResult result;
  Result<Database> edb = program.FactsToDatabase();
  if (!edb.ok()) return edb.status();
  result.db = std::move(edb).value();

  // Group rules by head predicate; classify base vs linear recursive.
  std::map<std::string, PredicateRules> rules;
  for (const Rule& rule : program.rules) {
    const std::string& pred = rule.head().predicate;
    PredicateRules& group = rules[pred];
    if (group.base.empty() && group.linear.empty()) {
      group.arity = rule.head().arity();
    } else if (group.arity != rule.head().arity()) {
      return Status::InvalidArgument(
          StrCat("predicate '", pred, "' defined with arities ", group.arity,
                 " and ", rule.head().arity()));
    }
    int occurrences = 0;
    for (const Atom& atom : rule.body()) {
      if (atom.predicate == pred) ++occurrences;
    }
    if (occurrences == 0) {
      group.base.push_back(rule);
    } else {
      Result<LinearRule> lr = LinearRule::Make(rule);
      if (!lr.ok()) {
        return Status::InvalidArgument(
            StrCat("rule is not linear: ", ToString(rule), " (",
                   lr.status().message(), ")"));
      }
      group.linear.push_back(std::move(lr).value());
    }
  }

  Result<std::vector<std::string>> order = OrderPredicates(rules);
  if (!order.ok()) return order.status();

  IndexCache cache;
  for (const std::string& pred : *order) {
    const PredicateRules& group = rules[pred];
    // Seed Q from the base rules.
    Relation seed(group.arity);
    if (const Relation* facts = result.db.Find(pred)) {
      if (facts->arity() != group.arity) {
        return Status::InvalidArgument(
            StrCat("facts for '", pred, "' have arity ", facts->arity(),
                   ", rules use ", group.arity));
      }
      seed = *facts;
    }
    for (const Rule& base : group.base) {
      Rule effective = base;
      if (HasEqualities(base)) {
        Result<std::optional<Rule>> eliminated = EliminateEqualities(base);
        if (!eliminated.ok()) return eliminated.status();
        if (!eliminated->has_value()) continue;
        effective = std::move(**eliminated);
      }
      LINREC_RETURN_IF_ERROR(ApplyRule(effective, result.db, {}, &seed,
                                       &result.stats, &cache));
    }
    // Close under the linear rules, decomposing into commuting groups when
    // requested (Section 3).
    Relation value = std::move(seed);
    if (!group.linear.empty()) {
      ClosureStats closure_stats;
      Result<Relation> closed = Status::Internal("unset");
      if (options.use_decomposition && group.linear.size() > 1) {
        Result<DecompositionPlan> plan = PlanDecomposition(group.linear);
        if (!plan.ok()) return plan.status();
        closed = EvaluateWithPlan(group.linear, *plan, result.db, value,
                                  &closure_stats);
      } else {
        closed = SemiNaiveClosure(group.linear, result.db, value,
                                  &closure_stats, &cache);
      }
      if (!closed.ok()) return closed.status();
      value = std::move(closed).value();
      result.stats.Accumulate(closure_stats);
    }
    result.db.GetOrCreate(pred, group.arity) = std::move(value);
  }
  result.stats.result_size = 0;
  for (const std::string& name : result.db.Names()) {
    result.stats.result_size += result.db.Find(name)->size();
  }
  return result;
}

}  // namespace linrec
