#include "algebra/program_eval.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/strings.h"
#include "datalog/equality.h"
#include "datalog/printer.h"
#include "engine/engine.h"
#include "eval/apply.h"

namespace linrec {
namespace {

/// Rules grouped per derived predicate.
struct PredicateRules {
  std::size_t arity = 0;
  std::vector<Rule> base;          // head predicate absent from the body
  std::vector<LinearRule> linear;  // head predicate exactly once in body
};

/// Topological order of derived predicates by body dependencies; mutual
/// recursion across predicates is rejected.
Result<std::vector<std::string>> OrderPredicates(
    const std::map<std::string, PredicateRules>& rules) {
  std::map<std::string, std::set<std::string>> deps;
  for (const auto& [pred, group] : rules) {
    std::set<std::string>& d = deps[pred];
    auto scan = [&](const Rule& rule) {
      for (const Atom& atom : rule.body()) {
        if (atom.predicate != pred && rules.count(atom.predicate) > 0) {
          d.insert(atom.predicate);
        }
      }
    };
    for (const Rule& rule : group.base) scan(rule);
    for (const LinearRule& lr : group.linear) scan(lr.rule());
  }
  std::vector<std::string> order;
  std::set<std::string> done;
  std::set<std::string> in_progress;
  std::function<Status(const std::string&)> visit =
      [&](const std::string& pred) -> Status {
    if (done.count(pred) > 0) return Status::OK();
    if (!in_progress.insert(pred).second) {
      return Status::InvalidArgument(
          StrCat("mutual recursion through predicate '", pred,
                 "' is outside the linear single-predicate class"));
    }
    for (const std::string& dep : deps[pred]) {
      LINREC_RETURN_IF_ERROR(visit(dep));
    }
    in_progress.erase(pred);
    done.insert(pred);
    order.push_back(pred);
    return Status::OK();
  };
  for (const auto& [pred, group] : rules) {
    LINREC_RETURN_IF_ERROR(visit(pred));
  }
  return order;
}

}  // namespace

Result<ProgramResult> EvaluateProgram(const Program& program,
                                      const ProgramEvalOptions& options) {
  ProgramResult result;
  Result<Database> edb = program.FactsToDatabase();
  if (!edb.ok()) return edb.status();
  Engine engine(std::move(edb).value());

  // Group rules by head predicate; classify base vs linear recursive.
  std::map<std::string, PredicateRules> rules;
  for (const Rule& rule : program.rules) {
    const std::string& pred = rule.head().predicate;
    PredicateRules& group = rules[pred];
    if (group.base.empty() && group.linear.empty()) {
      group.arity = rule.head().arity();
    } else if (group.arity != rule.head().arity()) {
      return Status::InvalidArgument(
          StrCat("predicate '", pred, "' defined with arities ", group.arity,
                 " and ", rule.head().arity()));
    }
    int occurrences = 0;
    for (const Atom& atom : rule.body()) {
      if (atom.predicate == pred) ++occurrences;
    }
    if (occurrences == 0) {
      group.base.push_back(rule);
    } else {
      Result<LinearRule> lr = LinearRule::Make(rule);
      if (!lr.ok()) {
        return Status::InvalidArgument(
            StrCat("rule is not linear: ", ToString(rule), " (",
                   lr.status().message(), ")"));
      }
      group.linear.push_back(std::move(lr).value());
    }
  }

  Result<std::vector<std::string>> order = OrderPredicates(rules);
  if (!order.ok()) return order.status();

  for (const std::string& pred : *order) {
    const PredicateRules& group = rules[pred];
    // Seed Q from the base rules.
    Relation seed(group.arity);
    if (const Relation* facts = engine.db().Find(pred)) {
      if (facts->arity() != group.arity) {
        return Status::InvalidArgument(
            StrCat("facts for '", pred, "' have arity ", facts->arity(),
                   ", rules use ", group.arity));
      }
      seed = *facts;
    }
    for (const Rule& base : group.base) {
      Rule effective = base;
      if (HasEqualities(base)) {
        Result<std::optional<Rule>> eliminated = EliminateEqualities(base);
        if (!eliminated.ok()) return eliminated.status();
        if (!eliminated->has_value()) continue;
        effective = std::move(**eliminated);
      }
      LINREC_RETURN_IF_ERROR(ApplyRule(effective, engine.db(), {}, &seed,
                                       &result.stats,
                                       &engine.index_cache()));
    }
    // Close under the linear rules through the engine: with
    // use_decomposition the planner picks the strategy from the analysis
    // (Section 3); otherwise force plain semi-naive on the sum.
    Relation value = std::move(seed);
    if (!group.linear.empty()) {
      Query query = Query::Closure(group.linear).From(std::move(value));
      if (!options.use_decomposition) query.Force(Strategy::kSemiNaive);
      Result<ExecutionPlan> plan = engine.Plan(query);
      if (!plan.ok()) return plan.status();
      result.plan_explanations.push_back(
          StrCat(pred, ":\n", plan->Explain()));
      Result<Relation> closed = engine.Execute(*plan);
      if (!closed.ok()) return closed.status();
      value = std::move(closed).value();
    }
    engine.db().GetOrCreate(pred, group.arity) = std::move(value);
  }
  result.stats.Accumulate(engine.stats());
  result.db = std::move(engine.db());
  result.stats.result_size = 0;
  for (const std::string& name : result.db.Names()) {
    result.stats.result_size += result.db.Find(name)->size();
  }
  return result;
}

}  // namespace linrec
