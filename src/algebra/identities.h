// Decomposition identities related to commutativity (Section 3.2):
// Lassez–Maher and Dong. Premises are checked syntactically (CQ/union
// equivalence) where the identity is syntactic, and on a concrete database
// instance where it is semantic; conclusions are checked on the instance.

#pragma once

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/fixpoint.h"

namespace linrec {

/// Result of verifying "premise ⇒ conclusion" style identities.
struct IdentityCheck {
  bool premise = false;
  bool conclusion = false;
  /// The identity is respected on this instance (¬premise ∨ conclusion, or
  /// premise ⇔ conclusion for biconditionals).
  bool holds = false;
};

/// Lassez–Maher (i): B*C* = C*B* = B* + C*  ⇒  (B+C)* = B* + C*,
/// evaluated on (db, q).
Result<IdentityCheck> CheckLassezMaher1(const LinearRule& b,
                                        const LinearRule& c,
                                        const Database& db, const Relation& q);

/// Lassez–Maher (ii): BC = CB = B + C (as operators, checked by CQ/union
/// equivalence) ⇒ (B+C)* = B* + C* on (db, q).
Result<IdentityCheck> CheckLassezMaher2(const LinearRule& b,
                                        const LinearRule& c,
                                        const Database& db, const Relation& q);

/// Dong: B*C* = C*B*  ⇔  (B+C)* = B*C* = C*B*, evaluated on (db, q).
Result<IdentityCheck> CheckDong(const LinearRule& b, const LinearRule& c,
                                const Database& db, const Relation& q);

}  // namespace linrec
