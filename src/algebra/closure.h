// Closure strategies over sums of linear operators (Section 3).
//
// DirectClosure computes (Σ_i A_i)* q by semi-naive evaluation of the whole
// sum. DecomposedClosure evaluates an ordered product of group closures
// G_1* G_2* ... G_k* q — licensed when all pairs of operators across
// different groups commute, in which case it equals the direct closure with
// no more (and typically many fewer) duplicate derivations (Theorem 3.1).

#pragma once

#include <vector>

#include "common/status.h"
#include "datalog/rule.h"
#include "eval/fixpoint.h"

namespace linrec {

/// (Σ rules)* q by semi-naive evaluation.
/// Prefer Engine::Execute (engine/engine.h), which picks the strategy from
/// the rules' analysis; this entry point remains for direct use.
Result<Relation> DirectClosure(const std::vector<LinearRule>& rules,
                               const Database& db, const Relation& q,
                               ClosureStats* stats = nullptr,
                               IndexCache* cache = nullptr,
                               int workers = 1,
                               const CancellationToken* cancel = nullptr);

/// groups[0]* groups[1]* ... groups[k-1]* q — the rightmost group closure is
/// applied first, matching operator-product order. Callers are responsible
/// for the cross-group commutativity that makes this equal the direct
/// closure (PlanDecomposition produces such groups). All group closures
/// share `cache` (or a local one when null).
///
/// `workers` follows the common/parallel.h rule (0 = hardware concurrency,
/// 1 = serial) and is spent at two levels. With multiple groups and
/// workers >= 2, the per-group closures P_i = G_i* q — independent of one
/// another; only the *merge* must respect the product order — run
/// concurrently, each on its own thread with its own IndexCache, and are
/// then folded right-to-left with SemiNaiveResume, whose rounds themselves
/// run Δ-partition parallel; each merge step seeds its Δ with the other
/// groups' tuples only, so no group's own work is re-derived. With a
/// single group (or a sequential product), the full worker count goes to
/// intra-round Δ partitioning instead (eval/fixpoint.h).
Result<Relation> DecomposedClosure(
    const std::vector<std::vector<LinearRule>>& groups, const Database& db,
    const Relation& q, ClosureStats* stats = nullptr,
    IndexCache* cache = nullptr, int workers = 0,
    const CancellationToken* cancel = nullptr);

}  // namespace linrec
