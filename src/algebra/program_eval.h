// Whole-program evaluation, built on linrec::Engine.
//
// Evaluates a parsed Program: facts load the EDB; the predicate
// dependency graph is condensed into strongly connected components
// (iterative Tarjan, common/scc.h) and the condensation is evaluated in
// topological order. A singleton component runs the paper's
// single-predicate path: nonrecursive rules seed the initial relation
// (the paper's Q in P = AP ∪ Q, eq. 2.3) and the linear recursive rules
// are closed through the engine — with use_decomposition the planner
// chooses the strategy from the rules' analysis (Section 3); otherwise
// plain semi-naive. A non-trivial component (mutual recursion) is closed
// jointly by the multi-relation semi-naive fixpoint (eval/joint.h), one Δ
// row-range per member predicate.
//
// Scope: recursion must be linear — inside a component, every rule may
// read at most one component predicate (its recursive atom). A rule
// reading two or more component predicates (non-linear joint recursion)
// yields InvalidArgument naming the full component.

#pragma once

#include "common/status.h"
#include "datalog/parser.h"
#include "eval/stats.h"
#include "storage/database.h"

namespace linrec {

/// Evaluation options.
struct ProgramEvalOptions {
  /// Let the engine planner choose the strategy per recursive predicate
  /// (decomposition, power sum, redundancy elision, ...). When false, the
  /// closure is forced to plain semi-naive on the rule sum. Joint (mutual
  /// recursion) components always run the multi-relation semi-naive
  /// fixpoint.
  bool use_decomposition = false;
  /// Worker count for every closure (common/parallel.h rule: 0 = one lane
  /// per hardware thread, 1 = serial).
  int parallel_workers = 0;
};

/// Result of evaluating a program: the final database (EDB facts plus one
/// relation per derived predicate), aggregate statistics, and one
/// ExecutionPlan::Explain() rendering per recursive predicate or joint
/// component.
struct ProgramResult {
  Database db;
  ClosureStats stats;
  std::vector<std::string> plan_explanations;
};

/// Evaluates `program` bottom-up. Every predicate is materialized into the
/// returned database.
Result<ProgramResult> EvaluateProgram(const Program& program,
                                      const ProgramEvalOptions& options = {});

}  // namespace linrec
