// Whole-program evaluation, built on linrec::Engine.
//
// Evaluates a parsed Program: facts load the EDB; for every rule-defined
// predicate, nonrecursive rules seed the initial relation (the paper's Q in
// P = AP ∪ Q, eq. 2.3) and the linear recursive rules are closed through
// the engine — with use_decomposition the planner chooses the strategy
// from the rules' analysis (Section 3); otherwise plain semi-naive.
// Predicates are evaluated in dependency order.
//
// Scope: recursion must be linear and confined to one predicate per rule
// (the paper's class). Mutual recursion between predicates and non-linear
// rules yield InvalidArgument.

#pragma once

#include "common/status.h"
#include "datalog/parser.h"
#include "eval/stats.h"
#include "storage/database.h"

namespace linrec {

/// Evaluation options.
struct ProgramEvalOptions {
  /// Let the engine planner choose the strategy per recursive predicate
  /// (decomposition, power sum, redundancy elision, ...). When false, the
  /// closure is forced to plain semi-naive on the rule sum.
  bool use_decomposition = false;
};

/// Result of evaluating a program: the final database (EDB facts plus one
/// relation per derived predicate), aggregate statistics, and one
/// ExecutionPlan::Explain() rendering per recursive predicate.
struct ProgramResult {
  Database db;
  ClosureStats stats;
  std::vector<std::string> plan_explanations;
};

/// Evaluates `program` bottom-up. Every predicate is materialized into the
/// returned database.
Result<ProgramResult> EvaluateProgram(const Program& program,
                                      const ProgramEvalOptions& options = {});

}  // namespace linrec
