// Whole-program evaluation.
//
// Evaluates a parsed Program: facts load the EDB; for every rule-defined
// predicate, nonrecursive rules seed the initial relation (the paper's Q in
// P = AP ∪ Q, eq. 2.3) and the linear recursive rules are closed with the
// semi-naive engine — optionally decomposed into commuting groups first
// (Section 3). Predicates are evaluated in dependency order.
//
// Scope: recursion must be linear and confined to one predicate per rule
// (the paper's class). Mutual recursion between predicates and non-linear
// rules yield InvalidArgument.

#pragma once

#include "common/status.h"
#include "datalog/parser.h"
#include "eval/stats.h"
#include "storage/database.h"

namespace linrec {

/// Evaluation options.
struct ProgramEvalOptions {
  /// Use PlanDecomposition + DecomposedClosure for each recursive predicate
  /// with more than one rule (otherwise plain semi-naive on the sum).
  bool use_decomposition = false;
};

/// Result of evaluating a program: the final database (EDB facts plus one
/// relation per derived predicate) and aggregate statistics.
struct ProgramResult {
  Database db;
  ClosureStats stats;
};

/// Evaluates `program` bottom-up. Every predicate is materialized into the
/// returned database.
Result<ProgramResult> EvaluateProgram(const Program& program,
                                      const ProgramEvalOptions& options = {});

}  // namespace linrec
