#include "algebra/expr.h"

#include <cassert>

#include "algebra/plan.h"
#include "common/strings.h"
#include "cq/compose.h"

namespace linrec {

OpExpr OpExpr::Leaf(LinearRule rule, std::string name) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOperator;
  if (name.empty()) name = rule.head().predicate;
  node->name = std::move(name);
  node->rule = std::move(rule);
  return OpExpr(std::move(node));
}

OpExpr OpExpr::Sum(std::vector<OpExpr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSum;
  node->children = std::move(children);
  return OpExpr(std::move(node));
}

OpExpr OpExpr::Product(std::vector<OpExpr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto node = std::make_shared<Node>();
  node->kind = Kind::kProduct;
  node->children = std::move(children);
  return OpExpr(std::move(node));
}

OpExpr OpExpr::Closure(OpExpr child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kClosure;
  node->children.push_back(std::move(child));
  return OpExpr(std::move(node));
}

Result<Relation> OpExpr::Evaluate(const Database& db, const Relation& input,
                                  ClosureStats* stats) const {
  switch (kind()) {
    case Kind::kOperator:
      return ApplySum({rule()}, db, input, stats);
    case Kind::kSum: {
      Relation out(input.arity());
      for (const OpExpr& child : children()) {
        Result<Relation> part = child.Evaluate(db, input, stats);
        if (!part.ok()) return part.status();
        if (out.arity() != part->arity()) {
          return Status::InvalidArgument("sum of operators with mixed arity");
        }
        out.UnionWith(*part);
      }
      return out;
    }
    case Kind::kProduct: {
      Relation current = input;
      for (auto it = children().rbegin(); it != children().rend(); ++it) {
        Result<Relation> next = it->Evaluate(db, current, stats);
        if (!next.ok()) return next.status();
        current = std::move(next).value();
      }
      return current;
    }
    case Kind::kClosure: {
      // Generic semi-naive: every OpExpr denotes a linear, hence additive,
      // operator, so applying the body to Δ only is sound.
      const OpExpr& body = children()[0];
      Relation result = input;
      Relation delta = input;
      while (!delta.empty()) {
        if (stats != nullptr) ++stats->iterations;
        Result<Relation> produced = body.Evaluate(db, delta, stats);
        if (!produced.ok()) return produced.status();
        Relation next_delta(input.arity());
        for (TupleView t : *produced) {
          if (result.Insert(t)) next_delta.Insert(t);
        }
        delta = std::move(next_delta);
      }
      if (stats != nullptr) stats->result_size = result.size();
      return result;
    }
  }
  return Status::Internal("unreachable");
}

Result<std::optional<LinearRule>> OpExpr::AsSingleRule() const {
  switch (kind()) {
    case Kind::kOperator:
      return std::optional<LinearRule>(rule());
    case Kind::kProduct: {
      std::optional<LinearRule> acc;
      // Compose left-to-right: Product(A,B) = A·B.
      for (const OpExpr& child : children()) {
        Result<std::optional<LinearRule>> part = child.AsSingleRule();
        if (!part.ok()) return part.status();
        if (!part->has_value()) return std::optional<LinearRule>(std::nullopt);
        if (!acc.has_value()) {
          acc = std::move(*part);
        } else {
          Result<LinearRule> composed = Compose(*acc, **part);
          if (!composed.ok()) return composed.status();
          acc = std::move(composed).value();
        }
      }
      return acc;
    }
    case Kind::kSum:
    case Kind::kClosure:
      return std::optional<LinearRule>(std::nullopt);
  }
  return Status::Internal("unreachable");
}

Result<OpExpr> OpExpr::DecomposeClosures() const {
  switch (kind()) {
    case Kind::kOperator:
      return *this;
    case Kind::kSum:
    case Kind::kProduct: {
      std::vector<OpExpr> rewritten;
      for (const OpExpr& child : children()) {
        Result<OpExpr> r = child.DecomposeClosures();
        if (!r.ok()) return r.status();
        rewritten.push_back(std::move(r).value());
      }
      return kind() == Kind::kSum ? Sum(std::move(rewritten))
                                  : Product(std::move(rewritten));
    }
    case Kind::kClosure: {
      Result<OpExpr> body = children()[0].DecomposeClosures();
      if (!body.ok()) return body.status();
      if (body->kind() != Kind::kSum) return Closure(std::move(*body));

      // Reduce every summand to a single rule, if possible.
      std::vector<LinearRule> rules;
      std::vector<const OpExpr*> summands;
      for (const OpExpr& child : body->children()) {
        summands.push_back(&child);
      }
      for (const OpExpr* child : summands) {
        Result<std::optional<LinearRule>> single = child->AsSingleRule();
        if (!single.ok()) return single.status();
        if (!single->has_value()) return Closure(std::move(*body));
        rules.push_back(std::move(**single));
      }
      Result<DecompositionPlan> plan = PlanDecomposition(rules);
      if (!plan.ok()) return plan.status();
      if (!plan->fully_decomposed && plan->groups.size() <= 1) {
        return Closure(std::move(*body));
      }
      std::vector<OpExpr> factors;
      for (const std::vector<int>& group : plan->groups) {
        std::vector<OpExpr> members;
        for (int index : group) {
          members.push_back(*summands[static_cast<std::size_t>(index)]);
        }
        factors.push_back(Closure(Sum(std::move(members))));
      }
      return Product(std::move(factors));
    }
  }
  return Status::Internal("unreachable");
}

std::string OpExpr::ToString() const {
  switch (kind()) {
    case Kind::kOperator:
      return name();
    case Kind::kSum: {
      std::vector<std::string> parts;
      for (const OpExpr& child : children()) parts.push_back(child.ToString());
      return StrCat("(", Join(parts, " + "), ")");
    }
    case Kind::kProduct: {
      std::vector<std::string> parts;
      for (const OpExpr& child : children()) parts.push_back(child.ToString());
      return Join(parts, "·");
    }
    case Kind::kClosure:
      return StrCat(children()[0].ToString(), "*");
  }
  return "?";
}

}  // namespace linrec
