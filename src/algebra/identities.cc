#include "algebra/identities.h"

#include "cq/compose.h"
#include "cq/homomorphism.h"

namespace linrec {
namespace {

struct ClosureSet {
  Relation b_star_c_star;
  Relation c_star_b_star;
  Relation union_of_stars;
  Relation sum_star;
};

Result<ClosureSet> ComputeClosures(const LinearRule& b, const LinearRule& c,
                                   const Database& db, const Relation& q) {
  std::vector<LinearRule> only_b{b};
  std::vector<LinearRule> only_c{c};
  std::vector<LinearRule> both{b, c};

  Result<Relation> c_star = SemiNaiveClosure(only_c, db, q);
  if (!c_star.ok()) return c_star.status();
  Result<Relation> bc = SemiNaiveClosure(only_b, db, *c_star);
  if (!bc.ok()) return bc.status();

  Result<Relation> b_star = SemiNaiveClosure(only_b, db, q);
  if (!b_star.ok()) return b_star.status();
  Result<Relation> cb = SemiNaiveClosure(only_c, db, *b_star);
  if (!cb.ok()) return cb.status();

  Relation unioned = *b_star;
  unioned.UnionWith(*c_star);

  Result<Relation> sum = SemiNaiveClosure(both, db, q);
  if (!sum.ok()) return sum.status();

  ClosureSet out;
  out.b_star_c_star = std::move(bc).value();
  out.c_star_b_star = std::move(cb).value();
  out.union_of_stars = std::move(unioned);
  out.sum_star = std::move(sum).value();
  return out;
}

}  // namespace

Result<IdentityCheck> CheckLassezMaher1(const LinearRule& b,
                                        const LinearRule& c,
                                        const Database& db,
                                        const Relation& q) {
  Result<ClosureSet> closures = ComputeClosures(b, c, db, q);
  if (!closures.ok()) return closures.status();
  IdentityCheck check;
  check.premise = closures->b_star_c_star == closures->c_star_b_star &&
                  closures->b_star_c_star == closures->union_of_stars;
  check.conclusion = closures->sum_star == closures->union_of_stars;
  check.holds = !check.premise || check.conclusion;
  return check;
}

Result<IdentityCheck> CheckLassezMaher2(const LinearRule& b,
                                        const LinearRule& c,
                                        const Database& db,
                                        const Relation& q) {
  // Premise is operator-level: BC = CB = B + C.
  Result<LinearRule> bc = Compose(b, c);
  if (!bc.ok()) return bc.status();
  Result<LinearRule> cb = Compose(c, b);
  if (!cb.ok()) return cb.status();
  std::vector<Rule> product{bc->rule()};
  std::vector<Rule> sum{b.rule(), c.rule()};
  IdentityCheck check;
  check.premise = AreEquivalent(bc->rule(), cb->rule()) &&
                  UnionsEquivalent(product, sum);

  Result<ClosureSet> closures = ComputeClosures(b, c, db, q);
  if (!closures.ok()) return closures.status();
  check.conclusion = closures->sum_star == closures->union_of_stars;
  check.holds = !check.premise || check.conclusion;
  return check;
}

Result<IdentityCheck> CheckDong(const LinearRule& b, const LinearRule& c,
                                const Database& db, const Relation& q) {
  Result<ClosureSet> closures = ComputeClosures(b, c, db, q);
  if (!closures.ok()) return closures.status();
  IdentityCheck check;
  check.premise = closures->b_star_c_star == closures->c_star_b_star;
  check.conclusion = closures->sum_star == closures->b_star_c_star &&
                     closures->sum_star == closures->c_star_b_star;
  // On a single instance only premise ⇐ conclusion is a theorem; report the
  // biconditional as observed.
  check.holds = check.premise == check.conclusion;
  return check;
}

}  // namespace linrec
