#include "algebra/closure.h"

namespace linrec {

Result<Relation> DirectClosure(const std::vector<LinearRule>& rules,
                               const Database& db, const Relation& q,
                               ClosureStats* stats, IndexCache* cache) {
  return SemiNaiveClosure(rules, db, q, stats, cache);
}

Result<Relation> DecomposedClosure(
    const std::vector<std::vector<LinearRule>>& groups, const Database& db,
    const Relation& q, ClosureStats* stats, IndexCache* cache) {
  if (groups.empty()) {
    return Status::InvalidArgument("DecomposedClosure requires >= 1 group");
  }
  Relation current = q;
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;
  for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
    ClosureStats group_stats;
    Result<Relation> next =
        SemiNaiveClosure(*it, db, current, &group_stats, cache);
    if (!next.ok()) return next.status();
    current = std::move(next).value();
    if (stats != nullptr) stats->Accumulate(group_stats);
  }
  return current;
}

}  // namespace linrec
