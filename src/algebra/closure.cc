#include "algebra/closure.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace linrec {
namespace {

/// Computes every P_i = groups[i]* q concurrently, each worker with its own
/// IndexCache (HashIndex building mutates the cache, and the shared
/// parameter relations are only ever read). Results and stats land in
/// per-group slots, so no synchronization beyond the work-stealing counter
/// and the joins is needed.
std::vector<Result<Relation>> CloseGroupsInParallel(
    const std::vector<std::vector<LinearRule>>& groups, const Database& db,
    const Relation& q, std::vector<ClosureStats>* group_stats,
    std::size_t workers) {
  std::vector<Result<Relation>> parts;
  parts.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    parts.push_back(Status::Internal("group closure not executed"));
  }
  std::atomic<std::size_t> next{0};
  auto work = [&]() {
    IndexCache local_cache;
    for (std::size_t i = next.fetch_add(1); i < groups.size();
         i = next.fetch_add(1)) {
      // An exception escaping a spawned thread would std::terminate the
      // process; convert it to the Status contract every other path uses.
      try {
        parts[i] = SemiNaiveClosure(groups[i], db, q, &(*group_stats)[i],
                                    &local_cache);
      } catch (const std::exception& e) {
        parts[i] = Status::Internal(
            std::string("group closure threw: ") + e.what());
      } catch (...) {
        parts[i] = Status::Internal("group closure threw");
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(work);
  work();
  for (std::thread& t : threads) t.join();
  return parts;
}

}  // namespace

Result<Relation> DirectClosure(const std::vector<LinearRule>& rules,
                               const Database& db, const Relation& q,
                               ClosureStats* stats, IndexCache* cache) {
  return SemiNaiveClosure(rules, db, q, stats, cache);
}

Result<Relation> DecomposedClosure(
    const std::vector<std::vector<LinearRule>>& groups, const Database& db,
    const Relation& q, ClosureStats* stats, IndexCache* cache, int workers) {
  if (groups.empty()) {
    return Status::InvalidArgument("DecomposedClosure requires >= 1 group");
  }
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  std::size_t pool = workers > 0 ? static_cast<std::size_t>(workers)
                                 : std::thread::hardware_concurrency();
  if (pool == 0) pool = 1;
  pool = std::min(pool, groups.size());

  if (pool < 2 || groups.size() < 2) {
    // Sequential product: thread the accumulating relation through each
    // group closure, rightmost first.
    Relation current = q;
    for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
      ClosureStats group_stats;
      Result<Relation> next =
          SemiNaiveClosure(*it, db, current, &group_stats, cache);
      if (!next.ok()) return next.status();
      current = std::move(next).value();
      if (stats != nullptr) stats->Accumulate(group_stats);
    }
    return current;
  }

  // Parallel phase: P_i = G_i* q for every group at once.
  std::vector<ClosureStats> group_stats(groups.size());
  std::vector<Result<Relation>> parts =
      CloseGroupsInParallel(groups, db, q, &group_stats, pool);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (!parts[i].ok()) return parts[i].status();
    if (stats != nullptr) stats->Accumulate(group_stats[i]);
  }

  // Merge right-to-left in product order. Step i computes G_i*(current)
  // as SemiNaiveResume(G_i, closed = P_i, extra = current): P_i ⊆
  // G_i*(current) because current ⊇ q, so seeding from P_i is sound and
  // only cross-group compositions are newly derived.
  Relation current = std::move(parts.back()).value();
  for (std::size_t i = groups.size() - 1; i-- > 0;) {
    ClosureStats merge_stats;
    Result<Relation> merged = SemiNaiveResume(groups[i], db, *parts[i],
                                              current, &merge_stats, cache);
    if (!merged.ok()) return merged.status();
    current = std::move(merged).value();
    if (stats != nullptr) stats->Accumulate(merge_stats);
  }
  return current;
}

}  // namespace linrec
