#include "algebra/closure.h"

#include <algorithm>

#include "common/parallel.h"

namespace linrec {
namespace {

/// Computes every P_i = groups[i]* q concurrently on a WorkerPool (one
/// chunk per group), each lane with its own IndexCache (HashIndex building
/// mutates the cache, and the shared parameter relations are only ever
/// read). Results and stats land in per-group slots, so no synchronization
/// beyond the pool's work-stealing counter is needed. When the worker
/// budget exceeds the group count, the surplus goes to Δ partitioning
/// inside each group's rounds (`inner_workers`), so a 2-group closure on
/// an 8-way budget still uses all eight lanes.
std::vector<Result<Relation>> CloseGroupsInParallel(
    const std::vector<std::vector<LinearRule>>& groups, const Database& db,
    const Relation& q, std::vector<ClosureStats>* group_stats,
    std::size_t workers, int inner_workers,
    const CancellationToken* cancel) {
  std::vector<Result<Relation>> parts;
  parts.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    parts.push_back(Status::Internal("group closure not executed"));
  }
  WorkerPool pool(static_cast<int>(workers));
  std::vector<IndexCache> caches(static_cast<std::size_t>(pool.lanes()));
  pool.Run(groups.size(), [&](int lane, std::size_t i) {
    // The pool swallows exceptions on its threads; convert them to the
    // Status contract every other path uses.
    try {
      parts[i] = SemiNaiveClosure(groups[i], db, q, &(*group_stats)[i],
                                  &caches[static_cast<std::size_t>(lane)],
                                  inner_workers, cancel);
    } catch (const std::exception& e) {
      parts[i] =
          Status::Internal(std::string("group closure threw: ") + e.what());
    } catch (...) {
      parts[i] = Status::Internal("group closure threw");
    }
  });
  return parts;
}

}  // namespace

Result<Relation> DirectClosure(const std::vector<LinearRule>& rules,
                               const Database& db, const Relation& q,
                               ClosureStats* stats, IndexCache* cache,
                               int workers, const CancellationToken* cancel) {
  return SemiNaiveClosure(rules, db, q, stats, cache, workers, cancel);
}

Result<Relation> DecomposedClosure(
    const std::vector<std::vector<LinearRule>>& groups, const Database& db,
    const Relation& q, ClosureStats* stats, IndexCache* cache, int workers,
    const CancellationToken* cancel) {
  if (groups.empty()) {
    return Status::InvalidArgument("DecomposedClosure requires >= 1 group");
  }
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  const int resolved = ResolveWorkers(workers);
  std::size_t pool =
      std::min(static_cast<std::size_t>(resolved), groups.size());

  if (pool < 2 || groups.size() < 2) {
    // Sequential product: thread the accumulating relation through each
    // group closure, rightmost first. All workers go to the inside of the
    // rounds (this covers the single-group case — the one the group-level
    // parallel phase cannot speed up).
    Relation current = q;
    for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
      ClosureStats group_stats;
      Result<Relation> next =
          SemiNaiveClosure(*it, db, current, &group_stats, cache, resolved,
                           cancel);
      if (!next.ok()) return next.status();
      current = std::move(next).value();
      if (stats != nullptr) stats->Accumulate(group_stats);
    }
    return current;
  }

  // Parallel phase: P_i = G_i* q for every group at once; leftover worker
  // budget beyond the group count parallelizes the inside of each group's
  // rounds (total threads stay ≈ resolved, never pool × resolved).
  const int inner_workers =
      std::max(1, resolved / static_cast<int>(pool));
  std::vector<ClosureStats> group_stats(groups.size());
  std::vector<Result<Relation>> parts =
      CloseGroupsInParallel(groups, db, q, &group_stats, pool,
                            inner_workers, cancel);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (!parts[i].ok()) return parts[i].status();
    if (stats != nullptr) stats->Accumulate(group_stats[i]);
  }

  // Merge right-to-left in product order. Step i computes G_i*(current)
  // as SemiNaiveResume(G_i, closed = P_i, extra = current): P_i ⊆
  // G_i*(current) because current ⊇ q, so seeding from P_i is sound and
  // only cross-group compositions are newly derived. The merge is
  // inherently ordered, so its parallelism comes from Δ partitioning
  // inside each resume.
  Relation current = std::move(parts.back()).value();
  for (std::size_t i = groups.size() - 1; i-- > 0;) {
    ClosureStats merge_stats;
    Result<Relation> merged = SemiNaiveResume(groups[i], db, *parts[i],
                                              current, &merge_stats, cache,
                                              resolved, cancel);
    if (!merged.ok()) return merged.status();
    current = std::move(merged).value();
    if (stats != nullptr) stats->Accumulate(merge_stats);
  }
  return current;
}

}  // namespace linrec
