// Quickstart: parse two linear recursive rules, test whether they commute,
// and use the decomposition (A1+A2)* = A1*A2* to answer a query.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "algebra/closure.h"
#include "algebra/plan.h"
#include "commutativity/oracle.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "workload/graphs.h"

using namespace linrec;

int main() {
  // The two linear forms of transitive closure (Example 5.2 of the paper):
  // their product is the same-generation rule, and they commute.
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y).");
  auto r2 = ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).");
  if (!r1.ok() || !r2.ok()) {
    std::cerr << "parse error: " << r1.status() << " / " << r2.status()
              << "\n";
    return 1;
  }
  std::cout << "r1: " << ToString(*r1) << "\n";
  std::cout << "r2: " << ToString(*r2) << "\n\n";

  // 1. Do the operators commute? (Theorem 5.1/5.2 syntactic test.)
  auto report = CheckCommutativity(*r1, *r2);
  if (!report.ok()) {
    std::cerr << "commutativity check failed: " << report.status() << "\n";
    return 1;
  }
  std::cout << "commute: " << (report->commute ? "yes" : "no")
            << "  (syntactic condition "
            << (report->syntactic_holds ? "holds" : "fails")
            << ", restricted class: "
            << (report->restricted_class ? "yes" : "no") << ")\n";
  for (const std::string& note : report->notes) {
    std::cout << "  " << note << "\n";
  }

  // 2. Build a small database: a binary tree, with `down` its edges and
  // `up` their reversals; seed q with the identity over all nodes.
  Database db;
  Relation down = TreeGraph(/*branching=*/2, /*depth=*/6);
  Relation up(2);
  for (const Tuple& t : down) up.Insert({t[1], t[0]});
  std::size_t nodes = 0;
  Relation q(2);
  for (const Tuple& t : down) {
    q.Insert({t[0], t[0]});
    q.Insert({t[1], t[1]});
    ++nodes;
  }
  db.GetOrCreate("down", 2) = std::move(down);
  db.GetOrCreate("up", 2) = std::move(up);

  // 3. Evaluate (r1 + r2)* q two ways and compare the work.
  ClosureStats direct_stats;
  auto direct = DirectClosure({*r1, *r2}, db, q, &direct_stats);
  ClosureStats decomposed_stats;
  auto plan = PlanDecomposition({*r1, *r2});
  auto decomposed = EvaluateWithPlan({*r1, *r2}, *plan, db, q,
                                     &decomposed_stats);
  if (!direct.ok() || !decomposed.ok()) {
    std::cerr << "evaluation failed\n";
    return 1;
  }

  std::cout << "\nsame-generation pairs over a binary tree:\n";
  std::cout << "  result size        : " << direct->size() << " tuples\n";
  std::cout << "  results identical  : "
            << (*direct == *decomposed ? "yes" : "NO (bug!)") << "\n";
  std::cout << "  direct (A1+A2)*    : " << direct_stats.derivations
            << " derivations, " << direct_stats.duplicates
            << " duplicates\n";
  std::cout << "  decomposed A1*A2*  : " << decomposed_stats.derivations
            << " derivations, " << decomposed_stats.duplicates
            << " duplicates\n";
  std::cout << "\nTheorem 3.1 in action: the decomposed evaluation never "
               "produces more duplicates.\n";
  return 0;
}
