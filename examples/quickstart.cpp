// Quickstart: parse two linear recursive rules, hand them to the
// linrec::Engine, and let analysis choose the strategy — the planner
// discovers that the operators commute and compiles the decomposition
// (A1+A2)* = A1*A2* by itself. Prepare() compiles once and Explain()
// shows the theorem-level justification; Bind().BindSeed() stamps out
// executions, and a forced semi-naive preparation provides the
// comparison.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "datalog/parser.h"
#include "datalog/printer.h"
#include "engine/engine.h"
#include "workload/graphs.h"

using namespace linrec;

int main() {
  // The two linear forms of transitive closure (Example 5.2 of the paper):
  // their product is the same-generation rule, and they commute.
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y).");
  auto r2 = ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).");
  if (!r1.ok() || !r2.ok()) {
    std::cerr << "parse error: " << r1.status() << " / " << r2.status()
              << "\n";
    return 1;
  }
  std::cout << "r1: " << ToString(*r1) << "\n";
  std::cout << "r2: " << ToString(*r2) << "\n\n";

  // 1. Build a small database: a binary tree, with `down` its edges and
  // `up` their reversals; seed q with the identity over all nodes.
  Database db;
  Relation down = TreeGraph(/*branching=*/2, /*depth=*/6);
  Relation up(2);
  for (TupleView t : down) up.Insert({t[1], t[0]});
  Relation q(2);
  for (TupleView t : down) {
    q.Insert({t[0], t[0]});
    q.Insert({t[1], t[1]});
  }
  db.GetOrCreate("down", 2) = std::move(down);
  db.GetOrCreate("up", 2) = std::move(up);

  // 2. Prepare the query. The planner runs the Theorem 5.1/5.2
  // commutativity oracle over the pair and compiles the decomposed
  // strategy — once; the prepared handle binds and runs any number of
  // seeds afterwards.
  Engine engine(std::move(db));
  auto prepared = engine.Prepare(Query::Closure({*r1, *r2}));
  if (!prepared.ok()) {
    std::cerr << "planning failed: " << prepared.status() << "\n";
    return 1;
  }
  std::cout << prepared->plan().Explain() << "\n";

  // 3. Execute the prepared query and the forced semi-naive baseline, and
  // compare the work (Theorem 3.1: the decomposition never produces more
  // duplicate derivations). Each QueryResult carries its own stats — no
  // ResetStats bookkeeping between runs.
  auto baseline = engine.Prepare(
      Query::Closure({*r1, *r2}).Force(Strategy::kSemiNaive));
  if (!baseline.ok()) {
    std::cerr << "planning failed: " << baseline.status() << "\n";
    return 1;
  }
  auto decomposed = engine.Execute(prepared->Bind().BindSeed(q));
  auto direct = engine.Execute(baseline->Bind().BindSeed(q));
  if (!direct.ok() || !decomposed.ok()) {
    std::cerr << "evaluation failed\n";
    return 1;
  }

  std::cout << "same-generation pairs over a binary tree:\n";
  std::cout << "  result size        : " << direct->relation().size()
            << " tuples\n";
  std::cout << "  results identical  : "
            << (direct->relation() == decomposed->relation() ? "yes"
                                                             : "NO (bug!)")
            << "\n";
  std::cout << "  direct (A1+A2)*    : " << direct->stats.derivations
            << " derivations, " << direct->stats.duplicates
            << " duplicates\n";
  std::cout << "  decomposed A1*A2*  : " << decomposed->stats.derivations
            << " derivations, " << decomposed->stats.duplicates
            << " duplicates\n";
  std::cout << "\nTheorem 3.1 in action: the decomposed evaluation never "
               "produces more duplicates — and the engine chose it from "
               "the analysis alone.\n";
  return 0;
}
