// Recursively redundant predicates (Section 6.2): detect them with the
// Theorem 6.3 analyzer, factor A^L = B C^L (Lemmas 6.3-6.5), and evaluate
// the closure with the bounded-C strategy of Theorem 4.2.
//
// Scenario: Example 6.1's market program with an expensive endorsement
// check:
//   buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).

#include <iostream>

#include "datalog/parser.h"
#include "datalog/printer.h"
#include "eval/fixpoint.h"
#include "redundancy/analyze.h"
#include "redundancy/closure.h"
#include "redundancy/factorize.h"
#include "workload/databases.h"

using namespace linrec;

int main() {
  auto rule = ParseLinearRule(
      "buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).");
  if (!rule.ok()) return 1;
  std::cout << "rule: " << ToString(*rule) << "\n\n";

  // 1. Which nonrecursive predicates are recursively redundant?
  auto report = AnalyzeRedundancy(*rule);
  if (!report.ok()) {
    std::cerr << "analysis failed: " << report.status() << "\n";
    return 1;
  }
  std::cout << "redundant predicates:";
  for (const std::string& pred : report->redundant_predicates) {
    std::cout << " " << pred;
  }
  std::cout << "\n";
  for (const RedundancyEntry& entry : report->entries) {
    std::cout << "  bridge " << entry.bridge_index << ": {";
    for (std::size_t i = 0; i < entry.predicates.size(); ++i) {
      std::cout << (i ? "," : "") << entry.predicates[i];
    }
    std::cout << "} uniformly bounded: "
              << (entry.uniformly_bounded ? "yes" : "no");
    if (entry.uniformly_bounded) {
      std::cout << " (C^" << entry.bound.n << " <= C^" << entry.bound.k
                << ")";
    }
    std::cout << "\n";
  }

  // 2. Factor A^L = B C^L.
  auto f = FactorFirstRedundant(*rule);
  if (!f.ok()) {
    std::cerr << "factorization failed: " << f.status() << "\n";
    return 1;
  }
  std::cout << "\nfactorization (L=" << f->L << ", C^" << f->N << " = C^"
            << f->K << "):\n";
  std::cout << "  C : " << ToString(f->C) << "\n";
  std::cout << "  B : " << ToString(f->B) << "\n";
  std::cout << "  A^L = B.C^L verified: "
            << (f->product_verified ? "yes" : "no") << "\n";
  std::cout << "  C^L(BC^L) = C^L(C^LB) verified: "
            << (f->swap_verified ? "yes" : "no") << "\n";
  std::cout << "  B and C^L commute outright: "
            << (f->commuting ? "yes" : "no") << "\n";

  // 3. Evaluate both ways on a deep workload with heavy endorsement fanout.
  EndorsedBuysWorkload w = MakeEndorsedBuys(/*people=*/300, /*items=*/75,
                                            /*fanout=*/32,
                                            /*initial_buys=*/75, /*seed=*/7);
  ClosureStats direct_stats;
  auto direct = SemiNaiveClosure({*rule}, w.db, w.q, &direct_stats);
  ClosureStats aware_stats;
  auto aware = RedundantClosure(*f, w.db, w.q, &aware_stats);
  if (!direct.ok() || !aware.ok()) {
    std::cerr << "evaluation failed\n";
    return 1;
  }

  std::cout << "\nclosure over " << w.q.size() << " initial purchases:\n";
  std::cout << "  result size      : " << direct->size()
            << " (strategies agree: " << (*direct == *aware ? "yes" : "NO!")
            << ")\n";
  std::cout << "  direct           : " << direct_stats.derivations
            << " derivations, " << direct_stats.millis << " ms\n";
  std::cout << "  redundancy-aware : " << aware_stats.derivations
            << " derivations, " << aware_stats.millis << " ms\n";
  std::cout << "\nThe redundant predicate is applied a bounded number of "
               "times instead of once per iteration.\n";
  return 0;
}
