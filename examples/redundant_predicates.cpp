// Recursively redundant predicates (Section 6.2): the engine detects them
// with the Theorem 6.3 analyzer, factors A^L = B C^L (Lemmas 6.3-6.5), and
// elides the redundant predicate from the unbounded tail (Theorem 4.2) —
// all during Plan(); the caller only states the query.
//
// Scenario: Example 6.1's market program with an expensive endorsement
// check:
//   buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).

#include <iostream>

#include "datalog/parser.h"
#include "datalog/printer.h"
#include "engine/engine.h"
#include "workload/databases.h"

using namespace linrec;

int main() {
  auto rule = ParseLinearRule(
      "buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).");
  if (!rule.ok()) return 1;
  std::cout << "rule: " << ToString(*rule) << "\n\n";

  // 1. The engine's cached analysis: which nonrecursive predicates are
  // recursively redundant?
  EndorsedBuysWorkload w = MakeEndorsedBuys(/*people=*/300, /*items=*/75,
                                            /*fanout=*/32,
                                            /*initial_buys=*/75, /*seed=*/7);
  Engine engine(std::move(w.db));
  auto info = engine.Analyze(*rule);
  if (!info.ok()) {
    std::cerr << "analysis failed: " << info.status() << "\n";
    return 1;
  }
  if ((*info)->redundancy.has_value()) {
    const RedundancyReport& report = *(*info)->redundancy;
    std::cout << "redundant predicates:";
    for (const std::string& pred : report.redundant_predicates) {
      std::cout << " " << pred;
    }
    std::cout << "\n";
    for (const RedundancyEntry& entry : report.entries) {
      std::cout << "  bridge " << entry.bridge_index << ": {";
      for (std::size_t i = 0; i < entry.predicates.size(); ++i) {
        std::cout << (i ? "," : "") << entry.predicates[i];
      }
      std::cout << "} uniformly bounded: "
                << (entry.uniformly_bounded ? "yes" : "no");
      if (entry.uniformly_bounded) {
        std::cout << " (C^" << entry.bound.n << " <= C^" << entry.bound.k
                  << ")";
      }
      std::cout << "\n";
    }
  }

  // 2. Prepare: the factorization happens inside the engine; Explain()
  // names the elided predicate and the theorems that license the elision.
  auto aware_q = engine.Prepare(Query::Closure({*rule}));
  if (!aware_q.ok()) {
    std::cerr << "planning failed: " << aware_q.status() << "\n";
    return 1;
  }
  std::cout << "\n" << aware_q->plan().Explain() << "\n";

  // 3. Evaluate both ways on a deep workload with heavy endorsement
  // fanout; each QueryResult carries its own stats.
  auto direct_q = engine.Prepare(
      Query::Closure({*rule}).Force(Strategy::kSemiNaive));
  if (!direct_q.ok()) {
    std::cerr << "planning failed: " << direct_q.status() << "\n";
    return 1;
  }
  auto aware = engine.Execute(aware_q->Bind().BindSeed(w.q));
  auto direct = engine.Execute(direct_q->Bind().BindSeed(w.q));
  if (!direct.ok() || !aware.ok()) {
    std::cerr << "evaluation failed\n";
    return 1;
  }

  std::cout << "\nclosure over " << w.q.size() << " initial purchases:\n";
  std::cout << "  result size      : " << direct->relation().size()
            << " (strategies agree: "
            << (direct->relation() == aware->relation() ? "yes" : "NO!")
            << ")\n";
  std::cout << "  direct           : " << direct->stats.derivations
            << " derivations, " << direct->stats.millis << " ms\n";
  std::cout << "  redundancy-aware : " << aware->stats.derivations
            << " derivations, " << aware->stats.millis << " ms\n";
  std::cout << "\nThe redundant predicate is applied a bounded number of "
               "times instead of once per iteration.\n";
  return 0;
}
