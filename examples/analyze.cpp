// linrec-analyze: command-line rule analyzer.
//
// Reads a Datalog program from a file (or stdin with "-"), and for every
// recursive predicate reports: per-rule variable classification, pairwise
// commutativity (with the clause that justified each position), the
// decomposition plan for the rule sum, separability, recursively
// redundant predicates, and the execution plan the linrec::Engine would
// compile for the rule sum (with its theorem-level justification).
//
// Usage:
//   analyze program.dl
//   echo 'p(X,Y) :- p(X,Z), e(Z,Y).' | analyze -

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "analysis/dot.h"
#include "analysis/rule_analysis.h"
#include "commutativity/oracle.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "engine/engine.h"
#include "redundancy/analyze.h"
#include "separability/separable.h"

using namespace linrec;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <program.dl | ->\n";
    return 2;
  }
  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  auto program = ParseProgram(text);
  if (!program.ok()) {
    std::cerr << "parse error: " << program.status() << "\n";
    return 1;
  }
  std::cout << program->rules.size() << " rule(s), "
            << program->facts.size() << " fact(s)\n\n";

  // Group linear recursive rules by head predicate.
  std::map<std::string, std::vector<LinearRule>> by_predicate;
  for (const Rule& rule : program->rules) {
    auto lr = LinearRule::Make(rule);
    if (lr.ok()) {
      by_predicate[rule.head().predicate].push_back(*lr);
    } else {
      std::cout << "skipping non-linear rule: " << ToString(rule) << "\n";
    }
  }

  for (const auto& [pred, rules] : by_predicate) {
    std::cout << "== recursive predicate " << pred << "/"
              << rules[0].arity() << " (" << rules.size() << " rule(s)) ==\n";
    for (std::size_t i = 0; i < rules.size(); ++i) {
      std::cout << "\nrule " << i << ": " << ToString(rules[i]) << "\n";
      auto analysis = RuleAnalysis::Compute(rules[i]);
      if (!analysis.ok()) {
        std::cout << "  (analysis unavailable: " << analysis.status()
                  << ")\n";
        continue;
      }
      for (VarId v = 0; v < rules[i].rule().var_count(); ++v) {
        std::cout << "  " << rules[i].rule().var_name(v) << ": "
                  << analysis->classes().Of(v).Describe() << "\n";
      }
      auto redundancy = AnalyzeRedundancy(rules[i]);
      if (redundancy.ok() && !redundancy->redundant_predicates.empty()) {
        std::cout << "  recursively redundant:";
        for (const std::string& p : redundancy->redundant_predicates) {
          std::cout << " " << p;
        }
        std::cout << "\n";
      }
    }

    if (rules.size() >= 2) {
      std::cout << "\npairwise commutativity:\n";
      for (std::size_t i = 0; i < rules.size(); ++i) {
        for (std::size_t j = i + 1; j < rules.size(); ++j) {
          auto report = CheckCommutativity(rules[i], rules[j]);
          std::cout << "  rule " << i << " vs rule " << j << ": ";
          if (!report.ok()) {
            std::cout << report.status() << "\n";
            continue;
          }
          std::cout << (report->commute ? "commute" : "do NOT commute")
                    << (report->definitional_used ? " (via definition)"
                                                  : " (syntactic)")
                    << "\n";
          auto separable = CheckSeparable(rules[i], rules[j]);
          if (separable.ok() && separable->separable &&
              separable->cond_var_sets_disjoint) {
            std::cout << "    also separable (Naughton, disjoint form)\n";
          }
        }
      }
      auto plan = PlanDecomposition(rules);
      if (plan.ok()) {
        std::cout << "decomposition plan: ";
        for (const auto& group : plan->groups) {
          std::cout << "{";
          for (std::size_t k = 0; k < group.size(); ++k) {
            std::cout << (k ? "," : "") << group[k];
          }
          std::cout << "}";
        }
        std::cout << (plan->fully_decomposed ? "  (fully commutative)" : "")
                  << "\n";
      }
    }

    // What would the engine do with this rule sum? Prepare compiles the
    // structure alone — no seed needed; strategy selection is purely
    // symbolic.
    Engine engine;
    auto prepared = engine.Prepare(Query::Closure(rules));
    if (prepared.ok()) {
      std::cout << "\nengine plan:\n" << prepared->plan().Explain();
    } else {
      std::cout << "\nengine plan unavailable: " << prepared.status()
                << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
