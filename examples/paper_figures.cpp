// Regenerates the paper's nine figures: for each figure rule, prints the
// α-graph analysis (variable classes, bridges) as text plus Graphviz DOT,
// and the derived artifacts the paper discusses (narrow/wide rules,
// composites, factorizations).
//
// Usage:
//   paper_figures            # text report for all figures
//   paper_figures --dot      # DOT only (pipe into graphviz)

#include <iostream>
#include <string>

#include "analysis/dot.h"
#include "analysis/narrow_wide.h"
#include "analysis/rule_analysis.h"
#include "commutativity/oracle.h"
#include "cq/compose.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "redundancy/analyze.h"
#include "redundancy/factorize.h"

using namespace linrec;

namespace {

bool g_dot_only = false;

void Show(const std::string& title, const std::string& rule_text) {
  auto rule = ParseLinearRule(rule_text);
  if (!rule.ok()) {
    std::cerr << title << ": parse error " << rule.status() << "\n";
    return;
  }
  auto analysis = RuleAnalysis::Compute(*rule);
  if (!analysis.ok()) {
    std::cerr << title << ": " << analysis.status() << "\n";
    return;
  }
  if (g_dot_only) {
    std::cout << "// " << title << "\n" << ToDot(*analysis) << "\n";
    return;
  }
  std::cout << "==== " << title << " ====\n"
            << AsciiReport(*analysis) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--dot") g_dot_only = true;
  }

  // Figure 1 (Example 5.1) — reconstruction, see DESIGN.md.
  Show("Figure 1: classification example (Example 5.1)",
       "p(U,V,W,X,Y,Z) :- p(V,U,W,Y,Y,Z), q(W,X), rr(X,Y).");

  // Figure 2 — augmented bridges; also print the narrow and wide rules.
  {
    const char* text =
        "p(U,W,X,Y,Z) :- p(U,U,U,Y,Y), q(U,X,Y), rr(W), s(X), t(Z).";
    Show("Figure 2: augmented bridges", text);
    auto rule = ParseLinearRule(text);
    auto analysis = RuleAnalysis::Compute(*rule);
    if (analysis.ok() && !g_dot_only) {
      for (const Bridge& b : analysis->commutativity_bridges()) {
        if (b.atom_indices.empty()) continue;
        auto narrow = MakeNarrowRule(*analysis, b);
        auto wide = MakeWideRule(*analysis, b);
        if (narrow.ok() && wide.ok()) {
          std::cout << "  narrow: " << ToString(*narrow) << "\n";
          std::cout << "  wide  : " << ToString(*wide) << "\n";
        }
      }
      std::cout << "\n";
    }
  }

  // Figures 3-5: the commuting pairs of Examples 5.2-5.4.
  Show("Figure 3a: transitive closure, down form (Example 5.2)",
       "p(X,Y) :- p(X,V), down(V,Y).");
  Show("Figure 3b: transitive closure, up form (Example 5.2)",
       "p(X,Y) :- p(U,Y), up(X,U).");
  Show("Figure 4a: Example 5.3 r1", "p(X,Y,Z) :- p(U,Y,Z), q(X,Y).");
  Show("Figure 4b: Example 5.3 r2", "p(X,Y,Z) :- p(X,Y,U), rr(Z,Y).");
  Show("Figure 5a: Example 5.4 r1 (condition fails, rules commute)",
       "p(X,Y) :- p(Y,W), q(X).");
  Show("Figure 5b: Example 5.4 r2", "p(X,Y) :- p(U,V), q(X), q(Y).");

  if (!g_dot_only) {
    auto r1 = ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y).");
    auto r2 = ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).");
    auto composite = Compose(*r1, *r2);
    auto verdict = CheckCommutativity(*r1, *r2);
    std::cout << "Example 5.2 composite (the same-generation rule): "
              << ToString(*composite) << "\n"
              << "commute: " << (verdict->commute ? "yes" : "no") << "\n\n";
  }

  // Figure 6 (Example 6.1).
  Show("Figure 6: knows/buys/cheap (Example 6.1)",
       "buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).");
  if (!g_dot_only) {
    auto rule = ParseLinearRule(
        "buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).");
    auto report = AnalyzeRedundancy(*rule);
    std::cout << "redundant predicates:";
    for (const std::string& p : report->redundant_predicates) {
      std::cout << " " << p;
    }
    std::cout << "\n\n";
  }

  // Figures 7-8 (Example 6.2) and Figure 9 (Example 6.3).
  Show("Figure 7: Example 6.2 rule",
       "p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
  if (!g_dot_only) {
    auto rule = ParseLinearRule(
        "p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
    auto f = FactorFirstRedundant(*rule);
    if (f.ok()) {
      std::cout << "Example 6.2 factorization (L=" << f->L << "):\n"
                << "  A^2: " << ToString(f->AL) << "\n"
                << "  B  : " << ToString(f->B) << "\n"
                << "  C^2: " << ToString(f->CL) << "\n"
                << "  B and C^2 commute: " << (f->commuting ? "yes" : "no")
                << "\n\n";
      auto b_analysis = RuleAnalysis::Compute(f->B);
      auto c_analysis = RuleAnalysis::Compute(f->CL);
      if (b_analysis.ok() && c_analysis.ok()) {
        std::cout << "==== Figure 8a: B ====\n" << AsciiReport(*b_analysis)
                  << "\n==== Figure 8b: C^2 ====\n"
                  << AsciiReport(*c_analysis) << "\n";
      }
    }
  }
  Show("Figure 9: Example 6.3 rule (swap condition without commutativity)",
       "p(W,X,Y,Z) :- p(X,W,X,U), q(Y,U), rr(X,Y), s(U,Z).");
  if (!g_dot_only) {
    auto rule = ParseLinearRule(
        "p(W,X,Y,Z) :- p(X,W,X,U), q(Y,U), rr(X,Y), s(U,Z).");
    auto f = FactorFirstRedundant(*rule);
    if (f.ok()) {
      std::cout << "Example 6.3: BC^2 = C^2B? "
                << (f->commuting ? "yes" : "no")
                << "   C^2(BC^2) = C^2(C^2B)? "
                << (f->swap_verified ? "yes" : "no") << "\n";
    }
  }
  return 0;
}
