// Selection pushdown with the separable algorithm (Theorem 4.1 /
// Algorithm 4.1): answering σ(A1+A2)* q without materializing the full
// closure.
//
// Scenario: "which nodes are in the same generation as node N?" over a
// layered organization chart — for many different N. The σ position is a
// *bind parameter*: the engine prepares one separable plan (it detects
// that σ's column is 1-persistent in the down rule and splits the
// operators), then binds each constant per execution. The whole sweep
// plans once, and ExecuteBatch runs the bindings concurrently on the
// shared worker pool against one shared read-side index cache.

#include <iostream>

#include "datalog/parser.h"
#include "datalog/printer.h"
#include "engine/engine.h"
#include "workload/databases.h"

using namespace linrec;

int main() {
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y).");
  auto r2 = ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).");
  if (!r1.ok() || !r2.ok()) return 1;

  SameGenerationWorkload w =
      MakeSameGeneration(/*layers=*/7, /*width=*/24, /*fanout=*/2,
                         /*seed=*/2024);
  Value node = w.q.Sorted().front()[0];
  std::cout << "query: sigma_{X=N} (r1+r2)* q, swept over N\n\n";

  Engine engine(std::move(w.db));

  // One preparation serves the whole sweep: the plan is compiled against
  // the σ *position*; the constant arrives at Bind time.
  auto fast = engine.Prepare(
      Query::Closure({*r1, *r2}).SelectPosition(0));
  auto slow = engine.Prepare(Query::Closure({*r1, *r2})
                                 .SelectPosition(0)
                                 .Force(Strategy::kSemiNaive));
  if (!fast.ok() || !slow.ok()) {
    std::cerr << "planning failed: " << fast.status() << " / "
              << slow.status() << "\n";
    return 1;
  }
  std::cout << fast->plan().Explain() << "\n";

  // Single binding: separable vs compute-everything-then-filter.
  auto seed = std::make_shared<const Relation>(w.q);
  auto fast_result = engine.Execute(fast->Bind(node).BindSeed(seed));
  auto slow_result = engine.Execute(slow->Bind(node).BindSeed(seed));
  if (!slow_result.ok() || !fast_result.ok()) {
    std::cerr << "evaluation failed: " << slow_result.status() << " / "
              << fast_result.status() << "\n";
    return 1;
  }

  std::cout << "\nanswers for N=" << node << ": "
            << fast_result->relation().size() << " tuples (plans agree: "
            << (fast_result->relation() == slow_result->relation()
                    ? "yes"
                    : "NO — bug!")
            << ")\n";
  std::cout << "full closure then filter : "
            << slow_result->stats.derivations << " derivations, "
            << slow_result->stats.millis << " ms\n";
  std::cout << "separable algorithm      : "
            << fast_result->stats.derivations << " derivations, "
            << fast_result->stats.millis << " ms\n";

  // The sweep: bind eight constants and run them as one batch. Planning
  // already happened; the batch shares the parameter-relation indexes and
  // runs the queries concurrently (each query's rounds stay serial, so
  // results are identical to running them one by one).
  std::vector<BoundQuery> batch;
  std::vector<Value> nodes;
  for (const Tuple& t : w.q.Sorted()) {
    if (static_cast<int>(nodes.size()) == 8) break;
    nodes.push_back(t[0]);
    batch.push_back(fast->Bind(t[0]).BindSeed(seed));
  }
  auto swept = engine.ExecuteBatch(batch);
  if (!swept.ok()) {
    std::cerr << "batch failed: " << swept.status() << "\n";
    return 1;
  }
  std::cout << "\nbatched sweep over " << swept->size() << " constants:\n";
  for (std::size_t i = 0; i < swept->size(); ++i) {
    std::cout << "  N=" << nodes[i] << ": "
              << (*swept)[i].relation().size() << " same-generation nodes ("
              << (*swept)[i].stats.derivations << " derivations)\n";
  }

  std::cout << "\nsample answers for N=" << node << ":\n";
  int shown = 0;
  for (const Tuple& t : fast_result->relation().Sorted()) {
    std::cout << "  p" << t << "\n";
    if (++shown == 5) break;
  }
  return 0;
}
