// Selection pushdown with the separable algorithm (Theorem 4.1 /
// Algorithm 4.1): answering σ(A1+A2)* q without materializing the full
// closure.
//
// Scenario: "which nodes are in the same generation as node N?" over a
// layered organization chart. The engine plans both sides: forced
// semi-naive computes every same-generation pair and then filters, while
// the automatic plan detects that σ's column is 1-persistent in the down
// rule, splits the operators, and closes only the selected cone.

#include <iostream>

#include "datalog/parser.h"
#include "datalog/printer.h"
#include "engine/engine.h"
#include "workload/databases.h"

using namespace linrec;

int main() {
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y).");
  auto r2 = ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).");
  if (!r1.ok() || !r2.ok()) return 1;

  SameGenerationWorkload w =
      MakeSameGeneration(/*layers=*/7, /*width=*/24, /*fanout=*/2,
                         /*seed=*/2024);
  Value node = w.q.Sorted().front()[0];
  Selection sigma{0, node};
  std::cout << "query: sigma_{X=" << node << "} (r1+r2)* q\n\n";

  Engine engine(std::move(w.db));
  auto plan =
      engine.Plan(Query::Closure({*r1, *r2}).Select(sigma).From(w.q));
  if (!plan.ok()) {
    std::cerr << "planning failed: " << plan.status() << "\n";
    return 1;
  }
  std::cout << plan->Explain() << "\n";

  auto fast = engine.Execute(*plan);
  ClosureStats fast_stats = engine.stats();
  engine.ResetStats();
  auto slow = engine.Execute(Query::Closure({*r1, *r2})
                                 .Select(sigma)
                                 .From(w.q)
                                 .Force(Strategy::kSemiNaive));
  ClosureStats slow_stats = engine.stats();
  if (!slow.ok() || !fast.ok()) {
    std::cerr << "evaluation failed: " << slow.status() << " / "
              << fast.status() << "\n";
    return 1;
  }

  std::cout << "\nanswers: " << fast->size() << " tuples (plans agree: "
            << (*fast == *slow ? "yes" : "NO — bug!") << ")\n";
  std::cout << "full closure then filter : " << slow_stats.derivations
            << " derivations, " << slow_stats.millis << " ms\n";
  std::cout << "separable algorithm      : " << fast_stats.derivations
            << " derivations, " << fast_stats.millis << " ms\n";
  std::cout << "\nsample answers:\n";
  int shown = 0;
  for (const Tuple& t : fast->Sorted()) {
    std::cout << "  p" << t << "\n";
    if (++shown == 5) break;
  }
  return 0;
}
