// Selection pushdown with the separable algorithm (Theorem 4.1 /
// Algorithm 4.1): answering σ(A1+A2)* q without materializing the full
// closure.
//
// Scenario: "which nodes are in the same generation as node N?" over a
// layered organization chart. The naive plan computes every same-generation
// pair and then filters; the separable plan closes the up-side once,
// filters, and only then runs the down-side closure.

#include <iostream>

#include "datalog/parser.h"
#include "datalog/printer.h"
#include "separability/algorithm.h"
#include "separability/separable.h"
#include "workload/databases.h"

using namespace linrec;

int main() {
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y).");
  auto r2 = ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).");
  if (!r1.ok() || !r2.ok()) return 1;

  // Naughton's separability conditions hold for this pair.
  auto separable = CheckSeparable(*r1, *r2);
  if (!separable.ok()) return 1;
  std::cout << "separable: " << (separable->separable ? "yes" : "no") << " ("
            << separable->detail << ")\n";

  SameGenerationWorkload w =
      MakeSameGeneration(/*layers=*/7, /*width=*/24, /*fanout=*/2,
                         /*seed=*/2024);
  Value node = w.q.Sorted().front()[0];
  Selection sigma{0, node};
  std::cout << "query: sigma_{X=" << node << "} (r1+r2)* q\n\n";

  // σ on X commutes with r1 (X is 1-persistent there): r1 is the outer
  // closure in the pushed-down plan.
  auto commutes = SelectionCommutesWith(*r1, sigma);
  std::cout << "sigma commutes with r1: "
            << (commutes.ok() && *commutes ? "yes" : "no") << "\n";

  ClosureStats slow_stats;
  auto slow = ClosureThenSelect({*r1}, {*r2}, sigma, w.db, w.q, &slow_stats);
  ClosureStats fast_stats;
  auto fast = SeparableClosure({*r1}, {*r2}, sigma, w.db, w.q, &fast_stats);
  if (!slow.ok() || !fast.ok()) {
    std::cerr << "evaluation failed: " << slow.status() << " / "
              << fast.status() << "\n";
    return 1;
  }

  std::cout << "\nanswers: " << fast->size() << " tuples (plans agree: "
            << (*fast == *slow ? "yes" : "NO — bug!") << ")\n";
  std::cout << "full closure then filter : " << slow_stats.derivations
            << " derivations, " << slow_stats.millis << " ms\n";
  std::cout << "separable algorithm      : " << fast_stats.derivations
            << " derivations, " << fast_stats.millis << " ms\n";
  std::cout << "\nsample answers:\n";
  int shown = 0;
  for (const Tuple& t : fast->Sorted()) {
    std::cout << "  p" << t << "\n";
    if (++shown == 5) break;
  }
  return 0;
}
