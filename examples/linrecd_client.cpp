// linrecd_client: a scripted TCP client for the linrecd daemon
// (tools/linrecd.cc). Connects to 127.0.0.1:<port>, streams a protocol
// script (a file, or a built-in transitive-closure demo), and prints
// every reply line. The built-in demo LOADs a chain-of-6 TC program and
// runs a full scan, two σ point queries, EXPLAIN and STATS — run it twice
// against one daemon and the second STATS shows the program-registry hit.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/tools/linrecd --port 0 &        # prints LISTENING <port>
//   ./build/examples/linrecd_client <port>              # built-in demo
//   ./build/examples/linrecd_client <port> script.lr    # your script
//
// The client sends the whole script, then reads until the server closes
// the connection — append QUIT (or SHUTDOWN) to end your script, as the
// demo does.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

const char* kDemoScript =
    "PING\n"
    "LOAD\n"
    "% Transitive closure over the chain 1->2->...->6.\n"
    "edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5). edge(5, 6).\n"
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
    "END\n"
    "?- tc(X, Y).\n"
    "?- tc(1, Y).\n"
    "?- tc(X, 6).\n"
    "EXPLAIN\n"
    "STATS\n"
    "QUIT\n";

int Fail(const std::string& what) {
  std::cerr << what << ": " << std::strerror(errno) << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::cerr << "usage: " << argv[0] << " <port> [script-file]\n";
    return 2;
  }
  const int port = std::atoi(argv[1]);

  std::string script;
  if (argc == 3) {
    std::ifstream in(argv[2]);
    if (!in) {
      std::cerr << "cannot open " << argv[2] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    script = buffer.str();
    if (!script.empty() && script.back() != '\n') script += '\n';
  } else {
    script = kDemoScript;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Fail("connect");
  }

  // Send the whole script up front: runs of "?-" lines arrive together
  // and the server batches them onto its worker pool.
  std::size_t sent = 0;
  while (sent < script.size()) {
    ssize_t n = ::send(fd, script.data() + sent, script.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  // Print replies until the server closes the connection (QUIT/SHUTDOWN).
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      ::close(fd);
      return Fail("recv");
    }
    if (n == 0) break;
    std::cout.write(chunk, n);
  }
  std::cout.flush();
  ::close(fd);
  return 0;
}
