#include "analysis/narrow_wide.h"

#include <gtest/gtest.h>

#include "cq/compose.h"
#include "cq/homomorphism.h"
#include "datalog/parser.h"
#include "datalog/printer.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

// Figure 2 rule (Q read as Q(u,x,y); see DESIGN.md).
const char* kFigure2 =
    "p(U,W,X,Y,Z) :- p(U,U,U,Y,Y), q(U,X,Y), rr(W), s(X), t(Z).";

struct NamedBridges {
  RuleAnalysis analysis;
  int rr = -1, qs = -1, t = -1;
};

NamedBridges Figure2Bridges() {
  auto analysis = RuleAnalysis::Compute(LR(kFigure2));
  EXPECT_TRUE(analysis.ok());
  NamedBridges out{std::move(*analysis)};
  const Rule& r = out.analysis.rule().rule();
  const auto& bridges = out.analysis.commutativity_bridges();
  for (std::size_t i = 0; i < bridges.size(); ++i) {
    for (int ai : bridges[i].atom_indices) {
      const std::string& pred = r.body()[static_cast<std::size_t>(ai)].predicate;
      if (pred == "rr") out.rr = static_cast<int>(i);
      if (pred == "q") out.qs = static_cast<int>(i);
      if (pred == "t") out.t = static_cast<int>(i);
    }
  }
  return out;
}

TEST(NarrowRuleTest, Figure2NarrowRules) {
  NamedBridges nb = Figure2Bridges();
  ASSERT_GE(nb.rr, 0);
  ASSERT_GE(nb.qs, 0);
  ASSERT_GE(nb.t, 0);

  // Paper: P(u,w) :- P(u,u), R(w).
  auto narrow_rr = MakeNarrowRule(
      nb.analysis, nb.analysis.commutativity_bridges()[static_cast<std::size_t>(nb.rr)]);
  ASSERT_TRUE(narrow_rr.ok()) << narrow_rr.status();
  auto expected_rr = ParseLinearRule("p#0_1(U,W) :- p#0_1(U,U), rr(W).");
  ASSERT_TRUE(expected_rr.ok());
  EXPECT_TRUE(AreEquivalent(narrow_rr->rule(), expected_rr->rule()))
      << ToString(*narrow_rr);

  // Paper: P(u,x,y) :- P(u,u,y), Q(u,x,y), S(x).
  auto narrow_qs = MakeNarrowRule(
      nb.analysis, nb.analysis.commutativity_bridges()[static_cast<std::size_t>(nb.qs)]);
  ASSERT_TRUE(narrow_qs.ok());
  auto expected_qs =
      ParseLinearRule("p#0_2_3(U,X,Y) :- p#0_2_3(U,U,Y), q(U,X,Y), s(X).");
  ASSERT_TRUE(expected_qs.ok());
  EXPECT_TRUE(AreEquivalent(narrow_qs->rule(), expected_qs->rule()))
      << ToString(*narrow_qs);

  // Paper: P(y,z) :- P(y,y), T(z).
  auto narrow_t = MakeNarrowRule(
      nb.analysis, nb.analysis.commutativity_bridges()[static_cast<std::size_t>(nb.t)]);
  ASSERT_TRUE(narrow_t.ok());
  auto expected_t = ParseLinearRule("p#3_4(Y,Z) :- p#3_4(Y,Y), t(Z).");
  ASSERT_TRUE(expected_t.ok());
  EXPECT_TRUE(AreEquivalent(narrow_t->rule(), expected_t->rule()))
      << ToString(*narrow_t);
}

TEST(WideRuleTest, Figure2WideRules) {
  NamedBridges nb = Figure2Bridges();
  // Paper: P(u,w,x,y,z) :- P(u,u,x,y,z)?? — no: wide keeps bridge positions'
  // antecedent entries and makes the rest free 1-persistent:
  // rr-bridge: P(u,w,x,y,z) :- P(u,u,x,y,z), R(w).
  auto wide_rr = MakeWideRule(
      nb.analysis, nb.analysis.commutativity_bridges()[static_cast<std::size_t>(nb.rr)]);
  ASSERT_TRUE(wide_rr.ok());
  auto expected_rr =
      ParseLinearRule("p(U,W,X,Y,Z) :- p(U,U,X,Y,Z), rr(W).");
  ASSERT_TRUE(expected_rr.ok());
  EXPECT_TRUE(AreEquivalent(wide_rr->rule(), expected_rr->rule()))
      << ToString(*wide_rr);

  // t-bridge: P(u,w,x,y,z) :- P(u,w,x,y,y), T(z).
  auto wide_t = MakeWideRule(
      nb.analysis, nb.analysis.commutativity_bridges()[static_cast<std::size_t>(nb.t)]);
  ASSERT_TRUE(wide_t.ok());
  auto expected_t = ParseLinearRule("p(U,W,X,Y,Z) :- p(U,W,X,Y,Y), t(Z).");
  ASSERT_TRUE(expected_t.ok());
  EXPECT_TRUE(AreEquivalent(wide_t->rule(), expected_t->rule()))
      << ToString(*wide_t);
}

TEST(ComplementTest, ProductRecoversOperator) {
  // Lemma 6.5 on Figure 7's rule: A = B·C for the rr-bridge.
  LinearRule a_rule =
      LR("p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
  auto analysis = RuleAnalysis::Compute(a_rule);
  ASSERT_TRUE(analysis.ok());
  int rr_bridge = -1;
  for (std::size_t i = 0; i < analysis->redundancy_bridges().size(); ++i) {
    for (int ai : analysis->redundancy_bridges()[i].atom_indices) {
      if (a_rule.rule().body()[static_cast<std::size_t>(ai)].predicate ==
          "rr") {
        rr_bridge = static_cast<int>(i);
      }
    }
  }
  ASSERT_GE(rr_bridge, 0);
  const Bridge& bridge =
      analysis->redundancy_bridges()[static_cast<std::size_t>(rr_bridge)];

  auto c = MakeWideRule(*analysis, bridge);
  ASSERT_TRUE(c.ok());
  // Paper (Example 6.2): C: P(w,x,y,z) :- P(x,w,x,z), R(x,y).
  auto expected_c = ParseLinearRule("p(W,X,Y,Z) :- p(X,W,X,Z), rr(X,Y).");
  ASSERT_TRUE(expected_c.ok());
  EXPECT_TRUE(AreEquivalent(c->rule(), expected_c->rule())) << ToString(*c);

  auto b = MakeComplementRule(*analysis, {&bridge});
  ASSERT_TRUE(b.ok());
  auto product = Compose(*b, *c);
  ASSERT_TRUE(product.ok());
  EXPECT_TRUE(AreEquivalent(product->rule(), a_rule.rule()))
      << "B = " << ToString(*b) << "\nBC = " << ToString(*product);
}

TEST(NarrowRuleTest, PositionEncodingDistinguishesProjections) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto analysis = RuleAnalysis::Compute(r);
  ASSERT_TRUE(analysis.ok());
  const auto& bridges = analysis->commutativity_bridges();
  ASSERT_EQ(bridges.size(), 2u);
  auto n0 = MakeNarrowRule(*analysis, bridges[0]);
  auto n1 = MakeNarrowRule(*analysis, bridges[1]);
  ASSERT_TRUE(n0.ok());
  ASSERT_TRUE(n1.ok());
  // Different projected positions → different head predicates.
  EXPECT_NE(n0->head().predicate, n1->head().predicate);
}

}  // namespace
}  // namespace linrec
