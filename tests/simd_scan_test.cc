// WhereEquals SIMD/scalar parity: the vectorized columnar scan must be an
// exact drop-in for the scalar reference kernel — same rows, same order,
// same counters — on every edge shape the block loop can hit (empty input,
// arity 1, tails shorter than a vector, all-match, no-match) and on random
// workloads. Also covers the blockwise Δ constant filter in the join
// kernel, which shares the same equality-mask primitive.

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "common/simd.h"
#include "datalog/parser.h"
#include "eval/apply.h"
#include "eval/index_cache.h"
#include "eval/stats.h"
#include "storage/relation.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

/// Asserts the two relations hold identical rows in identical order.
void ExpectIdentical(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.arity(), b.arity());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    const Value* ra = a.RowData(static_cast<RowId>(r));
    const Value* rb = b.RowData(static_cast<RowId>(r));
    for (std::size_t c = 0; c < a.arity(); ++c) {
      ASSERT_EQ(ra[c], rb[c]) << "row " << r << " col " << c;
    }
  }
}

/// Runs both kernels over `rel` and checks they agree with each other and
/// with the expected match count; returns the result for further checks.
Relation CheckParity(const Relation& rel, int column, Value v,
                     std::size_t expected_matches) {
  ScanCounters simd_c;
  ScanCounters scalar_c;
  Relation simd_out = rel.WhereEquals(column, v, &simd_c);
  Relation scalar_out = rel.WhereEqualsScalar(column, v, &scalar_c);
  ExpectIdentical(simd_out, scalar_out);
  EXPECT_EQ(simd_out.size(), expected_matches);

  // The counters are defined identically in SIMD and scalar builds: rows
  // scanned, ceil(rows / kLanes) blocks, one hit per matching row.
  EXPECT_EQ(simd_c.rows, rel.size());
  EXPECT_EQ(scalar_c.rows, rel.size());
  EXPECT_EQ(simd_c.blocks, (rel.size() + simd::kLanes - 1) / simd::kLanes);
  EXPECT_EQ(scalar_c.blocks, simd_c.blocks);
  EXPECT_EQ(simd_c.hits, expected_matches);
  EXPECT_EQ(scalar_c.hits, expected_matches);
  return simd_out;
}

TEST(SimdScanTest, EmptyRelation) {
  Relation rel(2);
  CheckParity(rel, 0, 42, 0);
}

TEST(SimdScanTest, ArityOne) {
  // Arity 1: the column is the whole row, so dedup leaves at most one
  // match — the interesting part is the stride-1 block loop and its tail.
  Relation rel(1);
  for (int i = 0; i < 37; ++i) rel.Insert({i});
  CheckParity(rel, 0, 17, 1);
  CheckParity(rel, 0, 100, 0);
}

TEST(SimdScanTest, TailShorterThanVector) {
  for (int rows : {1, 2, 3, 7, 9, 13}) {
    Relation rel(2);
    for (int i = 0; i < rows; ++i) rel.Insert({i % 2, i});
    CheckParity(rel, 0, 0, static_cast<std::size_t>((rows + 1) / 2));
  }
}

TEST(SimdScanTest, AllMatch) {
  Relation rel(3);
  for (int i = 0; i < 53; ++i) rel.Insert({7, i, i * 2});
  Relation out = CheckParity(rel, 0, 7, 53);
  ExpectIdentical(out, rel);
}

TEST(SimdScanTest, NoMatch) {
  Relation rel(2);
  for (int i = 0; i < 64; ++i) rel.Insert({i, i});
  CheckParity(rel, 1, 1000, 0);
}

TEST(SimdScanTest, RandomWorkloadsAreByteIdentical) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t arity = 1 + rng() % 5;
    const std::size_t rows = rng() % 201;
    Relation rel(arity);
    std::vector<Value> row(arity);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < arity; ++c) {
        row[c] = static_cast<Value>(rng() % 8);  // small domain: duplicates
      }
      rel.InsertRow(row.data());
    }
    const int column = static_cast<int>(rng() % arity);
    const Value needle = static_cast<Value>(rng() % 8);

    std::size_t expected = 0;
    for (std::size_t r = 0; r < rel.size(); ++r) {
      expected += rel.RowData(static_cast<RowId>(r))[column] == needle;
    }
    CheckParity(rel, column, needle, expected);
  }
}

// The join kernel's partitioned first step checks constant key positions
// with the same per-block equality mask. A rule whose recursive atom pins
// a constant exercises it end to end: only Δ rows carrying the constant
// may produce derivations.
TEST(SimdScanTest, ConstantFilteredDeltaPartitionMatchesReference) {
  auto rule = ParseLinearRule("p(0,Y) :- p(0,Z), e(Z,Y).");
  ASSERT_TRUE(rule.ok());

  const int n = 200;
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(n);
  Relation delta(2);
  for (int i = 0; i < n; ++i) delta.Insert({i % 7, i});

  ApplyOptions options;
  options.overrides[rule->recursive_atom_index()] = &delta;
  options.first_atom = rule->recursive_atom_index();
  Result<CompiledRule> compiled = CompileRule(rule->rule(), db, options);
  ASSERT_TRUE(compiled.ok());

  IndexCache cache;
  ClosureStats stats;
  Relation out(2);
  Status s =
      compiled->RunPartition(delta.View(0, delta.size()), &out, &stats, &cache);
  ASSERT_TRUE(s.ok()) << s;

  Relation expected(2);
  std::size_t filter_hits = 0;
  for (std::size_t r = 0; r < delta.size(); ++r) {
    const Value* row = delta.RowData(static_cast<RowId>(r));
    if (row[0] != 0) continue;
    ++filter_hits;
    if (row[1] + 1 < n) expected.Insert({0, row[1] + 1});
  }
  ExpectIdentical(out, expected);

  // The blockwise filter actually ran and its lane accounting is exact:
  // every Δ block was mask-checked once, and the lane hits are exactly the
  // rows that carry the constant.
  EXPECT_EQ(stats.simd_blocks,
            (delta.size() + simd::kLanes - 1) / simd::kLanes);
  EXPECT_EQ(stats.simd_lane_hits, filter_hits);
}

}  // namespace
}  // namespace linrec
