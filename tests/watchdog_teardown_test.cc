// Teardown-discipline tests for the watchdog and the server it lives in:
// a Server must be destructible while its watchdog scan thread is
// mid-sweep, immediately after a session's query was force-cancelled, and
// when the watchdog never started at all. The destructor contract under
// test (see src/server/server.h and watchdog.h): teardown publishes stop_
// and takes the thread handle under the mutex, then joins OUTSIDE it — a
// destructor racing an in-flight sweep blocks behind the sweep's lock,
// never deadlocks against it, and never frees state the sweep still
// reads.
//
// Determinism: interval_ms = 0 keeps the scan thread sweeping
// continuously (WaitFor times out immediately), so "destructor runs while
// a sweep is in flight" is the overwhelmingly probable interleaving on
// every run, not a lucky schedule; the cancels() counter is the
// observable that proves the mid-cancel happened before teardown began.

#include "server/watchdog.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/strings.h"
#include "server/server.h"

namespace linrec {
namespace {

std::string ChainProgram(int n) {
  std::string text;
  for (int i = 1; i < n; ++i) {
    text += StrCat("edge(", i, ", ", i + 1, ").\n");
  }
  text +=
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";
  return text;
}

void Load(Server& server, Session& session, const std::string& program) {
  std::vector<std::string> out;
  server.HandleLine(session, "LOAD", &out);
  for (std::size_t begin = 0; begin <= program.size();) {
    std::size_t end = program.find('\n', begin);
    if (end == std::string::npos) end = program.size();
    server.HandleLine(session, program.substr(begin, end - begin), &out);
    begin = end + 1;
  }
  server.HandleLine(session, "END", &out);
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.front().rfind("OK loaded", 0), 0u) << out.front();
}

TEST(WatchdogTeardownTest, DestructorJoinsMidSweepScanThread) {
  // interval 0: the scan thread never parks — every destructor below runs
  // against an actively sweeping (or about-to-sweep) thread.
  Watchdog watchdog(/*interval_ms=*/0);
  CancellationToken token;
  const std::size_t handle = watchdog.Watch(&token);
  // Give the busy sweep time to be provably running.
  while (watchdog.watched() != 1) {
    std::this_thread::yield();
  }
  watchdog.Unwatch(handle);
  // Scope exit: ~Watchdog races the busy sweep. Completing (and ASan/TSan
  // silence in those CI builds) is the assertion.
}

TEST(WatchdogTeardownTest, DestructorWithoutStartedThreadIsTrivial) {
  // The thread starts lazily with the first Watch; a never-used watchdog
  // must tear down without touching a thread handle.
  Watchdog watchdog(/*interval_ms=*/0);
  EXPECT_EQ(watchdog.watched(), 0u);
}

TEST(WatchdogTeardownTest, ServerDiesWhileSweepingAfterMidCancel) {
  for (int iteration = 0; iteration < 8; ++iteration) {
    ServerLimits limits;
    limits.watchdog_interval_ms = 0;  // busy sweep
    auto server = std::make_unique<Server>(limits);
    auto session = server->NewSession();
    Load(*server, *session, ChainProgram(64));

    // A deadline-armed query the watchdog force-expires: timeout 0 arms an
    // already-blown token, and the busy sweep fires it (the round-boundary
    // clock check may win the race, but the sweep keeps running either
    // way). Driven from a second thread so the cancel unwinds on a
    // different thread than the one destroying the server.
    std::vector<std::string> replies;
    std::thread query([&] {
      std::vector<std::string> out;
      server->HandleLine(*session, "SET timeout_ms 0", &out);
      server->HandleLine(*session, "?- tc(X, Y).", &out);
      replies = std::move(out);
    });

    query.join();
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_EQ(replies[1].rfind("ERR DeadlineExceeded", 0), 0u)
        << replies[1];

    // The session finished (Unwatch returned, evaluation unwound) but the
    // scan thread is still busy-sweeping an empty table. Destroy the
    // session, then the Server: ~Server must join the sweep, not race it.
    session.reset();
    server.reset();
  }
}

TEST(WatchdogTeardownTest, ServerDiesImmediatelyAfterWatchdogStarts) {
  // The tightest window: the scan thread has just been started by the
  // query's Watch when the server goes down. Several iterations walk the
  // destructor across the thread's startup phase.
  for (int iteration = 0; iteration < 8; ++iteration) {
    ServerLimits limits;
    limits.watchdog_interval_ms = 0;
    auto server = std::make_unique<Server>(limits);
    auto session = server->NewSession();
    Load(*server, *session, ChainProgram(16));

    std::vector<std::string> out;
    server->HandleLine(*session, "SET timeout_ms 0", &out);
    server->HandleLine(*session, "?- tc(X, Y).", &out);  // starts the thread

    session.reset();
    server.reset();  // destructor vs. freshly-started busy sweep
  }
}

}  // namespace
}  // namespace linrec
