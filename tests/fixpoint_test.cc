#include "eval/fixpoint.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule TC() {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  EXPECT_TRUE(lr.ok());
  return *lr;
}

TEST(SemiNaiveTest, TransitiveClosureOfChain) {
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(5);  // 0->1->2->3->4
  Relation q(2);
  for (int i = 0; i < 5; ++i) q.Insert({i, i});  // identity seed

  ClosureStats stats;
  Result<Relation> out = SemiNaiveClosure({TC()}, db, q, &stats);
  ASSERT_TRUE(out.ok()) << out.status();
  // All pairs (i,j) with i <= j: 15.
  EXPECT_EQ(out->size(), 15u);
  EXPECT_TRUE(out->Contains({0, 4}));
  EXPECT_FALSE(out->Contains({4, 0}));
  EXPECT_EQ(stats.result_size, 15u);
  EXPECT_GE(stats.iterations, 4u);
}

TEST(SemiNaiveTest, CycleTerminates) {
  Database db;
  db.GetOrCreate("e", 2) = CycleGraph(4);
  Relation q(2);
  q.Insert({0, 0});
  Result<Relation> out = SemiNaiveClosure({TC()}, db, q);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);  // (0, j) for all j
}

TEST(SemiNaiveTest, EmptySeedGivesEmptyResult) {
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(5);
  Relation q(2);
  ClosureStats stats;
  Result<Relation> out = SemiNaiveClosure({TC()}, db, q, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(SemiNaiveTest, MultipleRules) {
  // Two operators: forward and backward edges.
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto r2 = ParseLinearRule("p(X,Y) :- p(X,Z), f(Z,Y).");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  Database db;
  db.GetOrCreate("e", 2).Insert({0, 1});
  db.GetOrCreate("f", 2).Insert({1, 2});
  Relation q(2);
  q.Insert({9, 0});
  Result<Relation> out = SemiNaiveClosure({*r1, *r2}, db, q);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Contains({9, 1}));
  EXPECT_TRUE(out->Contains({9, 2}));
  EXPECT_EQ(out->size(), 3u);
}

TEST(NaiveMatchesSemiNaive, OnRandomGraph) {
  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(30, 60, 7);
  Relation q(2);
  for (int i = 0; i < 30; ++i) q.Insert({i, i});
  ClosureStats naive_stats;
  ClosureStats semi_stats;
  Result<Relation> naive = NaiveClosure({TC()}, db, q, &naive_stats);
  Result<Relation> semi = SemiNaiveClosure({TC()}, db, q, &semi_stats);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(*naive, *semi);
  // Naive rederives everything each round.
  EXPECT_GE(naive_stats.derivations, semi_stats.derivations);
}

TEST(SemiNaiveTest, DuplicateAccounting) {
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(4);
  Relation q(2);
  for (int i = 0; i < 4; ++i) q.Insert({i, i});
  ClosureStats stats;
  Result<Relation> out = SemiNaiveClosure({TC()}, db, q, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.duplicates,
            stats.derivations - (stats.result_size - q.size()));
}

TEST(SemiNaiveTest, MismatchedArityRejected) {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  ASSERT_TRUE(lr.ok());
  Database db;
  Relation q(3);
  q.Insert({1, 2, 3});
  EXPECT_FALSE(SemiNaiveClosure({*lr}, db, q).ok());
}

TEST(SemiNaiveTest, MixedHeadPredicatesRejected) {
  auto r1 = ParseLinearRule("p(X) :- p(X), a(X).");
  auto r2 = ParseLinearRule("r(X) :- r(X), a(X).");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  Database db;
  Relation q(1);
  q.Insert({1});
  EXPECT_FALSE(SemiNaiveClosure({*r1, *r2}, db, q).ok());
}

TEST(PowerSumTest, CollectsBoundedPowers) {
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(10);
  Relation q(2);
  q.Insert({0, 0});
  // Σ_{m=0}^{3} A^m q = {(0,0),(0,1),(0,2),(0,3)}.
  Result<Relation> out = PowerSum({TC()}, db, q, 3);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);
  EXPECT_TRUE(out->Contains({0, 3}));
  EXPECT_FALSE(out->Contains({0, 4}));
}

TEST(PowerSumTest, ZeroPowerIsIdentity) {
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(3);
  Relation q(2);
  q.Insert({0, 0});
  Result<Relation> out = PowerSum({TC()}, db, q, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, q);
}

TEST(PowerSumTest, StopsEarlyWhenPowersDie) {
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(3);  // 0->1->2
  Relation q(2);
  q.Insert({0, 0});
  Result<Relation> out = PowerSum({TC()}, db, q, 100);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

}  // namespace
}  // namespace linrec
