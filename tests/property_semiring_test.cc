// The closed semi-ring laws of Section 2, verified semantically on random
// operators and databases: associativity of + and *, distributivity,
// identity behaviour, and Theorem 2.1's fixpoint characterization of A*.

#include <gtest/gtest.h>

#include <random>

#include "cq/compose.h"
#include "cq/homomorphism.h"
#include "datalog/printer.h"
#include "eval/apply.h"
#include "eval/fixpoint.h"
#include "workload/graphs.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

struct Fixture {
  LinearRule a, b, c;
  Database db;
  Relation q{2};
};

Fixture MakeFixture(std::uint32_t seed) {
  auto a = RandomLinearRule(2, 1, seed * 11 + 1);
  auto b = RandomLinearRule(2, 1, seed * 11 + 2);
  auto c = RandomLinearRule(2, 1, seed * 11 + 3);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(c.ok());
  Fixture f{*a, *b, *c, {}, Relation(2)};
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, 7);
  for (const LinearRule* r : {&f.a, &f.b, &f.c}) {
    for (const Atom& atom : r->rule().body()) {
      if (atom.predicate == "p") continue;
      Relation& rel = f.db.GetOrCreate(atom.predicate, atom.arity());
      for (int i = 0; i < 20; ++i) {
        std::vector<Value> values;
        for (std::size_t j = 0; j < atom.arity(); ++j) {
          values.push_back(pick(rng));
        }
        rel.Insert(Tuple(std::move(values)));
      }
    }
  }
  for (int i = 0; i < 5; ++i) f.q.Insert({pick(rng), pick(rng)});
  return f;
}

class SemiringProperty : public ::testing::TestWithParam<int> {};

TEST_P(SemiringProperty, MultiplicationAssociates) {
  Fixture f = MakeFixture(static_cast<std::uint32_t>(GetParam()));
  // (AB)C ≡ A(BC) as conjunctive queries.
  auto ab = Compose(f.a, f.b);
  ASSERT_TRUE(ab.ok());
  auto ab_c = Compose(*ab, f.c);
  ASSERT_TRUE(ab_c.ok());
  auto bc = Compose(f.b, f.c);
  ASSERT_TRUE(bc.ok());
  auto a_bc = Compose(f.a, *bc);
  ASSERT_TRUE(a_bc.ok());
  EXPECT_TRUE(AreEquivalent(ab_c->rule(), a_bc->rule()));
}

TEST_P(SemiringProperty, AdditionCommutesAndAssociates) {
  Fixture f = MakeFixture(static_cast<std::uint32_t>(GetParam()));
  // (A + B)q is a set union — order cannot matter.
  auto ab = ApplySum({f.a, f.b}, f.db, f.q);
  auto ba = ApplySum({f.b, f.a}, f.db, f.q);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(*ab, *ba);
  auto abc = ApplySum({f.a, f.b, f.c}, f.db, f.q);
  ASSERT_TRUE(abc.ok());
  Relation manual = *ab;
  auto cq = ApplySum({f.c}, f.db, f.q);
  ASSERT_TRUE(cq.ok());
  manual.UnionWith(*cq);
  EXPECT_EQ(*abc, manual);
}

TEST_P(SemiringProperty, ProductDistributesOverSum) {
  Fixture f = MakeFixture(static_cast<std::uint32_t>(GetParam()));
  // A(B + C)q == (AB + AC)q.
  auto b_plus_c = ApplySum({f.b, f.c}, f.db, f.q);
  ASSERT_TRUE(b_plus_c.ok());
  auto lhs = ApplySum({f.a}, f.db, *b_plus_c);
  ASSERT_TRUE(lhs.ok());

  auto ab = Compose(f.a, f.b);
  auto ac = Compose(f.a, f.c);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ac.ok());
  auto rhs = ApplySum({*ab, *ac}, f.db, f.q);
  ASSERT_TRUE(rhs.ok());
  EXPECT_EQ(*lhs, *rhs);
}

TEST_P(SemiringProperty, ClosureIsFixpoint) {
  Fixture f = MakeFixture(static_cast<std::uint32_t>(GetParam()));
  // Theorem 2.1: P = A*q satisfies P = AP ∪ q and is minimal.
  auto closure = SemiNaiveClosure({f.a}, f.db, f.q);
  ASSERT_TRUE(closure.ok());
  auto ap = ApplySum({f.a}, f.db, *closure);
  ASSERT_TRUE(ap.ok());
  Relation rhs = *ap;
  rhs.UnionWith(f.q);
  EXPECT_EQ(*closure, rhs) << "1 + A·A* = A*";
}

TEST_P(SemiringProperty, ClosureAbsorbsPowers) {
  Fixture f = MakeFixture(static_cast<std::uint32_t>(GetParam()));
  // A^k q ⊆ A* q for all k (checked for k ≤ 3).
  auto closure = SemiNaiveClosure({f.a}, f.db, f.q);
  ASSERT_TRUE(closure.ok());
  Relation power = f.q;
  for (int k = 1; k <= 3; ++k) {
    auto next = ApplySum({f.a}, f.db, power);
    ASSERT_TRUE(next.ok());
    power = std::move(next).value();
    for (TupleView t : power) {
      EXPECT_TRUE(closure->Contains(t)) << "A^" << k << " escapes A*";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiringProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace linrec
