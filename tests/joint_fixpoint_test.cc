// Joint multi-relation fixpoint: correctness against hand-computed
// closures and the naive reference, determinism across worker counts
// (with real threads forced, so single-core CI still exercises the
// parallel round), and validation of malformed joint rules.

#include "eval/joint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"
#include "datalog/parser.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

void ForceRealThreads() { WorkerPool::OverrideThreadCapForTesting(16); }
void RestoreThreadCap() { WorkerPool::OverrideThreadCapForTesting(0); }

TEST(JointFixpointTest, EvenOddChainClosure) {
  auto w = MakeEvenOddChain(10);
  ASSERT_TRUE(w.ok()) << w.status();
  ClosureStats stats;
  auto closed = JointSemiNaiveClosure(w->members, w->rules, w->db, w->seeds, &stats);
  ASSERT_TRUE(closed.ok()) << closed.status();
  ASSERT_EQ(closed->size(), 2u);
  const Relation& even = (*closed)[0];
  const Relation& odd = (*closed)[1];
  EXPECT_EQ(even.size(), 5u);
  EXPECT_EQ(odd.size(), 5u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(even.Contains({i}), i % 2 == 0) << i;
    EXPECT_EQ(odd.Contains({i}), i % 2 == 1) << i;
  }
  // The Δs alternate between the members: one round per chain node.
  EXPECT_GE(stats.iterations, 9u);
  EXPECT_EQ(stats.result_size, 10u);
}

TEST(JointFixpointTest, SemiNaiveMatchesNaiveReference) {
  auto even_odd = MakeEvenOddChain(16);
  ASSERT_TRUE(even_odd.ok());
  auto alternating = MakeAlternatingReachability(40, 90, /*seed=*/7);
  ASSERT_TRUE(alternating.ok());
  for (const JointWorkload* w : {&*even_odd, &*alternating}) {
    auto semi = JointSemiNaiveClosure(w->members, w->rules, w->db, w->seeds);
    auto naive = JointNaiveClosure(w->members, w->rules, w->db, w->seeds);
    ASSERT_TRUE(semi.ok()) << semi.status();
    ASSERT_TRUE(naive.ok()) << naive.status();
    ASSERT_EQ(semi->size(), naive->size());
    for (std::size_t m = 0; m < semi->size(); ++m) {
      EXPECT_EQ((*semi)[m], (*naive)[m]) << "member " << m;
    }
    // Naive re-derives freely; the sets must still agree exactly.
    EXPECT_FALSE((*semi)[0].empty());
  }
}

TEST(JointFixpointTest, DeterministicAcrossWorkerCounts) {
  // Sized so rounds cross the serial-fallback threshold: the closure over
  // a dense 2-colored graph reaches thousands of Δ rows per round.
  ForceRealThreads();
  auto w = MakeAlternatingReachability(120, 480, /*seed=*/21);
  ASSERT_TRUE(w.ok()) << w.status();
  auto reference = JointSemiNaiveClosure(w->members, w->rules, w->db, w->seeds,
                                         /*stats=*/nullptr,
                                         /*cache=*/nullptr, /*workers=*/1);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_GT((*reference)[0].size() + (*reference)[1].size(), 1000u);
  for (int workers : {2, 8}) {
    auto out = JointSemiNaiveClosure(w->members, w->rules, w->db, w->seeds,
                                     /*stats=*/nullptr, /*cache=*/nullptr,
                                     workers);
    ASSERT_TRUE(out.ok()) << out.status();
    for (std::size_t m = 0; m < reference->size(); ++m) {
      EXPECT_EQ((*out)[m].Sorted(), (*reference)[m].Sorted())
          << "member " << m << " differs at " << workers << " workers";
    }
  }
  RestoreThreadCap();
}

TEST(JointFixpointTest, ParallelMatchesNaiveReference) {
  ForceRealThreads();
  auto w = MakeAlternatingReachability(60, 200, /*seed=*/3);
  ASSERT_TRUE(w.ok());
  auto naive = JointNaiveClosure(w->members, w->rules, w->db, w->seeds);
  ASSERT_TRUE(naive.ok());
  auto parallel = JointSemiNaiveClosure(w->members, w->rules, w->db, w->seeds,
                                        /*stats=*/nullptr,
                                        /*cache=*/nullptr, /*workers=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  for (std::size_t m = 0; m < naive->size(); ++m) {
    EXPECT_EQ((*parallel)[m], (*naive)[m]) << "member " << m;
  }
  RestoreThreadCap();
}

TEST(JointFixpointTest, MemberWithNoConsumingRuleTerminates) {
  // Member 1's Δ feeds nothing: the loop must still reach fixpoint.
  auto w = MakeEvenOddChain(6);
  ASSERT_TRUE(w.ok());
  std::vector<JointRule> only_even_rule{w->rules[0]};  // even :- odd, succ
  auto closed = JointSemiNaiveClosure(w->members, only_even_rule, w->db, w->seeds);
  ASSERT_TRUE(closed.ok()) << closed.status();
  EXPECT_EQ((*closed)[0].size(), 1u);  // seed only: odd never grows
  EXPECT_TRUE((*closed)[1].empty());
}

TEST(JointFixpointTest, EmptySeedsYieldEmptyClosure) {
  auto w = MakeEvenOddChain(6);
  ASSERT_TRUE(w.ok());
  std::vector<Relation> empty_seeds;
  empty_seeds.emplace_back(1);
  empty_seeds.emplace_back(1);
  auto closed = JointSemiNaiveClosure(w->members, w->rules, w->db, empty_seeds);
  ASSERT_TRUE(closed.ok()) << closed.status();
  EXPECT_TRUE((*closed)[0].empty());
  EXPECT_TRUE((*closed)[1].empty());
}

TEST(JointFixpointTest, ValidationRejectsMalformedRules) {
  auto w = MakeEvenOddChain(6);
  ASSERT_TRUE(w.ok());

  {
    std::vector<JointRule> bad = w->rules;
    bad[0].head_member = 5;
    auto out = JointSemiNaiveClosure(w->members, bad, w->db, w->seeds);
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::vector<JointRule> bad = w->rules;
    bad[0].recursive_member = -1;
    EXPECT_FALSE(JointSemiNaiveClosure(w->members, bad, w->db, w->seeds).ok());
  }
  {
    std::vector<JointRule> bad = w->rules;
    bad[0].recursive_atom = 7;
    EXPECT_FALSE(JointSemiNaiveClosure(w->members, bad, w->db, w->seeds).ok());
  }
  {
    // Seed arity mismatch against the rule heads.
    std::vector<Relation> bad_seeds;
    bad_seeds.emplace_back(2);
    bad_seeds.emplace_back(1);
    EXPECT_FALSE(JointSemiNaiveClosure(w->members, w->rules, w->db, bad_seeds).ok());
  }
  {
    // Seed count must match member count.
    EXPECT_FALSE(JointSemiNaiveClosure(w->members, w->rules, w->db, {}).ok());
  }
  {
    // No members at all.
    EXPECT_FALSE(JointSemiNaiveClosure({}, w->rules, w->db, w->seeds).ok());
  }
  {
    // A second member atom in a body: the closure boundary itself must
    // reject it (the extra atom would resolve against db as an empty
    // relation and silently compute a wrong fixpoint).
    auto bad_rule = ParseRule("even(X) :- odd(Y), even(Y), succ(Y,X).");
    ASSERT_TRUE(bad_rule.ok());
    std::vector<JointRule> rules = w->rules;
    rules.push_back(JointRule{*bad_rule, 0, 0, 1});
    auto out = JointSemiNaiveClosure(w->members, rules, w->db, w->seeds);
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.status().message().find("exactly one member atom"),
              std::string::npos)
        << out.status().message();
  }
  {
    // Inconsistent member naming across rules (member 1 called both
    // "odd" and "other") is a caller error, not a silent misread.
    auto odd_rule = ParseRule("other(X) :- even(Y), succ(Y,X).");
    ASSERT_TRUE(odd_rule.ok());
    std::vector<JointRule> rules = w->rules;
    rules[1].rule = *odd_rule;  // head_member still 1, named "odd" by rules[0]
    EXPECT_FALSE(JointSemiNaiveClosure(w->members, rules, w->db, w->seeds).ok());
  }
}

TEST(JointFixpointTest, AlternatingReachabilityRejectsImpossibleEdgeCount) {
  // 2 nodes admit only 2 distinct non-self edges; asking for 3 must fail
  // up front instead of spinning in the dedup'd insert loop.
  auto w = MakeAlternatingReachability(2, 3, /*seed=*/1);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kInvalidArgument);
}

TEST(JointFixpointTest, StatsCountDerivationsAndRounds) {
  auto w = MakeEvenOddChain(12);
  ASSERT_TRUE(w.ok());
  ClosureStats stats;
  auto closed = JointSemiNaiveClosure(w->members, w->rules, w->db, w->seeds, &stats);
  ASSERT_TRUE(closed.ok());
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.derivations, 0u);
  EXPECT_EQ(stats.result_size, 12u);
  EXPECT_GT(stats.millis, 0.0);
}

}  // namespace
}  // namespace linrec
