#include "algebra/expr.h"

#include <gtest/gtest.h>

#include "algebra/closure.h"
#include "cq/compose.h"
#include "datalog/parser.h"
#include "eval/apply.h"
#include "workload/databases.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

struct SgFixture {
  OpExpr down = OpExpr::Leaf(LR("p(X,Y) :- p(X,V), down(V,Y)."), "down");
  OpExpr up = OpExpr::Leaf(LR("p(X,Y) :- p(U,Y), up(X,U)."), "up");
  SameGenerationWorkload w = MakeSameGeneration(4, 6, 2, 5);
};

TEST(ExprTest, LeafEvaluatesLikeApplySum) {
  SgFixture f;
  auto via_expr = f.down.Evaluate(f.w.db, f.w.q);
  auto direct = ApplySum({f.down.rule()}, f.w.db, f.w.q);
  ASSERT_TRUE(via_expr.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*via_expr, *direct);
}

TEST(ExprTest, SumIsUnion) {
  SgFixture f;
  OpExpr sum = OpExpr::Sum({f.down, f.up});
  auto via_expr = sum.Evaluate(f.w.db, f.w.q);
  ASSERT_TRUE(via_expr.ok());
  auto direct = ApplySum({f.down.rule(), f.up.rule()}, f.w.db, f.w.q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*via_expr, *direct);
}

TEST(ExprTest, ProductAppliesRightmostFirst) {
  SgFixture f;
  OpExpr product = OpExpr::Product({f.down, f.up});
  auto via_expr = product.Evaluate(f.w.db, f.w.q);
  ASSERT_TRUE(via_expr.ok());
  auto up_first = ApplySum({f.up.rule()}, f.w.db, f.w.q);
  ASSERT_TRUE(up_first.ok());
  auto then_down = ApplySum({f.down.rule()}, f.w.db, *up_first);
  ASSERT_TRUE(then_down.ok());
  EXPECT_EQ(*via_expr, *then_down);
}

TEST(ExprTest, ClosureMatchesSemiNaive) {
  SgFixture f;
  OpExpr closure = OpExpr::Closure(OpExpr::Sum({f.down, f.up}));
  auto via_expr = closure.Evaluate(f.w.db, f.w.q);
  ASSERT_TRUE(via_expr.ok());
  auto direct = DirectClosure({f.down.rule(), f.up.rule()}, f.w.db, f.w.q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*via_expr, *direct);
}

TEST(ExprTest, ClosureOfProductEvaluates) {
  // (down·up)* — the same-generation operator as a product closure.
  SgFixture f;
  OpExpr closure = OpExpr::Closure(OpExpr::Product({f.up, f.down}));
  auto out = closure.Evaluate(f.w.db, f.w.q);
  ASSERT_TRUE(out.ok()) << out.status();
  // Equivalent to closing the composed rule.
  auto composed = Compose(f.up.rule(), f.down.rule());
  ASSERT_TRUE(composed.ok());
  auto direct = DirectClosure({*composed}, f.w.db, f.w.q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*out, *direct);
}

TEST(ExprTest, AsSingleRuleComposesProducts) {
  SgFixture f;
  OpExpr product = OpExpr::Product({f.up, f.down});
  auto single = product.AsSingleRule();
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(single->has_value());
  auto expected = Compose(f.up.rule(), f.down.rule());
  ASSERT_TRUE(expected.ok());
  // Same operator: evaluate both on the workload.
  SgFixture g;
  auto a = ApplySum({**single}, g.w.db, g.w.q);
  auto b = ApplySum({*expected}, g.w.db, g.w.q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ExprTest, AsSingleRuleRejectsSumsAndClosures) {
  SgFixture f;
  auto sum = OpExpr::Sum({f.down, f.up}).AsSingleRule();
  ASSERT_TRUE(sum.ok());
  EXPECT_FALSE(sum->has_value());
  auto closure = OpExpr::Closure(f.down).AsSingleRule();
  ASSERT_TRUE(closure.ok());
  EXPECT_FALSE(closure->has_value());
}

TEST(ExprTest, DecomposeClosuresRewritesCommutingSum) {
  SgFixture f;
  OpExpr closure = OpExpr::Closure(OpExpr::Sum({f.down, f.up}));
  auto rewritten = closure.DecomposeClosures();
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  EXPECT_EQ(rewritten->kind(), OpExpr::Kind::kProduct);
  EXPECT_EQ(rewritten->children().size(), 2u);

  // The rewritten plan computes the same closure.
  auto a = closure.Evaluate(f.w.db, f.w.q);
  auto b = rewritten->Evaluate(f.w.db, f.w.q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ExprTest, DecomposeClosuresKeepsNonCommutingSum) {
  OpExpr q_side = OpExpr::Leaf(LR("p(X,Y) :- p(X,Z), q(Z,Y)."), "Aq");
  OpExpr r_side = OpExpr::Leaf(LR("p(X,Y) :- p(X,Z), rr(Z,Y)."), "Ar");
  OpExpr closure = OpExpr::Closure(OpExpr::Sum({q_side, r_side}));
  auto rewritten = closure.DecomposeClosures();
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->kind(), OpExpr::Kind::kClosure);
}

TEST(ExprTest, DecomposeClosuresHandlesProductSummands) {
  // ((up·down) + down)*: the summand up·down is composed into one rule
  // before planning.
  SgFixture f;
  OpExpr sum = OpExpr::Sum({OpExpr::Product({f.up, f.down}), f.down});
  OpExpr closure = OpExpr::Closure(sum);
  auto rewritten = closure.DecomposeClosures();
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  auto a = closure.Evaluate(f.w.db, f.w.q);
  auto b = rewritten->Evaluate(f.w.db, f.w.q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ExprTest, ToStringRendering) {
  SgFixture f;
  OpExpr expr = OpExpr::Closure(OpExpr::Sum({f.down, f.up}));
  EXPECT_EQ(expr.ToString(), "(down + up)*");
  OpExpr product =
      OpExpr::Product({OpExpr::Closure(f.down), OpExpr::Closure(f.up)});
  EXPECT_EQ(product.ToString(), "down*·up*");
}

TEST(ExprTest, SingletonSumAndProductCollapse) {
  SgFixture f;
  EXPECT_EQ(OpExpr::Sum({f.down}).kind(), OpExpr::Kind::kOperator);
  EXPECT_EQ(OpExpr::Product({f.up}).kind(), OpExpr::Kind::kOperator);
}

TEST(ExprTest, MixedArityRejected) {
  OpExpr binary = OpExpr::Leaf(LR("p(X,Y) :- p(X,Z), e(Z,Y)."));
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(4);
  Relation q(3);
  q.Insert({0, 0, 0});
  auto out = binary.Evaluate(db, q);
  EXPECT_FALSE(out.ok());
}

}  // namespace
}  // namespace linrec
