#include "algebra/closure.h"

#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "datalog/parser.h"
#include "workload/databases.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

struct SgFixture {
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w = MakeSameGeneration(5, 6, 2, 42);
};

TEST(DecomposedClosureTest, EqualsDirectClosureForCommutingPair) {
  SgFixture f;
  ClosureStats direct_stats;
  auto direct = DirectClosure({f.r1, f.r2}, f.w.db, f.w.q, &direct_stats);
  ASSERT_TRUE(direct.ok()) << direct.status();

  ClosureStats decomposed_stats;
  auto decomposed = DecomposedClosure({{f.r1}, {f.r2}}, f.w.db, f.w.q,
                                      &decomposed_stats);
  ASSERT_TRUE(decomposed.ok());
  EXPECT_EQ(*direct, *decomposed);
  EXPECT_FALSE(direct->empty());
}

TEST(DecomposedClosureTest, Theorem31DuplicateBound) {
  // Theorem 3.1: B*C* produces no more duplicates than (B+C)*.
  SgFixture f;
  ClosureStats direct_stats;
  auto direct = DirectClosure({f.r1, f.r2}, f.w.db, f.w.q, &direct_stats);
  ASSERT_TRUE(direct.ok());
  ClosureStats decomposed_stats;
  auto decomposed = DecomposedClosure({{f.r1}, {f.r2}}, f.w.db, f.w.q,
                                      &decomposed_stats);
  ASSERT_TRUE(decomposed.ok());
  EXPECT_LE(decomposed_stats.duplicates, direct_stats.duplicates);
}

TEST(DecomposedClosureTest, OrderIrrelevantForCommutingPair) {
  SgFixture f;
  auto order_a = DecomposedClosure({{f.r1}, {f.r2}}, f.w.db, f.w.q);
  auto order_b = DecomposedClosure({{f.r2}, {f.r1}}, f.w.db, f.w.q);
  ASSERT_TRUE(order_a.ok());
  ASSERT_TRUE(order_b.ok());
  EXPECT_EQ(*order_a, *order_b);
}

TEST(DecomposedClosureTest, SingleGroupIsDirect) {
  SgFixture f;
  auto direct = DirectClosure({f.r1, f.r2}, f.w.db, f.w.q);
  auto single = DecomposedClosure({{f.r1, f.r2}}, f.w.db, f.w.q);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(*direct, *single);
}

TEST(PlanTest, CommutingPairFullyDecomposes) {
  SgFixture f;
  auto plan = PlanDecomposition({f.r1, f.r2});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->fully_decomposed);
  EXPECT_EQ(plan->groups.size(), 2u);
  EXPECT_EQ(plan->pair_tests, 1);
}

TEST(PlanTest, NonCommutingPairStaysTogether) {
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  auto plan = PlanDecomposition({r1, r2});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->fully_decomposed);
  ASSERT_EQ(plan->groups.size(), 1u);
  EXPECT_EQ(plan->groups[0].size(), 2u);
}

TEST(PlanTest, MixedTriple) {
  // r1 commutes with r2 and r3 (free-1p split); r2 and r3 do not commute
  // with each other (same general position, different predicates).
  LinearRule r1 = LR("p(X,Y) :- p(Z,Y), up(X,Z).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule r3 = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  auto plan = PlanDecomposition({r1, r2, r3});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->groups.size(), 2u);
  // One singleton {r1}, one pair {r2, r3}.
  std::size_t sizes[2] = {plan->groups[0].size(), plan->groups[1].size()};
  EXPECT_EQ(sizes[0] + sizes[1], 3u);
  EXPECT_TRUE((sizes[0] == 1 && sizes[1] == 2) ||
              (sizes[0] == 2 && sizes[1] == 1));
}

TEST(PlanTest, EvaluateWithPlanMatchesDirect) {
  LinearRule r1 = LR("p(X,Y) :- p(Z,Y), up(X,Z).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule r3 = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  Database db;
  db.GetOrCreate("up", 2) = RandomGraph(15, 25, 1);
  db.GetOrCreate("q", 2) = RandomGraph(15, 25, 2);
  db.GetOrCreate("rr", 2) = RandomGraph(15, 25, 3);
  Relation q(2);
  for (int i = 0; i < 15; i += 2) q.Insert({i, i});

  std::vector<LinearRule> rules{r1, r2, r3};
  auto plan = PlanDecomposition(rules);
  ASSERT_TRUE(plan.ok());
  auto direct = DirectClosure(rules, db, q);
  auto planned = EvaluateWithPlan(rules, *plan, db, q);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(*direct, *planned);
}

TEST(PlanTest, EmptyInputRejected) {
  EXPECT_FALSE(PlanDecomposition({}).ok());
  Database db;
  Relation q(2);
  EXPECT_FALSE(DecomposedClosure({}, db, q).ok());
}

}  // namespace
}  // namespace linrec
