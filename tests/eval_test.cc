#include "eval/apply.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/selection.h"

namespace linrec {
namespace {

Database EdgeDb(std::initializer_list<std::pair<Value, Value>> edges) {
  Database db;
  Relation& e = db.GetOrCreate("e", 2);
  for (auto [u, v] : edges) e.Insert({u, v});
  return db;
}

TEST(ApplyRuleTest, SimpleJoin) {
  // p(X,Y) :- p(X,Z), e(Z,Y) applied to q = {(0,1)} over e = {(1,2),(2,3)}.
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  ASSERT_TRUE(lr.ok());
  Database db = EdgeDb({{1, 2}, {2, 3}});
  Relation input(2);
  input.Insert({0, 1});

  Result<Relation> out = ApplySum({*lr}, db, input);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->Contains({0, 2}));
}

TEST(ApplyRuleTest, CountsDerivationsIncludingDuplicates) {
  // Two e-paths deriving the same head tuple.
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,W), f(W,Y).");
  ASSERT_TRUE(lr.ok());
  Database db;
  Relation& e = db.GetOrCreate("e", 2);
  e.Insert({1, 10});
  e.Insert({1, 20});
  Relation& f = db.GetOrCreate("f", 2);
  f.Insert({10, 5});
  f.Insert({20, 5});
  Relation input(2);
  input.Insert({0, 1});

  ClosureStats stats;
  Result<Relation> out = ApplySum({*lr}, db, input, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);        // only (0,5)
  EXPECT_EQ(stats.derivations, 2u);  // derived twice
}

TEST(ApplyRuleTest, RepeatedVariableInAtom) {
  // Self-loop detection: p(X) :- p(X), e(Y,Y).
  auto lr = ParseLinearRule("p(X) :- p(X), e(Y,Y).");
  ASSERT_TRUE(lr.ok());
  Database db = EdgeDb({{1, 2}, {3, 3}});
  Relation input(1);
  input.Insert({9});
  Result<Relation> out = ApplySum({*lr}, db, input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);  // the (3,3) loop exists
}

TEST(ApplyRuleTest, RepeatedVariableNoMatch) {
  auto lr = ParseLinearRule("p(X) :- p(X), e(Y,Y).");
  ASSERT_TRUE(lr.ok());
  Database db = EdgeDb({{1, 2}, {2, 3}});
  Relation input(1);
  input.Insert({9});
  Result<Relation> out = ApplySum({*lr}, db, input);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(ApplyRuleTest, ConstantsInBody) {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y), anchor(X, 7).");
  ASSERT_TRUE(lr.ok());
  Database db = EdgeDb({{1, 2}});
  Relation& anchor = db.GetOrCreate("anchor", 2);
  anchor.Insert({0, 7});
  anchor.Insert({5, 8});
  Relation input(2);
  input.Insert({0, 1});
  input.Insert({5, 1});
  Result<Relation> out = ApplySum({*lr}, db, input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);  // only X=0 passes anchor(X,7)
  EXPECT_TRUE(out->Contains({0, 2}));
}

TEST(ApplyRuleTest, MissingPredicateMeansEmpty) {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), nothere(Z,Y).");
  ASSERT_TRUE(lr.ok());
  Database db;
  Relation input(2);
  input.Insert({0, 1});
  Result<Relation> out = ApplySum({*lr}, db, input);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(ApplyRuleTest, UnboundHeadVariableRejected) {
  auto rule = ParseRule("p(X,Y) :- q(X).");
  ASSERT_TRUE(rule.ok());
  Database db;
  db.GetOrCreate("q", 1).Insert({1});
  Relation out(2);
  Status st = ApplyRule(*rule, db, {}, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ApplyRuleTest, ArityMismatchRejected) {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  ASSERT_TRUE(lr.ok());
  Database db;
  db.GetOrCreate("e", 3).Insert({1, 2, 3});
  Relation input(2);
  input.Insert({0, 1});
  Result<Relation> out = ApplySum({*lr}, db, input);
  EXPECT_FALSE(out.ok());
}

TEST(ApplyRuleTest, CartesianProductWhenDisconnected) {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,W), a(X), b(Y).");
  ASSERT_TRUE(lr.ok());
  Database db;
  db.GetOrCreate("a", 1).Insert({0});
  Relation& b = db.GetOrCreate("b", 1);
  b.Insert({1});
  b.Insert({2});
  Relation input(2);
  input.Insert({0, 9});
  Result<Relation> out = ApplySum({*lr}, db, input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(SelectionTest, FiltersByPosition) {
  Relation r(2);
  r.Insert({1, 2});
  r.Insert({1, 3});
  r.Insert({2, 3});
  Relation out = ApplySelection(r, Selection{0, 1});
  EXPECT_EQ(out.size(), 2u);
  out = ApplySelection(r, Selection{1, 3});
  EXPECT_EQ(out.size(), 2u);
  out = ApplySelection(r, Selection{0, 9});
  EXPECT_TRUE(out.empty());
}

TEST(IndexCacheTest, ReusesUntilVersionChanges) {
  Relation r(2);
  r.Insert({1, 2});
  IndexCache cache;
  const HashIndex& i1 = cache.Get(r, {0});
  const HashIndex& i2 = cache.Get(r, {0});
  EXPECT_EQ(&i1, &i2);
  EXPECT_EQ(cache.rebuilds(), 1u);
  r.Insert({3, 4});
  cache.Get(r, {0});
  EXPECT_EQ(cache.rebuilds(), 2u);
}

}  // namespace
}  // namespace linrec
