#include "algebra/program_eval.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace linrec {
namespace {

Program P(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return *program;
}

TEST(ProgramEvalTest, TransitiveClosureWithBaseRule) {
  Program program = P(
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
      "edge(1,2). edge(2,3). edge(3,4).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation* path = result->db.Find("path");
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->size(), 6u);
  EXPECT_TRUE(path->Contains({1, 4}));
  EXPECT_FALSE(path->Contains({4, 1}));
}

TEST(ProgramEvalTest, FactsSeedRecursivePredicate) {
  // Facts for the recursive predicate itself join the seed.
  Program program = P(
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
      "path(10,11).\n"
      "edge(11,12).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->db.Find("path")->Contains({10, 12}));
}

TEST(ProgramEvalTest, DependentPredicatesInOrder) {
  // tc depends on edge; reach depends on tc.
  Program program = P(
      "tc(X,Y) :- edge(X,Y).\n"
      "tc(X,Y) :- tc(X,Z), edge(Z,Y).\n"
      "reach(X) :- tc(0,X).\n"
      "edge(0,1). edge(1,2).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation* reach = result->db.Find("reach");
  ASSERT_NE(reach, nullptr);
  EXPECT_EQ(reach->size(), 2u);
  EXPECT_TRUE(reach->Contains({1}));
  EXPECT_TRUE(reach->Contains({2}));
}

TEST(ProgramEvalTest, SameGenerationTwoRecursiveRules) {
  Program program = P(
      "sg(X,Y) :- flat(X,Y).\n"
      "sg(X,Y) :- sg(X,V), down(V,Y).\n"
      "sg(X,Y) :- sg(U,Y), up(X,U).\n"
      "flat(1,1). flat(2,2).\n"
      "down(1,3). down(2,4).\n"
      "up(3,1). up(4,2).\n");
  auto plain = EvaluateProgram(program);
  ASSERT_TRUE(plain.ok()) << plain.status();

  ProgramEvalOptions options;
  options.use_decomposition = true;
  auto decomposed = EvaluateProgram(program, options);
  ASSERT_TRUE(decomposed.ok()) << decomposed.status();

  const Relation* a = plain->db.Find("sg");
  const Relation* b = decomposed->db.Find("sg");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(a->Contains({3, 3}));  // down from (1,1) then up: (3,3)
}

TEST(ProgramEvalTest, EqualityInBaseRule) {
  Program program = P(
      "loop(X,Y) :- edge(X,Y), X = Y.\n"
      "edge(1,1). edge(1,2). edge(3,3).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation* loop = result->db.Find("loop");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->size(), 2u);
}

TEST(ProgramEvalTest, MutualRecursionRejected) {
  Program program = P(
      "a(X) :- b(X).\n"
      "b(X) :- a(X), g(X).\n"
      "g(1).\n");
  auto result = EvaluateProgram(program);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProgramEvalTest, NonLinearRecursionRejected) {
  Program program = P(
      "p(X,Y) :- p(X,Z), p(Z,Y).\n"
      "p(1,2).\n");
  auto result = EvaluateProgram(program);
  ASSERT_FALSE(result.ok());
}

TEST(ProgramEvalTest, InconsistentArityRejected) {
  Program program = P(
      "p(X) :- g(X).\n"
      "p(X,Y) :- g(X), g(Y).\n"
      "g(1).\n");
  auto result = EvaluateProgram(program);
  ASSERT_FALSE(result.ok());
}

TEST(ProgramEvalTest, EmptyProgram) {
  Program program = P("");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.relation_count(), 0u);
}

TEST(ProgramEvalTest, FactsOnly) {
  Program program = P("e(1,2). e(2,3).");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.Find("e")->size(), 2u);
}

TEST(ProgramEvalTest, UnsatisfiableBaseRuleContributesNothing) {
  Program program = P(
      "p(X) :- g(X), 1 = 2.\n"
      "g(5).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->db.Find("p")->empty());
}

TEST(ProgramEvalTest, StatsAccumulate) {
  Program program = P(
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
      "edge(0,1). edge(1,2). edge(2,3). edge(3,4). edge(4,5).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.derivations, 0u);
  EXPECT_GT(result->stats.iterations, 0u);
  EXPECT_GT(result->stats.result_size, 0u);
}

}  // namespace
}  // namespace linrec
