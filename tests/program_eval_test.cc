#include "algebra/program_eval.h"

#include <gtest/gtest.h>

#include <string>

#include "common/parallel.h"
#include "common/strings.h"
#include "datalog/parser.h"

namespace linrec {
namespace {

Program P(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return *program;
}

TEST(ProgramEvalTest, TransitiveClosureWithBaseRule) {
  Program program = P(
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
      "edge(1,2). edge(2,3). edge(3,4).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation* path = result->db.Find("path");
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->size(), 6u);
  EXPECT_TRUE(path->Contains({1, 4}));
  EXPECT_FALSE(path->Contains({4, 1}));
}

TEST(ProgramEvalTest, FactsSeedRecursivePredicate) {
  // Facts for the recursive predicate itself join the seed.
  Program program = P(
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
      "path(10,11).\n"
      "edge(11,12).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->db.Find("path")->Contains({10, 12}));
}

TEST(ProgramEvalTest, DependentPredicatesInOrder) {
  // tc depends on edge; reach depends on tc.
  Program program = P(
      "tc(X,Y) :- edge(X,Y).\n"
      "tc(X,Y) :- tc(X,Z), edge(Z,Y).\n"
      "reach(X) :- tc(0,X).\n"
      "edge(0,1). edge(1,2).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation* reach = result->db.Find("reach");
  ASSERT_NE(reach, nullptr);
  EXPECT_EQ(reach->size(), 2u);
  EXPECT_TRUE(reach->Contains({1}));
  EXPECT_TRUE(reach->Contains({2}));
}

TEST(ProgramEvalTest, SameGenerationTwoRecursiveRules) {
  Program program = P(
      "sg(X,Y) :- flat(X,Y).\n"
      "sg(X,Y) :- sg(X,V), down(V,Y).\n"
      "sg(X,Y) :- sg(U,Y), up(X,U).\n"
      "flat(1,1). flat(2,2).\n"
      "down(1,3). down(2,4).\n"
      "up(3,1). up(4,2).\n");
  auto plain = EvaluateProgram(program);
  ASSERT_TRUE(plain.ok()) << plain.status();

  ProgramEvalOptions options;
  options.use_decomposition = true;
  auto decomposed = EvaluateProgram(program, options);
  ASSERT_TRUE(decomposed.ok()) << decomposed.status();

  const Relation* a = plain->db.Find("sg");
  const Relation* b = decomposed->db.Find("sg");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(a->Contains({3, 3}));  // down from (1,1) then up: (3,3)
}

TEST(ProgramEvalTest, EqualityInBaseRule) {
  Program program = P(
      "loop(X,Y) :- edge(X,Y), X = Y.\n"
      "edge(1,1). edge(1,2). edge(3,3).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation* loop = result->db.Find("loop");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->size(), 2u);
}

TEST(ProgramEvalTest, LinearMutualRecursionEvaluates) {
  // Pre-SCC versions rejected any predicate cycle; linear mutual
  // recursion is now closed jointly. With no base rules the component's
  // fixpoint is empty.
  Program program = P(
      "a(X) :- b(X).\n"
      "b(X) :- a(X), g(X).\n"
      "g(1).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->db.Find("a")->empty());
  EXPECT_TRUE(result->db.Find("b")->empty());

  // Seed a and the pair closes mutually: a ⊇ b, b ⊇ a ⋈ g.
  Program seeded = P(
      "a(X) :- s(X).\n"
      "a(X) :- b(X).\n"
      "b(X) :- a(X), g(X).\n"
      "s(1). s(2). g(1).\n");
  auto closed = EvaluateProgram(seeded);
  ASSERT_TRUE(closed.ok()) << closed.status();
  const Relation* a = closed->db.Find("a");
  const Relation* b = closed->db.Find("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->size(), 2u);  // {1, 2}
  EXPECT_TRUE(a->Contains({1}));
  EXPECT_TRUE(a->Contains({2}));
  EXPECT_EQ(b->size(), 1u);  // {1}: only 1 passes the g guard
  EXPECT_TRUE(b->Contains({1}));
}

TEST(ProgramEvalTest, EvenOddChainEvaluates) {
  // The classic two-member component: parity over a successor chain.
  Program program = P(
      "even(X) :- zero(X).\n"
      "even(X) :- odd(Y), succ(Y,X).\n"
      "odd(X) :- even(Y), succ(Y,X).\n"
      "zero(0).\n"
      "succ(0,1). succ(1,2). succ(2,3). succ(3,4). succ(4,5).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation* even = result->db.Find("even");
  const Relation* odd = result->db.Find("odd");
  ASSERT_NE(even, nullptr);
  ASSERT_NE(odd, nullptr);
  EXPECT_EQ(even->size(), 3u);
  EXPECT_EQ(odd->size(), 3u);
  for (int i = 0; i <= 5; ++i) {
    EXPECT_EQ(even->Contains({i}), i % 2 == 0) << i;
    EXPECT_EQ(odd->Contains({i}), i % 2 == 1) << i;
  }
  // The joint plan is reported once for the whole component.
  ASSERT_EQ(result->plan_explanations.size(), 1u);
  EXPECT_NE(result->plan_explanations[0].find("joint-semi-naive"),
            std::string::npos)
      << result->plan_explanations[0];
  EXPECT_NE(result->plan_explanations[0].find("even, odd"),
            std::string::npos)
      << result->plan_explanations[0];
}

TEST(ProgramEvalTest, JointClosureDeterministicAcrossWorkerCounts) {
  // A three-member component over a cycle with guards, closed at 1, 2 and
  // 8 workers: byte-identical relations (compared in sorted order).
  std::string text =
      "a(X,Y) :- e(X,Y).\n"
      "a(X,Y) :- c(X,Z), e(Z,Y).\n"
      "b(X,Y) :- a(X,Z), f(Z,Y).\n"
      "c(X,Y) :- b(X,Z), e(Z,Y).\n";
  for (int i = 0; i < 24; ++i) {
    text += StrCat("e(", i, ",", (i + 1) % 24, ").\n");
    text += StrCat("f(", i, ",", (i * 7) % 24, ").\n");
  }
  Program program = P(text);
  // Force real helper threads so single-core CI exercises true
  // cross-thread joint rounds, as in strategy_equivalence_test.
  WorkerPool::OverrideThreadCapForTesting(16);
  ProgramEvalOptions serial;
  serial.parallel_workers = 1;
  auto reference = EvaluateProgram(program, serial);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_FALSE(reference->db.Find("a")->empty());
  for (int workers : {2, 8}) {
    ProgramEvalOptions options;
    options.parallel_workers = workers;
    auto result = EvaluateProgram(program, options);
    ASSERT_TRUE(result.ok()) << result.status();
    for (const char* pred : {"a", "b", "c"}) {
      EXPECT_EQ(result->db.Find(pred)->Sorted(),
                reference->db.Find(pred)->Sorted())
          << pred << " differs at " << workers << " workers";
    }
  }
  WorkerPool::OverrideThreadCapForTesting(0);
}

TEST(ProgramEvalTest, NonLinearMutualRecursionNamesComponent) {
  // Two component atoms in one body: outside the (joint) linear class.
  // The error names every member of the strongly connected component.
  Program program = P(
      "a(X) :- b(X).\n"
      "b(X) :- cc(X).\n"
      "cc(X) :- a(X), b(X).\n"
      "g(1).\n");
  auto result = EvaluateProgram(program);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  for (const char* member : {"a", "b", "cc"}) {
    EXPECT_NE(result.status().message().find(member), std::string::npos)
        << result.status().message();
  }
}

TEST(ProgramEvalTest, DeepDependencyChainDoesNotOverflow) {
  // ~10k-predicate dependency chain: the recursive-DFS ordering of
  // pre-SCC versions overflowed the stack here; the iterative Tarjan
  // condensation must not.
  constexpr int kDepth = 10000;
  std::string text = "p0(X) :- e(X).\ne(1). e(2).\n";
  for (int i = 1; i < kDepth; ++i) {
    text += StrCat("p", i, "(X) :- p", i - 1, "(X).\n");
  }
  Program program = P(text);
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation* last = result->db.Find(StrCat("p", kDepth - 1));
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->size(), 2u);
  EXPECT_TRUE(last->Contains({1}));
}

TEST(ProgramEvalTest, ReplacedIdbRelationIsReJoinedFresh) {
  // Regression: evaluating `a` replaces the db's `a` relation in place
  // (GetOrCreate(...) = std::move(value)), at the same address that facts
  // for `a` occupied — any index built over the old contents is stale.
  // A later predicate joining `a` twice must see the closed relation.
  Program program = P(
      "a(X,Y) :- e1(X,Y).\n"
      "a(X,Y) :- a(X,Z), e1(Z,Y).\n"
      "b(X,Y) :- a(X,Z), a(Z,Y).\n"
      "a(5,6).\n"
      "e1(1,2). e1(2,3).\n");
  for (bool decompose : {false, true}) {
    ProgramEvalOptions options;
    options.use_decomposition = decompose;
    auto result = EvaluateProgram(program, options);
    ASSERT_TRUE(result.ok()) << result.status();
    const Relation* a = result->db.Find("a");
    const Relation* b = result->db.Find("b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    // a = {(5,6)} ∪ {(1,2),(2,3)} closed under ∘e1 = + {(1,3)}.
    EXPECT_EQ(a->size(), 4u);
    EXPECT_TRUE(a->Contains({1, 3}));
    // b joins the *replaced* a with itself: only (1,2)∘(2,3).
    EXPECT_EQ(b->size(), 1u);
    EXPECT_TRUE(b->Contains({1, 3}));
  }
}

TEST(ProgramEvalTest, NonLinearRecursionRejected) {
  Program program = P(
      "p(X,Y) :- p(X,Z), p(Z,Y).\n"
      "p(1,2).\n");
  auto result = EvaluateProgram(program);
  ASSERT_FALSE(result.ok());
}

TEST(ProgramEvalTest, InconsistentArityRejected) {
  Program program = P(
      "p(X) :- g(X).\n"
      "p(X,Y) :- g(X), g(Y).\n"
      "g(1).\n");
  auto result = EvaluateProgram(program);
  ASSERT_FALSE(result.ok());
}

TEST(ProgramEvalTest, EmptyProgram) {
  Program program = P("");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.relation_count(), 0u);
}

TEST(ProgramEvalTest, FactsOnly) {
  Program program = P("e(1,2). e(2,3).");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.Find("e")->size(), 2u);
}

TEST(ProgramEvalTest, UnsatisfiableBaseRuleContributesNothing) {
  Program program = P(
      "p(X) :- g(X), 1 = 2.\n"
      "g(5).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->db.Find("p")->empty());
}

TEST(ProgramEvalTest, StatsAccumulate) {
  Program program = P(
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
      "edge(0,1). edge(1,2). edge(2,3). edge(3,4). edge(4,5).\n");
  auto result = EvaluateProgram(program);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.derivations, 0u);
  EXPECT_GT(result->stats.iterations, 0u);
  EXPECT_GT(result->stats.result_size, 0u);
}

}  // namespace
}  // namespace linrec
