#include "separability/multi_selection.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "redundancy/bounded.h"
#include "workload/databases.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

/// Reference: direct closure then all selections.
Relation Reference(const std::vector<std::vector<LinearRule>>& groups,
                   const std::vector<Selection>& selections,
                   const Database& db, const Relation& q) {
  std::vector<LinearRule> all;
  for (const auto& g : groups) all.insert(all.end(), g.begin(), g.end());
  auto closure = SemiNaiveClosure(all, db, q);
  EXPECT_TRUE(closure.ok());
  Relation out = *closure;
  for (const Selection& s : selections) out = ApplySelection(out, s);
  return out;
}

TEST(MultiSelectionTest, TwoOperatorsTwoSelections) {
  // σ1 on X commutes with r1? No — σ_i is the selection NOT required to
  // commute with A_i. Attach σ_X to the up-side group (X general there) and
  // σ_Y to the down-side group (Y general there).
  LinearRule r_down = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r_up = LR("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w = MakeSameGeneration(4, 6, 2, 77);
  auto sorted = w.q.Sorted();
  Selection sigma_x{0, sorted.front()[0]};
  Selection sigma_y{1, sorted.back()[1]};

  // Groups ordered [up (σ_x), down (σ_y)]: evaluation closes down first,
  // filters on Y, closes up, filters on X.
  std::vector<SelectedOperator> groups{{{r_up}, sigma_x},
                                       {{r_down}, sigma_y}};
  auto fast = MultiSelectionClosure(groups, std::nullopt, w.db, w.q);
  ASSERT_TRUE(fast.ok()) << fast.status();

  Relation expected =
      Reference({{r_up}, {r_down}}, {sigma_x, sigma_y}, w.db, w.q);
  EXPECT_EQ(*fast, expected);
}

TEST(MultiSelectionTest, Sigma0FiltersSeed) {
  LinearRule r_down = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r_up = LR("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w = MakeSameGeneration(4, 5, 2, 78);
  // σ0 must commute with BOTH operators — impossible here on positions 0/1
  // unless... X is 1-persistent in r_down only. So use a workload where σ0
  // selects on a position persistent in both: none exists for this pair, so
  // σ0 with position 0 must be rejected.
  auto rejected = MultiSelectionClosure({{{r_down}, std::nullopt},
                                         {{r_up}, std::nullopt}},
                                        Selection{0, 0}, w.db, w.q);
  EXPECT_FALSE(rejected.ok());
}

TEST(MultiSelectionTest, Sigma0WithCompatibleOperators) {
  // Two down-style operators over different edge relations keep X
  // 1-persistent, so σ0 on X commutes with both. They also commute with
  // each other? They are both "append on Y" with different predicates — not
  // commuting in general. Use operators on disjoint columns instead:
  // 3-ary: r1 appends on Y (keeps X,Z), r2 appends on Z (keeps X,Y).
  LinearRule r1 = LR("p(X,Y,Z) :- p(X,V,Z), e(V,Y).");
  LinearRule r2 = LR("p(X,Y,Z) :- p(X,Y,W), f(W,Z).");
  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(12, 24, 5);
  db.GetOrCreate("f", 2) = RandomGraph(12, 24, 6);
  Relation q(3);
  for (int i = 0; i < 12; i += 2) q.Insert({i, i, i});

  Selection sigma0{0, 2};
  auto fast = MultiSelectionClosure({{{r1}, std::nullopt},
                                     {{r2}, std::nullopt}},
                                    sigma0, db, q);
  ASSERT_TRUE(fast.ok()) << fast.status();
  Relation expected = Reference({{r1}, {r2}}, {sigma0}, db, q);
  EXPECT_EQ(*fast, expected);
}

TEST(MultiSelectionTest, ThreeOperators) {
  // Three mutually commuting operators on disjoint columns of a 3-ary
  // predicate, with a selection on each.
  LinearRule r1 = LR("p(X,Y,Z) :- p(U,Y,Z), a(U,X).");
  LinearRule r2 = LR("p(X,Y,Z) :- p(X,V,Z), b(V,Y).");
  LinearRule r3 = LR("p(X,Y,Z) :- p(X,Y,W), c(W,Z).");
  Database db;
  db.GetOrCreate("a", 2) = ChainGraph(8);
  db.GetOrCreate("b", 2) = ChainGraph(8);
  db.GetOrCreate("c", 2) = ChainGraph(8);
  Relation q(3);
  q.Insert({0, 0, 0});
  q.Insert({1, 2, 3});

  Selection s1{0, 4};
  Selection s2{1, 5};
  std::vector<SelectedOperator> groups{{{r1}, s1}, {{r2}, s2},
                                       {{r3}, std::nullopt}};
  auto fast = MultiSelectionClosure(groups, std::nullopt, db, q);
  ASSERT_TRUE(fast.ok()) << fast.status();
  Relation expected = Reference({{r1}, {r2}, {r3}}, {s1, s2}, db, q);
  EXPECT_EQ(*fast, expected);
  EXPECT_FALSE(fast->empty());
}

TEST(MultiSelectionTest, NonCommutingGroupsRejected) {
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  Database db;
  Relation q(2);
  q.Insert({0, 0});
  auto out = MultiSelectionClosure({{{r1}, std::nullopt},
                                    {{r2}, std::nullopt}},
                                   std::nullopt, db, q);
  EXPECT_FALSE(out.ok());
}

TEST(MultiSelectionTest, EmptyGroupsRejected) {
  Database db;
  Relation q(2);
  EXPECT_FALSE(MultiSelectionClosure({}, std::nullopt, db, q).ok());
}

TEST(BoundedRecursionTest, DetectAndEvaluate) {
  // p(X,Y) :- p(Y,X), e(X,Y): applying twice returns the original tuples
  // (restricted to e-support): uniformly bounded.
  LinearRule r = LR("p(X,Y) :- p(Y,X), e(X,Y).");
  auto bounded = DetectBoundedRecursion(r, 8);
  ASSERT_TRUE(bounded.ok()) << bounded.status();

  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(10, 30, 9);
  Relation q(2);
  for (int i = 0; i < 10; i += 2) q.Insert({i, (i + 3) % 10});
  auto fast = BoundedClosure(*bounded, db, q);
  auto direct = SemiNaiveClosure({r}, db, q);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*fast, *direct);
}

TEST(BoundedRecursionTest, GuardRule) {
  LinearRule r = LR("p(X) :- p(X), g(X).");
  auto bounded = DetectBoundedRecursion(r, 4);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->bound.n, 2);
  Database db;
  Relation& g = db.GetOrCreate("g", 1);
  g.Insert({1});
  Relation q(1);
  q.Insert({1});
  q.Insert({2});
  auto fast = BoundedClosure(*bounded, db, q);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->size(), 2u);  // q itself; g adds nothing new
}

TEST(BoundedRecursionTest, UnboundedIsNotFound) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto bounded = DetectBoundedRecursion(r, 5);
  EXPECT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace linrec
