#include "algebra/identities.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

Database TwoGraphDb(std::uint32_t seed) {
  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(12, 20, seed);
  db.GetOrCreate("f", 2) = RandomGraph(12, 20, seed + 1);
  return db;
}

Relation Seed() {
  Relation q(2);
  for (int i = 0; i < 12; i += 3) q.Insert({i, i});
  return q;
}

TEST(IdentitiesTest, LassezMaher1HoldsOnCommutingForms) {
  // Same-generation style pair where B*C* = C*B* but B*+C* is generally
  // smaller — the premise usually fails, and the implication must hold
  // either way.
  LinearRule b = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  LinearRule c = LR("p(X,Y) :- p(Z,Y), f(X,Z).");
  auto check = CheckLassezMaher1(b, c, TwoGraphDb(5), Seed());
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->holds);
}

TEST(IdentitiesTest, LassezMaher1PremiseCase) {
  // Identical operators: B = C, so B*C* = C*B* = B* = B* + C* and
  // (B+C)* = B*: premise and conclusion both hold.
  LinearRule b = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  LinearRule c = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto check = CheckLassezMaher1(b, c, TwoGraphDb(6), Seed());
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->premise);
  EXPECT_TRUE(check->conclusion);
  EXPECT_TRUE(check->holds);
}

TEST(IdentitiesTest, LassezMaher2IdempotentOperators) {
  // B = C with BB = B (idempotent guard rule): BC = CB = B + C as operators.
  LinearRule b = LR("p(X) :- p(X), g(X).");
  LinearRule c = LR("p(X) :- p(X), g(X).");
  Database db;
  Relation& g = db.GetOrCreate("g", 1);
  for (int i = 0; i < 5; ++i) g.Insert({i});
  Relation q(1);
  q.Insert({0});
  q.Insert({7});  // outside g
  auto check = CheckLassezMaher2(b, c, db, q);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->premise);
  EXPECT_TRUE(check->conclusion);
}

TEST(IdentitiesTest, LassezMaher2PremiseFailsGracefully) {
  LinearRule b = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  LinearRule c = LR("p(X,Y) :- p(Z,Y), f(X,Z).");
  auto check = CheckLassezMaher2(b, c, TwoGraphDb(7), Seed());
  ASSERT_TRUE(check.ok());
  EXPECT_FALSE(check->premise);
  EXPECT_TRUE(check->holds);
}

TEST(IdentitiesTest, DongBiconditionalOnCommutingPair) {
  LinearRule b = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  LinearRule c = LR("p(X,Y) :- p(Z,Y), f(X,Z).");
  auto check = CheckDong(b, c, TwoGraphDb(8), Seed());
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->holds) << "premise=" << check->premise
                            << " conclusion=" << check->conclusion;
}

TEST(IdentitiesTest, DongPremiseHoldsForCommutingPair) {
  // For genuinely commuting operators both sides of the biconditional hold.
  LinearRule b = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  LinearRule c = LR("p(X,Y) :- p(Z,Y), f(X,Z).");
  Database db = TwoGraphDb(9);
  Relation q = Seed();
  auto check = CheckDong(b, c, db, q);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->premise);
  EXPECT_TRUE(check->conclusion);
}

}  // namespace
}  // namespace linrec
