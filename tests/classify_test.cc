#include "analysis/classify.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

const VarClass& ClassOf(const Classification& c, const LinearRule& lr,
                        const std::string& name) {
  const Rule& r = lr.rule();
  for (VarId v = 0; v < r.var_count(); ++v) {
    if (r.var_name(v) == name) return c.Of(v);
  }
  ADD_FAILURE() << "no variable " << name;
  static VarClass dummy;
  return dummy;
}

TEST(ClassifyTest, TransitiveClosureRightLinear) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(ClassOf(*c, r, "X").IsFree1Persistent());
  EXPECT_TRUE(ClassOf(*c, r, "Y").IsGeneral());
  EXPECT_FALSE(ClassOf(*c, r, "Z").distinguished);
}

TEST(ClassifyTest, LinkPersistentByNonrecursiveOccurrence) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y), g(X).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(ClassOf(*c, r, "X").IsLink1Persistent());
}

TEST(ClassifyTest, LinkPersistentByRepeatedRecursiveOccurrence) {
  // y appears twice in the recursive atom: link 1-persistent.
  LinearRule r = LR("p(X,Y) :- p(Y,Y), q(X).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(ClassOf(*c, r, "Y").IsLink1Persistent());
  EXPECT_TRUE(ClassOf(*c, r, "X").IsGeneral());
  // X's h-image is Y (distinguished): X is 1-ray.
  EXPECT_EQ(ClassOf(*c, r, "X").ray_depth, 1);
}

TEST(ClassifyTest, FreeTwoPersistentSwap) {
  LinearRule r = LR("p(U,V,W) :- p(V,U,W), g(W).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  const VarClass& u = ClassOf(*c, r, "U");
  EXPECT_TRUE(u.IsFreePersistent());
  EXPECT_EQ(u.period, 2);
  const VarClass& v = ClassOf(*c, r, "V");
  EXPECT_TRUE(v.IsFreePersistent());
  EXPECT_EQ(v.period, 2);
  EXPECT_TRUE(ClassOf(*c, r, "W").IsLink1Persistent());
}

TEST(ClassifyTest, LinkTwoPersistent) {
  // w,x swap and x also appears in R: both link 2-persistent.
  LinearRule r = LR("p(W,X) :- p(X,W), rr(X).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  const VarClass& w = ClassOf(*c, r, "W");
  EXPECT_TRUE(w.IsLinkPersistent());
  EXPECT_EQ(w.period, 2);
}

TEST(ClassifyTest, HFunction) {
  LinearRule r = LR("p(X,Y) :- p(Y,Z), e(Z,X).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  // h(X) = Y, h(Y) = Z (nondistinguished).
  const Rule& rule = r.rule();
  VarId x = -1, y = -1, z = -1;
  for (VarId v = 0; v < rule.var_count(); ++v) {
    if (rule.var_name(v) == "X") x = v;
    if (rule.var_name(v) == "Y") y = v;
    if (rule.var_name(v) == "Z") z = v;
  }
  EXPECT_EQ(c->H(x), y);
  EXPECT_EQ(c->H(y), z);
  EXPECT_FALSE(c->H(z).has_value());
}

TEST(ClassifyTest, PersistentCycleThroughNondistinguishedBreaks) {
  // h(X) = Z nondistinguished: X general even though Z maps back.
  LinearRule r = LR("p(X,Y) :- p(Z,X), e(Z,Y).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(ClassOf(*c, r, "X").IsGeneral());
  EXPECT_TRUE(ClassOf(*c, r, "Y").IsGeneral());
}

TEST(ClassifyTest, RayDepthTwo) {
  // Dynamic arcs: V->V (link), V->X1 and X1... build: h(X1)=V, h(X2)=X1.
  LinearRule r = LR("p(V,X1,X2) :- p(V,V,X1), q(V).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(ClassOf(*c, r, "V").IsLink1Persistent());
  EXPECT_EQ(ClassOf(*c, r, "X1").ray_depth, 1);
  EXPECT_EQ(ClassOf(*c, r, "X2").ray_depth, 2);
}

TEST(ClassifyTest, Example51Figure1) {
  // Reconstruction of Example 5.1 / Figure 1 (see DESIGN.md):
  // z free 1-persistent; w, y link 1-persistent; u, v free 2-persistent;
  // x general.
  LinearRule r = LR("p(U,V,W,X,Y,Z) :- p(V,U,W,Y,Y,Z), q(W,X), rr(X,Y).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(ClassOf(*c, r, "Z").IsFree1Persistent());
  EXPECT_TRUE(ClassOf(*c, r, "W").IsLink1Persistent());
  EXPECT_TRUE(ClassOf(*c, r, "Y").IsLink1Persistent());
  const VarClass& u = ClassOf(*c, r, "U");
  EXPECT_TRUE(u.IsFreePersistent());
  EXPECT_EQ(u.period, 2);
  const VarClass& v = ClassOf(*c, r, "V");
  EXPECT_TRUE(v.IsFreePersistent());
  EXPECT_EQ(v.period, 2);
  EXPECT_TRUE(ClassOf(*c, r, "X").IsGeneral());
}

TEST(ClassifyTest, ISetUnionOfLinkPersistentAndRays) {
  LinearRule r = LR("p(V,X1,X2) :- p(V,V,X1), q(V).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  // I = {V, X1, X2}: link-1p plus both rays.
  EXPECT_EQ(c->i_set().size(), 3u);
}

TEST(ClassifyTest, DescribeStrings) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto c = Classification::Compute(r);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(ClassOf(*c, r, "X").Describe(), "free 1-persistent");
  EXPECT_EQ(ClassOf(*c, r, "Y").Describe(), "general");
  EXPECT_EQ(ClassOf(*c, r, "Z").Describe(), "nondistinguished");
}

}  // namespace
}  // namespace linrec
