// Resource-governance tests: memory budgets (per-query + global ledger),
// typed ResourceExhausted surfacing, cache integrity after an aborted
// fixpoint (a follow-up query must be byte-identical to an unbudgeted
// run), watchdog-driven mid-evaluation cancellation, and the server-level
// ladder — SET memory_budget, overload shedding with a retry hint,
// protocol-layer SET validation, and pressure counters in STATS.

#include "common/memory.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "server/server.h"
#include "server/watchdog.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

Engine ChainEngine(int n) {
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(n);
  return engine;
}

Relation SeedZero() {
  Relation q(2);
  q.Insert({0, 0});
  return q;
}

/// A chain program large enough that its tc closure cannot fit in a
/// few-KB budget (n nodes → n(n-1)/2 tc rows).
std::string ChainProgram(int n) {
  std::string text;
  for (int i = 1; i < n; ++i) {
    text += StrCat("edge(", i, ", ", i + 1, ").\n");
  }
  text +=
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";
  return text;
}

/// Drives `lines` through HandleLine one at a time, collecting replies.
std::vector<std::string> Drive(Server& server, Session& session,
                               const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  for (const std::string& line : lines) server.HandleLine(session, line, &out);
  return out;
}

void Load(Server& server, Session& session, const std::string& program) {
  std::vector<std::string> out;
  server.HandleLine(session, "LOAD", &out);
  for (std::size_t begin = 0; begin <= program.size();) {
    std::size_t end = program.find('\n', begin);
    if (end == std::string::npos) end = program.size();
    server.HandleLine(session, program.substr(begin, end - begin), &out);
    begin = end + 1;
  }
  server.HandleLine(session, "END", &out);
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.front().rfind("OK loaded", 0), 0u) << out.front();
}

TEST(MemoryBudgetTest, ChargesReleasesAndPressureBand) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(800));
  EXPECT_EQ(budget.used(), 800u);
  EXPECT_FALSE(budget.under_pressure());  // band starts at 875
  EXPECT_FALSE(budget.TryCharge(300));    // would cross the limit
  EXPECT_EQ(budget.used(), 800u);         // denied charge rolled back
  EXPECT_TRUE(budget.TryCharge(100));
  EXPECT_TRUE(budget.under_pressure());
  budget.Release(900);
  EXPECT_EQ(budget.used(), 0u);

  MemoryBudget unlimited;
  EXPECT_TRUE(unlimited.TryCharge(1u << 30));
  EXPECT_FALSE(unlimited.under_pressure());
}

TEST(QueryBudgetTest, DestructorReleasesExactlyWhatTheParentAccepted) {
  MemoryBudget global(100000);
  {
    QueryBudget query(/*limit_bytes=*/0, &global);
    ScopedQueryBudget scope(&query);
    ChargeBytesOrThrow(4096, FaultSite::kPoolGrowth);
    EXPECT_EQ(query.charged(), 4096u);
    EXPECT_EQ(global.used(), 4096u);
  }
  EXPECT_EQ(global.used(), 0u);  // re-credited when the query died
}

TEST(QueryBudgetTest, TinyBudgetAbortsQueryWithResourceExhausted) {
  Engine engine = ChainEngine(64);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  QueryBudget budget(/*limit_bytes=*/256);
  auto result =
      engine.Execute(prepared->Bind().BindSeed(SeedZero()).WithBudget(&budget));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
  // Denied charges roll back, so the recorded high water never exceeds the
  // limit (it may be 0 when the very first growth was the one refused).
  EXPECT_LE(budget.charged(), 256u);
}

TEST(QueryBudgetTest, AbortedFixpointLeavesEngineCachesUsable) {
  // Satellite contract: ResourceExhausted mid-fixpoint must leave the plan
  // cache, IndexCache and the prepared program usable — the follow-up
  // (unbudgeted) execution is byte-identical to a never-budgeted engine's.
  Engine engine = ChainEngine(64);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  const std::size_t plans_before = engine.plan_cache_size();

  QueryBudget tiny(/*limit_bytes=*/256);
  auto aborted =
      engine.Execute(prepared->Bind().BindSeed(SeedZero()).WithBudget(&tiny));
  ASSERT_FALSE(aborted.ok());
  ASSERT_EQ(aborted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.plan_cache_size(), plans_before);

  auto followup = engine.Execute(prepared->Bind().BindSeed(SeedZero()));
  ASSERT_TRUE(followup.ok()) << followup.status();

  Engine pristine = ChainEngine(64);
  auto clean = pristine.Execute(
      pristine.Prepare(Query::Closure({tc}))->Bind().BindSeed(SeedZero()));
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(followup->relation(), clean->relation());
}

TEST(QueryBudgetTest, GlobalLedgerDeniesAcrossQueries) {
  // Chain 256 from the zero seed grows ~4 KB of pool alone, so the 2 KB
  // *global* ledger is what refuses even though the query cap is unlimited.
  MemoryBudget global(2048);
  Engine engine = ChainEngine(256);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  {
    // Unlimited per-query cap; the *global* ledger is what refuses.
    QueryBudget budget(/*limit_bytes=*/0, &global);
    auto result = engine.Execute(
        prepared->Bind().BindSeed(SeedZero()).WithBudget(&budget));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status();
    EXPECT_EQ(global.used(), budget.charged());
  }
  // The dead query re-credited everything; the next governed query gets
  // the full ledger again.
  EXPECT_EQ(global.used(), 0u);
}

TEST(CancellationTest, ForceDeadlineStopsExecutionMidEvaluation) {
  Engine engine = ChainEngine(64);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  CancellationToken token;  // no deadline armed
  token.ForceDeadline();    // what the watchdog does on expiry
  auto result = engine.Execute(
      prepared->Bind().BindSeed(SeedZero()).WithCancellation(&token));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();

  CancellationToken cancelled;
  cancelled.Cancel();
  result = engine.Execute(
      prepared->Bind().BindSeed(SeedZero()).WithCancellation(&cancelled));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << result.status();
}

TEST(WatchdogTest, ForceExpiresBlownDeadlinesAndCountsThem) {
  Watchdog watchdog(/*interval_ms=*/1);
  CancellationToken token =
      CancellationToken::WithTimeout(std::chrono::milliseconds(0));
  // The flag is not set yet: only a clock read (or the watchdog) sees the
  // expiry, which is exactly the mid-chunk gap the watchdog closes.
  EXPECT_FALSE(token.stop_requested());
  const std::size_t handle = watchdog.Watch(&token);
  for (int i = 0; i < 2000 && !token.stop_requested(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.Check().code() == StatusCode::kDeadlineExceeded);
  EXPECT_EQ(watchdog.cancels(), 1u);
  watchdog.Unwatch(handle);
  EXPECT_EQ(watchdog.watched(), 0u);

  // A token without a deadline is never force-expired.
  CancellationToken plain;
  const std::size_t h2 = watchdog.Watch(&plain);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(plain.stop_requested());
  watchdog.Unwatch(h2);
}

TEST(ServerGovernanceTest, BudgetExceededRepliesTypedAndOthersUnaffected) {
  const std::string program = ChainProgram(64);

  // Reference: an ungoverned server's replies for the same program+query.
  Server reference;
  auto ref_session = reference.NewSession();
  Load(reference, *ref_session, program);
  const std::vector<std::string> clean =
      Drive(reference, *ref_session, {"?- tc(X, Y)."});
  ASSERT_EQ(clean.front().rfind("RESULT tc/2", 0), 0u) << clean.front();

  Server server;
  auto governed = server.NewSession();
  auto bystander = server.NewSession();
  Load(server, *governed, program);
  Load(server, *bystander, program);

  // The governed session caps itself; its query dies typed.
  std::vector<std::string> out =
      Drive(server, *governed, {"SET memory_budget 1024", "?- tc(X, Y)."});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK set memory_budget=1024");
  EXPECT_EQ(out[1].rfind("ERR ResourceExhausted", 0), 0u) << out[1];

  // The ungoverned bystander session is byte-identical to the reference,
  // and the ledger shows nothing leaked.
  EXPECT_EQ(Drive(server, *bystander, {"?- tc(X, Y)."}), clean);
  EXPECT_EQ(server.global_budget().used(), 0u);

  // Lifting the cap restores the governed session, byte for byte.
  out = Drive(server, *governed, {"SET memory_budget 0", "?- tc(X, Y)."});
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(std::vector<std::string>(out.begin() + 1, out.end()), clean);
}

TEST(ServerGovernanceTest, MemoryPressureShedsWithRetryHint) {
  ServerLimits limits;
  limits.global_memory_budget = 1 << 20;
  Server server(limits, {});
  auto session = server.NewSession();
  Load(server, *session, ChainProgram(8));

  // Occupy the ledger into its pressure band; submissions shed with the
  // machine-readable retry hint, before any evaluation work.
  ASSERT_TRUE(server.global_budget().TryCharge((1 << 20) - 1024));
  std::vector<std::string> out = Drive(server, *session, {"?- tc(X, Y)."});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rfind("ERR Unavailable retry_after_ms=100", 0), 0u)
      << out[0];

  // STATS exposes the pressure state and the shed counter.
  out = Drive(server, *session, {"STATS"});
  EXPECT_NE(std::find(out.begin(), out.end(), "mem_pressure=1"), out.end());
  EXPECT_NE(std::find(out.begin(), out.end(), "queries_shed=1"), out.end());
  EXPECT_NE(std::find(out.begin(), out.end(),
                      StrCat("mem_budget_limit=", 1 << 20)),
            out.end());

  // Pressure clears → the same query serves normally.
  server.global_budget().Release((1 << 20) - 1024);
  out = Drive(server, *session, {"?- tc(X, Y)."});
  EXPECT_EQ(out.front().rfind("RESULT tc/2", 0), 0u) << out.front();
}

TEST(ServerGovernanceTest, SetValidationRejectsBadArgsAtProtocolLayer) {
  Server server;
  auto session = server.NewSession();
  std::vector<std::string> out = Drive(
      server, *session,
      {"SET max_rows -1", "SET timeout_ms abc", "SET memory_budget -5",
       "SET bogus_knob 1", "SET max_rows", "SET memory_budget 0",
       "SET timeout_ms -1"});
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0].rfind("ERR InvalidArgument", 0), 0u) << out[0];
  EXPECT_NE(out[0].find("max_rows must be >= 0"), std::string::npos);
  EXPECT_EQ(out[1].rfind("ERR InvalidArgument", 0), 0u) << out[1];
  EXPECT_NE(out[1].find("not an integer"), std::string::npos);
  EXPECT_EQ(out[2].rfind("ERR InvalidArgument", 0), 0u) << out[2];
  EXPECT_NE(out[2].find("memory_budget must be >= 0"), std::string::npos);
  EXPECT_EQ(out[3].rfind("ERR InvalidArgument", 0), 0u) << out[3];
  EXPECT_NE(out[3].find("unknown setting"), std::string::npos);
  EXPECT_EQ(out[4].rfind("ERR InvalidArgument", 0), 0u) << out[4];
  // Valid settings still apply (negative timeout = no deadline).
  EXPECT_EQ(out[5], "OK set memory_budget=0");
  EXPECT_EQ(out[6], "OK set timeout_ms=-1");
}

TEST(ServerGovernanceTest, RowLimitStreamsWithoutFullMaterialization) {
  // max_rows caps what the reply materializes (cap+1 rows at most — enough
  // to detect truncation) rather than copying the whole closure and
  // cutting afterwards; the wire contract is unchanged.
  Server server;
  auto session = server.NewSession();
  Load(server, *session, ChainProgram(32));
  std::vector<std::string> out =
      Drive(server, *session, {"SET max_rows 5", "?- tc(X, Y)."});
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[1], "RESULT tc/2 rows=5 truncated=1");
  EXPECT_EQ(out.size(), 8u);  // SET ack + header + 5 rows + "."

  // A σ point query obeys the same cap.
  out = Drive(server, *session, {"?- tc(1, Y)."});
  EXPECT_EQ(out.front(), "RESULT tc/2 rows=5 truncated=1");

  // max_rows 0: header only, flagged truncated.
  out = Drive(server, *session, {"SET max_rows 0", "?- tc(1, Y)."});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], "RESULT tc/2 rows=0 truncated=1");
}

TEST(ServerGovernanceTest, WatchdogCancelsDeadlineBlownQueries) {
  ServerLimits limits;
  limits.watchdog_interval_ms = 1;
  Server server(limits, {});
  auto session = server.NewSession();
  Load(server, *session, ChainProgram(48));

  // timeout_ms=0 arms an already-expired token; whichever of the round
  // boundary or the watchdog notices first, the reply is typed and the
  // server survives.
  std::vector<std::string> out =
      Drive(server, *session, {"SET timeout_ms 0", "?- tc(X, Y)."});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].rfind("ERR DeadlineExceeded", 0), 0u) << out[1];

  out = Drive(server, *session, {"SET timeout_ms -1", "?- tc(1, Y)."});
  EXPECT_EQ(out[1].rfind("RESULT tc/2", 0), 0u) << out[1];

  // STATS exposes the watchdog counter (0 or more — the boundary check may
  // have won the race — but the line must exist).
  out = Drive(server, *session, {"STATS"});
  bool has_watchdog_line = false;
  for (const std::string& line : out) {
    if (line.rfind("watchdog_cancels=", 0) == 0) has_watchdog_line = true;
  }
  EXPECT_TRUE(has_watchdog_line);
}

}  // namespace
}  // namespace linrec
