// Property tests over the structural analyses:
//  * the α-graph has exactly the arcs the definition prescribes;
//  * Lemma 6.5: complement · wide ≡ original, for every redundancy bridge;
//  * printer/parser round-trips preserve structure;
//  * head-variable normalization preserves semantics.

#include <gtest/gtest.h>

#include <random>

#include "analysis/narrow_wide.h"
#include "analysis/rule_analysis.h"
#include "cq/compose.h"
#include "cq/homomorphism.h"
#include "datalog/equality.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "eval/fixpoint.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

class AnalysisProperty : public ::testing::TestWithParam<int> {};

TEST_P(AnalysisProperty, AlphaGraphArcCounts) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  auto lr = RandomLinearRule(2 + seed % 4, 1 + seed % 4, seed * 17 + 3);
  ASSERT_TRUE(lr.ok());
  auto graph = AlphaGraph::Build(*lr);
  ASSERT_TRUE(graph.ok()) << graph.status();

  // Expected: one dynamic arc per head position; per nonrecursive atom of
  // arity k, max(1, k-1) static arcs.
  std::size_t expected = lr->arity();
  for (int ai : lr->NonRecursiveAtomIndices()) {
    std::size_t k = lr->rule().body()[static_cast<std::size_t>(ai)].arity();
    expected += k == 1 ? 1 : k - 1;
  }
  EXPECT_EQ(graph->arcs().size(), expected);
  EXPECT_EQ(graph->dynamic_arcs().size(), lr->arity());
}

TEST_P(AnalysisProperty, EveryDistinguishedVarHasExactlyOneClass) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  auto lr = RandomLinearRule(3, 2, seed * 19 + 1);
  ASSERT_TRUE(lr.ok());
  auto classes = Classification::Compute(*lr);
  ASSERT_TRUE(classes.ok());
  for (VarId v = 0; v < lr->rule().var_count(); ++v) {
    const VarClass& c = classes->Of(v);
    if (!c.distinguished) {
      EXPECT_FALSE(c.persistent);
      continue;
    }
    // Exactly one of: persistent, general.
    EXPECT_NE(c.persistent, c.IsGeneral());
    if (c.persistent) {
      EXPECT_GE(c.period, 1);
      // h^period(v) == v.
      VarId cur = v;
      for (int i = 0; i < c.period; ++i) {
        auto next = classes->H(cur);
        ASSERT_TRUE(next.has_value());
        cur = *next;
      }
      EXPECT_EQ(cur, v);
    }
  }
}

TEST_P(AnalysisProperty, BridgesPartitionNonEPrimeArcs) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  auto lr = RandomLinearRule(3, 3, seed * 23 + 7);
  ASSERT_TRUE(lr.ok());
  auto analysis = RuleAnalysis::Compute(*lr);
  ASSERT_TRUE(analysis.ok());
  // Every arc belongs to at most one commutativity bridge, and E' arcs
  // (dynamic self-loops at link 1-persistent vars) to none.
  std::vector<int> owner(analysis->graph().arcs().size(), -1);
  int index = 0;
  for (const Bridge& b : analysis->commutativity_bridges()) {
    for (int arc : b.arcs) {
      EXPECT_EQ(owner[static_cast<std::size_t>(arc)], -1);
      owner[static_cast<std::size_t>(arc)] = index;
    }
    ++index;
  }
  for (std::size_t id = 0; id < analysis->graph().arcs().size(); ++id) {
    const AlphaArc& arc = analysis->graph().arcs()[id];
    bool is_eprime =
        arc.is_dynamic() && arc.u == arc.v &&
        analysis->classes().Of(arc.u).IsLink1Persistent();
    EXPECT_EQ(owner[id] == -1, is_eprime) << "arc " << id;
  }
}

TEST_P(AnalysisProperty, Lemma65ComplementTimesWideIsOriginal) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  auto lr = RandomLinearRule(3, 2, seed * 29 + 11,
                             /*distinct_predicates=*/true);
  ASSERT_TRUE(lr.ok());
  auto analysis = RuleAnalysis::Compute(*lr);
  ASSERT_TRUE(analysis.ok());
  for (const Bridge& bridge : analysis->redundancy_bridges()) {
    if (bridge.atom_indices.empty()) continue;
    auto wide = MakeWideRule(*analysis, bridge);
    auto complement = MakeComplementRule(*analysis, {&bridge});
    ASSERT_TRUE(wide.ok());
    ASSERT_TRUE(complement.ok());
    auto product = Compose(*complement, *wide);
    ASSERT_TRUE(product.ok());
    EXPECT_TRUE(AreEquivalent(product->rule(), lr->rule()))
        << "rule: " << ToString(*lr) << "\nwide: " << ToString(*wide)
        << "\ncomplement: " << ToString(*complement)
        << "\nproduct: " << ToString(*product);
  }
}

TEST_P(AnalysisProperty, PrinterRoundTrip) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  auto lr = RandomLinearRule(2 + seed % 3, 2, seed * 31 + 13);
  ASSERT_TRUE(lr.ok());
  std::string text = ToString(*lr);
  auto reparsed = ParseLinearRule(text);
  ASSERT_TRUE(reparsed.ok()) << text << " -> " << reparsed.status();
  EXPECT_EQ(ToString(*reparsed), text);
  EXPECT_TRUE(AreEquivalent(lr->rule(), reparsed->rule()));
}

TEST_P(AnalysisProperty, NormalizationPreservesSemantics) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  // Build a rule with a repeated head variable: p(X,X) :- p(X,Y), g(Y,X).
  // Vary the body with the seed via extra atoms from the generator.
  auto base = RandomLinearRule(2, 1, seed * 37 + 17);
  ASSERT_TRUE(base.ok());
  // Substitute the head by p(X0,X0).
  RuleBuilder builder;
  const Rule& r = base->rule();
  auto copy_term = [&](const Term& t) {
    return t.is_var() ? Term::MakeVar(builder.Var(r.var_name(t.var()))) : t;
  };
  VarId x0 = builder.Var(r.var_name(r.head().terms[0].var()));
  builder.SetHead("p", {Term::MakeVar(x0), Term::MakeVar(x0)});
  for (const Atom& atom : r.body()) {
    std::vector<Term> terms;
    for (const Term& t : atom.terms) terms.push_back(copy_term(t));
    builder.AddBodyAtom(atom.predicate, std::move(terms));
  }
  auto repeated = builder.Build();
  ASSERT_TRUE(repeated.ok());
  auto repeated_lr = LinearRule::Make(*repeated);
  ASSERT_TRUE(repeated_lr.ok());

  Rule normalized = NormalizeHeadVariables(*repeated);
  auto normalized_lr = LinearRule::Make(normalized);
  ASSERT_TRUE(normalized_lr.ok());

  // Same closure on a random database.
  Database db;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, 6);
  for (const Atom& atom : repeated->body()) {
    if (atom.predicate == "p") continue;
    Relation& rel = db.GetOrCreate(atom.predicate, atom.arity());
    for (int i = 0; i < 15; ++i) {
      std::vector<Value> values;
      for (std::size_t j = 0; j < atom.arity(); ++j) {
        values.push_back(pick(rng));
      }
      rel.Insert(Tuple(std::move(values)));
    }
  }
  Relation q(2);
  for (int i = 0; i < 5; ++i) q.Insert({pick(rng), pick(rng)});

  auto direct = SemiNaiveClosure({*repeated_lr}, db, q);
  auto via_normalized = SemiNaiveClosure({*normalized_lr}, db, q);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_normalized.ok());
  EXPECT_EQ(*direct, *via_normalized)
      << "original: " << ToString(*repeated)
      << "\nnormalized: " << ToString(normalized);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace linrec
